#!/bin/sh
# Tier-1 gate: everything that must pass before a change lands.
# Run from the repository root: ./scripts/tier1.sh
set -eux

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Fault-injection smoke matrix: every LDBT_FAULT site must degrade
# gracefully under the watchdog — run completes, faulty rule/snippet is
# quarantined, guest output stays identical to pure TCG.
for fault in rule-corrupt:0 solver-exhaust:0 worker-panic:0; do
    LDBT_WATCHDOG=1 LDBT_FAULT="$fault" \
        cargo test -q --release --test fault_injection
done
