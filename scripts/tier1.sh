#!/bin/sh
# Tier-1 gate: everything that must pass before a change lands.
# Run from the repository root: ./scripts/tier1.sh
set -eux

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
