#!/bin/sh
# Tier-1 gate: everything that must pass before a change lands.
# Run from the repository root: ./scripts/tier1.sh
set -eux

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Fault-injection smoke matrix: every LDBT_FAULT site must degrade
# gracefully under the watchdog — run completes, faulty rule/snippet is
# quarantined, guest output stays identical to pure TCG.
for fault in rule-corrupt:0 solver-exhaust:0 worker-panic:0; do
    LDBT_WATCHDOG=1 LDBT_FAULT="$fault" \
        cargo test -q --release --test fault_injection
done

# Chained-vs-unchained determinism matrix: the engine suite asserts
# guest R0 / guest_dyn / memory against the ARM interpreter reference
# (and chained against unchained in-process), so it must stay green in
# every combination of LDBT_NOCHAIN x LDBT_WATCHDOG the defaults can
# take.
for nochain in 0 1; do
    for watchdog in 0 1; do
        LDBT_NOCHAIN="$nochain" LDBT_WATCHDOG="$watchdog" \
            cargo test -q --release -p ldbt-dbt
        LDBT_NOCHAIN="$nochain" LDBT_WATCHDOG="$watchdog" \
            cargo test -q --release --test determinism --test adversarial
    done
done

# The dispatch-throughput bench must keep compiling (it is the perf
# gate's measurement tool; results live in results/dispatch_throughput.txt).
cargo bench --no-run -p ldbt-bench
