#!/bin/sh
# Tier-1 gate: everything that must pass before a change lands.
# Run from the repository root: ./scripts/tier1.sh
set -eux

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Fault-injection smoke matrix: every LDBT_FAULT site must degrade
# gracefully under the watchdog — run completes, faulty rule/snippet is
# quarantined, guest output stays identical to pure TCG.
for fault in rule-corrupt:0 solver-exhaust:0 worker-panic:0; do
    LDBT_WATCHDOG=1 LDBT_FAULT="$fault" \
        cargo test -q --release --test fault_injection
done

# Chained-vs-unchained determinism matrix: the engine suite asserts
# guest R0 / guest_dyn / memory against the ARM interpreter reference
# (and chained against unchained in-process), so it must stay green in
# every combination of LDBT_NOCHAIN x LDBT_WATCHDOG the defaults can
# take.
for nochain in 0 1; do
    for watchdog in 0 1; do
        LDBT_NOCHAIN="$nochain" LDBT_WATCHDOG="$watchdog" \
            cargo test -q --release -p ldbt-dbt
        LDBT_NOCHAIN="$nochain" LDBT_WATCHDOG="$watchdog" \
            cargo test -q --release --test determinism --test adversarial
    done
done

# Observability gate: tracing and run reports must never perturb
# results. The smoke binary prints only deterministic counters, so its
# stdout must be byte-identical with tracing on and off; the emitted
# NDJSON trace and JSON run report must pass their schema self-checks.
OBS_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR"' EXIT
cargo run -q --release -p ldbt-bench --bin smoke > "$OBS_DIR/smoke_off.txt"
LDBT_TRACE="all:$OBS_DIR/trace.ndjson" LDBT_STATS_JSON="$OBS_DIR/report.json" \
    cargo run -q --release -p ldbt-bench --bin smoke > "$OBS_DIR/smoke_on.txt"
cmp "$OBS_DIR/smoke_off.txt" "$OBS_DIR/smoke_on.txt"
cargo run -q --release -p ldbt-obs --bin obs_selfcheck -- trace "$OBS_DIR/trace.ndjson"
cargo run -q --release -p ldbt-obs --bin obs_selfcheck -- report "$OBS_DIR/report.json"

# The flagship table must also be trace-invariant: with wall-clock
# columns zeroed (LDBT_DETERMINISTIC=1), two table1 runs — one traced,
# one not — must produce byte-identical stdout.
LDBT_DETERMINISTIC=1 cargo run -q --release -p ldbt-bench --bin table1 \
    > "$OBS_DIR/table1_off.txt" 2>/dev/null
LDBT_DETERMINISTIC=1 LDBT_TRACE="all:$OBS_DIR/table1.ndjson" \
    LDBT_STATS_JSON="$OBS_DIR/table1.json" \
    cargo run -q --release -p ldbt-bench --bin table1 \
    > "$OBS_DIR/table1_on.txt" 2>/dev/null
cmp "$OBS_DIR/table1_off.txt" "$OBS_DIR/table1_on.txt"
cargo run -q --release -p ldbt-obs --bin obs_selfcheck -- trace "$OBS_DIR/table1.ndjson"
cargo run -q --release -p ldbt-obs --bin obs_selfcheck -- report "$OBS_DIR/table1.json"

# The dispatch-throughput bench must keep compiling (it is the perf
# gate's measurement tool; results live in results/dispatch_throughput.txt).
cargo bench --no-run -p ldbt-bench
