#!/bin/sh
# Tier-1 gate: everything that must pass before a change lands.
# Run from the repository root: ./scripts/tier1.sh
set -eux

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Fault-injection smoke matrix: every LDBT_FAULT site must degrade
# gracefully under the watchdog — run completes, faulty rule/snippet is
# quarantined or repaired, guest output stays identical to pure TCG.
# The repairable sites (imm-skew, operand-swap) and the unrepairable
# control (rule-corrupt) run with repair both on and off: on, the
# env-driven test asserts the self-healing outcome per site; off, the
# conservative whole-block quarantine path must keep the run correct.
for fault in rule-corrupt:0 imm-skew:0 operand-swap:0 solver-exhaust:0 worker-panic:0; do
    for repair in 0 1; do
        LDBT_WATCHDOG=1 LDBT_FAULT="$fault" LDBT_REPAIR="$repair" \
            cargo test -q --release --test fault_injection
    done
done

# Execution-mode determinism matrix: the engine suite asserts guest R0 /
# guest_dyn / memory against the ARM interpreter reference (and chained
# against unchained, regions against plain, in-process), so it must stay
# green in every combination of LDBT_NOCHAIN x LDBT_WATCHDOG x LDBT_NOSB
# the defaults can take. (Tests that pin a mode via the builder override
# the env, so each leg still exercises its own on/off comparison.)
for nochain in 0 1; do
    for watchdog in 0 1; do
        for nosb in 0 1; do
            LDBT_NOCHAIN="$nochain" LDBT_WATCHDOG="$watchdog" LDBT_NOSB="$nosb" \
                cargo test -q --release -p ldbt-dbt
            LDBT_NOCHAIN="$nochain" LDBT_WATCHDOG="$watchdog" LDBT_NOSB="$nosb" \
                cargo test -q --release --test determinism --test adversarial
        done
    done
done

# Observability gate: tracing and run reports must never perturb
# results. The smoke binary prints only deterministic counters, so its
# stdout must be byte-identical with tracing on and off; the emitted
# NDJSON trace and JSON run report must pass their schema self-checks.
OBS_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR"' EXIT
cargo run -q --release -p ldbt-bench --bin smoke > "$OBS_DIR/smoke_off.txt"
LDBT_TRACE="all:$OBS_DIR/trace.ndjson" LDBT_STATS_JSON="$OBS_DIR/report.json" \
    cargo run -q --release -p ldbt-bench --bin smoke > "$OBS_DIR/smoke_on.txt"
cmp "$OBS_DIR/smoke_off.txt" "$OBS_DIR/smoke_on.txt"
cargo run -q --release -p ldbt-obs --bin obs_selfcheck -- trace "$OBS_DIR/trace.ndjson"
cargo run -q --release -p ldbt-obs --bin obs_selfcheck -- report "$OBS_DIR/report.json"

# The flagship table must also be trace-invariant: with wall-clock
# columns zeroed (LDBT_DETERMINISTIC=1), two table1 runs — one traced,
# one not — must produce byte-identical stdout.
LDBT_DETERMINISTIC=1 cargo run -q --release -p ldbt-bench --bin table1 \
    > "$OBS_DIR/table1_off.txt" 2>/dev/null
LDBT_DETERMINISTIC=1 LDBT_TRACE="all:$OBS_DIR/table1.ndjson" \
    LDBT_STATS_JSON="$OBS_DIR/table1.json" \
    cargo run -q --release -p ldbt-bench --bin table1 \
    > "$OBS_DIR/table1_on.txt" 2>/dev/null
cmp "$OBS_DIR/table1_off.txt" "$OBS_DIR/table1_on.txt"
cargo run -q --release -p ldbt-obs --bin obs_selfcheck -- trace "$OBS_DIR/table1.ndjson"
cargo run -q --release -p ldbt-obs --bin obs_selfcheck -- report "$OBS_DIR/table1.json"

# The region passes must be invisible to the flagship table: table1
# reports learning results and guest-visible outcomes, so its stdout
# must be byte-identical across the full LDBT_NORA x LDBT_NOFUSE x
# LDBT_NOSB knob matrix (the all-off leg is table1_off above).
for nora in 0 1; do
    for nofuse in 0 1; do
        for nosb in 0 1; do
            [ "$nora$nofuse$nosb" = "000" ] && continue
            LDBT_DETERMINISTIC=1 LDBT_NORA="$nora" LDBT_NOFUSE="$nofuse" LDBT_NOSB="$nosb" \
                cargo run -q --release -p ldbt-bench --bin table1 \
                > "$OBS_DIR/table1_knobs.txt" 2>/dev/null
            cmp "$OBS_DIR/table1_off.txt" "$OBS_DIR/table1_knobs.txt"
        done
    done
done

# Repair must be invisible on clean runs: with no fault injected the
# repair machinery never engages, so table1 stdout must be
# byte-identical with LDBT_REPAIR=0.
LDBT_DETERMINISTIC=1 LDBT_REPAIR=0 cargo run -q --release -p ldbt-bench --bin table1 \
    > "$OBS_DIR/table1_norepair.txt" 2>/dev/null
cmp "$OBS_DIR/table1_off.txt" "$OBS_DIR/table1_norepair.txt"

# Warm-start gate: a second boot from the persistent rule database
# (LDBT_RULEDB) must learn byte-identical rules — the cold run writes
# the database, the warm run replays learning from the persisted
# verification memo, and both tables must match the no-database run
# byte for byte (LDBT_DETERMINISTIC=1 zeroes the wall-clock and
# memo-traffic columns that legitimately differ warm vs fresh).
RULEDB="$OBS_DIR/rules.db"
LDBT_DETERMINISTIC=1 LDBT_RULEDB="$RULEDB" \
    cargo run -q --release -p ldbt-bench --bin table1 \
    > "$OBS_DIR/table1_cold.txt" 2>/dev/null
test -s "$RULEDB"
LDBT_DETERMINISTIC=1 LDBT_RULEDB="$RULEDB" \
    cargo run -q --release -p ldbt-bench --bin table1 \
    > "$OBS_DIR/table1_warm.txt" 2>/dev/null
cmp "$OBS_DIR/table1_off.txt" "$OBS_DIR/table1_cold.txt"
cmp "$OBS_DIR/table1_off.txt" "$OBS_DIR/table1_warm.txt"
# A truncated database must be rejected (notice on stderr), falling back
# to fresh learning with identical output.
head -c 24 "$RULEDB" > "$OBS_DIR/rules_corrupt.db"
LDBT_DETERMINISTIC=1 LDBT_RULEDB="$OBS_DIR/rules_corrupt.db" \
    cargo run -q --release -p ldbt-bench --bin table1 \
    > "$OBS_DIR/table1_corrupt.txt" 2> "$OBS_DIR/table1_corrupt.err"
cmp "$OBS_DIR/table1_off.txt" "$OBS_DIR/table1_corrupt.txt"
grep -q "ignoring rule database" "$OBS_DIR/table1_corrupt.err"

# Translation-cache coherence gate: the self-modifying-code smoke prints
# guest-visible state only (final registers + the patched body word), so
# the default run (coherent engines, asserting smc_invalidations > 0)
# and the LDBT_NOSMC=1 run (forced interpreter fallback — with the cache
# uncoherent, translated code may not execute the guest's stores) must
# be byte-identical.
cargo run -q --release -p ldbt-bench --bin smc_smoke > "$OBS_DIR/smc_default.txt"
LDBT_NOSMC=1 cargo run -q --release -p ldbt-bench --bin smc_smoke > "$OBS_DIR/smc_nosmc.txt"
cmp "$OBS_DIR/smc_default.txt" "$OBS_DIR/smc_nosmc.txt"

# Guest trap-path gate: the cooperative mini-kernel (svc yields, svc
# exit, wild-store kill) must produce the interpreter's exact KernelRun
# on every engine, in every watchdog x superblock cell — the trap exit
# is what the watchdog's soundness contract extends to.
for watchdog in 0 1; do
    for nosb in 0 1; do
        LDBT_WATCHDOG="$watchdog" LDBT_NOSB="$nosb" \
            cargo run -q --release -p ldbt-bench --bin mini_kernel_smoke
    done
done

# Multi-tenant serving smoke: 2 tenants over the serve mix must reach
# >=1.5x solo aggregate guest-instrs/sec. Real parallelism needs cores;
# on hosts with fewer than 4 the binary skips with a notice (and this
# gate is then build-only).
cargo run -q --release -p ldbt-bench --bin serve_throughput -- --smoke

# The dispatch-throughput bench must keep compiling (it is the perf
# gate's measurement tool; results live in results/dispatch_throughput.txt).
cargo bench --no-run -p ldbt-bench

# Dispatch-throughput perf gate, against the recorded rows in
# results/dispatch_throughput.txt (region RA + fusion section).
# host_instrs is deterministic, so it gets a tight +-2% band per engine
# (catches codegen regressions exactly). Wall-clock swings ~20% on the
# shared container, so the best-of-5 min only gates the recorded
# ceilings: the rules engine must stay within 2% of the pre-RA/fusion
# 39.697 ms row (the tentpole's no-regression bound — the recorded min
# is 32.415 ms) and tcg/jit keep their wide pre-superblock caps. The
# ablation rows (rules_nosb / rules_nofuse / rules_nora) gate
# host_instrs only.
./target/release/dispatch_gate | tee "$OBS_DIR/gate.txt"
awk -F'[ =]+' '
    $2 == "tcg"          { if ($4 > 135.31 || $6 < 7871912 || $6 > 8193214) bad = bad " tcg" }
    $2 == "rules"        { if ($4 > 40.49  || $6 < 3709136 || $6 > 3860530) bad = bad " rules" }
    $2 == "jit"          { if ($4 > 116.05 || $6 < 8773967 || $6 > 9132089) bad = bad " jit" }
    $2 == "rules_nosb"   { if ($6 < 8920242 || $6 > 9284334) bad = bad " rules_nosb" }
    $2 == "rules_nofuse" { if ($6 < 4293318 || $6 > 4468556) bad = bad " rules_nofuse" }
    $2 == "rules_nora"   { if ($6 < 3885534 || $6 > 4044128) bad = bad " rules_nora" }
    END {
        if (bad != "") { print "dispatch gate FAILED:" bad; exit 1 }
        print "dispatch gate ok"
    }
' "$OBS_DIR/gate.txt"
