#![forbid(unsafe_code)]
//! Top-level facade for the learned-DBT workspace.
//!
//! Re-exports the end-to-end pipeline from [`ldbt_core`]. See the README
//! for the architecture overview and `examples/` for runnable entry points.

pub use ldbt_core::*;
