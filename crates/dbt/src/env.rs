//! The emulation environment: guest state held in host memory.
//!
//! Like QEMU, the DBT keeps the guest register file and condition flags
//! in a host memory block (`env`); translated code loads guest registers
//! into host registers on demand and writes dirty ones back at block
//! boundaries.

use ldbt_arm::ArmReg;
use ldbt_x86::X86Mem;

/// Base address of the env block.
pub const ENV_BASE: u32 = 0x00f0_0000;
/// Host stack for translated code (`%esp` initial value, grows down).
pub const HOST_STACK_TOP: u32 = 0x00e8_0000;

/// Byte offset of guest register `r` within the env.
pub fn reg_offset(r: ArmReg) -> u32 {
    4 * r.index() as u32
}

/// One guest condition flag, in env order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlagId {
    /// Negative.
    N,
    /// Zero.
    Z,
    /// Carry (ARM polarity).
    C,
    /// Overflow.
    V,
}

impl FlagId {
    /// All flags, env order.
    pub const ALL: [FlagId; 4] = [FlagId::N, FlagId::Z, FlagId::C, FlagId::V];

    /// The flag's NZCV mask bit (N=8, Z=4, C=2, V=1).
    pub fn mask(self) -> u8 {
        match self {
            FlagId::N => 0b1000,
            FlagId::Z => 0b0100,
            FlagId::C => 0b0010,
            FlagId::V => 0b0001,
        }
    }

    /// Byte offset of the flag's env slot (each slot holds 0 or 1).
    pub fn offset(self) -> u32 {
        0x40 + 4 * match self {
            FlagId::N => 0,
            FlagId::Z => 1,
            FlagId::C => 2,
            FlagId::V => 3,
        }
    }
}

/// Env slot holding saved host EFLAGS (`pushfd` image) for lazily-saved
/// condition codes (paper §5).
pub const HOSTFLAGS_OFFSET: u32 = 0x50;
/// Env slot: flag mode. Bit 0: 1 = `HOSTFLAGS` is authoritative, 0 = the
/// NZCV slots are. Bit 1: carry polarity of the saved flags (0 = ARM C is
/// ¬CF, subtraction-style; 1 = ARM C is CF, addition-style).
pub const FLAGMODE_OFFSET: u32 = 0x54;
/// Start of the spill area for translated-code temporaries.
pub const SPILL_OFFSET: u32 = 0x80;
/// Number of temp spill slots.
pub const SPILL_SLOTS: u32 = 16;

/// An absolute-address memory operand for an env slot.
pub fn env_mem(offset: u32) -> X86Mem {
    X86Mem::absolute((ENV_BASE + offset) as i32)
}

/// The env slot of a guest register.
pub fn reg_mem(r: ArmReg) -> X86Mem {
    env_mem(reg_offset(r))
}

/// The env slot of a guest flag.
pub fn flag_mem(f: FlagId) -> X86Mem {
    env_mem(f.offset())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_disjoint() {
        let mut offsets: Vec<u32> = ArmReg::ALL.iter().map(|r| reg_offset(*r)).collect();
        offsets.extend(FlagId::ALL.iter().map(|f| f.offset()));
        offsets.push(HOSTFLAGS_OFFSET);
        offsets.push(FLAGMODE_OFFSET);
        for k in 0..SPILL_SLOTS {
            offsets.push(SPILL_OFFSET + 4 * k);
        }
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), offsets.len(), "overlapping env slots");
    }

    #[test]
    fn flag_masks() {
        assert_eq!(
            FlagId::N.mask() | FlagId::Z.mask() | FlagId::C.mask() | FlagId::V.mask(),
            0b1111
        );
        assert_eq!(FlagId::C.offset(), 0x48);
    }

    #[test]
    fn env_mem_is_absolute() {
        let m = reg_mem(ArmReg::R3);
        assert_eq!(m.base, None);
        assert_eq!(m.disp as u32, ENV_BASE + 12);
    }

    #[test]
    fn env_does_not_collide_with_program_regions() {
        // Code, globals, guest stack, host stack all live below the env.
        const { assert!(ldbt_compiler::link::CODE_BASE < ENV_BASE) };
        const { assert!(ldbt_compiler::link::STACK_TOP < ENV_BASE) };
        const { assert!(HOST_STACK_TOP < ENV_BASE) };
    }
}
