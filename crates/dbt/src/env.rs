//! The emulation environment: guest state held in host memory, plus the
//! parse tables for the engine's runtime knobs.
//!
//! Like QEMU, the DBT keeps the guest register file and condition flags
//! in a host memory block (`env`); translated code loads guest registers
//! into host registers on demand and writes dirty ones back at block
//! boundaries.
//!
//! The knob parsers (`LDBT_WATCHDOG`, `LDBT_NOCHAIN`, `LDBT_NOSB`,
//! `LDBT_SB_THRESHOLD`, `LDBT_NORA`, `LDBT_NOFUSE`, `LDBT_REPAIR`) live
//! here too so every engine default follows one documented convention:
//! unset / empty / `0` / garbage always resolve to the knob's default,
//! never to a surprise mode.

use ldbt_arm::ArmReg;
use ldbt_x86::X86Mem;
use std::sync::OnceLock;

/// Base address of the env block.
pub const ENV_BASE: u32 = 0x00f0_0000;
/// Host stack for translated code (`%esp` initial value, grows down).
pub const HOST_STACK_TOP: u32 = 0x00e8_0000;
/// Exclusive upper bound of the guest address space. Everything at or
/// above — the host stack guard band, the host stack, the env — belongs
/// to the host: a guest load or store landing here traps instead of
/// silently aliasing host state. The watchdog's memory compare has
/// always excluded this region; the trap check turns the same boundary
/// into an architectural fault.
pub const GUEST_MEM_LIMIT: u32 = HOST_STACK_TOP - 0x1_0000;

/// Byte offset of guest register `r` within the env.
pub fn reg_offset(r: ArmReg) -> u32 {
    4 * r.index() as u32
}

/// One guest condition flag, in env order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlagId {
    /// Negative.
    N,
    /// Zero.
    Z,
    /// Carry (ARM polarity).
    C,
    /// Overflow.
    V,
}

impl FlagId {
    /// All flags, env order.
    pub const ALL: [FlagId; 4] = [FlagId::N, FlagId::Z, FlagId::C, FlagId::V];

    /// The flag's NZCV mask bit (N=8, Z=4, C=2, V=1).
    pub fn mask(self) -> u8 {
        match self {
            FlagId::N => 0b1000,
            FlagId::Z => 0b0100,
            FlagId::C => 0b0010,
            FlagId::V => 0b0001,
        }
    }

    /// Byte offset of the flag's env slot (each slot holds 0 or 1).
    pub fn offset(self) -> u32 {
        0x40 + 4 * match self {
            FlagId::N => 0,
            FlagId::Z => 1,
            FlagId::C => 2,
            FlagId::V => 3,
        }
    }
}

/// Env slot holding saved host EFLAGS (`pushfd` image) for lazily-saved
/// condition codes (paper §5).
pub const HOSTFLAGS_OFFSET: u32 = 0x50;
/// Env slot: flag mode. Bit 0: 1 = `HOSTFLAGS` is authoritative, 0 = the
/// NZCV slots are. Bit 1: carry polarity of the saved flags (0 = ARM C is
/// ¬CF, subtraction-style; 1 = ARM C is CF, addition-style).
pub const FLAGMODE_OFFSET: u32 = 0x54;
/// Start of the spill area for translated-code temporaries.
pub const SPILL_OFFSET: u32 = 0x80;
/// Number of temp spill slots.
pub const SPILL_SLOTS: u32 = 16;

/// An absolute-address memory operand for an env slot.
pub fn env_mem(offset: u32) -> X86Mem {
    X86Mem::absolute((ENV_BASE + offset) as i32)
}

/// The env slot of a guest register.
pub fn reg_mem(r: ArmReg) -> X86Mem {
    env_mem(reg_offset(r))
}

/// The env slot of a guest flag.
pub fn flag_mem(f: FlagId) -> X86Mem {
    env_mem(f.offset())
}

/// Default superblock formation threshold: a chain head must be
/// dispatched this many times before the engine forms a region from it.
pub const SB_THRESHOLD_DEFAULT: u64 = 64;

/// Parse table for `LDBT_WATCHDOG` (the sampling period of the
/// differential cross-check):
///
/// | value                 | behavior                                  |
/// |-----------------------|-------------------------------------------|
/// | unset / `""` / `0` / `off` | watchdog disabled                    |
/// | `on` / `1`            | check every rule-covered dispatch         |
/// | `N` (integer > 0)     | check every Nth rule-covered dispatch     |
/// | anything else         | watchdog disabled (garbage is not a period) |
pub fn parse_watchdog(raw: Option<&str>) -> Option<u64> {
    match raw.map(str::trim) {
        None | Some("" | "0" | "off") => None,
        Some("on") => Some(1),
        Some(s) => s.parse::<u64>().ok().filter(|n| *n > 0),
    }
}

/// Cached `LDBT_WATCHDOG` parse.
pub fn watchdog_from_env() -> Option<u64> {
    static WATCHDOG: OnceLock<Option<u64>> = OnceLock::new();
    *WATCHDOG.get_or_init(|| parse_watchdog(std::env::var("LDBT_WATCHDOG").ok().as_deref()))
}

/// Parse table for `LDBT_NOCHAIN` (block-chaining kill switch for A/B
/// measurement): unset, `""`, `0`, and `off` keep chaining **on**; any
/// other value (including garbage) turns it off — the knob is a
/// disabler, so an unrecognized value fails toward the measurement mode
/// the user was reaching for.
pub fn parse_chaining(raw: Option<&str>) -> bool {
    matches!(raw.map(str::trim), None | Some("" | "0" | "off"))
}

/// Cached `LDBT_NOCHAIN` parse.
pub fn chaining_from_env() -> bool {
    static NOCHAIN: OnceLock<bool> = OnceLock::new();
    *NOCHAIN.get_or_init(|| parse_chaining(std::env::var("LDBT_NOCHAIN").ok().as_deref()))
}

/// Parse table for `LDBT_NOSB` (superblock-formation kill switch): the
/// same disabler convention as `LDBT_NOCHAIN` — unset, `""`, `0`, and
/// `off` keep superblocks **on**; anything else turns them off.
pub fn parse_superblocks(raw: Option<&str>) -> bool {
    matches!(raw.map(str::trim), None | Some("" | "0" | "off"))
}

/// Parse table for `LDBT_NORA` (region register-allocation kill switch):
/// the same disabler convention as `LDBT_NOSB` — unset, `""`, `0`, and
/// `off` keep region register allocation **on**; anything else turns it
/// off (superblocks still form, env accesses stay through home slots).
pub fn parse_region_alloc(raw: Option<&str>) -> bool {
    matches!(raw.map(str::trim), None | Some("" | "0" | "off"))
}

/// Cached `LDBT_NORA` parse.
pub fn region_alloc_from_env() -> bool {
    static NORA: OnceLock<bool> = OnceLock::new();
    *NORA.get_or_init(|| parse_region_alloc(std::env::var("LDBT_NORA").ok().as_deref()))
}

/// Parse table for `LDBT_NOFUSE` (guest memory-access fusion kill
/// switch): the same disabler convention as `LDBT_NOSB` — unset, `""`,
/// `0`, and `off` keep fusion **on**; anything else turns it off
/// (superblocks still form, every guest memory access stays explicit).
pub fn parse_fusion(raw: Option<&str>) -> bool {
    matches!(raw.map(str::trim), None | Some("" | "0" | "off"))
}

/// Cached `LDBT_NOFUSE` parse.
pub fn fusion_from_env() -> bool {
    static NOFUSE: OnceLock<bool> = OnceLock::new();
    *NOFUSE.get_or_init(|| parse_fusion(std::env::var("LDBT_NOFUSE").ok().as_deref()))
}

/// Parse table for `LDBT_NOSMC` (self-modifying-code protection kill
/// switch): the same disabler convention as `LDBT_NOCHAIN` — unset,
/// `""`, `0`, and `off` keep SMC protection **on**; anything else turns
/// it off (guest stores into translated code go unnoticed until the
/// next engine reset, which checksum-revalidates the cache).
pub fn parse_smc(raw: Option<&str>) -> bool {
    matches!(raw.map(str::trim), None | Some("" | "0" | "off"))
}

/// Cached `LDBT_NOSMC` parse.
pub fn smc_from_env() -> bool {
    static NOSMC: OnceLock<bool> = OnceLock::new();
    *NOSMC.get_or_init(|| parse_smc(std::env::var("LDBT_NOSMC").ok().as_deref()))
}

/// Parse table for `LDBT_SB_THRESHOLD` (superblock formation hotness
/// threshold): a positive integer overrides the default; unset, `""`,
/// `0`, and garbage all resolve to [`SB_THRESHOLD_DEFAULT`].
pub fn parse_sb_threshold(raw: Option<&str>) -> u64 {
    raw.map(str::trim)
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|n| *n > 0)
        .unwrap_or(SB_THRESHOLD_DEFAULT)
}

/// Parse table for `LDBT_REPAIR` (counterexample-guided rule repair,
/// default **on** — repair only runs after a watchdog mismatch, so a
/// clean run pays nothing for it):
///
/// | value                  | behavior                                 |
/// |------------------------|------------------------------------------|
/// | unset / anything else  | repair enabled (the default)             |
/// | `0` / `off`            | repair disabled — mismatch quarantines   |
///
/// The knob is a disabler like `LDBT_NOCHAIN`, but spelled positively:
/// only an explicit `0`/`off` turns the repair loop off; garbage keeps
/// the default.
pub fn parse_repair(raw: Option<&str>) -> bool {
    !matches!(raw.map(str::trim), Some("0" | "off"))
}

/// Cached `LDBT_REPAIR` parse.
pub fn repair_from_env() -> bool {
    static REPAIR: OnceLock<bool> = OnceLock::new();
    *REPAIR.get_or_init(|| parse_repair(std::env::var("LDBT_REPAIR").ok().as_deref()))
}

/// Default tenant count for serve-mode drivers (`LDBT_TENANTS`).
pub const TENANTS_DEFAULT: usize = 2;

/// Parse table for `LDBT_TENANTS` (tenant count of serve-mode drivers
/// such as the `serve_throughput` benchmark): a positive integer
/// overrides the default; unset, `""`, `0`, and garbage all resolve to
/// [`TENANTS_DEFAULT`].
pub fn parse_tenants(raw: Option<&str>) -> usize {
    raw.map(str::trim)
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or(TENANTS_DEFAULT)
}

/// Cached `LDBT_TENANTS` parse.
pub fn tenants_from_env() -> usize {
    static TENANTS: OnceLock<usize> = OnceLock::new();
    *TENANTS.get_or_init(|| parse_tenants(std::env::var("LDBT_TENANTS").ok().as_deref()))
}

/// Cached combined `LDBT_NOSB` / `LDBT_SB_THRESHOLD` parse: `None` when
/// superblocks are disabled, `Some(threshold)` otherwise.
pub fn superblocks_from_env() -> Option<u64> {
    static SB: OnceLock<Option<u64>> = OnceLock::new();
    *SB.get_or_init(|| {
        parse_superblocks(std::env::var("LDBT_NOSB").ok().as_deref())
            .then(|| parse_sb_threshold(std::env::var("LDBT_SB_THRESHOLD").ok().as_deref()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_disjoint() {
        let mut offsets: Vec<u32> = ArmReg::ALL.iter().map(|r| reg_offset(*r)).collect();
        offsets.extend(FlagId::ALL.iter().map(|f| f.offset()));
        offsets.push(HOSTFLAGS_OFFSET);
        offsets.push(FLAGMODE_OFFSET);
        for k in 0..SPILL_SLOTS {
            offsets.push(SPILL_OFFSET + 4 * k);
        }
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), offsets.len(), "overlapping env slots");
    }

    #[test]
    fn flag_masks() {
        assert_eq!(
            FlagId::N.mask() | FlagId::Z.mask() | FlagId::C.mask() | FlagId::V.mask(),
            0b1111
        );
        assert_eq!(FlagId::C.offset(), 0x48);
    }

    #[test]
    fn env_mem_is_absolute() {
        let m = reg_mem(ArmReg::R3);
        assert_eq!(m.base, None);
        assert_eq!(m.disp as u32, ENV_BASE + 12);
    }

    #[test]
    fn env_does_not_collide_with_program_regions() {
        // Code, globals, guest stack, host stack all live below the env.
        const { assert!(ldbt_compiler::link::CODE_BASE < ENV_BASE) };
        const { assert!(ldbt_compiler::link::STACK_TOP < ENV_BASE) };
        const { assert!(HOST_STACK_TOP < ENV_BASE) };
    }

    #[test]
    fn watchdog_parse_table() {
        assert_eq!(parse_watchdog(None), None, "unset disables");
        for v in ["", "0", "off", "garbage", "-3", "3x", " off ", "on1"] {
            assert_eq!(parse_watchdog(Some(v)), None, "{v:?} disables");
        }
        assert_eq!(parse_watchdog(Some("on")), Some(1));
        assert_eq!(parse_watchdog(Some("1")), Some(1));
        assert_eq!(parse_watchdog(Some(" 250 ")), Some(250));
    }

    #[test]
    fn chaining_parse_table() {
        assert!(parse_chaining(None), "unset keeps chaining on");
        for v in ["", "0", "off", " 0 "] {
            assert!(parse_chaining(Some(v)), "{v:?} keeps chaining on");
        }
        for v in ["1", "on", "garbage"] {
            assert!(!parse_chaining(Some(v)), "{v:?} disables chaining");
        }
    }

    #[test]
    fn superblock_parse_table() {
        assert!(parse_superblocks(None), "unset keeps superblocks on");
        for v in ["", "0", "off", " 0 "] {
            assert!(parse_superblocks(Some(v)), "{v:?} keeps superblocks on");
        }
        for v in ["1", "on", "garbage"] {
            assert!(!parse_superblocks(Some(v)), "{v:?} disables superblocks");
        }
    }

    #[test]
    fn region_alloc_parse_table() {
        assert!(parse_region_alloc(None), "unset keeps region allocation on");
        for v in ["", "0", "off", " 0 ", " off "] {
            assert!(parse_region_alloc(Some(v)), "{v:?} keeps region allocation on");
        }
        for v in ["1", "on", "garbage", "ON", "no"] {
            assert!(!parse_region_alloc(Some(v)), "{v:?} disables region allocation");
        }
    }

    #[test]
    fn fusion_parse_table() {
        assert!(parse_fusion(None), "unset keeps fusion on");
        for v in ["", "0", "off", " 0 ", " off "] {
            assert!(parse_fusion(Some(v)), "{v:?} keeps fusion on");
        }
        for v in ["1", "on", "garbage", "ON", "no"] {
            assert!(!parse_fusion(Some(v)), "{v:?} disables fusion");
        }
    }

    #[test]
    fn smc_parse_table() {
        assert!(parse_smc(None), "unset keeps SMC protection on");
        for v in ["", "0", "off", " 0 ", " off "] {
            assert!(parse_smc(Some(v)), "{v:?} keeps SMC protection on");
        }
        for v in ["1", "on", "garbage", "ON", "no"] {
            assert!(!parse_smc(Some(v)), "{v:?} disables SMC protection");
        }
    }

    #[test]
    fn repair_parse_table() {
        assert!(parse_repair(None), "unset keeps repair on");
        for v in ["", "1", "on", "garbage", " on "] {
            assert!(parse_repair(Some(v)), "{v:?} keeps repair on");
        }
        for v in ["0", "off", " off ", " 0 "] {
            assert!(!parse_repair(Some(v)), "{v:?} disables repair");
        }
    }

    #[test]
    fn tenants_parse_table() {
        assert_eq!(parse_tenants(None), TENANTS_DEFAULT, "unset takes the default");
        for v in ["", "0", "off", "garbage", "-2", "2x", " 0 "] {
            assert_eq!(parse_tenants(Some(v)), TENANTS_DEFAULT, "{v:?} takes default");
        }
        assert_eq!(parse_tenants(Some("1")), 1);
        assert_eq!(parse_tenants(Some(" 8 ")), 8);
    }

    #[test]
    fn sb_threshold_parse_table() {
        assert_eq!(parse_sb_threshold(None), SB_THRESHOLD_DEFAULT, "unset takes the default");
        for v in ["", "0", "off", "garbage", "-8", "8x", " 0 "] {
            assert_eq!(parse_sb_threshold(Some(v)), SB_THRESHOLD_DEFAULT, "{v:?} takes default");
        }
        assert_eq!(parse_sb_threshold(Some("1")), 1);
        assert_eq!(parse_sb_threshold(Some(" 128 ")), 128);
        // Edge cases: an explicit 0 resolves to the default — a raw
        // threshold of 0 would make the engine's `is_multiple_of(0)`
        // trigger never fire (no first-execution region, no division) —
        // and the max value parses verbatim; one past it is garbage.
        assert_eq!(parse_sb_threshold(Some("0")), SB_THRESHOLD_DEFAULT, "0 is the default");
        assert_eq!(parse_sb_threshold(Some(&u64::MAX.to_string())), u64::MAX);
        assert_eq!(
            parse_sb_threshold(Some("18446744073709551616")),
            SB_THRESHOLD_DEFAULT,
            "overflow is garbage, not a wrap"
        );
    }
}
