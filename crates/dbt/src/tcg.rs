//! The TCG-like micro-op IR and the ARM front end.
//!
//! Each guest instruction expands into several micro-ops over unbounded
//! temporaries, exactly the one-to-many shape the paper identifies as the
//! source of QEMU's code expansion. Guest registers and flags live in the
//! env ([`crate::env`]); `GetReg`/`PutReg`/`GetFlag`/`PutFlag` move values
//! between env and temporaries.
//!
//! The front end already performs QEMU-style *flag liveness* pruning:
//! NZCV updates that are provably dead (overwritten before use within
//! the block and not live into any successor) are not materialized.

use crate::env::FlagId;
use ldbt_arm::{encode::decode, AddrMode, ArmInstr, ArmReg, Cond, DpOp, Operand2, Shift};
use ldbt_isa::{Memory, Width};

/// A TCG temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Temp(pub u32);

/// Micro-op ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TcgAlu {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Lshr,
    Ashr,
    Mul,
}

/// Micro-op comparison predicates (producing 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TcgCond {
    Eq,
    Ne,
    Ltu,
    Leu,
    Geu,
    Gtu,
    Lts,
    Ges,
}

/// One micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcgOp {
    /// `dst = imm`.
    MovI(Temp, u32),
    /// `dst = src`.
    Mov(Temp, Temp),
    /// `dst = a op b`.
    Alu(TcgAlu, Temp, Temp, Temp),
    /// `dst = a op imm`.
    AluI(TcgAlu, Temp, Temp, u32),
    /// `dst = !a` (bitwise).
    Not(Temp, Temp),
    /// `dst = -a`.
    Neg(Temp, Temp),
    /// `dst = (a cond b) ? 1 : 0`.
    Setc(Temp, TcgCond, Temp, Temp),
    /// Load a guest register from env.
    GetReg(Temp, ArmReg),
    /// Store a guest register to env.
    PutReg(ArmReg, Temp),
    /// Load a guest flag (0/1) from env.
    GetFlag(Temp, FlagId),
    /// Store a guest flag (0/1) to env.
    PutFlag(FlagId, Temp),
    /// `dst = mem[addr]`, zero- or sign-extended.
    Load(Temp, Temp, Width, bool),
    /// `mem[addr] = src` (low `width` bits).
    Store(Temp, Temp, Width),
}

impl TcgOp {
    /// The temp defined, if any.
    pub fn def(&self) -> Option<Temp> {
        match *self {
            TcgOp::MovI(d, _)
            | TcgOp::Mov(d, _)
            | TcgOp::Alu(_, d, _, _)
            | TcgOp::AluI(_, d, _, _)
            | TcgOp::Not(d, _)
            | TcgOp::Neg(d, _)
            | TcgOp::Setc(d, _, _, _)
            | TcgOp::GetReg(d, _)
            | TcgOp::GetFlag(d, _)
            | TcgOp::Load(d, _, _, _) => Some(d),
            _ => None,
        }
    }

    /// The temps read.
    pub fn uses(&self) -> Vec<Temp> {
        match *self {
            TcgOp::Mov(_, s) | TcgOp::AluI(_, _, s, _) | TcgOp::Not(_, s) | TcgOp::Neg(_, s) => {
                vec![s]
            }
            TcgOp::Alu(_, _, a, b) | TcgOp::Setc(_, _, a, b) => vec![a, b],
            TcgOp::PutReg(_, s) | TcgOp::PutFlag(_, s) => vec![s],
            TcgOp::Load(_, a, _, _) => vec![a],
            TcgOp::Store(s, a, _) => vec![s, a],
            _ => vec![],
        }
    }
}

/// How a translated block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockEnd {
    /// Continue at a known guest PC.
    Jump(u32),
    /// Conditional: if `cond` (a 0/1 temp) is nonzero go to `taken`.
    Branch {
        /// Condition temp.
        cond: Temp,
        /// Target when nonzero.
        taken: u32,
        /// Fall-through target.
        not_taken: u32,
    },
    /// Jump to the address in a temp (`bx`).
    Indirect(Temp),
    /// Guest executed `svc #0`.
    Halt,
    /// Guest executed a trapping instruction (`svc #n`, n ≠ 0) at this
    /// PC: the block exits with a precise trap (full writeback, `%eax`
    /// holding the trapping PC, then the `trap` sentinel).
    Trap(u32),
}

/// A decoded guest basic block.
#[derive(Debug, Clone)]
pub struct GuestBlock {
    /// Start PC.
    pub pc: u32,
    /// The instructions.
    pub instrs: Vec<ArmInstr>,
}

/// Maximum guest instructions per block.
pub const MAX_BLOCK: usize = 64;

/// Decode a guest basic block starting at `pc`.
///
/// The block ends after a control-flow instruction, before an
/// undecodable word, or at [`MAX_BLOCK`] instructions.
pub fn decode_block(mem: &Memory, pc: u32) -> GuestBlock {
    let mut instrs = Vec::new();
    let mut cur = pc;
    while instrs.len() < MAX_BLOCK {
        let Ok(i) = decode(mem.read(cur, Width::W32)) else { break };
        instrs.push(i);
        if i.is_block_end() {
            break;
        }
        cur = cur.wrapping_add(4);
    }
    GuestBlock { pc, instrs }
}

/// NZCV liveness into the code starting at `pc`: a flag is live if some
/// instruction reads it before any instruction writes it.
///
/// The scan is linear and bounded; unknown control flow is conservative
/// (all unwritten flags live).
pub fn flags_live_at(mem: &Memory, pc: u32, depth: u32) -> u8 {
    let mut live = 0u8;
    let mut written = 0u8;
    let mut cur = pc;
    for _ in 0..32 {
        let Ok(i) = decode(mem.read(cur, Width::W32)) else {
            return live | (0b1111 & !written);
        };
        live |= i.flags_read() & !written;
        written |= i.flags_written();
        if written == 0b1111 {
            return live;
        }
        match i {
            ArmInstr::B { offset, cond } => {
                if depth == 0 {
                    return live | (0b1111 & !written);
                }
                let next = cur.wrapping_add(4);
                let taken = next.wrapping_add((offset as u32).wrapping_mul(4));
                let mut l = flags_live_at(mem, taken, depth - 1);
                if cond != Cond::Al {
                    l |= flags_live_at(mem, next, depth - 1);
                }
                return live | (l & !written);
            }
            ArmInstr::Bl { .. } | ArmInstr::Bx { .. } | ArmInstr::Svc { .. } => {
                // Across calls/returns: conservative.
                return live | (0b1111 & !written);
            }
            _ => cur = cur.wrapping_add(4),
        }
    }
    live | (0b1111 & !written)
}

/// The translated (micro-op) form of a guest block.
#[derive(Debug, Clone)]
pub struct TcgBlock {
    /// The micro-ops.
    pub ops: Vec<TcgOp>,
    /// The terminator.
    pub end: BlockEnd,
    /// Whether the block reads guest flags that are live-in.
    pub reads_live_in_flags: bool,
    /// Whether the block writes any guest flag slot.
    pub writes_flags: bool,
    /// Instructions the front end could not translate (the engine falls
    /// back to single-step interpretation for them). `None` when fully
    /// translated; otherwise the index of the first unsupported guest
    /// instruction.
    pub unsupported_at: Option<usize>,
}

struct FrontEnd {
    ops: Vec<TcgOp>,
    next_temp: u32,
    reads_live_in_flags: bool,
    writes_flags: bool,
    flags_written_so_far: u8,
}

impl FrontEnd {
    fn temp(&mut self) -> Temp {
        let t = Temp(self.next_temp);
        self.next_temp += 1;
        t
    }

    fn emit(&mut self, op: TcgOp) {
        self.ops.push(op);
    }

    fn get_reg(&mut self, r: ArmReg) -> Temp {
        let t = self.temp();
        self.emit(TcgOp::GetReg(t, r));
        t
    }

    fn get_flag(&mut self, f: FlagId) -> Temp {
        if self.flags_written_so_far & f.mask() == 0 {
            self.reads_live_in_flags = true;
        }
        let t = self.temp();
        self.emit(TcgOp::GetFlag(t, f));
        t
    }

    fn put_flag(&mut self, f: FlagId, t: Temp) {
        self.writes_flags = true;
        self.flags_written_so_far |= f.mask();
        self.emit(TcgOp::PutFlag(f, t));
    }

    fn movi(&mut self, v: u32) -> Temp {
        let t = self.temp();
        self.emit(TcgOp::MovI(t, v));
        t
    }

    fn alu(&mut self, op: TcgAlu, a: Temp, b: Temp) -> Temp {
        let t = self.temp();
        self.emit(TcgOp::Alu(op, t, a, b));
        t
    }

    fn alui(&mut self, op: TcgAlu, a: Temp, imm: u32) -> Temp {
        let t = self.temp();
        self.emit(TcgOp::AluI(op, t, a, imm));
        t
    }

    fn setc(&mut self, cond: TcgCond, a: Temp, b: Temp) -> Temp {
        let t = self.temp();
        self.emit(TcgOp::Setc(t, cond, a, b));
        t
    }

    fn not(&mut self, a: Temp) -> Temp {
        let t = self.temp();
        self.emit(TcgOp::Not(t, a));
        t
    }

    fn xor1(&mut self, a: Temp) -> Temp {
        self.alui(TcgAlu::Xor, a, 1)
    }

    /// Evaluate the shifter: returns (value temp, carry-out temp if a
    /// shift occurred).
    fn shifter(&mut self, r: Temp, shift: Shift) -> (Temp, Option<Temp>) {
        let amt = shift.amount() as u32 & 31;
        if amt == 0 {
            return (r, None);
        }
        match shift {
            Shift::Lsl(_) => {
                let v = self.alui(TcgAlu::Shl, r, amt);
                let c0 = self.alui(TcgAlu::Lshr, r, 32 - amt);
                let c = self.alui(TcgAlu::And, c0, 1);
                (v, Some(c))
            }
            Shift::Lsr(_) => {
                let v = self.alui(TcgAlu::Lshr, r, amt);
                let c0 = self.alui(TcgAlu::Lshr, r, amt - 1);
                let c = self.alui(TcgAlu::And, c0, 1);
                (v, Some(c))
            }
            Shift::Asr(_) => {
                let v = self.alui(TcgAlu::Ashr, r, amt);
                let c0 = self.alui(TcgAlu::Lshr, r, amt - 1);
                let c = self.alui(TcgAlu::And, c0, 1);
                (v, Some(c))
            }
            Shift::Ror(_) => {
                let lo = self.alui(TcgAlu::Lshr, r, amt);
                let hi = self.alui(TcgAlu::Shl, r, 32 - amt);
                let v = self.alu(TcgAlu::Or, lo, hi);
                let c = self.alui(TcgAlu::Lshr, v, 31);
                (v, Some(c))
            }
        }
    }

    fn operand2(&mut self, op2: Operand2) -> (Temp, Option<Temp>) {
        match op2 {
            Operand2::Imm(v) => (self.movi(v), None),
            Operand2::Reg(r) => (self.get_reg(r), None),
            Operand2::RegShift(r, s) => {
                let t = self.get_reg(r);
                self.shifter(t, s)
            }
        }
    }

    fn addr(&mut self, a: AddrMode) -> Temp {
        match a {
            AddrMode::Imm(rn, off) => {
                let b = self.get_reg(rn);
                self.alui(TcgAlu::Add, b, off as u32)
            }
            AddrMode::Reg(rn, rm) => {
                let b = self.get_reg(rn);
                let i = self.get_reg(rm);
                self.alu(TcgAlu::Add, b, i)
            }
            AddrMode::RegShift(rn, rm, s) => {
                let b = self.get_reg(rn);
                let i = self.get_reg(rm);
                let sc = self.alui(TcgAlu::Shl, i, s as u32);
                self.alu(TcgAlu::Add, b, sc)
            }
        }
    }

    /// Evaluate an ARM condition from the env flags into a 0/1 temp.
    fn eval_cond(&mut self, cond: Cond) -> Temp {
        match cond {
            Cond::Eq => self.get_flag(FlagId::Z),
            Cond::Ne => {
                let z = self.get_flag(FlagId::Z);
                self.xor1(z)
            }
            Cond::Cs => self.get_flag(FlagId::C),
            Cond::Cc => {
                let c = self.get_flag(FlagId::C);
                self.xor1(c)
            }
            Cond::Mi => self.get_flag(FlagId::N),
            Cond::Pl => {
                let n = self.get_flag(FlagId::N);
                self.xor1(n)
            }
            Cond::Vs => self.get_flag(FlagId::V),
            Cond::Vc => {
                let v = self.get_flag(FlagId::V);
                self.xor1(v)
            }
            Cond::Hi => {
                let c = self.get_flag(FlagId::C);
                let z = self.get_flag(FlagId::Z);
                let nz = self.xor1(z);
                self.alu(TcgAlu::And, c, nz)
            }
            Cond::Ls => {
                let c = self.get_flag(FlagId::C);
                let z = self.get_flag(FlagId::Z);
                let nc = self.xor1(c);
                self.alu(TcgAlu::Or, nc, z)
            }
            Cond::Ge => {
                let n = self.get_flag(FlagId::N);
                let v = self.get_flag(FlagId::V);
                let x = self.alu(TcgAlu::Xor, n, v);
                self.xor1(x)
            }
            Cond::Lt => {
                let n = self.get_flag(FlagId::N);
                let v = self.get_flag(FlagId::V);
                self.alu(TcgAlu::Xor, n, v)
            }
            Cond::Gt => {
                let n = self.get_flag(FlagId::N);
                let v = self.get_flag(FlagId::V);
                let z = self.get_flag(FlagId::Z);
                let x = self.alu(TcgAlu::Xor, n, v);
                let ge = self.xor1(x);
                let nz = self.xor1(z);
                self.alu(TcgAlu::And, ge, nz)
            }
            Cond::Le => {
                let n = self.get_flag(FlagId::N);
                let v = self.get_flag(FlagId::V);
                let z = self.get_flag(FlagId::Z);
                let lt = self.alu(TcgAlu::Xor, n, v);
                self.alu(TcgAlu::Or, z, lt)
            }
            Cond::Al => self.movi(1),
        }
    }

    fn put_nz(&mut self, result: Temp, live: u8) {
        if live & FlagId::N.mask() != 0 {
            let n = self.alui(TcgAlu::Lshr, result, 31);
            self.put_flag(FlagId::N, n);
        }
        if live & FlagId::Z.mask() != 0 {
            let zero = self.movi(0);
            let z = self.setc(TcgCond::Eq, result, zero);
            self.put_flag(FlagId::Z, z);
        }
    }

    /// Select `t` when `cond` (0/1) else `f`, branch-free.
    fn select(&mut self, cond: Temp, t: Temp, f: Temp) -> Temp {
        let zero = self.movi(0);
        let mask = self.alu(TcgAlu::Sub, zero, cond); // 0 or 0xffffffff
        let a = self.alu(TcgAlu::And, t, mask);
        let nm = self.not(mask);
        let b = self.alu(TcgAlu::And, f, nm);
        self.alu(TcgAlu::Or, a, b)
    }

    /// Translate one instruction. `flags_live` is the NZCV mask worth
    /// materializing for this instruction. Returns `false` if the
    /// instruction is unsupported.
    fn instr(&mut self, i: &ArmInstr, flags_live: u8) -> bool {
        let cond = i.cond();
        let predicated = i.is_predicated();
        if predicated && matches!(i, ArmInstr::Ldr { .. } | ArmInstr::Str { .. }) {
            return false; // helper fallback
        }
        let guard = predicated.then(|| self.eval_cond(cond));
        match *i {
            ArmInstr::Dp { op, rd, rn, op2, set_flags, .. } => {
                let (b, shifter_c) = self.operand2(op2);
                let a = if op.is_move() { None } else { Some(self.get_reg(rn)) };
                let live = if set_flags { flags_live } else { 0 };
                let (value, c_out, v_out) = match op {
                    DpOp::And | DpOp::Tst => {
                        (self.alu(TcgAlu::And, a.unwrap(), b), shifter_c, None)
                    }
                    DpOp::Eor | DpOp::Teq => {
                        (self.alu(TcgAlu::Xor, a.unwrap(), b), shifter_c, None)
                    }
                    DpOp::Orr => (self.alu(TcgAlu::Or, a.unwrap(), b), shifter_c, None),
                    DpOp::Bic => {
                        let nb = self.not(b);
                        (self.alu(TcgAlu::And, a.unwrap(), nb), shifter_c, None)
                    }
                    DpOp::Mov => (b, shifter_c, None),
                    DpOp::Mvn => (self.not(b), shifter_c, None),
                    DpOp::Add | DpOp::Cmn => {
                        let a = a.unwrap();
                        let r = self.alu(TcgAlu::Add, a, b);
                        let c =
                            (live & FlagId::C.mask() != 0).then(|| self.setc(TcgCond::Ltu, r, a));
                        let v = (live & FlagId::V.mask() != 0).then(|| self.overflow_add(a, b, r));
                        (r, c, v)
                    }
                    DpOp::Adc => {
                        let a = a.unwrap();
                        let cin = self.get_flag(FlagId::C);
                        let ab = self.alu(TcgAlu::Add, a, b);
                        let r = self.alu(TcgAlu::Add, ab, cin);
                        let c = (live & FlagId::C.mask() != 0).then(|| {
                            let c1 = self.setc(TcgCond::Ltu, r, a);
                            let c2 = self.setc(TcgCond::Leu, r, a);
                            self.select(cin, c2, c1)
                        });
                        let v = (live & FlagId::V.mask() != 0).then(|| self.overflow_add(a, b, r));
                        (r, c, v)
                    }
                    DpOp::Sub | DpOp::Cmp => {
                        let a = a.unwrap();
                        let r = self.alu(TcgAlu::Sub, a, b);
                        let c =
                            (live & FlagId::C.mask() != 0).then(|| self.setc(TcgCond::Geu, a, b));
                        let v = (live & FlagId::V.mask() != 0).then(|| self.overflow_sub(a, b, r));
                        (r, c, v)
                    }
                    DpOp::Sbc => {
                        let a = a.unwrap();
                        let cin = self.get_flag(FlagId::C);
                        let ab = self.alu(TcgAlu::Sub, a, b);
                        let ncin = self.xor1(cin);
                        let r = self.alu(TcgAlu::Sub, ab, ncin);
                        let c = (live & FlagId::C.mask() != 0).then(|| {
                            let c1 = self.setc(TcgCond::Gtu, a, b);
                            let c2 = self.setc(TcgCond::Geu, a, b);
                            self.select(cin, c2, c1)
                        });
                        let v = (live & FlagId::V.mask() != 0).then(|| self.overflow_sub(a, b, r));
                        (r, c, v)
                    }
                    DpOp::Rsb => {
                        let a = a.unwrap();
                        let r = self.alu(TcgAlu::Sub, b, a);
                        let c =
                            (live & FlagId::C.mask() != 0).then(|| self.setc(TcgCond::Geu, b, a));
                        let v = (live & FlagId::V.mask() != 0).then(|| self.overflow_sub(b, a, r));
                        (r, c, v)
                    }
                };
                if set_flags {
                    // For logical ops the shifter carry (if any) updates C.
                    self.put_nz_guarded(value, live, guard);
                    if live & FlagId::C.mask() != 0 {
                        if let Some(c) = c_out {
                            self.put_flag_guarded(FlagId::C, c, guard);
                        }
                    }
                    if live & FlagId::V.mask() != 0 {
                        if let Some(v) = v_out {
                            self.put_flag_guarded(FlagId::V, v, guard);
                        }
                    }
                }
                if !op.is_compare() {
                    self.put_reg_guarded(rd, value, guard);
                }
                true
            }
            ArmInstr::Mul { rd, rn, rm, set_flags, .. } => {
                let a = self.get_reg(rn);
                let b = self.get_reg(rm);
                let r = self.alu(TcgAlu::Mul, a, b);
                if set_flags {
                    self.put_nz_guarded(r, flags_live, guard);
                }
                self.put_reg_guarded(rd, r, guard);
                true
            }
            ArmInstr::Ldr { rt, addr, width, signed, .. } => {
                let a = self.addr(addr);
                let t = self.temp();
                self.emit(TcgOp::Load(t, a, width, signed));
                self.put_reg_guarded(rt, t, guard);
                true
            }
            ArmInstr::Str { rt, addr, width, .. } => {
                let v = self.get_reg(rt);
                let a = self.addr(addr);
                self.emit(TcgOp::Store(v, a, width));
                true
            }
            _ => false,
        }
    }

    fn overflow_add(&mut self, a: Temp, b: Temp, r: Temp) -> Temp {
        let xa = self.alu(TcgAlu::Xor, a, r);
        let xb = self.alu(TcgAlu::Xor, b, r);
        let both = self.alu(TcgAlu::And, xa, xb);
        self.alui(TcgAlu::Lshr, both, 31)
    }

    fn overflow_sub(&mut self, a: Temp, b: Temp, r: Temp) -> Temp {
        let xab = self.alu(TcgAlu::Xor, a, b);
        let xar = self.alu(TcgAlu::Xor, a, r);
        let both = self.alu(TcgAlu::And, xab, xar);
        self.alui(TcgAlu::Lshr, both, 31)
    }

    fn put_reg_guarded(&mut self, rd: ArmReg, value: Temp, guard: Option<Temp>) {
        match guard {
            None => self.emit(TcgOp::PutReg(rd, value)),
            Some(g) => {
                let old = self.get_reg(rd);
                let sel = self.select(g, value, old);
                self.emit(TcgOp::PutReg(rd, sel));
            }
        }
    }

    fn put_flag_guarded(&mut self, f: FlagId, value: Temp, guard: Option<Temp>) {
        match guard {
            None => self.put_flag(f, value),
            Some(g) => {
                let old = self.get_flag(f);
                let sel = self.select(g, value, old);
                self.put_flag(f, sel);
            }
        }
    }

    fn put_nz_guarded(&mut self, result: Temp, live: u8, guard: Option<Temp>) {
        match guard {
            None => self.put_nz(result, live),
            Some(g) => {
                if live & FlagId::N.mask() != 0 {
                    let n = self.alui(TcgAlu::Lshr, result, 31);
                    self.put_flag_guarded(FlagId::N, n, Some(g));
                }
                if live & FlagId::Z.mask() != 0 {
                    let zero = self.movi(0);
                    let z = self.setc(TcgCond::Eq, result, zero);
                    self.put_flag_guarded(FlagId::Z, z, Some(g));
                }
            }
        }
    }
}

/// Translate a guest block to micro-ops.
///
/// `mem` is used for the cross-block flag-liveness scan. Translation
/// stops early at the first unsupported instruction (the engine
/// interprets it with a helper and resumes at the next PC).
pub fn translate_block(mem: &Memory, block: &GuestBlock) -> TcgBlock {
    let mut fe = FrontEnd {
        ops: Vec::new(),
        next_temp: 0,
        reads_live_in_flags: false,
        writes_flags: false,
        flags_written_so_far: 0,
    };
    let n = block.instrs.len();
    let mut end = BlockEnd::Jump(block.pc.wrapping_add(4 * n as u32));
    let mut unsupported_at = None;
    for (idx, i) in block.instrs.iter().enumerate() {
        let pc = block.pc.wrapping_add(4 * idx as u32);
        let next = pc.wrapping_add(4);
        // Flags worth materializing for this instruction: those read by a
        // later in-block instruction before being rewritten, plus those
        // live out of the block.
        let flags_live = {
            let written = i.flags_written();
            let mut live = 0u8;
            let mut redefined = 0u8;
            for j in &block.instrs[idx + 1..] {
                live |= j.flags_read() & written & !redefined;
                redefined |= j.flags_written();
            }
            let live_out = match block.instrs.last() {
                Some(ArmInstr::B { offset, cond }) => {
                    let end_pc = block.pc.wrapping_add(4 * n as u32);
                    let taken = end_pc.wrapping_add((*offset as u32).wrapping_mul(4));
                    let mut l = flags_live_at(mem, taken, 2);
                    if *cond != Cond::Al {
                        l |= flags_live_at(mem, end_pc, 2);
                    }
                    l
                }
                _ => 0b1111, // calls/returns/halt: conservative
            };
            live | (live_out & written & !redefined)
        };
        match *i {
            ArmInstr::B { offset, cond } => {
                let taken = next.wrapping_add((offset as u32).wrapping_mul(4));
                if cond == Cond::Al {
                    end = BlockEnd::Jump(taken);
                } else {
                    let c = fe.eval_cond(cond);
                    end = BlockEnd::Branch { cond: c, taken, not_taken: next };
                }
                break;
            }
            ArmInstr::Bl { offset, cond } => {
                debug_assert_eq!(cond, Cond::Al, "conditional bl unsupported");
                let taken = next.wrapping_add((offset as u32).wrapping_mul(4));
                let lr = fe.movi(next);
                fe.emit(TcgOp::PutReg(ArmReg::Lr, lr));
                end = BlockEnd::Jump(taken);
                break;
            }
            ArmInstr::Bx { rm, cond } => {
                debug_assert_eq!(cond, Cond::Al, "conditional bx unsupported");
                let t = fe.get_reg(rm);
                end = BlockEnd::Indirect(t);
                break;
            }
            ArmInstr::Svc { imm, .. } => {
                if imm == 0 {
                    end = BlockEnd::Halt;
                } else {
                    end = BlockEnd::Trap(pc);
                }
                break;
            }
            _ => {
                if !fe.instr(i, flags_live) {
                    unsupported_at = Some(idx);
                    end = BlockEnd::Jump(pc); // engine interprets from here
                    break;
                }
            }
        }
    }
    TcgBlock {
        ops: fe.ops,
        end,
        reads_live_in_flags: fe.reads_live_in_flags,
        writes_flags: fe.writes_flags,
        unsupported_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::lower_block;
    use ldbt_x86::Gpr;

    fn tcg_of(instrs: Vec<ArmInstr>) -> TcgBlock {
        let mem = Memory::new();
        translate_block(&mem, &GuestBlock { pc: 0x1_0000, instrs })
    }

    /// Live-in guest flags are an *explicit* frontend fact
    /// (`reads_live_in_flags`), satisfied by the backend's flag stub
    /// from the env-saved flags — never by reading whatever host EFLAGS
    /// the previous block left behind. That routing is what lets the
    /// superblock optimizer (sb.rs) treat host EFLAGS as dead at every
    /// seam: `entry_reads` on the lowered code must report no host
    /// register (but %esp) and no EFLAGS bit, even for a block whose
    /// first guest instruction branches on live-in condition codes.
    #[test]
    fn live_in_flags_are_explicit_and_env_routed() {
        let plain = tcg_of(vec![ArmInstr::dp(
            DpOp::Add,
            ArmReg::R1,
            ArmReg::R1,
            Operand2::Reg(ArmReg::R0),
        )]);
        assert!(!plain.reads_live_in_flags);
        let branchy = tcg_of(vec![ArmInstr::B { offset: 3, cond: Cond::Ne }]);
        assert!(branchy.reads_live_in_flags, "bne at block start consumes live-in flags");
        for b in [&plain, &branchy] {
            let code = lower_block(b).code;
            let (regs, flags) = crate::sb::entry_reads(&code);
            assert_eq!(regs & !(1 << Gpr::Esp.index()), 0, "reads host regs {regs:#010b}");
            assert_eq!(flags, 0, "reads host EFLAGS {flags:#06b}");
        }
    }
}
