//! The DBT execution engine: code cache, dispatcher, block chaining,
//! the indirect-branch target cache, the translation-cost model, and the
//! interpreter helper fallback.
//!
//! # The execution hot path
//!
//! Translated blocks live in an append-only arena ([`Engine::blocks`])
//! keyed by a stable block id; a `pc → id` map backs the slow dispatcher
//! path. Three mechanisms keep the dispatcher off the hot path:
//!
//! 1. **Block chaining**: when a block's exit stub (`movl $pc, %eax;
//!    ret`) targets an already-translated block, the `ret` is patched
//!    into [`X86Instr::ChainJmp`] and execution flows block-to-block
//!    inside the run loop without a map probe. Every link is recorded on
//!    *both* ends (`links_out` on the predecessor, `links_in` on the
//!    successor) so a quarantine purge can unlink predecessors and fall
//!    back to the dispatcher. Fuel and per-block statistics are
//!    accounted at chain entry, making chained execution bit-identical
//!    to unchained (`LDBT_NOCHAIN=1`).
//! 2. **Indirect-branch target cache**: a small direct-mapped `pc → id`
//!    table (QEMU's `lookup_tb_ptr` analog) consulted before the
//!    `HashMap` on every dispatcher entry.
//! 3. **Zero-allocation dispatch**: rule-hit metadata is aggregated into
//!    [`DbtStats::hit_rules`] once at translation time and shared with
//!    the watchdog via `Rc`, so a dispatch allocates nothing.
//! 4. **Superblocks** (`LDBT_NOSB` / `LDBT_SB_THRESHOLD`): once a chain
//!    head crosses the hotness threshold, the hottest chain through it
//!    is re-materialized as a straight-line region of seam-specialized
//!    code clones (see [`crate::sb`]); the head's dispatch entry then
//!    runs the region, with side exits falling back to the chain/
//!    dispatcher. Accounting is kept bit-identical to the plain path.

use crate::backend::lower_block;
use crate::env::{
    chaining_from_env, env_mem, fusion_from_env, reg_mem, region_alloc_from_env, repair_from_env,
    smc_from_env, superblocks_from_env, watchdog_from_env, FlagId, ENV_BASE, FLAGMODE_OFFSET,
    GUEST_MEM_LIMIT, HOST_STACK_TOP,
};
use crate::jit::optimize_block;
use crate::rules::block_supported;
use crate::sb::{
    allocate_region, fuse_region, optimize_region, optimize_region_pinned, ra_preamble,
    region_contract, specialize_part, strip_seam_exits, SbPart, SeamState, Superblock, NO_SB,
    SB_MAX_PARTS,
};
use crate::share::RuleCell;
use crate::stats::{BlockProfile, DbtCtr, DbtStats, ExecProfile, RuleProfile};
use crate::tcg::{decode_block, translate_block};
use ldbt_arm::{encode::decode, ArmEvent, ArmInstr, ArmReg, ArmState};
use ldbt_compiler::ArmImage;
use ldbt_isa::{CostModel, ExecStats, Memory, Width};
use ldbt_learn::rule::Binding;
use ldbt_learn::{Counterexample, FaultPlan, FaultSite, RuleSet};
use ldbt_obs::registry::Hist;
use ldbt_obs::trace::{self, Scope, Val};
use ldbt_x86::interp::{run_seq, SeqExit};
use ldbt_x86::{Gpr, TrapCause, X86Instr, X86State};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

/// Which translator the engine uses.
///
/// Rule sets are held behind `Arc` so one immutable generation can be
/// shared across tenant engines on different threads (see
/// [`crate::share::RuleCell`]); the `Arc` here is the engine's *cached*
/// snapshot of the current generation.
#[derive(Debug, Clone)]
pub enum Translator {
    /// Baseline QEMU-style TCG translation.
    Tcg,
    /// Rule-based translation with TCG fallback (the paper's prototype).
    Rules(Arc<RuleSet>),
    /// Rule-based translation without the §5 lazy host-flag save (the
    /// condition-code ablation: flag-live-out rules are skipped).
    RulesNoLazyFlags(Arc<RuleSet>),
    /// HQEMU-style optimizing JIT backend.
    Jit,
}

/// Modeled translation costs, in cycles.
///
/// Only the ratios matter for the reproduced shapes: rule lookup and
/// emission are cheap ("much faster than a general translation that goes
/// through an IR"), the optimizing JIT is two orders of magnitude more
/// expensive per op (LLVM in the paper).
#[derive(Debug, Clone)]
pub struct TransCost {
    /// Fixed cost per translated block.
    pub block_base: u64,
    /// Cost per TCG micro-op generated.
    pub per_tcg_op: u64,
    /// Cost per rule hash-table probe.
    pub per_lookup: u64,
    /// Cost per host instruction emitted from a rule.
    pub per_rule_instr: u64,
    /// Fixed cost per block for the optimizing JIT.
    pub jit_block_base: u64,
    /// Cost per micro-op for the optimizing JIT.
    pub jit_per_op: u64,
    /// Cost of one interpreter-helper step.
    pub helper: u64,
}

impl Default for TransCost {
    fn default() -> Self {
        TransCost {
            block_base: 60,
            per_tcg_op: 12,
            per_lookup: 5,
            per_rule_instr: 10,
            jit_block_base: 1_200,
            jit_per_op: 110,
            helper: 80,
        }
    }
}

/// Number of entries in the direct-mapped indirect-branch target cache.
const IBTC_SIZE: usize = 1024;
/// Empty IBTC slot / "no block" sentinel (arena ids stay well below).
const NO_BLOCK: u32 = u32::MAX;
/// Repair attempts allowed per rule (stable key). Past the cap a
/// divergent rule is tombstoned permanently: a rule that was "repaired"
/// and diverges again is unrepairable in practice, and re-trying would
/// livelock the watchdog on it.
const REPAIR_ATTEMPT_CAP: u32 = 1;
/// Attribution bisection gives up beyond this many rule applications in
/// one block: each probe is a full re-lower + replay, and a block this
/// dense is cheaper to quarantine conservatively.
const ATTRIBUTION_MAX_HITS: usize = 8;
/// Fuel for one attribution or trial-replay probe run — generous for a
/// single block, bounded against a probe lowering that misbehaves.
const PROBE_FUEL: u64 = 100_000;

/// One translated block in the code cache arena.
struct CachedBlock {
    /// Guest start PC.
    pc: u32,
    /// Byte length of the guest range this translation covers
    /// (`[pc, pc + guest_bytes)`); a guest store overlapping it
    /// invalidates the block. The trap and helper blocks cover the one
    /// word they decoded (or failed to).
    guest_bytes: u32,
    /// FNV-1a fingerprint of the guest bytes at translation time;
    /// [`Engine::reset`] revalidates against it.
    csum: u64,
    code: Rc<Vec<X86Instr>>,
    guest_len: u64,
    covered: u64,
    execs: u64,
    /// Interpret exactly one guest instruction instead of running code.
    interp_one: bool,
    /// (length, stable rule key) of each rule application, shared with
    /// the watchdog without per-dispatch cloning.
    hits: Rc<[(usize, u64)]>,
    /// Patchable exit stubs: (index of the `ret`, direct-branch target).
    exits: Vec<(usize, u32)>,
    /// Outgoing chained links: (exit site, successor id).
    links_out: Vec<(usize, u32)>,
    /// Incoming chained links: (predecessor id, site in predecessor).
    links_in: Vec<(u32, usize)>,
    /// Purged by a quarantine; the arena slot is never reused.
    dead: bool,
    /// Region id of the live superblock this block heads, or
    /// [`NO_SB`]. Dispatching the block enters the region instead.
    sb_head: u32,
}

impl CachedBlock {
    /// Whether other blocks may chain into this one.
    fn chainable(&self) -> bool {
        !self.dead && !self.interp_one && !self.code.is_empty()
    }
}

/// How an engine run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Guest executed `svc #0`.
    Halted,
    /// The fuel budget ran out.
    OutOfFuel,
    /// The guest trapped: a trap instruction (`svc #n`, n ≠ 0), an
    /// undecodable word, or a memory access outside the guest address
    /// space. Mirrors [`ldbt_arm::ArmStop::Trap`] so drivers can
    /// differential-compare trap behavior against the interpreter.
    Trap {
        /// The trapping pc — exact for instruction traps; the entry pc
        /// of the faulting block for memory traps (the translated-code
        /// check is block-granular).
        pc: u32,
        /// Why the guest trapped.
        cause: TrapKind,
    },
    /// Translated code misbehaved (dispatcher protocol violation).
    Fault,
}

/// Why a guest run trapped (see [`RunOutcome::Trap`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// A trap instruction: `svc #n` with n ≠ 0 (the immediate).
    Svc(u32),
    /// An undecodable guest word reached execution.
    Undef,
    /// A load or store touched this address, outside the guest address
    /// space (at or above [`GUEST_MEM_LIMIT`]).
    Mem(u32),
}

/// FNV-1a over a guest byte range — the translation-time fingerprint
/// [`Engine::reset`] revalidates cached blocks against.
fn guest_csum(mem: &Memory, start: u32, len: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..len {
        let b = mem.read(start.wrapping_add(i), Width::W8) as u64;
        h = (h ^ b).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Result of a watchdog cross-check, seen from the run loop.
enum WdVerdict {
    /// States matched; keep running (a chain may continue).
    Clean,
    /// Mismatch: state was rewound to the interpreter's, translations
    /// were purged, `self.pc` holds the corrected continuation — the run
    /// loop must go back through the dispatcher.
    Diverged,
    /// The interpreter reference run ended the program.
    End(RunOutcome),
}

/// How a superblock region handed control back to the run loop.
enum SbStep {
    /// A side exit chained to a block outside the region: continue the
    /// fast loop there (mirrors a plain chained transition).
    Continue(u32),
    /// Control left the chain (indirect branch or a watchdog rewind):
    /// go back through the dispatcher.
    Dispatch,
    /// The run ended inside the region.
    Done(RunOutcome),
}

/// The dynamic binary translator.
pub struct Engine {
    /// Host machine state; its memory holds the guest image, the env, and
    /// the host stack.
    pub state: X86State,
    translator: Translator,
    /// Code cache arena; ids are indices and never reused.
    blocks: Vec<CachedBlock>,
    /// Slow-path dispatch map: guest pc → block id.
    map: HashMap<u32, u32>,
    /// Direct-mapped indirect-branch target cache: `(pc, id)` entries.
    ibtc: Vec<(u32, u32)>,
    /// Unresolved direct-branch exits waiting for their target to be
    /// translated: target pc → (block id, exit site).
    pending: HashMap<u32, Vec<(u32, usize)>>,
    /// Statistics for the experiment harness.
    pub stats: DbtStats,
    cost: CostModel,
    tcost: TransCost,
    entry: u32,
    pc: u32,
    /// Block chaining enabled (`!LDBT_NOCHAIN`).
    chaining: bool,
    /// Watchdog sampling period: check every Nth rule-covered dispatch.
    watchdog: Option<u64>,
    watchdog_tick: u64,
    /// Blocks forced onto the TCG path after a quarantine.
    force_tcg: HashSet<u32>,
    /// Translation-time fault injection (`LDBT_FAULT`).
    fault: Option<FaultPlan>,
    /// Whether the install-time fault corruption (`imm-skew` /
    /// `operand-swap`) has been applied to the installed rule set.
    fault_installed: bool,
    /// Counterexample-guided rule repair enabled (`LDBT_REPAIR`).
    repair: bool,
    /// Repair attempts per rule (stable key), capped at
    /// [`REPAIR_ATTEMPT_CAP`].
    repair_attempts: HashMap<u64, u32>,
    /// Superblock region arena; ids are indices and never reused.
    superblocks: Vec<Superblock>,
    /// Block id → regions it is a member of (for invalidation when the
    /// block is purged or its code is re-patched).
    sb_members: HashMap<u32, Vec<u32>>,
    /// Superblock formation threshold; `None` disables formation
    /// (`LDBT_NOSB` / `LDBT_SB_THRESHOLD`).
    sb_cfg: Option<u64>,
    /// Region register allocation enabled (`!LDBT_NORA`).
    region_alloc: bool,
    /// Guest memory access fusion enabled (`!LDBT_NOFUSE`).
    fusion: bool,
    /// SMC protection enabled (`!LDBT_NOSMC`): guest stores into pages
    /// holding translated code invalidate the overlapping translations.
    smc: bool,
    /// Shared rule-generation cell. Present exactly when the translator
    /// is rules-based: a solo engine gets a private cell, serve-mode
    /// tenants share one via [`Engine::with_rule_cell`]. All rule-set
    /// mutation (fault install, quarantine, repair) publishes through it.
    rule_cell: Option<Arc<RuleCell>>,
    /// Generation of the cached `Arc<RuleSet>` inside `translator`;
    /// compared against the cell's counter at every dispatcher entry.
    rules_gen: u64,
}

impl Engine {
    /// Create an engine for a linked guest image.
    ///
    /// The watchdog period, chaining flag, superblock config, fault
    /// plan, and repair flag default from the `LDBT_WATCHDOG` /
    /// `LDBT_NOCHAIN` / `LDBT_NOSB` / `LDBT_SB_THRESHOLD` / `LDBT_FAULT`
    /// / `LDBT_REPAIR` environment; [`Engine::with_watchdog`],
    /// [`Engine::with_chaining`], [`Engine::with_superblocks`],
    /// [`Engine::with_fault`], and [`Engine::with_repair`] override them
    /// explicitly.
    pub fn new(image: &ArmImage, translator: Translator) -> Engine {
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut state = X86State::new();
        state.mem = mem;
        // Guest accesses at or above the host region trap instead of
        // silently aliasing the env or host stack.
        state.guest_limit = Some(GUEST_MEM_LIMIT);
        // A rules engine always publishes through a cell so the mutation
        // paths are identical solo and in serve mode; a solo engine simply
        // owns a private one. `with_rule_cell` swaps in a shared cell.
        let rule_cell = match &translator {
            Translator::Rules(r) | Translator::RulesNoLazyFlags(r) => {
                Some(Arc::new(RuleCell::from_arc(Arc::clone(r))))
            }
            _ => None,
        };
        Engine {
            state,
            translator,
            blocks: Vec::new(),
            map: HashMap::new(),
            ibtc: vec![(0, NO_BLOCK); IBTC_SIZE],
            pending: HashMap::new(),
            stats: DbtStats::new(),
            cost: CostModel::default(),
            tcost: TransCost::default(),
            entry: image.entry,
            pc: image.entry,
            chaining: chaining_from_env(),
            watchdog: watchdog_from_env(),
            watchdog_tick: 0,
            force_tcg: HashSet::new(),
            fault: ldbt_learn::fault::env_plan(),
            fault_installed: false,
            repair: repair_from_env(),
            repair_attempts: HashMap::new(),
            superblocks: Vec::new(),
            sb_members: HashMap::new(),
            sb_cfg: superblocks_from_env(),
            region_alloc: region_alloc_from_env(),
            fusion: fusion_from_env(),
            smc: smc_from_env(),
            rule_cell,
            rules_gen: 0,
        }
    }

    /// Override the cycle cost model.
    pub fn with_cost(mut self, cost: CostModel, tcost: TransCost) -> Engine {
        self.cost = cost;
        self.tcost = tcost;
        self
    }

    /// Override the watchdog sampling period (`None` disables it).
    pub fn with_watchdog(mut self, period: Option<u64>) -> Engine {
        self.watchdog = period;
        self
    }

    /// Enable or disable block chaining (the `LDBT_NOCHAIN` knob).
    pub fn with_chaining(mut self, chaining: bool) -> Engine {
        self.chaining = chaining;
        self
    }

    /// Override the translation fault plan (`None` disables injection).
    pub fn with_fault(mut self, fault: Option<FaultPlan>) -> Engine {
        self.fault = fault;
        self
    }

    /// Enable or disable counterexample-guided rule repair (the
    /// `LDBT_REPAIR` knob). With repair off, a watchdog mismatch
    /// conservatively quarantines every rule applied in the block.
    pub fn with_repair(mut self, repair: bool) -> Engine {
        self.repair = repair;
        self
    }

    /// Override superblock formation: `None` disables it (the `LDBT_NOSB`
    /// knob), `Some(t)` forms a region once a chain head crosses `t`
    /// executions (the `LDBT_SB_THRESHOLD` knob).
    pub fn with_superblocks(mut self, cfg: Option<u64>) -> Engine {
        self.sb_cfg = cfg;
        self
    }

    /// Enable or disable region register allocation inside superblocks
    /// (the `LDBT_NORA` knob).
    pub fn with_region_alloc(mut self, on: bool) -> Engine {
        self.region_alloc = on;
        self
    }

    /// Enable or disable guest memory access fusion inside superblocks
    /// (the `LDBT_NOFUSE` knob).
    pub fn with_fusion(mut self, on: bool) -> Engine {
        self.fusion = on;
        self
    }

    /// Enable or disable self-modifying-code protection (the
    /// `LDBT_NOSMC` knob). With it off, guest stores into translated
    /// code go unnoticed until the next [`Engine::reset`].
    pub fn with_smc(mut self, on: bool) -> Engine {
        self.smc = on;
        self
    }

    /// Attach this engine to a shared rule-generation cell (serve mode).
    ///
    /// The engine drops its private cell, caches the shared cell's
    /// current generation in its translator, and from then on publishes
    /// quarantine/repair through the shared cell and adopts generations
    /// published by other tenants at dispatcher entries.
    ///
    /// # Panics
    ///
    /// Panics if the translator is not rules-based — only rule sets are
    /// shared; TCG/JIT engines have no cross-tenant state.
    pub fn with_rule_cell(mut self, cell: Arc<RuleCell>) -> Engine {
        let (rules, gen) = cell.load();
        match &mut self.translator {
            Translator::Rules(r) | Translator::RulesNoLazyFlags(r) => *r = rules,
            _ => panic!("with_rule_cell requires a rules translator"),
        }
        self.rules_gen = gen;
        self.rule_cell = Some(cell);
        self
    }

    /// The rule-generation cell (present iff the translator is
    /// rules-based). Share the returned `Arc` with other engines to form
    /// a tenant group.
    pub fn rule_cell(&self) -> Option<&Arc<RuleCell>> {
        self.rule_cell.as_ref()
    }

    /// Generation of the rule set this engine currently translates with.
    pub fn rules_generation(&self) -> u64 {
        self.rules_gen
    }

    /// Read a guest register from the env.
    pub fn guest_reg(&self, r: ArmReg) -> u32 {
        self.state.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32)
    }

    /// The current guest PC.
    pub fn guest_pc(&self) -> u32 {
        self.pc
    }

    /// Read a word of guest memory (driver use: auditing guest-visible
    /// state after a halt or trap).
    pub fn guest_mem(&self, addr: u32) -> u32 {
        self.state.mem.read(addr, Width::W32)
    }

    /// Write a guest register's env slot (driver use: a host-side trap
    /// handler mutating guest state between dispatches).
    pub fn set_guest_reg(&mut self, r: ArmReg, v: u32) {
        self.state.mem.write(ENV_BASE + 4 * r.index() as u32, v, Width::W32);
    }

    /// Redirect execution: the next [`Engine::run`] dispatch starts at
    /// `pc`.
    pub fn set_guest_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Dispatcher lookup: IBTC first, then the map, then the translator.
    fn lookup_or_translate(&mut self, pc: u32) -> u32 {
        let slot = ((pc >> 2) as usize) & (IBTC_SIZE - 1);
        let (epc, eid) = self.ibtc[slot];
        // A hit must also be live: `purge_block` scrubs the IBTC, but
        // the dispatcher is the last line of defense — dispatching a
        // tombstoned block would run empty code and fault the guest, so
        // the liveness check is enforced here, not debug-asserted.
        if epc == pc && eid != NO_BLOCK && !self.blocks[eid as usize].dead {
            self.stats.bump(DbtCtr::IbtcHits);
            return eid;
        }
        self.stats.bump(DbtCtr::IbtcMisses);
        let id = match self.map.get(&pc) {
            Some(&i) => i,
            None => self.translate(pc),
        };
        if trace::enabled(Scope::Exec) && epc != pc && eid != NO_BLOCK {
            trace::emit(
                Scope::Exec,
                "ibtc_evict",
                &[
                    ("slot", Val::U(slot as u64)),
                    ("old_pc", Val::U(epc as u64)),
                    ("new_pc", Val::U(pc as u64)),
                ],
            );
        }
        self.ibtc[slot] = (pc, id);
        id
    }

    /// Patch predecessor `pred`'s exit `site` into a chained jump to
    /// `succ`, recording the link on both ends.
    ///
    /// Only sites listed in the predecessor's `exits` — declared by the
    /// lowerer when it emitted the stub — are ever patched. The engine
    /// never infers exits from code shape: a `movl $imm, %eax; ret`
    /// lookalike in a rule or JIT body must not become a `ChainJmp`.
    fn patch_link(&mut self, pred: u32, site: usize, succ: u32) {
        // The predecessor's code is about to change: any region holding a
        // clone of it would go stale (its copy would still `ret` to the
        // dispatcher where the original now chains, diverging the chain
        // accounting), so those regions are invalidated and re-form later.
        self.invalidate_regions_of(pred);
        let code = Rc::make_mut(&mut self.blocks[pred as usize].code);
        debug_assert!(matches!(code[site], X86Instr::Ret), "link site must be an unpatched ret");
        code[site] = X86Instr::ChainJmp { block: succ };
        self.blocks[pred as usize].links_out.push((site, succ));
        self.blocks[succ as usize].links_in.push((pred, site));
        self.stats.bump(DbtCtr::ChainLinks);
        if trace::enabled(Scope::Exec) {
            trace::emit(
                Scope::Exec,
                "chain_link",
                &[
                    ("pred_pc", Val::U(self.blocks[pred as usize].pc as u64)),
                    ("succ_pc", Val::U(self.blocks[succ as usize].pc as u64)),
                    ("site", Val::U(site as u64)),
                ],
            );
        }
    }

    /// Insert a freshly translated block into the arena and, with
    /// chaining enabled, link it to already-translated neighbors in both
    /// directions.
    fn insert_block(&mut self, mut block: CachedBlock) -> u32 {
        let pc = block.pc;
        if block.guest_bytes > 0 {
            block.csum = guest_csum(&self.state.mem, pc, block.guest_bytes);
            // Mark the pages holding the translated bytes so the store
            // fast path reports writes into them (SMC protection).
            if self.smc {
                self.state.mem.mark_code(pc, block.guest_bytes);
            }
        }
        debug_assert!(
            block.exits.iter().all(|&(at, _)| matches!(block.code.get(at), Some(X86Instr::Ret))),
            "declared exits must point at ret stubs"
        );
        #[cfg(debug_assertions)]
        {
            // Blocks must start from the env: reading any host register
            // (beyond %esp) or EFLAGS before writing it would make block
            // behavior depend on unspecified entry state — and would
            // break the superblock optimizer's scratch assumption (see
            // `sb::entry_reads`).
            let (regs, flags) = crate::sb::entry_reads(&block.code);
            debug_assert!(
                regs & !(1 << Gpr::Esp.index()) == 0 && flags == 0,
                "block at {pc:#x} reads host entry state (regs {regs:#010b}, flags {flags:#06b})"
            );
        }
        let id = self.blocks.len() as u32;
        self.blocks.push(block);
        self.map.insert(pc, id);
        if !self.chaining {
            return id;
        }
        // Predecessors waiting for this pc.
        if self.blocks[id as usize].chainable() {
            for (pred, site) in self.pending.remove(&pc).unwrap_or_default() {
                let p = &self.blocks[pred as usize];
                if p.dead || !matches!(p.code.get(site), Some(X86Instr::Ret)) {
                    continue;
                }
                self.patch_link(pred, site, id);
            }
        }
        // This block's own direct exits.
        let exits = self.blocks[id as usize].exits.clone();
        for (site, target) in exits {
            match self.map.get(&target) {
                Some(&tid) if self.blocks[tid as usize].chainable() => {
                    self.patch_link(id, site, tid);
                }
                _ => self.pending.entry(target).or_default().push((id, site)),
            }
        }
        id
    }

    /// Purge a translation: unlink chained predecessors (their exit
    /// stubs fall back to `ret` and re-queue as pending links), detach
    /// from successors, drop the dispatch-map and IBTC entries, and
    /// tombstone the arena slot.
    fn purge_block(&mut self, id: u32) {
        if self.blocks[id as usize].dead {
            return;
        }
        // Regions holding a clone of this block must die with it.
        self.invalidate_regions_of(id);
        let pc = self.blocks[id as usize].pc;
        let links_in = std::mem::take(&mut self.blocks[id as usize].links_in);
        for (pred, site) in links_in {
            if self.blocks[pred as usize].dead {
                continue;
            }
            // Unlinking re-patches the predecessor's code, so its region
            // clones go stale too.
            self.invalidate_regions_of(pred);
            let code = Rc::make_mut(&mut self.blocks[pred as usize].code);
            debug_assert!(matches!(code[site], X86Instr::ChainJmp { .. }));
            code[site] = X86Instr::Ret;
            self.blocks[pred as usize].links_out.retain(|&(s, t)| !(s == site && t == id));
            // The predecessor still branches to `pc`: let a future
            // retranslation re-link it.
            self.pending.entry(pc).or_default().push((pred, site));
            self.stats.bump(DbtCtr::ChainUnlinks);
            if trace::enabled(Scope::Exec) {
                trace::emit(
                    Scope::Exec,
                    "chain_unlink",
                    &[
                        ("pred_pc", Val::U(self.blocks[pred as usize].pc as u64)),
                        ("succ_pc", Val::U(pc as u64)),
                        ("site", Val::U(site as u64)),
                    ],
                );
            }
        }
        let links_out = std::mem::take(&mut self.blocks[id as usize].links_out);
        for (site, succ) in links_out {
            self.blocks[succ as usize].links_in.retain(|&(p, s)| !(p == id && s == site));
        }
        if self.map.get(&pc) == Some(&id) {
            self.map.remove(&pc);
        }
        for e in self.ibtc.iter_mut() {
            if e.1 == id {
                *e = (0, NO_BLOCK);
            }
        }
        let b = &mut self.blocks[id as usize];
        b.dead = true;
        b.code = Rc::new(Vec::new());
        b.hits = Rc::from(Vec::new());
        b.exits.clear();
        if trace::enabled(Scope::Exec) {
            trace::emit(
                Scope::Exec,
                "purge",
                &[("pc", Val::U(pc as u64)), ("id", Val::U(id as u64))],
            );
        }
    }

    /// Drain the guest-store hit log and invalidate every live block
    /// whose guest byte range a logged store overlapped. The protection
    /// bitmap is page-granular and sticky, so a logged span is only a
    /// *candidate*; the exact range check here drops stores that merely
    /// landed near code. Purging goes through [`Engine::purge_block`],
    /// so chained predecessors unlink (and re-queue as pending links),
    /// IBTC slots scrub, and superblock regions holding a clone of the
    /// victim die with it — the pc retranslates from the rewritten
    /// bytes at its next dispatch.
    fn handle_smc(&mut self) {
        if !self.state.mem.has_code_writes() {
            return;
        }
        let spans = self.state.mem.take_code_writes();
        let mut victims: Vec<u32> = Vec::new();
        for &(ws, wl) in &spans {
            let (ws, we) = (ws as u64, ws as u64 + wl as u64);
            for (id, b) in self.blocks.iter().enumerate() {
                if b.dead || b.guest_bytes == 0 {
                    continue;
                }
                let (bs, be) = (b.pc as u64, b.pc as u64 + b.guest_bytes as u64);
                if ws < be && bs < we {
                    victims.push(id as u32);
                }
            }
        }
        victims.sort_unstable();
        victims.dedup();
        for id in victims {
            if self.blocks[id as usize].dead {
                continue;
            }
            self.stats.bump(DbtCtr::SmcInvalidations);
            if trace::enabled(Scope::Exec) {
                trace::emit(
                    Scope::Exec,
                    "smc_invalidate",
                    &[
                        ("pc", Val::U(self.blocks[id as usize].pc as u64)),
                        ("id", Val::U(id as u64)),
                    ],
                );
            }
            self.purge_block(id);
        }
    }

    /// Resolve a trap exit from translated code into a [`RunOutcome`].
    ///
    /// Instruction traps are precise: the lowering wrote every dirty
    /// guest register back before the sentinel and left the trapping pc
    /// in `%eax`; the guest word there tells a trap instruction from an
    /// undecodable one. Memory traps are block-granular: the faulting
    /// address is exact but the reported pc is the entry of the
    /// faulting block (guest registers hold the block-entry values).
    fn trap_outcome(&mut self, block_pc: u32, cause: TrapCause) -> RunOutcome {
        let (pc, kind) = match cause {
            TrapCause::Insn => {
                let tpc = self.state.reg(Gpr::Eax);
                let kind = match decode(self.state.mem.read(tpc, Width::W32)) {
                    Ok(ArmInstr::Svc { imm, .. }) => TrapKind::Svc(imm),
                    _ => TrapKind::Undef,
                };
                (tpc, kind)
            }
            TrapCause::Mem(addr) => (block_pc, TrapKind::Mem(addr)),
        };
        self.stats.bump(DbtCtr::Traps);
        if trace::enabled(Scope::Exec) {
            let (name, detail) = match kind {
                TrapKind::Svc(n) => ("svc", n as u64),
                TrapKind::Undef => ("undef", 0),
                TrapKind::Mem(a) => ("mem", a as u64),
            };
            trace::emit(
                Scope::Exec,
                "trap",
                &[("pc", Val::U(pc as u64)), ("cause", Val::S(name)), ("detail", Val::U(detail))],
            );
        }
        RunOutcome::Trap { pc, cause: kind }
    }

    /// Emit a `translate` trace event (one per code-cache fill).
    fn trace_translate(pc: u32, kind: &str, guest_len: u64, covered: u64) {
        if trace::enabled(Scope::Exec) {
            trace::emit(
                Scope::Exec,
                "translate",
                &[
                    ("pc", Val::U(pc as u64)),
                    ("kind", Val::S(kind)),
                    ("guest_len", Val::U(guest_len)),
                    ("covered", Val::U(covered)),
                ],
            );
        }
    }

    /// The installed rule set and lazy-flag mode, when rule translation
    /// is active (a pointer-bump `Arc` clone of the cached generation).
    fn rules_cfg(&self) -> Option<(Arc<RuleSet>, bool)> {
        match &self.translator {
            Translator::Rules(r) => Some((Arc::clone(r), true)),
            Translator::RulesNoLazyFlags(r) => Some((Arc::clone(r), false)),
            _ => None,
        }
    }

    /// Publish a rule-set mutation as a new shared generation and adopt
    /// it immediately (this engine caused the change, so its cached
    /// snapshot moves with it; other tenants adopt at their next
    /// dispatcher entry). Returns `None` on non-rules translators.
    fn publish_rules<R>(&mut self, f: impl FnOnce(&mut RuleSet) -> R) -> Option<R> {
        let cell = Arc::clone(self.rule_cell.as_ref()?);
        let (rules, gen, out) = cell.publish_with(f);
        match &mut self.translator {
            Translator::Rules(r) | Translator::RulesNoLazyFlags(r) => *r = rules,
            _ => unreachable!("rule_cell implies a rules translator"),
        }
        self.rules_gen = gen;
        Some(out)
    }

    /// Dispatcher-entry generation poll: if another tenant published a
    /// newer rule generation, adopt it. One atomic load on the no-change
    /// path — readers never lock.
    fn sync_rules(&mut self) {
        let Some(cell) = &self.rule_cell else { return };
        if cell.generation() == self.rules_gen {
            return;
        }
        let (rules, gen) = cell.load();
        self.adopt_rules(rules, gen);
    }

    /// Install a foreign rule generation: swap the cached snapshot and
    /// purge exactly the translated blocks whose rule applications went
    /// stale (the rule was tombstoned, replaced with different host code,
    /// or removed). Blocks whose rules are unchanged keep running — the
    /// generations are behaviorally identical for them.
    fn adopt_rules(&mut self, new: Arc<RuleSet>, gen: u64) {
        let old = match &mut self.translator {
            Translator::Rules(r) | Translator::RulesNoLazyFlags(r) => {
                std::mem::replace(r, Arc::clone(&new))
            }
            _ => {
                self.rules_gen = gen;
                return;
            }
        };
        let old_gen = self.rules_gen;
        self.rules_gen = gen;
        // Which of the rule keys applied in live blocks changed meaning?
        let mut seen: HashSet<u64> = HashSet::new();
        let mut changed: HashSet<u64> = HashSet::new();
        for b in self.blocks.iter().filter(|b| !b.dead) {
            for &(_, key) in b.hits.iter() {
                if !seen.insert(key) {
                    continue;
                }
                let stale = new.is_tombstoned(key)
                    || match (old.find_by_key(key), new.find_by_key(key)) {
                        (Some(a), Some(b)) => a != b,
                        (Some(_), None) => true,
                        (None, _) => false,
                    };
                if stale {
                    changed.insert(key);
                }
            }
        }
        if trace::enabled(Scope::Exec) {
            trace::emit(
                Scope::Exec,
                "rules_adopt",
                &[
                    ("from_gen", Val::U(old_gen)),
                    ("to_gen", Val::U(gen)),
                    ("stale_keys", Val::U(changed.len() as u64)),
                ],
            );
        }
        if changed.is_empty() {
            return;
        }
        let victims: Vec<u32> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.dead && b.hits.iter().any(|(_, k)| changed.contains(k)))
            .map(|(i, _)| i as u32)
            .collect();
        for id in victims {
            self.purge_block(id);
        }
    }

    /// Apply install-time fault corruption (`imm-skew` / `operand-swap`)
    /// to the installed rule set, once, at the first translation. The
    /// corrupted rule keeps its stable key, so everything downstream —
    /// hit attribution, quarantine, repair — handles it like any other
    /// (wrong) rule. `rule-corrupt` stays a lowering-time clobber and is
    /// untouched here.
    fn install_fault_corruption(&mut self) {
        if self.fault_installed {
            return;
        }
        self.fault_installed = true;
        let Some(plan) = self.fault else { return };
        if !matches!(plan.site, FaultSite::ImmSkew | FaultSite::OperandSwap) {
            return;
        }
        if let Some(Some(key)) =
            self.publish_rules(move |rules| ldbt_learn::corrupt_ruleset(rules, plan))
        {
            if trace::enabled(Scope::Exec) {
                trace::emit(
                    Scope::Exec,
                    "fault_install",
                    &[("site", Val::S(plan.site.name())), ("rule", Val::U(key))],
                );
            }
        }
    }

    /// Translate the block at `pc` into the code cache; returns its id.
    fn translate(&mut self, pc: u32) -> u32 {
        self.install_fault_corruption();
        let block = decode_block(&self.state.mem, pc);
        self.stats.bump(DbtCtr::Blocks);
        let empty_hits: Rc<[(usize, u64)]> = Rc::from(Vec::new());
        if block.instrs.is_empty() {
            // Undecodable: a trap block. Executing it reports an
            // undefined-instruction trap at this pc — exactly what the
            // interpreter does — instead of faulting the engine. It
            // still covers the word it failed to decode, so a store
            // rewriting that word invalidates it and the retranslation
            // sees the fresh bytes.
            Self::trace_translate(pc, "trap", 0, 0);
            return self.insert_block(CachedBlock {
                pc,
                guest_bytes: 4,
                csum: 0,
                code: Rc::new(vec![X86Instr::mov_imm(Gpr::Eax, pc as i32), X86Instr::Trap]),
                guest_len: 0,
                covered: 0,
                execs: 0,
                interp_one: false,
                hits: empty_hits,
                exits: Vec::new(),
                links_out: Vec::new(),
                links_in: Vec::new(),
                dead: false,
                sb_head: NO_SB,
            });
        }
        // Rule-based translation path.
        if let Some((rules, lazy_flags)) = self.rules_cfg() {
            if block_supported(&block) && !self.force_tcg.contains(&pc) {
                let low = crate::rules::lower_block_with_rules_fault(
                    &self.state.mem,
                    &block,
                    &rules,
                    lazy_flags,
                    self.fault,
                );
                let covered = low.covered.iter().filter(|c| **c).count() as u64;
                self.stats.exec.translation_cycles += self.tcost.block_base
                    + self.tcost.per_lookup * low.lookups as u64
                    + self.tcost.per_rule_instr * low.rule_instrs as u64
                    + self.tcost.per_tcg_op * low.tcg_ops as u64;
                self.stats.add(DbtCtr::RuleLookups, low.lookups as u64);
                self.stats.add(DbtCtr::GuestStatic, block.instrs.len() as u64);
                self.stats.add(DbtCtr::GuestStaticCovered, covered);
                // Hit-rule aggregation happens once here, not per dispatch
                // (a translated block is always dispatched at least once).
                for &(len, key) in &low.hits {
                    self.stats.hit_rules.insert(key, len);
                }
                Self::trace_translate(pc, "rules", block.instrs.len() as u64, covered);
                return self.insert_block(CachedBlock {
                    pc,
                    guest_bytes: 4 * block.instrs.len() as u32,
                    csum: 0,
                    code: Rc::new(low.code),
                    guest_len: block.instrs.len() as u64,
                    covered,
                    execs: 0,
                    interp_one: false,
                    hits: Rc::from(low.hits),
                    exits: low.exits,
                    links_out: Vec::new(),
                    links_in: Vec::new(),
                    dead: false,
                    sb_head: NO_SB,
                });
            }
        }
        // TCG / JIT path.
        let tcg = translate_block(&self.state.mem, &block);
        if tcg.unsupported_at == Some(0) {
            // The first instruction needs the interpreter helper.
            self.stats.add(DbtCtr::GuestStatic, 1);
            Self::trace_translate(pc, "interp_one", 1, 0);
            return self.insert_block(CachedBlock {
                pc,
                guest_bytes: 4,
                csum: 0,
                code: Rc::new(Vec::new()),
                guest_len: 1,
                covered: 0,
                execs: 0,
                interp_one: true,
                hits: empty_hits,
                exits: Vec::new(),
                links_out: Vec::new(),
                links_in: Vec::new(),
                dead: false,
                sb_head: NO_SB,
            });
        }
        let translated_len = match tcg.unsupported_at {
            Some(k) => k as u64,
            None => block.instrs.len() as u64,
        };
        let (lowered, kind) = match self.translator {
            Translator::Jit => {
                let opt = optimize_block(&tcg);
                let lowered = crate::backend::lower_block_opts(&opt, true, 3);
                self.stats.exec.translation_cycles +=
                    self.tcost.jit_block_base + self.tcost.jit_per_op * tcg.ops.len() as u64;
                (lowered, "jit")
            }
            _ => {
                let lowered = lower_block(&tcg);
                self.stats.exec.translation_cycles +=
                    self.tcost.block_base + self.tcost.per_tcg_op * tcg.ops.len() as u64;
                (lowered, "tcg")
            }
        };
        self.stats.add(DbtCtr::GuestStatic, translated_len);
        Self::trace_translate(pc, kind, translated_len, 0);
        self.insert_block(CachedBlock {
            pc,
            guest_bytes: 4 * translated_len as u32,
            csum: 0,
            code: Rc::new(lowered.code),
            guest_len: translated_len,
            covered: 0,
            execs: 0,
            interp_one: false,
            hits: empty_hits,
            exits: lowered.exits,
            links_out: Vec::new(),
            links_in: Vec::new(),
            dead: false,
            sb_head: NO_SB,
        })
    }

    /// Interpret a single guest instruction against the env (the "helper"
    /// path for instructions the translators do not model).
    fn helper_step(&mut self, pc: u32) -> Result<u32, RunOutcome> {
        let word = self.state.mem.read(pc, Width::W32);
        let Ok(instr) = decode(word) else { return Err(RunOutcome::Fault) };
        // Build an ArmState view over the env.
        let mem = std::mem::take(&mut self.state.mem);
        let mut arm = ArmState {
            regs: [0; 16],
            flags: Default::default(),
            trap_limit: Some(GUEST_MEM_LIMIT),
            mem,
        };
        for r in ArmReg::ALL {
            arm.regs[r.index()] = arm.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32);
        }
        arm.flags.n = arm.mem.read(ENV_BASE + FlagId::N.offset(), Width::W32) != 0;
        arm.flags.z = arm.mem.read(ENV_BASE + FlagId::Z.offset(), Width::W32) != 0;
        arm.flags.c = arm.mem.read(ENV_BASE + FlagId::C.offset(), Width::W32) != 0;
        arm.flags.v = arm.mem.read(ENV_BASE + FlagId::V.offset(), Width::W32) != 0;
        let event = arm.exec(&instr);
        let next = pc.wrapping_add(4);
        let next_pc = match event {
            ArmEvent::Next => next,
            ArmEvent::Branch(off) => next.wrapping_add((off as u32).wrapping_mul(4)),
            ArmEvent::Call(off) => {
                arm.set_reg(ArmReg::Lr, next);
                next.wrapping_add((off as u32).wrapping_mul(4))
            }
            ArmEvent::Indirect(a) => a,
            ArmEvent::Syscall(0) => {
                // Halt: write back and signal.
                for r in ArmReg::ALL {
                    arm.mem.write(ENV_BASE + 4 * r.index() as u32, arm.regs[r.index()], Width::W32);
                }
                self.state.mem = std::mem::take(&mut arm.mem);
                return Err(RunOutcome::Halted);
            }
            ArmEvent::Syscall(n) => {
                // Trap instruction: write back and report, pc at the
                // trapping instruction — the interpreter's contract.
                for r in ArmReg::ALL {
                    arm.mem.write(ENV_BASE + 4 * r.index() as u32, arm.regs[r.index()], Width::W32);
                }
                self.state.mem = std::mem::take(&mut arm.mem);
                self.stats.bump(DbtCtr::Traps);
                return Err(RunOutcome::Trap { pc, cause: TrapKind::Svc(n) });
            }
            ArmEvent::Trap(a) => {
                // Out-of-range access. The interpreter checks before
                // accessing, so the faulting instruction had no side
                // effect; registers are still the pre-instruction ones.
                for r in ArmReg::ALL {
                    arm.mem.write(ENV_BASE + 4 * r.index() as u32, arm.regs[r.index()], Width::W32);
                }
                self.state.mem = std::mem::take(&mut arm.mem);
                self.stats.bump(DbtCtr::Traps);
                return Err(RunOutcome::Trap { pc, cause: TrapKind::Mem(a) });
            }
        };
        for r in ArmReg::ALL {
            arm.mem.write(ENV_BASE + 4 * r.index() as u32, arm.regs[r.index()], Width::W32);
        }
        arm.mem.write(ENV_BASE + FlagId::N.offset(), arm.flags.n as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::Z.offset(), arm.flags.z as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::C.offset(), arm.flags.c as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::V.offset(), arm.flags.v as u32, Width::W32);
        arm.mem.write(ENV_BASE + crate::env::FLAGMODE_OFFSET, 0, Width::W32);
        self.state.mem = std::mem::take(&mut arm.mem);
        self.stats.exec.exec_cycles += self.tcost.helper;
        self.stats.bump(DbtCtr::HelperSteps);
        Ok(next_pc)
    }

    /// Run until the guest halts or `fuel` host instructions have been
    /// executed.
    pub fn run(&mut self, fuel: u64) -> RunOutcome {
        self.state.set_reg(Gpr::Esp, HOST_STACK_TOP);
        'dispatch: loop {
            if self.stats.exec.host_instrs >= fuel {
                return RunOutcome::OutOfFuel;
            }
            // Serve mode: adopt a rule generation published by another
            // tenant. One atomic load when nothing changed; any block
            // dispatched from here on never runs a rule that was
            // tombstoned or replaced in the adopted generation.
            self.sync_rules();
            // Helper steps and watchdog adoption write guest memory on
            // paths that re-enter here directly: drain any code-page
            // store hits before dispatching (and before translating
            // from possibly-rewritten bytes).
            self.handle_smc();
            let pc = self.pc;
            let mut id = self.lookup_or_translate(pc);
            // Chained fast loop: no map probes until control leaves the
            // chain (indirect branch, halt, or an unlinked exit).
            loop {
                // A block heading a live region runs the region instead;
                // its per-block accounting happens inside, part by part.
                let sbid = self.blocks[id as usize].sb_head;
                if sbid != NO_SB {
                    match self.run_superblock(sbid, fuel) {
                        SbStep::Continue(next) => {
                            // An SMC purge inside the region may have
                            // killed the escape target.
                            if self.blocks[next as usize].dead {
                                continue 'dispatch;
                            }
                            id = next;
                            continue;
                        }
                        SbStep::Dispatch => continue 'dispatch,
                        SbStep::Done(out) => return out,
                    }
                }
                let b = &mut self.blocks[id as usize];
                b.execs += 1;
                let execs_now = b.execs;
                let block_pc = b.pc;
                let interp_one = b.interp_one;
                self.stats.bump(DbtCtr::BlockExecs);
                self.stats.add(DbtCtr::GuestDyn, b.guest_len);
                self.stats.add(DbtCtr::GuestDynCovered, b.covered);
                if interp_one {
                    match self.helper_step(block_pc) {
                        Ok(next) => {
                            self.pc = next;
                            continue 'dispatch;
                        }
                        Err(out) => return out,
                    }
                }
                // Formation trigger: every `threshold`-th execution of a
                // block, try to grow a region from the hot chain through
                // it. This execution still runs the plain code; the
                // region takes over at the next entry. Forming only
                // clones and specializes already-translated code, so no
                // translation counters move and accounting parity with
                // `LDBT_NOSB` holds.
                if let Some(threshold) = self.sb_cfg {
                    if self.chaining && execs_now.is_multiple_of(threshold) {
                        self.try_form_superblock(id);
                    }
                }
                let b = &self.blocks[id as usize];
                if b.code.is_empty() {
                    return RunOutcome::Fault;
                }
                // Watchdog: sample every Nth dispatch of a rule-covered
                // block; snapshot the pre-state so the block can be re-run
                // through the ARM interpreter afterwards.
                let check_now = match self.watchdog {
                    Some(period) if !b.hits.is_empty() => {
                        self.watchdog_tick += 1;
                        self.watchdog_tick.is_multiple_of(period)
                    }
                    _ => false,
                };
                // The `Rc` clones are pointer bumps; the memory snapshot
                // is only taken on a sampled dispatch.
                let code = Rc::clone(&b.code);
                let wd = if check_now {
                    Some((Rc::clone(&b.hits), self.state.mem.clone()))
                } else {
                    None
                };
                let remaining = fuel - self.stats.exec.host_instrs;
                let exit =
                    run_seq(&mut self.state, &code, remaining, &self.cost, &mut self.stats.exec);
                let next_chain = match exit {
                    SeqExit::Chained(next) => {
                        self.pc = self.blocks[next as usize].pc;
                        Some(next)
                    }
                    SeqExit::Returned => {
                        self.pc = self.state.reg(Gpr::Eax);
                        None
                    }
                    SeqExit::Halted => return RunOutcome::Halted,
                    SeqExit::OutOfFuel => return RunOutcome::OutOfFuel,
                    // Like `Halted`, a trap ends the run before the
                    // watchdog sees it (the sampled snapshot is dropped
                    // unused; the tick already advanced, keeping parity
                    // across configurations).
                    SeqExit::Trapped(cause) => return self.trap_outcome(block_pc, cause),
                    SeqExit::JumpedOut(_) | SeqExit::FellThrough | SeqExit::Faulted => {
                        return RunOutcome::Fault
                    }
                };
                if let Some((hits, pre)) = wd {
                    match self.watchdog_check(block_pc, &hits, pre) {
                        WdVerdict::Clean => {}
                        WdVerdict::Diverged => continue 'dispatch,
                        WdVerdict::End(out) => return out,
                    }
                }
                // Stores from this dispatch may have rewritten
                // translated code: invalidate before control flows into
                // a stale translation — possibly the chained successor
                // itself, or this very block re-entered via a loop.
                self.handle_smc();
                match next_chain {
                    Some(next) => {
                        if self.blocks[next as usize].dead {
                            // The SMC purge killed the successor; its
                            // pc retranslates through the dispatcher.
                            continue 'dispatch;
                        }
                        // Mirror the dispatcher-entry fuel check so
                        // chained accounting is bit-identical.
                        if self.stats.exec.host_instrs >= fuel {
                            return RunOutcome::OutOfFuel;
                        }
                        self.stats.bump(DbtCtr::ChainedExecs);
                        id = next;
                    }
                    None => continue 'dispatch,
                }
            }
        }
    }

    /// Re-execute a rule-covered block from its pre-dispatch memory
    /// snapshot through the ARM interpreter and compare architectural
    /// state. On mismatch, attribute the divergence to a single rule
    /// application by bisection replay and try to repair that rule from
    /// the counterexample (`LDBT_REPAIR`, on by default): a repaired rule
    /// is hot-republished and the stale translations re-translate against
    /// it. When repair is off, attribution fails, or repair fails, the
    /// culprit (or, conservatively, every rule applied in the block) is
    /// quarantined — tombstoned in the rule set — the affected
    /// translations are purged from the code cache, unlinking any blocks
    /// chained into them, and this block is forced onto the TCG path.
    /// Either way the engine adopts the interpreter's (correct) state so
    /// execution continues unharmed.
    fn watchdog_check(&mut self, pc: u32, hits: &[(usize, u64)], pre: Memory) -> WdVerdict {
        self.stats.bump(DbtCtr::WatchdogChecks);
        let block = decode_block(&pre, pc);
        if block.instrs.is_empty() {
            return WdVerdict::Clean;
        }
        // The repair path replays the block from the pristine
        // pre-dispatch snapshot; the reference interpreter consumes
        // `pre`, so keep a copy while repair could still need one.
        let pre_snap = self.repair.then(|| pre.clone());
        // Interpreter reference run over the snapshot.
        let mut arm = ArmState {
            regs: [0; 16],
            flags: Default::default(),
            trap_limit: Some(GUEST_MEM_LIMIT),
            mem: pre,
        };
        for r in ArmReg::ALL {
            arm.regs[r.index()] = arm.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32);
        }
        let flagmode = arm.mem.read(ENV_BASE + FLAGMODE_OFFSET, Width::W32);
        if flagmode & 1 != 0 {
            // §5 lazy flag save pending: the env NZCV slots are stale and
            // the live flags sit in the saved host EFLAGS word. Materialize
            // them the way the flag-mode dispatch stub does (N↔SF, Z↔ZF,
            // V↔OF; mode bit 1 selects the carry polarity).
            let w = arm.mem.read(ENV_BASE + crate::env::HOSTFLAGS_OFFSET, Width::W32);
            let f = ldbt_x86::EFlags::from_word(w);
            arm.flags.n = f.sf;
            arm.flags.z = f.zf;
            arm.flags.v = f.of;
            arm.flags.c = if flagmode & 2 != 0 { f.cf } else { !f.cf };
        } else {
            arm.flags.n = arm.mem.read(ENV_BASE + FlagId::N.offset(), Width::W32) != 0;
            arm.flags.z = arm.mem.read(ENV_BASE + FlagId::Z.offset(), Width::W32) != 0;
            arm.flags.c = arm.mem.read(ENV_BASE + FlagId::C.offset(), Width::W32) != 0;
            arm.flags.v = arm.mem.read(ENV_BASE + FlagId::V.offset(), Width::W32) != 0;
        }
        let mut halted = false;
        let mut trapped: Option<(u32, TrapKind)> = None;
        let mut next_pc = pc;
        for (idx, instr) in block.instrs.iter().enumerate() {
            let at = pc.wrapping_add(4 * idx as u32);
            let fallthrough = at.wrapping_add(4);
            next_pc = fallthrough;
            match arm.exec(instr) {
                ArmEvent::Next => {}
                ArmEvent::Syscall(0) => {
                    halted = true;
                    break;
                }
                // The reference stops at a trap, pc on the trapping
                // instruction — exactly the machine interpreter's
                // contract. A translated dispatch that trapped never
                // reaches the watchdog (the run returns first, like a
                // halt), so a reference trap here is itself a
                // divergence to rewind.
                ArmEvent::Syscall(n) => {
                    trapped = Some((at, TrapKind::Svc(n)));
                    break;
                }
                ArmEvent::Trap(a) => {
                    trapped = Some((at, TrapKind::Mem(a)));
                    break;
                }
                ArmEvent::Branch(off) => {
                    next_pc = fallthrough.wrapping_add((off as u32).wrapping_mul(4));
                    break;
                }
                ArmEvent::Call(off) => {
                    arm.set_reg(ArmReg::Lr, fallthrough);
                    next_pc = fallthrough.wrapping_add((off as u32).wrapping_mul(4));
                    break;
                }
                ArmEvent::Indirect(a) => {
                    next_pc = a;
                    break;
                }
            }
        }
        // Compare guest-visible state: r0–r14 env slots, the next PC, and
        // guest memory. Flags are excluded (the translated side may hold
        // them in host EFLAGS legitimately); the env + host-stack region
        // is host-private and also excluded.
        let regs_ok = ArmReg::ALL.iter().all(|r| {
            matches!(r, ArmReg::Pc)
                || self.state.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32)
                    == arm.regs[r.index()]
        });
        let pc_ok = !halted && trapped.is_none() && self.pc == next_pc;
        let mem_ok = self
            .state
            .mem
            .first_difference(&arm.mem, |addr| addr >= HOST_STACK_TOP - 0x1_0000)
            .is_none();
        if regs_ok && pc_ok && mem_ok {
            return WdVerdict::Clean;
        }
        // Mismatch. With repair enabled, first attribute the divergence
        // to a candidate set of rule applications by bisection, then run
        // the repair loop candidate by candidate; tombstoning is the
        // fallback, not the default. When suppressing more than one
        // application fixes the block the bisection alone is ambiguous,
        // but the counterexample-gated repair rejects healthy rules, so
        // the first candidate whose repair survives the trial replay is
        // the culprit.
        let candidates = match &pre_snap {
            Some(p) => self.attribute(pc, hits, p, &arm, halted, next_pc),
            None => None,
        };
        let mut repaired = false;
        let mut newly: HashSet<u64> = HashSet::new();
        if let Some(cands) = candidates {
            let unique = cands.len() == 1;
            let mut culprit: Option<u64> = None;
            for (k, binding) in &cands {
                let key = hits[*k].1;
                let attempts = *self.repair_attempts.get(&key).unwrap_or(&0);
                if attempts >= REPAIR_ATTEMPT_CAP {
                    if trace::enabled(Scope::Exec) {
                        trace::emit(
                            Scope::Exec,
                            "repair_capped",
                            &[
                                ("pc", Val::U(pc as u64)),
                                ("rule", Val::U(key)),
                                ("attempts", Val::U(attempts as u64)),
                            ],
                        );
                    }
                    continue;
                }
                self.repair_attempts.insert(key, attempts + 1);
                self.stats.bump(DbtCtr::WdRepairAttempts);
                let p = pre_snap.as_ref().expect("attribution implies a snapshot");
                if self.try_repair(pc, key, binding, p, &arm, halted, next_pc) {
                    repaired = true;
                    culprit = Some(key);
                    self.stats.bump(DbtCtr::WdRepaired);
                    break;
                }
                self.stats.bump(DbtCtr::WdRepairFailed);
            }
            // A unique bisection survivor is attributed outright; an
            // ambiguous set only counts as attributed once a repair
            // singles out the culprit.
            if unique || repaired {
                self.stats.bump(DbtCtr::WdAttributed);
            }
            if repaired {
                // Purge (and re-translate) every block holding the stale
                // instantiation, but keep the rule alive: no tombstone,
                // no TCG forcing.
                newly.insert(culprit.expect("repaired implies a culprit key"));
            } else {
                // Quarantine the candidate set: the bisection proved the
                // other applications in this block innocent. A unique
                // survivor is an attributed quarantine; an ambiguous set
                // that no repair could split is collateral. Tombstoning
                // publishes a new shared generation — other tenants stop
                // translating with these rules at their next dispatch.
                let keys: Vec<u64> = cands.iter().map(|(k, _)| hits[*k].1).collect();
                let tombstoned = self
                    .publish_rules(move |rs| {
                        keys.into_iter().filter(|&key| rs.tombstone(key)).collect::<Vec<u64>>()
                    })
                    .unwrap_or_default();
                for key in tombstoned {
                    newly.insert(key);
                    self.stats.bump(if unique {
                        DbtCtr::QuarantinedRules
                    } else {
                        DbtCtr::WdCollateral
                    });
                }
            }
        } else {
            // No attribution: quarantine every rule applied in the block.
            // With repair enabled these are *collateral* tombstones,
            // counted apart from attributed quarantines so the accounting
            // no longer overstates how many rules were proven wrong.
            let collateral = self.repair;
            let keys: Vec<u64> = hits.iter().map(|&(_, key)| key).collect();
            let tombstoned = self
                .publish_rules(move |rs| {
                    keys.into_iter().filter(|&key| rs.tombstone(key)).collect::<Vec<u64>>()
                })
                .unwrap_or_default();
            for key in tombstoned {
                newly.insert(key);
                self.stats.bump(if collateral {
                    DbtCtr::WdCollateral
                } else {
                    DbtCtr::QuarantinedRules
                });
            }
        }
        if trace::enabled(Scope::Exec) {
            trace::emit(
                Scope::Exec,
                "quarantine",
                &[
                    ("pc", Val::U(pc as u64)),
                    ("rules", Val::U(newly.len() as u64)),
                    ("repaired", Val::B(repaired)),
                    ("regs_ok", Val::B(regs_ok)),
                    ("pc_ok", Val::B(pc_ok)),
                    ("mem_ok", Val::B(mem_ok)),
                ],
            );
        }
        if !repaired {
            self.force_tcg.insert(pc);
        }
        let victims: Vec<u32> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.dead && b.hits.iter().any(|&(_, k)| newly.contains(&k)))
            .map(|(i, _)| i as u32)
            .collect();
        for id in victims {
            self.purge_block(id);
        }
        if let Some(&id) = self.map.get(&pc) {
            self.purge_block(id);
        }
        // Adopt the interpreter's state: write its registers and flags
        // back into the env and take its memory.
        for r in ArmReg::ALL {
            arm.mem.write(ENV_BASE + 4 * r.index() as u32, arm.regs[r.index()], Width::W32);
        }
        arm.mem.write(ENV_BASE + FlagId::N.offset(), arm.flags.n as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::Z.offset(), arm.flags.z as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::C.offset(), arm.flags.c as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::V.offset(), arm.flags.v as u32, Width::W32);
        arm.mem.write(ENV_BASE + FLAGMODE_OFFSET, 0, Width::W32);
        self.state.mem = std::mem::take(&mut arm.mem);
        if halted {
            return WdVerdict::End(RunOutcome::Halted);
        }
        if let Some((tpc, cause)) = trapped {
            // The reference trapped where the translated block ran on:
            // the corrected outcome of the run is the trap itself.
            self.stats.bump(DbtCtr::Traps);
            return WdVerdict::End(RunOutcome::Trap { pc: tpc, cause });
        }
        self.pc = next_pc;
        WdVerdict::Diverged
    }

    /// Attribute a watchdog divergence to a candidate set of rule
    /// applications by bisection replay: re-lower the divergent block
    /// with each application individually suppressed (its guest
    /// instructions forced onto the TCG path) and re-execute from the
    /// pre-dispatch snapshot. Every suppression that makes the
    /// divergence vanish yields a candidate `(hit index, Binding)` —
    /// usually exactly one, but a wrong write can be masked such that
    /// suppressing a neighbouring application also corrects the block;
    /// the caller splits such ties with the counterexample-gated repair.
    /// A single-application block needs no probing — its one rule is the
    /// only suspect.
    fn attribute(
        &self,
        pc: u32,
        hits: &[(usize, u64)],
        pre: &Memory,
        arm: &ArmState,
        halted: bool,
        ref_next_pc: u32,
    ) -> Option<Vec<(usize, Binding)>> {
        let (rules, lazy_flags) = self.rules_cfg()?;
        let block = decode_block(pre, pc);
        if block.instrs.is_empty() {
            return None;
        }
        let full = crate::rules::lower_block_with_rules_suppress(
            pre, &block, &rules, lazy_flags, self.fault, None,
        );
        let bail = |why: &'static str| {
            if trace::enabled(Scope::Exec) {
                trace::emit(
                    Scope::Exec,
                    "attr_bail",
                    &[("pc", Val::U(pc as u64)), ("why", Val::S(why))],
                );
            }
            None
        };
        // Sanity: the replayed plan must be the plan the cached block
        // actually ran; anything else means the world changed under us
        // and attribution would blame the wrong application.
        if full.hits.as_slice() != hits {
            return bail("plan-mismatch");
        }
        if hits.len() == 1 {
            return Some(vec![(0, full.bindings[0].clone())]);
        }
        if hits.len() > ATTRIBUTION_MAX_HITS {
            return bail("too-many-applications");
        }
        let mut candidates = Vec::new();
        for k in 0..hits.len() {
            let low = crate::rules::lower_block_with_rules_suppress(
                pre,
                &block,
                &rules,
                lazy_flags,
                self.fault,
                Some(k),
            );
            if self.probe_matches(&low.code, pre, arm, halted, ref_next_pc) {
                candidates.push((k, full.bindings[k].clone()));
            }
        }
        if candidates.is_empty() {
            return bail("no-suppression-fixes");
        }
        if candidates.len() > 1 && trace::enabled(Scope::Exec) {
            // Ambiguous bisection: more than one suppression fixes the
            // block. The caller disambiguates via the repair gate.
            trace::emit(
                Scope::Exec,
                "attr_ambiguous",
                &[("pc", Val::U(pc as u64)), ("candidates", Val::U(candidates.len() as u64))],
            );
        }
        Some(candidates)
    }

    /// Execute probe code from the pre-dispatch snapshot on a scratch
    /// host state and compare the result against the interpreter
    /// reference — the same surface the watchdog compares: env registers
    /// r0–r14, the continuation pc, and guest memory.
    fn probe_matches(
        &self,
        code: &[X86Instr],
        pre: &Memory,
        arm: &ArmState,
        halted: bool,
        ref_next_pc: u32,
    ) -> bool {
        let mut st = X86State::new();
        st.mem = pre.clone();
        st.set_reg(Gpr::Esp, HOST_STACK_TOP);
        let mut scratch = ExecStats::new();
        let exit = run_seq(&mut st, code, PROBE_FUEL, &self.cost, &mut scratch);
        // A fresh lowering exits through `ret` stubs (no chaining), so
        // only `Returned` and `Halted` are well-formed probe exits.
        match exit {
            SeqExit::Returned if !halted && st.reg(Gpr::Eax) == ref_next_pc => {}
            SeqExit::Halted if halted => {}
            _ => return false,
        }
        ArmReg::ALL.iter().all(|r| {
            matches!(r, ArmReg::Pc)
                || st.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32) == arm.regs[r.index()]
        }) && st.mem.first_difference(&arm.mem, |addr| addr >= HOST_STACK_TOP - 0x1_0000).is_none()
    }

    /// Run the localize → re-verify → hot-publish repair loop for the
    /// attributed rule. Publication is gated on a full trial replay: the
    /// divergent block is re-lowered against a trial rule set holding the
    /// repaired rule and re-executed from the pre-dispatch snapshot; only
    /// a trial that matches the interpreter reference is published (via
    /// `RuleSet::replace` + `RuleSet::revive`, the key is unchanged).
    #[allow(clippy::too_many_arguments)]
    fn try_repair(
        &mut self,
        pc: u32,
        key: u64,
        binding: &Binding,
        pre: &Memory,
        arm: &ArmState,
        halted: bool,
        ref_next_pc: u32,
    ) -> bool {
        let Some((rules, lazy_flags)) = self.rules_cfg() else { return false };
        let Some(quarantined) = rules.find_by_key(key) else { return false };
        // The counterexample: the binding the block applied the rule
        // under, plus the registers the translated run got wrong.
        let divergent: Vec<(ArmReg, u32, u32)> = ArmReg::ALL
            .iter()
            .filter(|r| !matches!(r, ArmReg::Pc))
            .filter_map(|r| {
                let observed = self.state.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32);
                let expected = arm.regs[r.index()];
                (observed != expected).then_some((*r, observed, expected))
            })
            .collect();
        let cex = Counterexample { block_pc: pc, binding: binding.clone(), divergent };
        let report = match ldbt_learn::repair(quarantined, &cex, &ldbt_learn::repair_budget()) {
            Ok(report) => report,
            Err(fail) => {
                if trace::enabled(Scope::Exec) {
                    let why = match fail {
                        ldbt_learn::RepairFail::NoMappings => "no-mappings",
                        ldbt_learn::RepairFail::NoCandidate { .. } => "no-candidate",
                    };
                    trace::emit(
                        Scope::Exec,
                        "repair_fail",
                        &[("pc", Val::U(pc as u64)), ("rule", Val::U(key)), ("why", Val::S(why))],
                    );
                }
                return false;
            }
        };
        // Trial replay gate: the repaired rule must make this very block
        // agree with the interpreter before it goes live.
        let block = decode_block(pre, pc);
        let mut trial = (*rules).clone();
        if !trial.replace(key, report.rule.clone()) {
            return false;
        }
        trial.revive(key);
        let low = crate::rules::lower_block_with_rules_suppress(
            pre, &block, &trial, lazy_flags, self.fault, None,
        );
        if !self.probe_matches(&low.code, pre, arm, halted, ref_next_pc) {
            if trace::enabled(Scope::Exec) {
                trace::emit(
                    Scope::Exec,
                    "repair_fail",
                    &[
                        ("pc", Val::U(pc as u64)),
                        ("rule", Val::U(key)),
                        ("why", Val::S("trial-replay-mismatch")),
                    ],
                );
            }
            return false;
        }
        // Hot-publish: overwrite the rule (same stable key), clear any
        // tombstone on it, and publish the result as a new shared
        // generation so other tenants re-translate with the repaired
        // rule instead of the divergent one.
        let repaired_rule = report.rule;
        let published = self
            .publish_rules(move |rs| {
                if !rs.replace(key, repaired_rule) {
                    return false;
                }
                rs.revive(key);
                true
            })
            .unwrap_or(false);
        if !published {
            return false;
        }
        if trace::enabled(Scope::Exec) {
            trace::emit(
                Scope::Exec,
                "repair",
                &[
                    ("pc", Val::U(pc as u64)),
                    ("rule", Val::U(key)),
                    ("candidates", Val::U(report.candidates_tried as u64)),
                ],
            );
        }
        true
    }

    /// Try to form a superblock region headed at block `head`: follow the
    /// hottest chained successor from each block (up to [`SB_MAX_PARTS`];
    /// revisits are allowed, so a self-loop unrolls), specialize each
    /// member's code clone against the seam state its predecessor leaves
    /// behind, and strip provably dead seam exit pairs. Forming never
    /// re-translates — it only clones and deletes — so translation-side
    /// statistics are untouched.
    fn try_form_superblock(&mut self, head: u32) {
        if self.blocks[head as usize].sb_head != NO_SB || !self.blocks[head as usize].chainable() {
            return;
        }
        let mut path: Vec<u32> = vec![head];
        let mut cur = head;
        while path.len() < SB_MAX_PARTS {
            // Hottest chainable successor; ties break to the smaller id
            // so formation is deterministic.
            let next = self.blocks[cur as usize]
                .links_out
                .iter()
                .map(|&(_, succ)| succ)
                .filter(|&s| self.blocks[s as usize].chainable())
                .max_by_key(|&s| (self.blocks[s as usize].execs, std::cmp::Reverse(s)));
            match next {
                Some(n) => {
                    path.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        if path.len() < 2 {
            return;
        }
        // Prefer a path whose final chain target is the head: the
        // backedge then stays resident (the pinned registers live around
        // the loop) instead of paying writeback stubs plus the entry
        // preamble on every traversal. The walk unrolls the loop up to
        // SB_MAX_PARTS, which rarely lands on a whole number of cycles —
        // truncate back to the last revisit of the head so it does. The
        // dropped tail parts lose nothing: execution reaches them again
        // on the next resident trip around the region.
        let hottest = |bid: u32| {
            self.blocks[bid as usize]
                .links_out
                .iter()
                .map(|&(_, succ)| succ)
                .filter(|&s| self.blocks[s as usize].chainable())
                .max_by_key(|&s| (self.blocks[s as usize].execs, std::cmp::Reverse(s)))
        };
        if hottest(*path.last().unwrap()) != Some(head) {
            if let Some(cut) = (2..path.len()).rev().find(|&i| path[i] == head) {
                path.truncate(cut);
            }
        }
        let mut st = SeamState::entry();
        let mut parts: Vec<SbPart> = Vec::with_capacity(path.len());
        let mut pcs: Vec<u32> = Vec::with_capacity(path.len());
        for &bid in &path {
            let b = &self.blocks[bid as usize];
            let (code, exit) = specialize_part(&b.code, &st);
            st = exit;
            parts.push(SbPart { id: bid, code: Rc::new(code), fallthrough_seam: false });
            pcs.push(b.pc);
        }
        strip_seam_exits(&mut parts, &pcs);
        optimize_region(&mut parts);
        // Region-wide passes: memory access fusion first (its dead-store
        // sinking must run before writeback stubs exist), then register
        // allocation, then one more cleanup sweep with the pinned
        // registers held live across seams.
        let fused = if self.fusion { fuse_region(&mut parts) } else { 0 };
        if fused > 0 {
            self.stats.add(DbtCtr::FuseElim, fused);
        }
        let ra = if self.region_alloc {
            allocate_region(&mut parts, &crate::backend::POOL)
        } else {
            Vec::new()
        };
        if !ra.is_empty() {
            self.stats.add(DbtCtr::RaPromoted, ra.len() as u64);
        }
        if fused > 0 || !ra.is_empty() {
            optimize_region_pinned(&mut parts, &ra);
        }
        debug_assert!(
            region_contract(&parts, &ra),
            "superblock region allocation contract violated"
        );
        let rid = self.superblocks.len() as u32;
        let mut seen: HashSet<u32> = HashSet::new();
        for &bid in &path {
            if seen.insert(bid) {
                self.sb_members.entry(bid).or_default().push(rid);
            }
        }
        self.blocks[head as usize].sb_head = rid;
        let preamble = Rc::new(ra_preamble(&ra));
        self.superblocks.push(Superblock { head, parts, ra, preamble, dead: false });
        self.stats.bump(DbtCtr::SbFormed);
        if trace::enabled(Scope::Exec) {
            trace::emit(
                Scope::Exec,
                "sb_form",
                &[
                    ("head_pc", Val::U(pcs[0] as u64)),
                    ("region", Val::U(rid as u64)),
                    ("parts", Val::U(path.len() as u64)),
                ],
            );
        }
    }

    /// Invalidate every region block `bid` is a member of: the region
    /// goes dead, the head's dispatch redirect is removed, and the other
    /// members forget the region. Called whenever `bid`'s code is purged
    /// or re-patched (the region holds clones of it). The head re-forms
    /// a fresh region — without any purged member — the next time it
    /// crosses the formation threshold.
    fn invalidate_regions_of(&mut self, bid: u32) {
        let Some(rids) = self.sb_members.remove(&bid) else { return };
        for rid in rids {
            if self.superblocks[rid as usize].dead {
                continue;
            }
            self.superblocks[rid as usize].dead = true;
            let head = self.superblocks[rid as usize].head;
            let members: Vec<u32> =
                self.superblocks[rid as usize].parts.iter().map(|p| p.id).collect();
            // Drop the cloned code; dead regions are never entered again.
            self.superblocks[rid as usize].parts = Vec::new();
            if self.blocks[head as usize].sb_head == rid {
                self.blocks[head as usize].sb_head = NO_SB;
            }
            for m in members {
                if m == bid {
                    continue;
                }
                if let Some(v) = self.sb_members.get_mut(&m) {
                    v.retain(|&r| r != rid);
                    if v.is_empty() {
                        self.sb_members.remove(&m);
                    }
                }
            }
            self.stats.bump(DbtCtr::SbInvalidated);
            if trace::enabled(Scope::Exec) {
                trace::emit(
                    Scope::Exec,
                    "sb_invalidate",
                    &[
                        ("head_pc", Val::U(self.blocks[head as usize].pc as u64)),
                        ("region", Val::U(rid as u64)),
                        ("member_pc", Val::U(self.blocks[bid as usize].pc as u64)),
                    ],
                );
            }
        }
    }

    /// Execute region `rid` from its head. Every counter the plain path
    /// maintains per block execution is maintained here per part — same
    /// order, same values — so a run's `DbtStats` accounting is
    /// bit-identical with superblocks on or off; only the host
    /// instruction count (the thing regions exist to shrink) differs.
    fn run_superblock(&mut self, rid: u32, fuel: u64) -> SbStep {
        let (ra, preamble, head_id) = {
            let sb = &self.superblocks[rid as usize];
            (sb.ra.clone(), Rc::clone(&sb.preamble), sb.parts[0].id)
        };
        let mut k = 0usize;
        // Whether the pinned registers currently hold guest state. Set
        // when the entry preamble runs; stays set across seams *and*
        // across the loop backedge to the head — a `ChainJmp` back to
        // part 0 is an in-region transition, so the pins remain
        // authoritative and neither the writeback stubs nor the preamble
        // execute on it. Only a true escape leaves the region.
        let mut resident = false;
        loop {
            let (bid, code, ft_seam, next_id) = {
                let sb = &self.superblocks[rid as usize];
                let part = &sb.parts[k];
                let next = sb.parts.get(k + 1).map(|p| p.id);
                (part.id, Rc::clone(&part.code), part.fallthrough_seam, next)
            };
            let b = &mut self.blocks[bid as usize];
            b.execs += 1;
            let block_pc = b.pc;
            self.stats.bump(DbtCtr::SbExecs);
            self.stats.bump(DbtCtr::BlockExecs);
            self.stats.add(DbtCtr::GuestDyn, b.guest_len);
            self.stats.add(DbtCtr::GuestDynCovered, b.covered);
            // Watchdog sampling mirrors the plain path exactly: same
            // tick sequence, same snapshots, and the comparison surface
            // (env registers, next pc, guest memory) is untouched by
            // part specialization.
            let b = &self.blocks[bid as usize];
            let check_now = match self.watchdog {
                Some(period) if !b.hits.is_empty() => {
                    self.watchdog_tick += 1;
                    self.watchdog_tick.is_multiple_of(period)
                }
                _ => false,
            };
            // While resident the pinned registers are authoritative and
            // the env homes stale: materialize before snapshotting so the
            // watchdog's reference interpretation starts from the true
            // guest state. Before the preamble has run, env is already
            // authoritative.
            let hits = Rc::clone(&b.hits);
            if check_now && resident {
                self.materialize_ra(&ra);
            }
            let wd = if check_now { Some((hits, self.state.mem.clone())) } else { None };
            // First entry into the region body: load the pinned registers
            // from their env homes. The preamble only reads env, so it is
            // transparent to the watchdog snapshot taken just above.
            if k == 0 && !resident && !ra.is_empty() {
                let left = fuel - self.stats.exec.host_instrs;
                match run_seq(&mut self.state, &preamble, left, &self.cost, &mut self.stats.exec) {
                    SeqExit::FellThrough => {}
                    _ => return SbStep::Done(RunOutcome::OutOfFuel),
                }
                resident = true;
            }
            let remaining = fuel - self.stats.exec.host_instrs;
            let exit = run_seq(&mut self.state, &code, remaining, &self.cost, &mut self.stats.exec);
            // None = back to the dispatcher; Some((next, kind)) with
            // kind 1 = seam to the next part, kind 2 = resident backedge
            // to the region head, kind 0 = escape out of the region.
            let step = match exit {
                SeqExit::Halted => return SbStep::Done(RunOutcome::Halted),
                SeqExit::Trapped(cause) => return SbStep::Done(self.trap_outcome(block_pc, cause)),
                SeqExit::OutOfFuel => return SbStep::Done(RunOutcome::OutOfFuel),
                SeqExit::JumpedOut(_) | SeqExit::Faulted => return SbStep::Done(RunOutcome::Fault),
                SeqExit::FellThrough => match (ft_seam, next_id) {
                    // The stripped seam: falling off the end of the part
                    // *is* the chained jump to the next part.
                    (true, Some(n)) => {
                        self.pc = self.blocks[n as usize].pc;
                        Some((n, 1u8))
                    }
                    _ => return SbStep::Done(RunOutcome::Fault),
                },
                SeqExit::Chained(next) => {
                    self.pc = self.blocks[next as usize].pc;
                    // Seam takes precedence over backedge: in an unrolled
                    // self-loop every part *is* the head, and mid-unroll
                    // chains are seams; only the last part's chain back to
                    // the head closes the loop.
                    let kind = if next_id == Some(next) {
                        1u8
                    } else if next == head_id {
                        2u8
                    } else {
                        0u8
                    };
                    Some((next, kind))
                }
                SeqExit::Returned => {
                    self.pc = self.state.reg(Gpr::Eax);
                    None
                }
            };
            if let Some((hits, pre)) = wd {
                // The comparison surface is env: materialize the pinned
                // registers, but only when the part continued *in-region*
                // (a seam carries guest state in pinned registers). After
                // an escape the writeback stubs already materialized env,
                // and later cleanup may have renamed a writeback's source
                // away from the pinned register — overwriting env from it
                // then would corrupt guest state.
                if matches!(step, Some((_, 1 | 2))) {
                    self.materialize_ra(&ra);
                }
                match self.watchdog_check(block_pc, &hits, pre) {
                    WdVerdict::Clean => {}
                    // The divergence rewind purged blocks — possibly this
                    // very region — so control must leave it.
                    WdVerdict::Diverged => return SbStep::Dispatch,
                    WdVerdict::End(out) => return SbStep::Done(out),
                }
            }
            // Stores from this part may have rewritten a member of this
            // very region (a self-modifying loop): the purge killed the
            // region and its remaining clones are stale. Materialize
            // the pins (on an in-region step they are authoritative)
            // and fall back at the pc the part already handed over.
            self.handle_smc();
            if self.superblocks[rid as usize].dead {
                if matches!(step, Some((_, 1 | 2))) {
                    self.materialize_ra(&ra);
                }
                return match step {
                    Some((next, 0)) if !self.blocks[next as usize].dead => SbStep::Continue(next),
                    _ => SbStep::Dispatch,
                };
            }
            match step {
                Some((next, kind)) => {
                    // Mirror the chained-transition fuel check and
                    // accounting of the plain path.
                    if self.stats.exec.host_instrs >= fuel {
                        return SbStep::Done(RunOutcome::OutOfFuel);
                    }
                    self.stats.bump(DbtCtr::ChainedExecs);
                    match kind {
                        // Seam: on to the next part, pins stay resident.
                        1 => k += 1,
                        // Resident backedge: around the loop without
                        // leaving the region — no writebacks ran, no
                        // preamble will re-run, pins stay authoritative.
                        2 => k = 0,
                        // Escape: the writeback stubs materialized env on
                        // the way out; hand control back to the chainer.
                        _ => return SbStep::Continue(next),
                    }
                }
                None => return SbStep::Dispatch,
            }
        }
    }

    /// Write every pinned register's current value to its guest env home
    /// ([`Superblock::ra`]). Called only at in-region part boundaries
    /// ahead of a watchdog snapshot or comparison — there the pinned
    /// register is authoritative and the env home stale. Never called
    /// after an escape: the region's writeback stubs have already
    /// materialized env.
    fn materialize_ra(&mut self, ra: &[(u8, Gpr)]) {
        for &(s, p) in ra {
            let v = self.state.reg(p);
            self.state.mem.write(ENV_BASE + 4 * s as u32, v, Width::W32);
        }
    }

    /// Reset execution state (keeping the translated-code cache) so the
    /// same image can be run again.
    ///
    /// Callers may rewrite guest memory between runs — reloading a
    /// different image, or the finished run itself modified its code —
    /// so every live block's guest bytes are revalidated against the
    /// checksum recorded at translation time and stale blocks are
    /// purged. This runs even under `LDBT_NOSMC`: it is the coherence
    /// floor for cache reuse, not a hot-path optimization.
    pub fn reset(&mut self) {
        self.pc = self.entry;
        // The checksum sweep subsumes any pending store-hit log.
        let _ = self.state.mem.take_code_writes();
        let mut stale: Vec<u32> = Vec::new();
        for (id, b) in self.blocks.iter().enumerate() {
            if !b.dead
                && b.guest_bytes > 0
                && guest_csum(&self.state.mem, b.pc, b.guest_bytes) != b.csum
            {
                stale.push(id as u32);
            }
        }
        for id in stale {
            self.stats.bump(DbtCtr::SmcInvalidations);
            if trace::enabled(Scope::Exec) {
                trace::emit(
                    Scope::Exec,
                    "smc_invalidate",
                    &[
                        ("pc", Val::U(self.blocks[id as usize].pc as u64)),
                        ("id", Val::U(id as u64)),
                    ],
                );
            }
            self.purge_block(id);
        }
    }

    /// Number of live translated blocks in the code cache.
    pub fn cache_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| !b.dead).count()
    }

    /// Number of chained (patched) block-to-block links currently live.
    pub fn live_links(&self) -> usize {
        self.blocks.iter().filter(|b| !b.dead).map(|b| b.links_out.len()).sum()
    }

    /// Number of live superblock regions.
    pub fn live_regions(&self) -> usize {
        self.superblocks.iter().filter(|s| !s.dead).count()
    }

    /// Execution-hotness and rule-attribution profile, computed from the
    /// code-cache arena at snapshot time. The dispatch hot path pays
    /// nothing for this beyond the per-block `execs` counter it already
    /// maintains; purged blocks drop out of the attribution with their
    /// cleared `hits`.
    pub fn profile(&self) -> ExecProfile {
        let mut rules: BTreeMap<u64, RuleProfile> = BTreeMap::new();
        let mut hot: Vec<BlockProfile> = Vec::new();
        let hist = Hist::new();
        for b in self.blocks.iter().filter(|b| !b.dead) {
            hist.record(b.execs);
            hot.push(BlockProfile {
                pc: b.pc,
                execs: b.execs,
                guest_len: b.guest_len,
                covered: b.covered,
            });
            for &(len, key) in b.hits.iter() {
                let r = rules.entry(key).or_insert(RuleProfile { key, len, blocks: 0, execs: 0 });
                r.blocks += 1;
                r.execs += b.execs;
            }
        }
        hot.sort_by(|a, b| b.execs.cmp(&a.execs).then(a.pc.cmp(&b.pc)));
        hot.truncate(ExecProfile::HOT_BLOCKS);
        ExecProfile {
            rules: rules.into_values().collect(),
            hot_blocks: hot,
            hotness: hist.snapshot(),
        }
    }

    /// The env slot address of a guest register (for tests/diagnostics).
    pub fn reg_slot(r: ArmReg) -> u32 {
        (reg_mem(r).disp) as u32
    }

    /// The env slot address of a flag.
    pub fn flag_slot(f: FlagId) -> u32 {
        (env_mem(f.offset()).disp) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbt_compiler::{link::build_arm_image, Options};

    fn run_both_ways(src: &str) -> (u32, u32) {
        let image = build_arm_image(src, &Options::o2()).unwrap();
        // Reference: the ARM interpreter.
        let mut m = ldbt_arm::ArmMachine::new();
        image.load_into(&mut m.state.mem);
        m.state.regs[15] = image.entry;
        assert_eq!(m.run(50_000_000), ldbt_arm::ArmStop::Halt);
        let want = m.state.reg(ArmReg::R0);
        // DBT.
        let mut e = Engine::new(&image, Translator::Tcg);
        assert_eq!(e.run(200_000_000), RunOutcome::Halted);
        (want, e.guest_reg(ArmReg::R0))
    }

    #[test]
    fn simple_program_matches_interpreter() {
        let (want, got) = run_both_ways("int main() { return 41 + 1; }");
        assert_eq!(want, got);
        assert_eq!(got, 42);
    }

    #[test]
    fn loops_and_branches_match() {
        let src = "
int main() {
  int s = 0;
  for (int i = 1; i <= 100; i += 1) {
    if (i & 1) { s += i; } else { s -= 1; }
  }
  return s;
}";
        let (want, got) = run_both_ways(src);
        assert_eq!(want, got);
    }

    #[test]
    fn memory_and_calls_match() {
        let src = "
int a[32];
int sum(int n) {
  int s = 0;
  for (int i = 0; i < n; i += 1) { s += a[i]; }
  return s;
}
int main() {
  for (int i = 0; i < 32; i += 1) { a[i] = i * 3; }
  return sum(32) & 0xffff;
}";
        let (want, got) = run_both_ways(src);
        assert_eq!(want, got);
    }

    #[test]
    fn recursion_matches() {
        let src = "
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() { return fib(14); }";
        let (want, got) = run_both_ways(src);
        assert_eq!(want, got);
        assert_eq!(got, 377);
    }

    #[test]
    fn code_cache_reuses_blocks() {
        let src = "
int main() {
  int s = 0;
  for (int i = 0; i < 50; i += 1) { s += i; }
  return s;
}";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        let mut e = Engine::new(&image, Translator::Tcg);
        assert_eq!(e.run(10_000_000), RunOutcome::Halted);
        assert!(e.stats.block_execs() > e.stats.blocks(), "loop blocks re-executed");
        assert!(e.cache_blocks() as u64 == e.stats.blocks());
    }

    #[test]
    fn jit_translator_matches_tcg() {
        let src = "
int h(int x) { return (x ^ 2166136261) * 599; }
int main() {
  int acc = 0;
  for (int i = 0; i < 40; i += 1) { acc += h(i) & 1023; }
  return acc;
}";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        let mut tcg = Engine::new(&image, Translator::Tcg);
        assert_eq!(tcg.run(50_000_000), RunOutcome::Halted);
        let mut jit = Engine::new(&image, Translator::Jit);
        assert_eq!(jit.run(50_000_000), RunOutcome::Halted);
        assert_eq!(tcg.guest_reg(ArmReg::R0), jit.guest_reg(ArmReg::R0));
        assert!(
            jit.stats.exec.host_instrs < tcg.stats.exec.host_instrs,
            "jit code is leaner: {} vs {}",
            jit.stats.exec.host_instrs,
            tcg.stats.exec.host_instrs
        );
        assert!(
            jit.stats.exec.translation_cycles > tcg.stats.exec.translation_cycles,
            "jit pays for it in translation time"
        );
    }

    #[test]
    fn predicated_code_via_helper_or_select() {
        // Comparison-as-value compiles to a predicated mov: must still run
        // correctly under the DBT.
        let src = "int main() { int a = 5; int b = 9; return (a < b) + 2 * (a == 5); }";
        let (want, got) = run_both_ways(src);
        assert_eq!(want, got);
        assert_eq!(got, 3);
    }

    #[test]
    fn guest_dyn_instr_accounting() {
        let src = "int main() { return 7; }";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        let mut e = Engine::new(&image, Translator::Tcg);
        assert_eq!(e.run(1_000_000), RunOutcome::Halted);
        // _start (4 instrs incl. svc) + main body.
        assert!(e.stats.guest_dyn() >= 6, "{}", e.stats.guest_dyn());
        assert!(e.stats.exec.host_instrs > 0);
        assert!(e.stats.exec.translation_cycles > 0);
    }

    #[test]
    fn out_of_fuel_reported() {
        let src = "int main() { int s = 0; while (s < 100000000) { s += 1; } return s; }";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        let mut e = Engine::new(&image, Translator::Tcg);
        assert_eq!(e.run(10_000), RunOutcome::OutOfFuel);
    }

    const LOOPY: &str = "
int main() {
  int s = 0;
  for (int i = 0; i < 200; i += 1) {
    if (i & 1) { s += i; } else { s ^= 5; }
  }
  return s & 0xffff;
}";

    #[test]
    fn chaining_links_blocks_and_matches_unchained() {
        let image = build_arm_image(LOOPY, &Options::o2()).unwrap();
        // Superblocks off: this test pins chained == unchained down to
        // the host instruction count, which regions deliberately shrink.
        let mut chained =
            Engine::new(&image, Translator::Tcg).with_chaining(true).with_superblocks(None);
        assert_eq!(chained.run(50_000_000), RunOutcome::Halted);
        let mut plain =
            Engine::new(&image, Translator::Tcg).with_chaining(false).with_superblocks(None);
        assert_eq!(plain.run(50_000_000), RunOutcome::Halted);
        // Chaining is live.
        assert!(chained.stats.chain_links() > 0, "direct branches were linked");
        assert!(chained.stats.chained_execs() > 0, "chained entries actually ran");
        assert!(chained.live_links() > 0);
        assert_eq!(plain.stats.chain_links(), 0);
        assert_eq!(plain.stats.chained_execs(), 0);
        // Bit-identical architectural results and accounting.
        for r in ArmReg::ALL {
            assert_eq!(chained.guest_reg(r), plain.guest_reg(r), "{r:?}");
        }
        assert_eq!(chained.stats.guest_dyn(), plain.stats.guest_dyn());
        assert_eq!(chained.stats.block_execs(), plain.stats.block_execs());
        assert_eq!(chained.stats.exec.host_instrs, plain.stats.exec.host_instrs);
        assert_eq!(chained.stats.exec.exec_cycles, plain.stats.exec.exec_cycles);
        assert_eq!(
            chained.state.mem.first_difference(&plain.state.mem, |_| false),
            None,
            "guest memory identical"
        );
        // Chaining replaces dispatcher entries: far fewer lookups.
        assert!(
            chained.stats.ibtc_hits() + chained.stats.ibtc_misses()
                < plain.stats.ibtc_hits() + plain.stats.ibtc_misses(),
            "chained runs consult the dispatcher less"
        );
    }

    #[test]
    fn ibtc_serves_repeat_dispatches() {
        let image = build_arm_image(LOOPY, &Options::o2()).unwrap();
        // Without chaining every loop iteration goes through the
        // dispatcher, so the IBTC must carry almost all of them.
        let mut e = Engine::new(&image, Translator::Tcg).with_chaining(false);
        assert_eq!(e.run(50_000_000), RunOutcome::Halted);
        assert!(e.stats.ibtc_hits() > 0, "repeat dispatches hit the IBTC");
        assert!(
            e.stats.ibtc_hits() > e.stats.ibtc_misses(),
            "hits dominate: {} vs {}",
            e.stats.ibtc_hits(),
            e.stats.ibtc_misses()
        );
    }

    #[test]
    fn self_loop_chains_to_itself() {
        // A one-block countdown loop ends in a conditional branch back to
        // its own pc: the block must link to itself and still terminate.
        let src = "int main() { int s = 100000; while (s > 0) { s -= 1; } return s; }";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        let mut e = Engine::new(&image, Translator::Tcg).with_chaining(true);
        assert_eq!(e.run(50_000_000), RunOutcome::Halted);
        assert_eq!(e.guest_reg(ArmReg::R0), 0);
        assert!(e.stats.chained_execs() > 0);
    }

    #[test]
    fn chained_out_of_fuel_accounting_matches() {
        let src = "int main() { int s = 0; while (s < 100000000) { s += 1; } return s; }";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        for fuel in [10_000u64, 10_001, 12_345] {
            let mut a =
                Engine::new(&image, Translator::Tcg).with_chaining(true).with_superblocks(None);
            assert_eq!(a.run(fuel), RunOutcome::OutOfFuel);
            let mut b =
                Engine::new(&image, Translator::Tcg).with_chaining(false).with_superblocks(None);
            assert_eq!(b.run(fuel), RunOutcome::OutOfFuel);
            assert_eq!(a.stats.guest_dyn(), b.stats.guest_dyn(), "fuel={fuel}");
            assert_eq!(a.stats.exec.host_instrs, b.stats.exec.host_instrs, "fuel={fuel}");
            assert_eq!(a.guest_reg(ArmReg::R0), b.guest_reg(ArmReg::R0), "fuel={fuel}");
        }
    }

    #[test]
    fn superblocks_form_and_match_plain_accounting() {
        let image = build_arm_image(LOOPY, &Options::o2()).unwrap();
        let mut sb =
            Engine::new(&image, Translator::Tcg).with_chaining(true).with_superblocks(Some(4));
        assert_eq!(sb.run(50_000_000), RunOutcome::Halted);
        let mut plain =
            Engine::new(&image, Translator::Tcg).with_chaining(true).with_superblocks(None);
        assert_eq!(plain.run(50_000_000), RunOutcome::Halted);
        // Regions actually formed and ran. (None need survive to the
        // end: translating the loop's cold exit path re-patches a member
        // and invalidates, which is the protocol working as designed.)
        assert!(sb.stats.sb_formed() > 0, "hot chain crossed the threshold");
        assert!(sb.stats.sb_execs() > 0, "region parts executed");
        assert_eq!(plain.stats.sb_formed(), 0);
        assert_eq!(plain.stats.sb_execs(), 0);
        // Architectural state and accounting are bit-identical; only the
        // host instruction count shrinks.
        for r in ArmReg::ALL {
            assert_eq!(sb.guest_reg(r), plain.guest_reg(r), "{r:?}");
        }
        assert_eq!(
            sb.state.mem.first_difference(&plain.state.mem, |_| false),
            None,
            "guest memory identical"
        );
        assert_eq!(sb.stats.guest_dyn(), plain.stats.guest_dyn());
        assert_eq!(sb.stats.guest_dyn_covered(), plain.stats.guest_dyn_covered());
        assert_eq!(sb.stats.block_execs(), plain.stats.block_execs());
        assert_eq!(sb.stats.chained_execs(), plain.stats.chained_execs());
        assert_eq!(sb.stats.ibtc_hits(), plain.stats.ibtc_hits());
        assert_eq!(sb.stats.ibtc_misses(), plain.stats.ibtc_misses());
        assert_eq!(sb.stats.blocks(), plain.stats.blocks());
        assert!(
            sb.stats.exec.host_instrs <= plain.stats.exec.host_instrs,
            "regions never add host work: {} vs {}",
            sb.stats.exec.host_instrs,
            plain.stats.exec.host_instrs
        );
    }

    #[test]
    fn superblock_region_survives_self_loop_and_halts() {
        // A one-block countdown loop unrolls into a self-loop region; it
        // must still terminate with the right result.
        let src = "int main() { int s = 100000; while (s > 0) { s -= 1; } return s; }";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        let mut e =
            Engine::new(&image, Translator::Tcg).with_chaining(true).with_superblocks(Some(2));
        assert_eq!(e.run(50_000_000), RunOutcome::Halted);
        assert_eq!(e.guest_reg(ArmReg::R0), 0);
        assert!(e.stats.sb_formed() > 0);
        assert!(e.stats.sb_execs() > 0);
    }

    /// A program whose cold first call translates every exit path, so a
    /// hot second call forms regions over *stable* links that survive to
    /// the end of the run.
    const TWO_PHASE: &str = "
int work(int n) {
  int s = 0;
  for (int i = 0; i < n; i += 1) { s = s + ((i & 3) ^ n); }
  return s;
}
int main() { int a = work(3); int b = work(5000); return (a + b) & 0xffff; }";

    #[test]
    fn purging_a_member_invalidates_the_region() {
        let image = build_arm_image(TWO_PHASE, &Options::o2()).unwrap();
        let mut e =
            Engine::new(&image, Translator::Tcg).with_chaining(true).with_superblocks(Some(4));
        assert_eq!(e.run(50_000_000), RunOutcome::Halted);
        assert!(e.stats.sb_formed() > 0);
        assert!(e.live_regions() > 0, "stable-link regions survive the run");
        // Purge a block that is a member of some live region.
        let (&member, rids) = e.sb_members.iter().next().expect("live regions have members");
        let rid = rids[0];
        let head = e.superblocks[rid as usize].head;
        let invalidated_before = e.stats.sb_invalidated();
        e.purge_block(member);
        assert!(e.superblocks[rid as usize].dead, "region died with its member");
        assert_eq!(e.blocks[head as usize].sb_head, NO_SB, "head redirect removed");
        assert!(e.stats.sb_invalidated() > invalidated_before);
        assert!(
            e.superblocks[rid as usize].parts.is_empty(),
            "dead region dropped its code clones"
        );
    }

    /// A synthetic non-exit block for chaining tests: code that *looks
    /// like* an exit stub (`mov $imm, %eax; ret` — e.g. a constant-folded
    /// indirect branch) but declares no patchable exits.
    fn mov_ret_block(pc: u32, target: u32, exits: Vec<(usize, u32)>) -> CachedBlock {
        CachedBlock {
            pc,
            guest_bytes: 4,
            csum: 0,
            code: Rc::new(vec![X86Instr::mov_imm(Gpr::Eax, target as i32), X86Instr::Ret]),
            guest_len: 1,
            covered: 0,
            execs: 0,
            interp_one: false,
            hits: Rc::from(Vec::new()),
            exits,
            links_out: Vec::new(),
            links_in: Vec::new(),
            dead: false,
            sb_head: NO_SB,
        }
    }

    #[test]
    fn literal_mov_ret_is_not_a_patchable_exit() {
        // Regression: the engine used to pattern-match any
        // `mov $imm32, %eax; ret` pair as a chainable direct exit, which
        // would silently mis-patch a coincidental literal in rule- or
        // JIT-emitted code into a ChainJmp. Exits are now declared by the
        // lowerer; an undeclared lookalike must stay a plain `ret`.
        let image = build_arm_image("int main() { return 0; }", &Options::o2()).unwrap();
        let mut e = Engine::new(&image, Translator::Tcg).with_chaining(true);
        let target_pc = image.entry;
        let tid = e.lookup_or_translate(target_pc);
        let amb = e.insert_block(mov_ret_block(0x0900_0000, target_pc, Vec::new()));
        assert!(
            e.blocks[amb as usize].links_out.is_empty(),
            "undeclared mov/ret lookalike must not be linked"
        );
        assert!(matches!(e.blocks[amb as usize].code[1], X86Instr::Ret));
        // Control: an identical block that *declares* the exit chains.
        let decl = e.insert_block(mov_ret_block(0x0a00_0000, target_pc, vec![(1, target_pc)]));
        assert_eq!(e.blocks[decl as usize].links_out, vec![(1, tid)]);
        assert!(
            matches!(e.blocks[decl as usize].code[1], X86Instr::ChainJmp { block } if block == tid)
        );
    }

    #[test]
    fn ibtc_never_dispatches_a_purged_block() {
        // Regression: translate → purge → re-dispatch at a pc whose IBTC
        // slot still names the purged entry. The purge scrubs the IBTC,
        // and — the release-build invariant this test pins — even a stale
        // slot that survived (the bug used to be a debug_assert only)
        // must not dispatch a tombstoned block.
        let image = build_arm_image(LOOPY, &Options::o2()).unwrap();
        let mut e = Engine::new(&image, Translator::Tcg).with_chaining(true);
        assert_eq!(e.run(50_000_000), RunOutcome::Halted);
        let (slot, (pc, id)) = e
            .ibtc
            .iter()
            .copied()
            .enumerate()
            .find(|&(_, (_, id))| id != NO_BLOCK)
            .expect("a hot run leaves IBTC entries");
        e.purge_block(id);
        assert_eq!(e.ibtc[slot], (0, NO_BLOCK), "purge scrubs the IBTC by id");
        // Adversarially resurrect the stale entry, as a missed scrub
        // would leave it, then re-dispatch at an aliasing pc.
        e.ibtc[slot] = (pc, id);
        let fresh = e.lookup_or_translate(pc);
        assert_ne!(fresh, id, "dead block must not be served from the IBTC");
        assert!(!e.blocks[fresh as usize].dead);
        assert_eq!(e.blocks[fresh as usize].pc, pc);
        assert_eq!(e.ibtc[slot], (pc, fresh), "stale entry replaced on miss");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// IBTC slot aliasing: pcs `IBTC_SIZE*4` apart map to the same
        /// direct-mapped slot; repeated dispatches of both must round-trip
        /// to their own blocks without cross-contamination, chained and
        /// unchained.
        #[test]
        fn ibtc_slot_aliasing_round_trips(
            base in 0u32..1024,
            k in 1u32..8,
            chained in proptest::prelude::any::<bool>(),
        ) {
            let image = build_arm_image("int main() { return 0; }", &Options::o2()).unwrap();
            let mut e = Engine::new(&image, Translator::Tcg).with_chaining(chained);
            let pc_a = 0x0100_0000 + base * 4;
            let pc_b = pc_a + k * (IBTC_SIZE as u32) * 4;
            proptest::prop_assert_eq!(
                ((pc_a >> 2) as usize) & (IBTC_SIZE - 1),
                ((pc_b >> 2) as usize) & (IBTC_SIZE - 1),
                "aliasing precondition"
            );
            let a1 = e.lookup_or_translate(pc_a);
            let b1 = e.lookup_or_translate(pc_b);
            let a2 = e.lookup_or_translate(pc_a);
            let b2 = e.lookup_or_translate(pc_b);
            proptest::prop_assert_eq!(a1, a2, "pc_a round-trips");
            proptest::prop_assert_eq!(b1, b2, "pc_b round-trips");
            proptest::prop_assert_ne!(a1, b1, "aliasing pcs get distinct blocks");
            proptest::prop_assert_eq!(e.blocks[a1 as usize].pc, pc_a);
            proptest::prop_assert_eq!(e.blocks[b1 as usize].pc, pc_b);
        }
    }
}
