//! The DBT execution engine: code cache, dispatcher, translation-cost
//! model, and the interpreter helper fallback.

use crate::backend::lower_block;
use crate::env::{env_mem, reg_mem, FlagId, ENV_BASE, FLAGMODE_OFFSET, HOST_STACK_TOP};
use crate::jit::optimize_block;
use crate::rules::block_supported;
use crate::stats::DbtStats;
use crate::tcg::{decode_block, translate_block};
use ldbt_arm::{encode::decode, ArmEvent, ArmReg, ArmState};
use ldbt_compiler::ArmImage;
use ldbt_isa::{CostModel, Memory, Width};
use ldbt_learn::{FaultPlan, RuleSet};
use ldbt_x86::interp::{run_seq, SeqExit};
use ldbt_x86::{Gpr, X86Instr, X86State};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::OnceLock;

/// The `LDBT_WATCHDOG` sampling period: `None` disables the watchdog
/// (unset, `0`, or `off`), `on`/`1` checks every rule-covered dispatch,
/// `N` checks every Nth.
fn watchdog_from_env() -> Option<u64> {
    static WATCHDOG: OnceLock<Option<u64>> = OnceLock::new();
    *WATCHDOG.get_or_init(|| match std::env::var("LDBT_WATCHDOG") {
        Ok(v) => match v.trim() {
            "" | "0" | "off" => None,
            "on" => Some(1),
            s => s.parse::<u64>().ok().filter(|n| *n > 0),
        },
        Err(_) => None,
    })
}

/// Which translator the engine uses.
#[derive(Debug, Clone)]
pub enum Translator {
    /// Baseline QEMU-style TCG translation.
    Tcg,
    /// Rule-based translation with TCG fallback (the paper's prototype).
    Rules(Rc<RuleSet>),
    /// Rule-based translation without the §5 lazy host-flag save (the
    /// condition-code ablation: flag-live-out rules are skipped).
    RulesNoLazyFlags(Rc<RuleSet>),
    /// HQEMU-style optimizing JIT backend.
    Jit,
}

/// Modeled translation costs, in cycles.
///
/// Only the ratios matter for the reproduced shapes: rule lookup and
/// emission are cheap ("much faster than a general translation that goes
/// through an IR"), the optimizing JIT is two orders of magnitude more
/// expensive per op (LLVM in the paper).
#[derive(Debug, Clone)]
pub struct TransCost {
    /// Fixed cost per translated block.
    pub block_base: u64,
    /// Cost per TCG micro-op generated.
    pub per_tcg_op: u64,
    /// Cost per rule hash-table probe.
    pub per_lookup: u64,
    /// Cost per host instruction emitted from a rule.
    pub per_rule_instr: u64,
    /// Fixed cost per block for the optimizing JIT.
    pub jit_block_base: u64,
    /// Cost per micro-op for the optimizing JIT.
    pub jit_per_op: u64,
    /// Cost of one interpreter-helper step.
    pub helper: u64,
}

impl Default for TransCost {
    fn default() -> Self {
        TransCost {
            block_base: 60,
            per_tcg_op: 12,
            per_lookup: 5,
            per_rule_instr: 10,
            jit_block_base: 1_200,
            jit_per_op: 110,
            helper: 80,
        }
    }
}

struct CachedBlock {
    code: Rc<Vec<X86Instr>>,
    guest_len: u64,
    covered: u64,
    execs: u64,
    /// Interpret exactly one guest instruction instead of running code.
    interp_one: bool,
    hits: Vec<(usize, u64)>,
}

/// How an engine run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Guest executed `svc #0`.
    Halted,
    /// The fuel budget ran out.
    OutOfFuel,
    /// Translated code misbehaved (dispatcher protocol violation).
    Fault,
}

/// The dynamic binary translator.
pub struct Engine {
    /// Host machine state; its memory holds the guest image, the env, and
    /// the host stack.
    pub state: X86State,
    translator: Translator,
    cache: HashMap<u32, CachedBlock>,
    /// Statistics for the experiment harness.
    pub stats: DbtStats,
    cost: CostModel,
    tcost: TransCost,
    entry: u32,
    pc: u32,
    /// Watchdog sampling period: check every Nth rule-covered dispatch.
    watchdog: Option<u64>,
    watchdog_tick: u64,
    /// Blocks forced onto the TCG path after a quarantine.
    force_tcg: HashSet<u32>,
    /// Translation-time fault injection (`LDBT_FAULT`).
    fault: Option<FaultPlan>,
}

impl Engine {
    /// Create an engine for a linked guest image.
    ///
    /// The watchdog period and fault plan default from the
    /// `LDBT_WATCHDOG` / `LDBT_FAULT` environment; [`Engine::with_watchdog`]
    /// and [`Engine::with_fault`] override them explicitly.
    pub fn new(image: &ArmImage, translator: Translator) -> Engine {
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut state = X86State::new();
        state.mem = mem;
        Engine {
            state,
            translator,
            cache: HashMap::new(),
            stats: DbtStats::new(),
            cost: CostModel::default(),
            tcost: TransCost::default(),
            entry: image.entry,
            pc: image.entry,
            watchdog: watchdog_from_env(),
            watchdog_tick: 0,
            force_tcg: HashSet::new(),
            fault: ldbt_learn::fault::env_plan(),
        }
    }

    /// Override the cycle cost model.
    pub fn with_cost(mut self, cost: CostModel, tcost: TransCost) -> Engine {
        self.cost = cost;
        self.tcost = tcost;
        self
    }

    /// Override the watchdog sampling period (`None` disables it).
    pub fn with_watchdog(mut self, period: Option<u64>) -> Engine {
        self.watchdog = period;
        self
    }

    /// Override the translation fault plan (`None` disables injection).
    pub fn with_fault(mut self, fault: Option<FaultPlan>) -> Engine {
        self.fault = fault;
        self
    }

    /// Read a guest register from the env.
    pub fn guest_reg(&self, r: ArmReg) -> u32 {
        self.state.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32)
    }

    /// The current guest PC.
    pub fn guest_pc(&self) -> u32 {
        self.pc
    }

    fn translate(&mut self, pc: u32) {
        let block = decode_block(&self.state.mem, pc);
        self.stats.blocks += 1;
        if block.instrs.is_empty() {
            // Undecodable: fault block.
            self.cache.insert(
                pc,
                CachedBlock {
                    code: Rc::new(vec![X86Instr::Halt]),
                    guest_len: 0,
                    covered: 0,
                    execs: 0,
                    interp_one: false,
                    hits: vec![],
                },
            );
            return;
        }
        // Rule-based translation path.
        let rules_cfg = match &self.translator {
            Translator::Rules(r) => Some((Rc::clone(r), true)),
            Translator::RulesNoLazyFlags(r) => Some((Rc::clone(r), false)),
            _ => None,
        };
        if let Some((rules, lazy_flags)) = rules_cfg {
            if block_supported(&block) && !self.force_tcg.contains(&pc) {
                let low = crate::rules::lower_block_with_rules_fault(
                    &self.state.mem,
                    &block,
                    &rules,
                    lazy_flags,
                    self.fault,
                );
                let covered = low.covered.iter().filter(|c| **c).count() as u64;
                self.stats.exec.translation_cycles += self.tcost.block_base
                    + self.tcost.per_lookup * low.lookups as u64
                    + self.tcost.per_rule_instr * low.rule_instrs as u64
                    + self.tcost.per_tcg_op * low.tcg_ops as u64;
                self.stats.rule_lookups += low.lookups as u64;
                self.stats.guest_static += block.instrs.len() as u64;
                self.stats.guest_static_covered += covered;
                self.cache.insert(
                    pc,
                    CachedBlock {
                        code: Rc::new(low.code),
                        guest_len: block.instrs.len() as u64,
                        covered,
                        execs: 0,
                        interp_one: false,
                        hits: low.hits,
                    },
                );
                return;
            }
        }
        // TCG / JIT path.
        let tcg = translate_block(&self.state.mem, &block);
        if tcg.unsupported_at == Some(0) {
            // The first instruction needs the interpreter helper.
            self.cache.insert(
                pc,
                CachedBlock {
                    code: Rc::new(Vec::new()),
                    guest_len: 1,
                    covered: 0,
                    execs: 0,
                    interp_one: true,
                    hits: vec![],
                },
            );
            self.stats.guest_static += 1;
            return;
        }
        let translated_len = match tcg.unsupported_at {
            Some(k) => k as u64,
            None => block.instrs.len() as u64,
        };
        let (code, op_count) = match self.translator {
            Translator::Jit => {
                let opt = optimize_block(&tcg);
                let code = crate::backend::lower_block_opts(&opt, true, 3);
                self.stats.exec.translation_cycles +=
                    self.tcost.jit_block_base + self.tcost.jit_per_op * tcg.ops.len() as u64;
                (code, tcg.ops.len())
            }
            _ => {
                let code = lower_block(&tcg);
                self.stats.exec.translation_cycles +=
                    self.tcost.block_base + self.tcost.per_tcg_op * tcg.ops.len() as u64;
                (code, tcg.ops.len())
            }
        };
        let _ = op_count;
        self.stats.guest_static += translated_len;
        self.cache.insert(
            pc,
            CachedBlock {
                code: Rc::new(code),
                guest_len: translated_len,
                covered: 0,
                execs: 0,
                interp_one: false,
                hits: vec![],
            },
        );
    }

    /// Interpret a single guest instruction against the env (the "helper"
    /// path for instructions the translators do not model).
    fn helper_step(&mut self, pc: u32) -> Result<u32, RunOutcome> {
        let word = self.state.mem.read(pc, Width::W32);
        let Ok(instr) = decode(word) else { return Err(RunOutcome::Fault) };
        // Build an ArmState view over the env.
        let mem = std::mem::take(&mut self.state.mem);
        let mut arm = ArmState { regs: [0; 16], flags: Default::default(), mem };
        for r in ArmReg::ALL {
            arm.regs[r.index()] = arm.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32);
        }
        arm.flags.n = arm.mem.read(ENV_BASE + FlagId::N.offset(), Width::W32) != 0;
        arm.flags.z = arm.mem.read(ENV_BASE + FlagId::Z.offset(), Width::W32) != 0;
        arm.flags.c = arm.mem.read(ENV_BASE + FlagId::C.offset(), Width::W32) != 0;
        arm.flags.v = arm.mem.read(ENV_BASE + FlagId::V.offset(), Width::W32) != 0;
        let event = arm.exec(&instr);
        let next = pc.wrapping_add(4);
        let next_pc = match event {
            ArmEvent::Next => next,
            ArmEvent::Branch(off) => next.wrapping_add((off as u32).wrapping_mul(4)),
            ArmEvent::Call(off) => {
                arm.set_reg(ArmReg::Lr, next);
                next.wrapping_add((off as u32).wrapping_mul(4))
            }
            ArmEvent::Indirect(a) => a,
            ArmEvent::Syscall(0) => {
                // Halt: write back and signal.
                for r in ArmReg::ALL {
                    arm.mem.write(ENV_BASE + 4 * r.index() as u32, arm.regs[r.index()], Width::W32);
                }
                self.state.mem = std::mem::take(&mut arm.mem);
                return Err(RunOutcome::Halted);
            }
            ArmEvent::Syscall(_) => next,
        };
        for r in ArmReg::ALL {
            arm.mem.write(ENV_BASE + 4 * r.index() as u32, arm.regs[r.index()], Width::W32);
        }
        arm.mem.write(ENV_BASE + FlagId::N.offset(), arm.flags.n as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::Z.offset(), arm.flags.z as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::C.offset(), arm.flags.c as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::V.offset(), arm.flags.v as u32, Width::W32);
        arm.mem.write(ENV_BASE + crate::env::FLAGMODE_OFFSET, 0, Width::W32);
        self.state.mem = std::mem::take(&mut arm.mem);
        self.stats.exec.exec_cycles += self.tcost.helper;
        self.stats.helper_steps += 1;
        Ok(next_pc)
    }

    /// Run until the guest halts or `fuel` host instructions have been
    /// executed.
    pub fn run(&mut self, fuel: u64) -> RunOutcome {
        self.state.set_reg(Gpr::Esp, HOST_STACK_TOP);
        loop {
            if self.stats.exec.host_instrs >= fuel {
                return RunOutcome::OutOfFuel;
            }
            let pc = self.pc;
            if !self.cache.contains_key(&pc) {
                self.translate(pc);
            }
            let (code, interp_one, guest_len, covered, hits) = {
                let b = self.cache.get_mut(&pc).expect("just translated");
                b.execs += 1;
                (Rc::clone(&b.code), b.interp_one, b.guest_len, b.covered, b.hits.clone())
            };
            self.stats.block_execs += 1;
            self.stats.guest_dyn += guest_len;
            self.stats.guest_dyn_covered += covered;
            for &(len, key) in &hits {
                self.stats.hit_rules.insert(key, len);
            }
            if interp_one {
                match self.helper_step(pc) {
                    Ok(next) => {
                        self.pc = next;
                        continue;
                    }
                    Err(out) => return out,
                }
            }
            if code.is_empty() {
                return RunOutcome::Fault;
            }
            // Watchdog: sample every Nth dispatch of a rule-covered block;
            // snapshot the pre-state so the block can be re-run through the
            // ARM interpreter afterwards.
            let check_now = match self.watchdog {
                Some(period) if !hits.is_empty() => {
                    self.watchdog_tick += 1;
                    self.watchdog_tick.is_multiple_of(period)
                }
                _ => false,
            };
            let pre_mem = if check_now { Some(self.state.mem.clone()) } else { None };
            let remaining = fuel - self.stats.exec.host_instrs;
            let exit = run_seq(&mut self.state, &code, remaining, &self.cost, &mut self.stats.exec);
            match exit {
                SeqExit::Returned => {
                    self.pc = self.state.reg(Gpr::Eax);
                    if let Some(pre) = pre_mem {
                        if let Some(out) = self.watchdog_check(pc, &hits, pre) {
                            return out;
                        }
                    }
                }
                SeqExit::Halted => return RunOutcome::Halted,
                SeqExit::OutOfFuel => return RunOutcome::OutOfFuel,
                SeqExit::JumpedOut(_) | SeqExit::FellThrough | SeqExit::Faulted => {
                    return RunOutcome::Fault
                }
            }
        }
    }

    /// Re-execute a rule-covered block from its pre-dispatch memory
    /// snapshot through the ARM interpreter and compare architectural
    /// state. On mismatch, quarantine every rule applied in the block
    /// (tombstoned in the rule set), drop the affected translations from
    /// the code cache, force this block onto the TCG path, and adopt the
    /// interpreter's (correct) state so execution continues unharmed.
    ///
    /// Returns `Some(outcome)` only when the interpreter reference run
    /// ends the program (`svc #0`).
    fn watchdog_check(
        &mut self,
        pc: u32,
        hits: &[(usize, u64)],
        pre: Memory,
    ) -> Option<RunOutcome> {
        self.stats.watchdog_checks += 1;
        let block = decode_block(&pre, pc);
        if block.instrs.is_empty() {
            return None;
        }
        // Interpreter reference run over the snapshot.
        let mut arm = ArmState { regs: [0; 16], flags: Default::default(), mem: pre };
        for r in ArmReg::ALL {
            arm.regs[r.index()] = arm.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32);
        }
        let flagmode = arm.mem.read(ENV_BASE + FLAGMODE_OFFSET, Width::W32);
        if flagmode & 1 != 0 {
            // §5 lazy flag save pending: the env NZCV slots are stale and
            // the live flags sit in the saved host EFLAGS word. Materialize
            // them the way the flag-mode dispatch stub does (N↔SF, Z↔ZF,
            // V↔OF; mode bit 1 selects the carry polarity).
            let w = arm.mem.read(ENV_BASE + crate::env::HOSTFLAGS_OFFSET, Width::W32);
            let f = ldbt_x86::EFlags::from_word(w);
            arm.flags.n = f.sf;
            arm.flags.z = f.zf;
            arm.flags.v = f.of;
            arm.flags.c = if flagmode & 2 != 0 { f.cf } else { !f.cf };
        } else {
            arm.flags.n = arm.mem.read(ENV_BASE + FlagId::N.offset(), Width::W32) != 0;
            arm.flags.z = arm.mem.read(ENV_BASE + FlagId::Z.offset(), Width::W32) != 0;
            arm.flags.c = arm.mem.read(ENV_BASE + FlagId::C.offset(), Width::W32) != 0;
            arm.flags.v = arm.mem.read(ENV_BASE + FlagId::V.offset(), Width::W32) != 0;
        }
        let mut halted = false;
        let mut next_pc = pc;
        for (idx, instr) in block.instrs.iter().enumerate() {
            let fallthrough = pc.wrapping_add(4 * idx as u32).wrapping_add(4);
            next_pc = fallthrough;
            match arm.exec(instr) {
                ArmEvent::Next => {}
                ArmEvent::Syscall(0) => {
                    halted = true;
                    break;
                }
                ArmEvent::Syscall(_) => {}
                ArmEvent::Branch(off) => {
                    next_pc = fallthrough.wrapping_add((off as u32).wrapping_mul(4));
                    break;
                }
                ArmEvent::Call(off) => {
                    arm.set_reg(ArmReg::Lr, fallthrough);
                    next_pc = fallthrough.wrapping_add((off as u32).wrapping_mul(4));
                    break;
                }
                ArmEvent::Indirect(a) => {
                    next_pc = a;
                    break;
                }
            }
        }
        // Compare guest-visible state: r0–r14 env slots, the next PC, and
        // guest memory. Flags are excluded (the translated side may hold
        // them in host EFLAGS legitimately); the env + host-stack region
        // is host-private and also excluded.
        let regs_ok = ArmReg::ALL.iter().all(|r| {
            matches!(r, ArmReg::Pc)
                || self.state.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32)
                    == arm.regs[r.index()]
        });
        let pc_ok = !halted && self.pc == next_pc;
        let mem_ok = self
            .state
            .mem
            .first_difference(&arm.mem, |addr| addr >= HOST_STACK_TOP - 0x1_0000)
            .is_none();
        if regs_ok && pc_ok && mem_ok {
            return None;
        }
        // Mismatch: quarantine every rule applied in this block (the
        // watchdog cannot attribute the divergence to one application, so
        // it is conservative), purge affected translations, and continue
        // from the interpreter's state.
        let mut newly: HashSet<u64> = HashSet::new();
        if let Translator::Rules(rules) | Translator::RulesNoLazyFlags(rules) = &mut self.translator
        {
            let rs = Rc::make_mut(rules);
            for &(_, key) in hits {
                if rs.tombstone(key) {
                    newly.insert(key);
                    self.stats.quarantined_rules += 1;
                }
            }
        }
        self.force_tcg.insert(pc);
        self.cache.retain(|_, b| !b.hits.iter().any(|&(_, k)| newly.contains(&k)));
        self.cache.remove(&pc);
        // Adopt the interpreter's state: write its registers and flags
        // back into the env and take its memory.
        for r in ArmReg::ALL {
            arm.mem.write(ENV_BASE + 4 * r.index() as u32, arm.regs[r.index()], Width::W32);
        }
        arm.mem.write(ENV_BASE + FlagId::N.offset(), arm.flags.n as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::Z.offset(), arm.flags.z as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::C.offset(), arm.flags.c as u32, Width::W32);
        arm.mem.write(ENV_BASE + FlagId::V.offset(), arm.flags.v as u32, Width::W32);
        arm.mem.write(ENV_BASE + FLAGMODE_OFFSET, 0, Width::W32);
        self.state.mem = std::mem::take(&mut arm.mem);
        if halted {
            return Some(RunOutcome::Halted);
        }
        self.pc = next_pc;
        None
    }

    /// Reset execution state (keeping the translated-code cache) so the
    /// same image can be run again.
    pub fn reset(&mut self) {
        self.pc = self.entry;
    }

    /// Number of translated blocks in the code cache.
    pub fn cache_blocks(&self) -> usize {
        self.cache.len()
    }

    /// The env slot address of a guest register (for tests/diagnostics).
    pub fn reg_slot(r: ArmReg) -> u32 {
        (reg_mem(r).disp) as u32
    }

    /// The env slot address of a flag.
    pub fn flag_slot(f: FlagId) -> u32 {
        (env_mem(f.offset()).disp) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbt_compiler::{link::build_arm_image, Options};

    fn run_both_ways(src: &str) -> (u32, u32) {
        let image = build_arm_image(src, &Options::o2()).unwrap();
        // Reference: the ARM interpreter.
        let mut m = ldbt_arm::ArmMachine::new();
        image.load_into(&mut m.state.mem);
        m.state.regs[15] = image.entry;
        assert_eq!(m.run(50_000_000), ldbt_arm::ArmStop::Halt);
        let want = m.state.reg(ArmReg::R0);
        // DBT.
        let mut e = Engine::new(&image, Translator::Tcg);
        assert_eq!(e.run(200_000_000), RunOutcome::Halted);
        (want, e.guest_reg(ArmReg::R0))
    }

    #[test]
    fn simple_program_matches_interpreter() {
        let (want, got) = run_both_ways("int main() { return 41 + 1; }");
        assert_eq!(want, got);
        assert_eq!(got, 42);
    }

    #[test]
    fn loops_and_branches_match() {
        let src = "
int main() {
  int s = 0;
  for (int i = 1; i <= 100; i += 1) {
    if (i & 1) { s += i; } else { s -= 1; }
  }
  return s;
}";
        let (want, got) = run_both_ways(src);
        assert_eq!(want, got);
    }

    #[test]
    fn memory_and_calls_match() {
        let src = "
int a[32];
int sum(int n) {
  int s = 0;
  for (int i = 0; i < n; i += 1) { s += a[i]; }
  return s;
}
int main() {
  for (int i = 0; i < 32; i += 1) { a[i] = i * 3; }
  return sum(32) & 0xffff;
}";
        let (want, got) = run_both_ways(src);
        assert_eq!(want, got);
    }

    #[test]
    fn recursion_matches() {
        let src = "
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() { return fib(14); }";
        let (want, got) = run_both_ways(src);
        assert_eq!(want, got);
        assert_eq!(got, 377);
    }

    #[test]
    fn code_cache_reuses_blocks() {
        let src = "
int main() {
  int s = 0;
  for (int i = 0; i < 50; i += 1) { s += i; }
  return s;
}";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        let mut e = Engine::new(&image, Translator::Tcg);
        assert_eq!(e.run(10_000_000), RunOutcome::Halted);
        assert!(e.stats.block_execs > e.stats.blocks, "loop blocks re-executed");
        assert!(e.cache_blocks() as u64 == e.stats.blocks);
    }

    #[test]
    fn jit_translator_matches_tcg() {
        let src = "
int h(int x) { return (x ^ 2166136261) * 599; }
int main() {
  int acc = 0;
  for (int i = 0; i < 40; i += 1) { acc += h(i) & 1023; }
  return acc;
}";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        let mut tcg = Engine::new(&image, Translator::Tcg);
        assert_eq!(tcg.run(50_000_000), RunOutcome::Halted);
        let mut jit = Engine::new(&image, Translator::Jit);
        assert_eq!(jit.run(50_000_000), RunOutcome::Halted);
        assert_eq!(tcg.guest_reg(ArmReg::R0), jit.guest_reg(ArmReg::R0));
        assert!(
            jit.stats.exec.host_instrs < tcg.stats.exec.host_instrs,
            "jit code is leaner: {} vs {}",
            jit.stats.exec.host_instrs,
            tcg.stats.exec.host_instrs
        );
        assert!(
            jit.stats.exec.translation_cycles > tcg.stats.exec.translation_cycles,
            "jit pays for it in translation time"
        );
    }

    #[test]
    fn predicated_code_via_helper_or_select() {
        // Comparison-as-value compiles to a predicated mov: must still run
        // correctly under the DBT.
        let src = "int main() { int a = 5; int b = 9; return (a < b) + 2 * (a == 5); }";
        let (want, got) = run_both_ways(src);
        assert_eq!(want, got);
        assert_eq!(got, 3);
    }

    #[test]
    fn guest_dyn_instr_accounting() {
        let src = "int main() { return 7; }";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        let mut e = Engine::new(&image, Translator::Tcg);
        assert_eq!(e.run(1_000_000), RunOutcome::Halted);
        // _start (4 instrs incl. svc) + main body.
        assert!(e.stats.guest_dyn >= 6, "{}", e.stats.guest_dyn);
        assert!(e.stats.exec.host_instrs > 0);
        assert!(e.stats.exec.translation_cycles > 0);
    }

    #[test]
    fn out_of_fuel_reported() {
        let src = "int main() { int s = 0; while (s < 100000000) { s += 1; } return s; }";
        let image = build_arm_image(src, &Options::o2()).unwrap();
        let mut e = Engine::new(&image, Translator::Tcg);
        assert_eq!(e.run(10_000), RunOutcome::OutOfFuel);
    }
}
