//! Process-wide shared rule generations (DESIGN.md §15).
//!
//! A [`RuleCell`] holds the current immutable [`RuleSet`] generation for a
//! group of engines (tenants). Readers keep a cached `Arc<RuleSet>` inside
//! their translator and only compare one atomic generation counter per
//! dispatcher entry — the hot path never takes a lock. Publication
//! (quarantine, repair, fault installation, a background learner) goes
//! through [`RuleCell::publish_with`], which clones the current set, applies
//! the mutation, swaps the `Arc`, and bumps the generation. Engines notice
//! the bump at their next dispatcher entry and adopt the new generation,
//! purging only the translated blocks whose rule applications went stale.
//!
//! The cell itself is `Send + Sync`; the engines sharing it deliberately are
//! not (see the trait probes in this module's tests).

use ldbt_learn::RuleSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Atomic-swap handle for the process-wide immutable [`RuleSet`].
///
/// The generation counter starts at 0 and increases by exactly 1 per
/// publication, so tenants (and tests) can assert "a publication happened"
/// by comparing counters.
pub struct RuleCell {
    gen: AtomicU64,
    slot: Mutex<Arc<RuleSet>>,
}

impl RuleCell {
    /// Wrap `rules` as generation 0 of a new shared cell.
    pub fn new(rules: RuleSet) -> RuleCell {
        RuleCell::from_arc(Arc::new(rules))
    }

    /// Wrap an existing `Arc<RuleSet>` as generation 0 (no clone).
    pub fn from_arc(rules: Arc<RuleSet>) -> RuleCell {
        RuleCell { gen: AtomicU64::new(0), slot: Mutex::new(rules) }
    }

    /// Current generation number. Readers poll this (one atomic load) and
    /// only touch the mutex when it differs from their cached generation.
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    /// Snapshot the current generation: `(rules, generation)`.
    ///
    /// The generation is read under the slot lock so the pair is always
    /// consistent (a concurrent publish can't pair the old `Arc` with the
    /// new counter).
    pub fn load(&self) -> (Arc<RuleSet>, u64) {
        let slot = self.slot.lock().expect("rule cell poisoned");
        (Arc::clone(&slot), self.gen.load(Ordering::Acquire))
    }

    /// Publish a new generation derived from the current one.
    ///
    /// Clones the current set, applies `f`, installs the result, and bumps
    /// the generation — all under the slot lock, so concurrent publishers
    /// serialize and no update is lost. Readers holding the previous `Arc`
    /// keep executing it untouched until they adopt. Returns the new
    /// generation's `(rules, generation, closure result)`.
    pub fn publish_with<R>(&self, f: impl FnOnce(&mut RuleSet) -> R) -> (Arc<RuleSet>, u64, R) {
        let mut slot = self.slot.lock().expect("rule cell poisoned");
        let mut next = (**slot).clone();
        let out = f(&mut next);
        let next = Arc::new(next);
        *slot = Arc::clone(&next);
        let gen = self.gen.load(Ordering::Acquire) + 1;
        self.gen.store(gen, Ordering::Release);
        (next, gen, out)
    }
}

impl std::fmt::Debug for RuleCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleCell").field("generation", &self.generation()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn assert_send_sync<T: Send + Sync>() {}

    /// Hand-rolled `static_assertions`-style probe: `<T as
    /// AmbiguousIfSend<_>>::PROBE` fails to *compile* if `T: Send`,
    /// because both blanket impls would then apply and the `_` inference
    /// becomes ambiguous. With `T: !Send` only the `()` impl applies and
    /// the item resolves — i.e. this asserts `!Send` at compile time.
    trait AmbiguousIfSend<A> {
        const PROBE: () = ();
    }
    impl<T: ?Sized> AmbiguousIfSend<()> for T {}
    #[allow(dead_code)]
    struct Invalid;
    impl<T: ?Sized + Send> AmbiguousIfSend<Invalid> for T {}

    #[test]
    fn shared_types_are_send_sync() {
        // The shared layer crosses threads: the cell, the rule sets inside
        // it, and the generation snapshots handed to tenants.
        assert_send_sync::<RuleCell>();
        assert_send_sync::<Arc<RuleCell>>();
        assert_send_sync::<RuleSet>();
        assert_send_sync::<Arc<RuleSet>>();
    }

    #[test]
    #[allow(clippy::let_unit_value)]
    fn engine_is_deliberately_not_send() {
        // The per-tenant side is confined to its thread: `Engine` holds
        // `Rc<[(usize, u64)]>` hit lists and `Rc<Vec<X86Instr>>` block
        // code in its arena, which are cheap to clone on the hot path
        // precisely because they are not atomically refcounted. If this
        // stops compiling because `Engine` became `Send`, the
        // shared-vs-confined split documented in DESIGN.md §15 changed —
        // re-audit the arena before deleting the probe.
        let _probe = <Engine as AmbiguousIfSend<_>>::PROBE;
    }

    #[test]
    fn publish_bumps_generation_and_serves_new_set() {
        let cell = RuleCell::new(RuleSet::new());
        assert_eq!(cell.generation(), 0);
        let (rules0, gen0) = cell.load();
        assert_eq!(gen0, 0);
        assert_eq!(rules0.len(), 0);

        let (rules1, gen1, out) = cell.publish_with(|rs| {
            rs.prefer_shorter = false;
            42
        });
        assert_eq!(out, 42);
        assert_eq!(gen1, 1);
        assert_eq!(cell.generation(), 1);
        assert!(!rules1.prefer_shorter);
        // The old snapshot is untouched.
        assert!(rules0.prefer_shorter);
        // A fresh load sees the new generation.
        let (rules2, gen2) = cell.load();
        assert_eq!(gen2, 1);
        assert!(!rules2.prefer_shorter);
    }

    #[test]
    fn concurrent_publishers_serialize() {
        let cell = Arc::new(RuleCell::new(RuleSet::new()));
        let n_threads = 4;
        let per_thread = 25;
        std::thread::scope(|s| {
            for _ in 0..n_threads {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        cell.publish_with(|rs| {
                            rs.prefer_shorter = !rs.prefer_shorter;
                        });
                    }
                });
            }
        });
        // Every publication bumped the generation exactly once.
        assert_eq!(cell.generation(), n_threads * per_thread);
        // An even number of toggles restores the initial flag.
        let (rules, _) = cell.load();
        assert!(rules.prefer_shorter);
    }
}
