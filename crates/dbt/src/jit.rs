//! The HQEMU-style optimizing backend.
//!
//! Models a DBT that feeds its IR through a heavyweight JIT (the paper's
//! comparison system routes TCG ops through LLVM). The TCG stream is
//! cleaned up — guest-register forwarding, redundant put elimination,
//! copy propagation, constant folding, local CSE, dead-code elimination —
//! before lowering with the normal backend. The engine charges a much
//! higher translation cost for this path, which is what makes the
//! short-running-workload comparison of Figure 8 come out the way it
//! does.

use crate::env::FlagId;
use crate::tcg::{TcgAlu, TcgBlock, TcgOp, Temp};
use ldbt_arm::ArmReg;
use std::collections::HashMap;

/// Optimize a TCG stream (in place, returning the new op vector).
pub fn optimize_ops(ops: &[TcgOp]) -> Vec<TcgOp> {
    let mut out: Vec<TcgOp> = Vec::with_capacity(ops.len());
    // Forwarding state.
    let mut reg_val: HashMap<ArmReg, Temp> = HashMap::new();
    let mut flag_val: HashMap<FlagId, Temp> = HashMap::new();
    let mut copy_of: HashMap<Temp, Temp> = HashMap::new();
    let mut const_of: HashMap<Temp, u32> = HashMap::new();
    let mut cse: HashMap<(TcgAlu, Temp, u32), Temp> = HashMap::new();

    let resolve = |t: Temp, copy_of: &HashMap<Temp, Temp>| -> Temp {
        let mut cur = t;
        while let Some(n) = copy_of.get(&cur) {
            cur = *n;
        }
        cur
    };

    for op in ops {
        let mut op = *op;
        // Rewrite uses through copies.
        match &mut op {
            TcgOp::Mov(_, s)
            | TcgOp::AluI(_, _, s, _)
            | TcgOp::Not(_, s)
            | TcgOp::Neg(_, s)
            | TcgOp::PutReg(_, s)
            | TcgOp::PutFlag(_, s) => *s = resolve(*s, &copy_of),
            TcgOp::Alu(_, _, a, b) | TcgOp::Setc(_, _, a, b) => {
                *a = resolve(*a, &copy_of);
                *b = resolve(*b, &copy_of);
            }
            TcgOp::Load(_, a, _, _) => *a = resolve(*a, &copy_of),
            TcgOp::Store(s, a, _) => {
                *s = resolve(*s, &copy_of);
                *a = resolve(*a, &copy_of);
            }
            _ => {}
        }
        match op {
            TcgOp::GetReg(d, g) => {
                if let Some(v) = reg_val.get(&g) {
                    copy_of.insert(d, *v);
                } else {
                    reg_val.insert(g, d);
                    out.push(op);
                }
            }
            TcgOp::PutReg(g, s) => {
                reg_val.insert(g, s);
                out.push(op); // later dead-put pass removes shadowed ones
            }
            TcgOp::GetFlag(d, f) => {
                if let Some(v) = flag_val.get(&f) {
                    copy_of.insert(d, *v);
                } else {
                    flag_val.insert(f, d);
                    out.push(op);
                }
            }
            TcgOp::PutFlag(f, s) => {
                flag_val.insert(f, s);
                out.push(op);
            }
            TcgOp::Mov(d, s) => {
                copy_of.insert(d, s);
            }
            TcgOp::MovI(d, v) => {
                const_of.insert(d, v);
                out.push(op);
            }
            TcgOp::Alu(aop, d, a, b) => {
                // Constant-fold register operand b into an immediate form.
                if let Some(vb) = const_of.get(&b).copied() {
                    let key = (aop, a, vb);
                    if let Some(prev) = cse.get(&key) {
                        copy_of.insert(d, *prev);
                    } else {
                        cse.insert(key, d);
                        out.push(TcgOp::AluI(aop, d, a, vb));
                    }
                } else {
                    out.push(op);
                }
            }
            TcgOp::AluI(aop, d, a, imm) => {
                let key = (aop, a, imm);
                if let Some(prev) = cse.get(&key) {
                    copy_of.insert(d, *prev);
                } else {
                    cse.insert(key, d);
                    out.push(op);
                }
            }
            TcgOp::Store(_, _, _) => {
                out.push(op);
            }
            _ => out.push(op),
        }
    }

    // Dead-put elimination: only the last Put per register/flag survives.
    let mut seen_reg: HashMap<ArmReg, usize> = HashMap::new();
    let mut seen_flag: HashMap<FlagId, usize> = HashMap::new();
    let mut keep = vec![true; out.len()];
    for (i, op) in out.iter().enumerate() {
        match op {
            TcgOp::PutReg(g, _) => {
                if let Some(prev) = seen_reg.insert(*g, i) {
                    keep[prev] = false;
                }
            }
            TcgOp::PutFlag(f, _) => {
                if let Some(prev) = seen_flag.insert(*f, i) {
                    keep[prev] = false;
                }
            }
            _ => {}
        }
    }
    let mut out: Vec<TcgOp> =
        out.into_iter().zip(keep).filter_map(|(o, k)| k.then_some(o)).collect();

    // DCE: remove defs never used (iterate to fixpoint).
    loop {
        let mut used: HashMap<Temp, usize> = HashMap::new();
        for o in &out {
            for u in o.uses() {
                *used.entry(u).or_insert(0) += 1;
            }
        }
        let before = out.len();
        out.retain(|o| match o {
            TcgOp::PutReg(_, _) | TcgOp::PutFlag(_, _) | TcgOp::Store(_, _, _) => true,
            TcgOp::Load(d, _, _, _) => used.contains_key(d), // loads are side-effect free here
            other => match other.def() {
                Some(d) => used.contains_key(&d),
                None => true,
            },
        });
        if out.len() == before {
            break;
        }
    }
    out
}

/// Optimize a whole block. Terminator temps must stay live, so they are
/// pinned by re-adding synthetic uses through the returned block's `end`.
pub fn optimize_block(block: &TcgBlock) -> TcgBlock {
    // Pin terminator temps by appending a fake op? Simpler: run the
    // pipeline on ops plus knowledge that end-temps are "used".
    // Pin the terminator temp with a synthetic store (stores survive every
    // pass untouched and do not shadow register/flag puts); it is popped
    // after optimization, with copy propagation applied to its operand.
    let mut pinned = block.ops.clone();
    let pin_temp = match block.end {
        crate::tcg::BlockEnd::Branch { cond, .. } => Some(cond),
        crate::tcg::BlockEnd::Indirect(t) => Some(t),
        _ => None,
    };
    if let Some(t) = pin_temp {
        pinned.push(TcgOp::Store(t, t, ldbt_isa::Width::W32));
    }
    let mut ops = optimize_ops(&pinned);
    let mut end = block.end;
    if pin_temp.is_some() {
        let Some(TcgOp::Store(s, _, _)) = ops.last().copied() else {
            unreachable!("pin store survives optimization")
        };
        ops.pop();
        match &mut end {
            crate::tcg::BlockEnd::Branch { cond, .. } => *cond = s,
            crate::tcg::BlockEnd::Indirect(t0) => *t0 = s,
            _ => {}
        }
    }
    TcgBlock {
        ops,
        end,
        reads_live_in_flags: block.reads_live_in_flags,
        writes_flags: block.writes_flags,
        unsupported_at: block.unsupported_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcg::{translate_block, GuestBlock};
    use ldbt_arm::{ArmInstr, DpOp, Operand2};
    use ldbt_isa::Memory;

    fn tcg_of(instrs: Vec<ArmInstr>) -> TcgBlock {
        let mem = Memory::new();
        translate_block(&mem, &GuestBlock { pc: 0x1_0000, instrs })
    }

    #[test]
    fn redundant_get_forwarded() {
        // Two instructions both reading r0: the JIT stream must contain a
        // single GetReg for it.
        let b = tcg_of(vec![
            ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R0, Operand2::Imm(1)),
            ArmInstr::dp(DpOp::Add, ArmReg::R2, ArmReg::R0, Operand2::Imm(2)),
        ]);
        let gets_before =
            b.ops.iter().filter(|o| matches!(o, TcgOp::GetReg(_, ArmReg::R0))).count();
        let opt = optimize_block(&b);
        let gets_after =
            opt.ops.iter().filter(|o| matches!(o, TcgOp::GetReg(_, ArmReg::R0))).count();
        assert_eq!(gets_before, 2);
        assert_eq!(gets_after, 1);
    }

    #[test]
    fn shadowed_put_removed() {
        // r0 written twice: only the last PutReg survives.
        let b = tcg_of(vec![
            ArmInstr::mov(ArmReg::R0, Operand2::Imm(1)),
            ArmInstr::mov(ArmReg::R0, Operand2::Imm(2)),
        ]);
        let opt = optimize_block(&b);
        let puts = opt.ops.iter().filter(|o| matches!(o, TcgOp::PutReg(ArmReg::R0, _))).count();
        assert_eq!(puts, 1);
    }

    #[test]
    fn put_get_forwarding() {
        // mov r0, #7; add r1, r0, #1 — the get of r0 forwards the put temp.
        let b = tcg_of(vec![
            ArmInstr::mov(ArmReg::R0, Operand2::Imm(7)),
            ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R0, Operand2::Imm(1)),
        ]);
        let opt = optimize_block(&b);
        let gets = opt.ops.iter().filter(|o| matches!(o, TcgOp::GetReg(_, ArmReg::R0))).count();
        assert_eq!(gets, 0, "forwarded through the put: {:?}", opt.ops);
    }

    #[test]
    fn optimized_stream_is_smaller() {
        let b = tcg_of(vec![
            ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R1, ArmReg::R1, Operand2::Imm(5)),
            ArmInstr::dp(DpOp::Add, ArmReg::R2, ArmReg::R1, Operand2::Reg(ArmReg::R0)),
        ]);
        let opt = optimize_block(&b);
        assert!(opt.ops.len() < b.ops.len(), "{} !< {}", opt.ops.len(), b.ops.len());
    }

    #[test]
    fn branch_condition_survives() {
        let b = tcg_of(vec![
            ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)),
            ArmInstr::B { offset: 3, cond: ldbt_arm::Cond::Ne },
        ]);
        let opt = optimize_block(&b);
        let crate::tcg::BlockEnd::Branch { cond, .. } = opt.end else { panic!() };
        // The condition temp must be defined by the optimized stream.
        assert!(
            opt.ops.iter().any(|o| o.def() == Some(cond)),
            "branch cond defined: {:?}",
            opt.ops
        );
    }

    #[test]
    fn executes_identically_to_unoptimized() {
        use crate::backend::lower_block;
        use crate::env::{ENV_BASE, HOST_STACK_TOP};
        use ldbt_isa::{CostModel, ExecStats, Width};
        use ldbt_x86::interp::run_seq;
        use ldbt_x86::{Gpr, X86State};
        let b = tcg_of(vec![
            ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0)),
            ArmInstr::dp(DpOp::Eor, ArmReg::R2, ArmReg::R1, Operand2::Imm(0xff)),
            ArmInstr::mov(ArmReg::R3, Operand2::Reg(ArmReg::R2)),
        ]);
        let opt = optimize_block(&b);
        let mut results = Vec::new();
        for blk in [&b, &opt] {
            let code = lower_block(blk).code;
            let mut st = X86State::new();
            st.set_reg(Gpr::Esp, HOST_STACK_TOP);
            st.mem.write(ENV_BASE, 5, Width::W32); // r0
            st.mem.write(ENV_BASE + 4, 9, Width::W32); // r1
            let mut stats = ExecStats::new();
            run_seq(&mut st, &code, 10_000, &CostModel::default(), &mut stats);
            results.push((
                st.mem.read(ENV_BASE + 4, Width::W32),
                st.mem.read(ENV_BASE + 8, Width::W32),
                st.mem.read(ENV_BASE + 12, Width::W32),
                stats.host_instrs,
            ));
        }
        assert_eq!(results[0].0, results[1].0);
        assert_eq!(results[0].1, results[1].1);
        assert_eq!(results[0].2, results[1].2);
        assert!(results[1].3 <= results[0].3, "optimized runs no more instructions");
    }

    /// The block-local optimizer must preserve the scratch-register
    /// invariant (backend.rs, sb.rs): however aggressively it forwards
    /// gets and kills puts, the lowered result still reads nothing from
    /// host entry state but %esp — the precondition for superblock
    /// cross-seam optimization over JIT-translated parts.
    #[test]
    fn optimized_blocks_read_no_host_entry_state() {
        use crate::backend::lower_block;
        use ldbt_x86::Gpr;
        let shapes: Vec<Vec<ArmInstr>> = vec![
            vec![
                ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0)),
                ArmInstr::dp(DpOp::Eor, ArmReg::R2, ArmReg::R1, Operand2::Imm(0xff)),
                ArmInstr::mov(ArmReg::R3, Operand2::Reg(ArmReg::R2)),
            ],
            vec![
                ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)),
                ArmInstr::B { offset: 3, cond: ldbt_arm::Cond::Ne },
            ],
        ];
        for instrs in shapes {
            let code = lower_block(&optimize_block(&tcg_of(instrs))).code;
            let (regs, flags) = crate::sb::entry_reads(&code);
            assert_eq!(regs & !(1 << Gpr::Esp.index()), 0, "reads host regs {regs:#010b}");
            assert_eq!(flags, 0, "reads host EFLAGS {flags:#06b}");
        }
    }
}
