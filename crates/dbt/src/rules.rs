//! Rule-based block translation (paper §4 and §5).
//!
//! A guest block is scanned greedily for the *longest* contiguous
//! instruction sequence matching a learned rule (hash-bucketed by the
//! mean guest opcode); matched sequences emit the rule's host template
//! directly — bypassing the TCG IR — while uncovered instructions fall
//! back to the TCG path. Rule host code cooperates with the translator's
//! register state the way the paper's prototype reuses TCG's allocator:
//! bound guest registers get home host registers, loaded on demand and
//! written back at boundaries.
//!
//! Condition codes follow §5: a rule's flag-setting host code leaves
//! guest-visible flags in the *host* EFLAGS; if guest flags are live out
//! of the block the translator appends the three-instruction lazy save
//! (`pushfd; popl env.hostflags; movl $mode, env.flagmode`), and
//! consumer blocks materialize the env NZCV slots through the flag-mode
//! dispatch stub in [`crate::backend`]. A rule whose *unemulated* flags
//! would be consumed downstream is simply not applied (the paper's
//! "lightweight analysis at translation time").

use crate::backend::lower_block;
use crate::env::{env_mem, reg_mem, FLAGMODE_OFFSET, HOSTFLAGS_OFFSET};
use crate::tcg::{flags_live_at, translate_block, GuestBlock, TcgBlock};
use ldbt_arm::{ArmInstr, ArmReg, Cond};
use ldbt_isa::Memory;
use ldbt_learn::rule::Binding;
use ldbt_learn::{FaultPlan, FaultSite, Rule, RuleSet};
#[cfg(test)]
use ldbt_x86::AluOp;
use ldbt_x86::{Cc, Gpr, Operand, X86Instr};
use std::collections::HashMap;

/// Host registers available as guest-register homes in rule segments.
const RULE_POOL: [Gpr; 6] = [Gpr::Ecx, Gpr::Edx, Gpr::Ebx, Gpr::Esi, Gpr::Edi, Gpr::Ebp];

/// Map an ARM condition to the x86 condition under the standard flag
/// correspondence (N↔SF, Z↔ZF, V↔OF, C↔¬CF).
pub fn cond_to_cc(cond: Cond) -> Option<Cc> {
    Some(match cond {
        Cond::Eq => Cc::E,
        Cond::Ne => Cc::Ne,
        Cond::Cs => Cc::Ae,
        Cond::Cc => Cc::B,
        Cond::Mi => Cc::S,
        Cond::Pl => Cc::Ns,
        Cond::Vs => Cc::O,
        Cond::Vc => Cc::No,
        Cond::Hi => Cc::A,
        Cond::Ls => Cc::Be,
        Cond::Ge => Cc::Ge,
        Cond::Lt => Cc::L,
        Cond::Gt => Cc::G,
        Cond::Le => Cc::Le,
        Cond::Al => return None,
    })
}

/// The result of translating one block with rules.
#[derive(Debug, Clone)]
pub struct RuleLowering {
    /// The host code.
    pub code: Vec<X86Instr>,
    /// Per guest instruction: covered by a rule?
    pub covered: Vec<bool>,
    /// (length, stable rule key) of each rule application.
    pub hits: Vec<(usize, u64)>,
    /// The concrete binding of each rule application, parallel to
    /// `hits`. The watchdog's repair path reads these to rebuild the
    /// counterexample a divergent block was executing under.
    pub bindings: Vec<Binding>,
    /// Number of TCG micro-ops emitted for uncovered stretches (for the
    /// translation-overhead model).
    pub tcg_ops: usize,
    /// Number of rule host instructions emitted.
    pub rule_instrs: usize,
    /// Rule-match attempts (hash lookups) made.
    pub lookups: usize,
    /// Patchable direct exits as `(ret_index, target_pc)`, declared at
    /// emission time — the chainer must never infer exits from code
    /// shape (a rule body may legitimately end in `mov $imm, %eax; ret`
    /// lookalikes).
    pub exits: Vec<(usize, u32)>,
}

fn rule_key(rule: &Rule) -> u64 {
    rule.stable_key()
}

/// Guest flags read by `instrs[from..]` before being written, plus
/// conservative liveness at the end.
fn flags_consumed_after(instrs: &[ArmInstr], from: usize, mem: &Memory, block_pc: u32) -> u8 {
    let mut live = 0u8;
    let mut written = 0u8;
    for i in &instrs[from..] {
        live |= i.flags_read() & !written;
        written |= i.flags_written();
    }
    if written != 0b1111 {
        // Flags may escape through the block's successors.
        let n = instrs.len() as u32;
        let live_out = match instrs.last() {
            Some(ArmInstr::B { offset, cond }) => {
                let end_pc = block_pc.wrapping_add(4 * n);
                let taken = end_pc.wrapping_add((*offset as u32).wrapping_mul(4));
                let mut l = flags_live_at(mem, taken, 2);
                if *cond != Cond::Al {
                    l |= flags_live_at(mem, end_pc, 2);
                }
                l
            }
            _ => 0b1111,
        };
        live |= live_out & !written;
    }
    live
}

struct RuleHomes {
    map: HashMap<ArmReg, Gpr>,
    dirty: HashMap<ArmReg, bool>,
    free: Vec<Gpr>,
}

impl RuleHomes {
    fn new() -> RuleHomes {
        RuleHomes {
            map: HashMap::new(),
            dirty: HashMap::new(),
            free: RULE_POOL.iter().rev().copied().collect(),
        }
    }

    /// Can `extra` more distinct guest registers be accommodated?
    fn can_fit(&self, regs: &[ArmReg]) -> bool {
        let new = regs.iter().filter(|r| !self.map.contains_key(r)).count();
        new <= self.free.len()
    }

    fn home(&mut self, g: ArmReg, code: &mut Vec<X86Instr>) -> Gpr {
        if let Some(h) = self.map.get(&g) {
            return *h;
        }
        let h = self.free.pop().expect("checked by can_fit");
        self.map.insert(g, h);
        self.dirty.insert(g, false);
        code.push(X86Instr::Mov { dst: Operand::Reg(h), src: Operand::Mem(reg_mem(g)) });
        h
    }

    fn writeback(&mut self, code: &mut Vec<X86Instr>) {
        let mut dirty: Vec<(ArmReg, Gpr)> = self
            .map
            .iter()
            .filter(|(g, _)| self.dirty.get(g).copied().unwrap_or(false))
            .map(|(g, h)| (*g, *h))
            .collect();
        dirty.sort_by_key(|(g, _)| g.index());
        for (g, h) in dirty {
            code.push(X86Instr::Mov { dst: Operand::Mem(reg_mem(g)), src: Operand::Reg(h) });
        }
        for d in self.dirty.values_mut() {
            *d = false;
        }
    }

    fn invalidate(&mut self) {
        self.map.clear();
        self.dirty.clear();
        self.free = RULE_POOL.iter().rev().copied().collect();
    }
}

/// One planned segment of a block.
enum Segment {
    Rule { start: usize, len: usize, rule_index: (u32, usize) },
    Tcg { start: usize, len: usize },
}

/// Translate a guest block using the rule set with TCG fallback.
pub fn lower_block_with_rules(mem: &Memory, block: &GuestBlock, rules: &RuleSet) -> RuleLowering {
    lower_block_with_rules_opts(mem, block, rules, true)
}

/// [`lower_block_with_rules`] with the §5 lazy host-flag save as a knob:
/// with `lazy_flags = false`, rules whose guest flags are live out of the
/// block are *not applied* (the conservative ablation baseline).
pub fn lower_block_with_rules_opts(
    mem: &Memory,
    block: &GuestBlock,
    rules: &RuleSet,
    lazy_flags: bool,
) -> RuleLowering {
    lower_block_with_rules_fault(mem, block, rules, lazy_flags, None)
}

/// [`lower_block_with_rules_opts`] with an optional fault plan. Under
/// `LDBT_FAULT=rule-corrupt:<seed>` the seed-th rule application of each
/// block has its host code clobbered after emission (a deterministic
/// wrong constant into the first defined register's home), modeling a
/// miscompiled/corrupted rule template for the watchdog to catch.
pub fn lower_block_with_rules_fault(
    mem: &Memory,
    block: &GuestBlock,
    rules: &RuleSet,
    lazy_flags: bool,
    fault: Option<FaultPlan>,
) -> RuleLowering {
    lower_block_with_rules_suppress(mem, block, rules, lazy_flags, fault, None)
}

/// [`lower_block_with_rules_fault`] with one rule application *suppressed*
/// (its guest instructions take the TCG path instead). This is the
/// watchdog's attribution probe: re-lowering a divergent block with the
/// k-th application suppressed and replaying it against the interpreter
/// isolates which application caused the divergence. `suppress` indexes
/// applications in plan order — the same order `hits`/`bindings` report —
/// and the `rule-corrupt` clobber stays keyed to the *original* plan
/// index, so suppressing the clobbered application removes the clobber
/// with it (exactly what attribution needs to observe).
pub fn lower_block_with_rules_suppress(
    mem: &Memory,
    block: &GuestBlock,
    rules: &RuleSet,
    lazy_flags: bool,
    fault: Option<FaultPlan>,
    suppress: Option<usize>,
) -> RuleLowering {
    let corrupt_at: Option<usize> = match fault {
        Some(FaultPlan { site: FaultSite::RuleCorrupt, seed }) => Some(seed as usize),
        _ => None,
    };
    let instrs = &block.instrs;
    let n = instrs.len();
    let mut lookups = 0usize;

    // --- Plan: longest-match scan (paper §4). ---
    struct Planned<'r> {
        start: usize,
        len: usize,
        rule: &'r Rule,
        binding: Binding,
        /// Application index in the *unsuppressed* plan order — the
        /// identity `suppress` and the `rule-corrupt` clobber key on.
        index: usize,
    }
    let mut plans: Vec<Planned> = Vec::new();
    let mut covered = vec![false; n];
    let mut i = 0usize;
    while i < n {
        let mut applied = false;
        let max_len = n - i;
        for len in (1..=max_len).rev() {
            let seq = &instrs[i..i + len];
            // A branch may only appear as the final instruction of both
            // the sequence and the block.
            if seq[..len - 1].iter().any(|x| x.is_block_end())
                || (seq[len - 1].is_block_end() && i + len != n)
            {
                continue;
            }
            lookups += 1;
            let Some((rule, binding)) = rules.lookup(seq) else { continue };
            // §5 applicability: unemulated guest flags must not be
            // consumed downstream.
            if rule.unemulated_flags != 0 {
                let consumed = flags_consumed_after(instrs, i + len, mem, block.pc);
                if rule.unemulated_flags & consumed != 0 {
                    continue;
                }
            }
            // Flags defined by the rule but *read via env* by a later
            // uncovered instruction cannot be seen (they live in host
            // EFLAGS): handled by only allowing flag-setting rules whose
            // flags are dead in-block after the rule (live-out uses the
            // lazy save instead).
            let writes_flags = seq.iter().any(|x| x.flags_written() != 0);
            if !lazy_flags
                && writes_flags
                && flags_consumed_after(instrs, i + len, mem, block.pc) != 0
            {
                continue;
            }
            if writes_flags && !rule.has_branch {
                let mut read_later = 0u8;
                let mut redefined = 0u8;
                for j in &instrs[i + len..] {
                    read_later |= j.flags_read() & !redefined;
                    redefined |= j.flags_written();
                }
                if read_later != 0 {
                    continue;
                }
            }
            let index = plans.len();
            plans.push(Planned { start: i, len, rule, binding, index });
            for c in covered[i..i + len].iter_mut() {
                *c = true;
            }
            i += len;
            applied = true;
            break;
        }
        if !applied {
            i += 1;
        }
    }

    // --- Attribution probe: drop the suppressed application. ---
    if let Some(k) = suppress {
        if let Some(pos) = plans.iter().position(|p| p.index == k) {
            let p = plans.remove(pos);
            for c in covered[p.start..p.start + p.len].iter_mut() {
                *c = false;
            }
        }
    }

    // --- Segment the block. ---
    let mut segments: Vec<Segment> = Vec::new();
    {
        let mut i = 0usize;
        let mut plan_iter = plans.iter().enumerate().peekable();
        while i < n {
            if let Some((pi, p)) = plan_iter.peek() {
                if p.start == i {
                    segments.push(Segment::Rule { start: i, len: p.len, rule_index: (0, *pi) });
                    i += p.len;
                    plan_iter.next();
                    continue;
                }
                let stop = p.start;
                segments.push(Segment::Tcg { start: i, len: stop - i });
                i = stop;
            } else {
                segments.push(Segment::Tcg { start: i, len: n - i });
                i = n;
            }
        }
    }

    // --- Emit. ---
    let mut code: Vec<X86Instr> = Vec::new();
    let mut exits: Vec<(usize, u32)> = Vec::new();
    let mut homes = RuleHomes::new();
    let mut hits = Vec::new();
    let mut bindings: Vec<Binding> = Vec::new();
    let mut tcg_ops = 0usize;
    let mut rule_instrs = 0usize;

    // Does any rule host code in this block set flags that are live out?
    // (computed per rule application below).
    for seg in &segments {
        match *seg {
            Segment::Rule { start, len, rule_index } => {
                let p = &plans[rule_index.1];
                debug_assert_eq!((p.start, p.len), (start, len));
                let rule = p.rule;
                hits.push((rule.len(), rule_key(rule)));
                bindings.push(p.binding.clone());
                // Bound guest registers, in template order.
                let bound: Vec<ArmReg> = p.binding.regs.values().copied().collect();
                if !homes.can_fit(&bound) {
                    // Very wide rule with a full home table: flush and
                    // restart the table (rare).
                    homes.writeback(&mut code);
                    homes.invalidate();
                }
                // Which guest regs does the rule define? (for dirty marks)
                let defined: Vec<ArmReg> =
                    instrs[start..start + len].iter().filter_map(|g| g.def()).collect();
                let host = rule.instantiate(&p.binding, |g| homes.home(g, &mut code));
                // Flag epilogue decision.
                let writes_flags =
                    instrs[start..start + len].iter().any(|x| x.flags_written() != 0);
                let flags_live_out = if writes_flags {
                    flags_consumed_after(instrs, start + len, mem, block.pc) != 0
                } else {
                    false
                };
                // Split a trailing jcc off the template: the lazy flag
                // save and register writebacks must precede it (none of
                // them touch EFLAGS).
                let (body, tail_jcc) = match host.split_last() {
                    Some((X86Instr::Jcc { cc, .. }, body)) if rule.has_branch => {
                        (body.to_vec(), Some(*cc))
                    }
                    _ => (host, None),
                };
                rule_instrs += body.len() + tail_jcc.is_some() as usize;
                code.extend(body);
                for d in &defined {
                    if let Some(dirty) = homes.dirty.get_mut(d) {
                        *dirty = true;
                    }
                }
                if corrupt_at == Some(p.index) {
                    // Injected fault: clobber the first defined register's
                    // home with a recognizably wrong constant.
                    if let Some(home) = defined.iter().find_map(|d| homes.map.get(d)).copied() {
                        code.push(X86Instr::mov_imm(home, 0x5a5a_5a5au32 as i32));
                    }
                }
                if flags_live_out {
                    // The 3-instruction lazy save of paper §5.
                    code.push(X86Instr::Pushfd);
                    code.push(X86Instr::Pop { dst: Operand::Mem(env_mem(HOSTFLAGS_OFFSET)) });
                    code.push(X86Instr::Mov {
                        dst: Operand::Mem(env_mem(FLAGMODE_OFFSET)),
                        src: Operand::Imm(1), // bit1 = 0: sub carry polarity
                    });
                }
                if let Some(cc) = tail_jcc {
                    // Terminal conditional branch: write everything back
                    // (flag-safe movs), then branch between the two exits.
                    homes.writeback(&mut code);
                    let end_pc = block.pc.wrapping_add(4 * n as u32);
                    let ArmInstr::B { offset, .. } = instrs[n - 1] else {
                        unreachable!("branch rule must end on b")
                    };
                    let taken = end_pc.wrapping_add((offset as u32).wrapping_mul(4));
                    code.push(X86Instr::Jcc { cc, target: 2 });
                    code.push(X86Instr::mov_imm(Gpr::Eax, end_pc as i32));
                    exits.push((code.len(), end_pc));
                    code.push(X86Instr::Ret);
                    code.push(X86Instr::mov_imm(Gpr::Eax, taken as i32));
                    exits.push((code.len(), taken));
                    code.push(X86Instr::Ret);
                }
            }
            Segment::Tcg { start, len } => {
                // Flush rule homes: the TCG sub-block works env-to-env.
                homes.writeback(&mut code);
                homes.invalidate();
                let sub = GuestBlock {
                    pc: block.pc.wrapping_add(4 * start as u32),
                    instrs: instrs[start..start + len].to_vec(),
                };
                let tcg: TcgBlock = translate_block(mem, &sub);
                debug_assert_eq!(tcg.unsupported_at, None, "prefiltered by engine");
                tcg_ops += tcg.ops.len();
                let sub = lower_block(&tcg);
                if start + len == n {
                    // Final segment: keep the sub-block's own terminator
                    // and adopt its declared exits, rebased.
                    let base = code.len();
                    exits.extend(sub.exits.iter().map(|&(at, pc)| (base + at, pc)));
                    code.extend(sub.code);
                } else {
                    // Mid-block segment: strip the `movl $pc, %eax; ret`
                    // tail (fall through into the next segment); the
                    // stripped exit is dropped with it.
                    let body_len = sub.code.len().saturating_sub(2);
                    debug_assert!(matches!(sub.code.last(), Some(X86Instr::Ret)));
                    code.extend_from_slice(&sub.code[..body_len]);
                }
            }
        }
    }

    // If the block's last guest instruction was covered by a *non-branch*
    // rule (or the loop ended without a terminator segment), fall through
    // to the next PC.
    let ends_with_exit =
        matches!(code.last(), Some(X86Instr::Ret) | Some(X86Instr::Halt) | Some(X86Instr::Trap));
    if !ends_with_exit {
        homes.writeback(&mut code);
        let next = block.pc.wrapping_add(4 * n as u32);
        code.push(X86Instr::mov_imm(Gpr::Eax, next as i32));
        exits.push((code.len(), next));
        code.push(X86Instr::Ret);
    }

    RuleLowering { code, covered, hits, bindings, tcg_ops, rule_instrs, lookups, exits }
}

/// Whether a block contains anything the rule translator cannot lower
/// (the engine then falls back entirely to TCG or the interpreter).
pub fn block_supported(block: &GuestBlock) -> bool {
    !block
        .instrs
        .iter()
        .any(|i| i.is_predicated() && matches!(i, ArmInstr::Ldr { .. } | ArmInstr::Str { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ENV_BASE, HOST_STACK_TOP};
    use ldbt_arm::{DpOp, Operand2};
    use ldbt_isa::{CostModel, ExecStats, Width};
    use ldbt_learn::rule::{ImmParam, ImmRel, ImmSlot};
    use ldbt_x86::interp::{run_seq, SeqExit};
    use ldbt_x86::{X86Mem, X86State};

    fn figure1_rule() -> Rule {
        Rule {
            guest: vec![
                ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1)),
                ArmInstr::dp(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(5)),
            ],
            host: vec![X86Instr::Lea {
                dst: Gpr::Edx,
                addr: X86Mem { base: Some(Gpr::Edx), index: Some((Gpr::Ecx, 1)), disp: -5 },
            }],
            host_reg_of: [(Gpr::Edx, ArmReg::R0), (Gpr::Ecx, ArmReg::R1)].into_iter().collect(),
            imm_params: vec![ImmParam {
                guest_site: (1, ImmSlot::Data),
                extra_guest_sites: vec![],
                template_value: 5,
                host_sites: vec![(0, ImmSlot::MemOffset, ImmRel::Neg)],
            }],
            unemulated_flags: 0,
            has_branch: false,
        }
    }

    fn run(code: &[X86Instr], setup: impl FnOnce(&mut X86State)) -> (X86State, SeqExit) {
        let mut st = X86State::new();
        st.set_reg(Gpr::Esp, HOST_STACK_TOP);
        setup(&mut st);
        let mut stats = ExecStats::new();
        let exit = run_seq(&mut st, code, 10_000, &CostModel::default(), &mut stats);
        (st, exit)
    }

    fn set_guest(st: &mut X86State, r: ArmReg, v: u32) {
        st.mem.write(ENV_BASE + 4 * r.index() as u32, v, Width::W32);
    }

    fn guest(st: &X86State, r: ArmReg) -> u32 {
        st.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32)
    }

    #[test]
    fn fully_covered_block_uses_one_lea() {
        let mut rules = RuleSet::new();
        rules.insert(figure1_rule());
        let block = GuestBlock {
            pc: 0x1_0000,
            instrs: vec![
                ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
                ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(12)),
            ],
        };
        let mem = Memory::new();
        let low = lower_block_with_rules(&mem, &block, &rules);
        assert_eq!(low.covered, vec![true, true]);
        assert_eq!(low.hits.len(), 1);
        assert_eq!(low.hits[0].0, 2);
        assert!(low.code.iter().any(|i| matches!(i, X86Instr::Lea { .. })));
        // Execute and check the env.
        let (st, exit) = run(&low.code, |st| {
            set_guest(st, ArmReg::R4, 100);
            set_guest(st, ArmReg::R7, 30);
        });
        assert_eq!(exit, SeqExit::Returned);
        assert_eq!(st.reg(Gpr::Eax), 0x1_0008);
        assert_eq!(guest(&st, ArmReg::R4), 118);
        assert_eq!(guest(&st, ArmReg::R7), 30);
    }

    #[test]
    fn partial_coverage_mixes_tcg_and_rules() {
        let mut rules = RuleSet::new();
        rules.insert(figure1_rule());
        let block = GuestBlock {
            pc: 0x1_0000,
            instrs: vec![
                // Uncovered: mvn has no rule.
                ArmInstr::dp(DpOp::Mvn, ArmReg::R2, ArmReg::R0, Operand2::Reg(ArmReg::R2)),
                ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
                ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(3)),
            ],
        };
        let mem = Memory::new();
        let low = lower_block_with_rules(&mem, &block, &rules);
        assert_eq!(low.covered, vec![false, true, true]);
        assert!(low.tcg_ops > 0);
        let (st, _) = run(&low.code, |st| {
            set_guest(st, ArmReg::R2, 0x0f0f_0f0f);
            set_guest(st, ArmReg::R4, 50);
            set_guest(st, ArmReg::R7, 8);
        });
        assert_eq!(guest(&st, ArmReg::R2), !0x0f0f_0f0f);
        assert_eq!(guest(&st, ArmReg::R4), 55);
    }

    #[test]
    fn branch_rule_emits_two_exits() {
        let mut rules = RuleSet::new();
        rules.insert(Rule {
            guest: vec![
                ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)),
                ArmInstr::B { offset: 0, cond: Cond::Ne },
            ],
            host: vec![
                X86Instr::alu_rr(AluOp::Cmp, Gpr::Ecx, Gpr::Edx),
                X86Instr::Jcc { cc: Cc::Ne, target: 0 },
            ],
            host_reg_of: [(Gpr::Ecx, ArmReg::R2), (Gpr::Edx, ArmReg::R3)].into_iter().collect(),
            imm_params: vec![],
            unemulated_flags: 0,
            has_branch: true,
        });
        let block = GuestBlock {
            pc: 0x1_0000,
            instrs: vec![
                ArmInstr::cmp(ArmReg::R5, Operand2::Reg(ArmReg::R6)),
                ArmInstr::B { offset: 3, cond: Cond::Ne },
            ],
        };
        let mem = Memory::new();
        let low = lower_block_with_rules(&mem, &block, &rules);
        assert_eq!(low.covered, vec![true, true]);
        let (st, _) = run(&low.code, |st| {
            set_guest(st, ArmReg::R5, 1);
            set_guest(st, ArmReg::R6, 2);
        });
        assert_eq!(st.reg(Gpr::Eax), 0x1_0008 + 12, "taken");
        let (st2, _) = run(&low.code, |st| {
            set_guest(st, ArmReg::R5, 2);
            set_guest(st, ArmReg::R6, 2);
        });
        assert_eq!(st2.reg(Gpr::Eax), 0x1_0008, "not taken");
        // The flag save must be present: successors are unknown code
        // (zeroed memory decodes as flag-unknown), so flags are live-out.
        assert!(low.code.iter().any(|i| matches!(i, X86Instr::Pushfd)));
    }

    #[test]
    fn longest_match_preferred() {
        // Both a 2-instruction rule and a 1-instruction rule apply at
        // index 0; the longer must win.
        let mut rules = RuleSet::new();
        rules.insert(figure1_rule());
        rules.insert(Rule {
            guest: vec![ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Reg(ArmReg::R1))],
            host: vec![X86Instr::alu_rr(AluOp::Add, Gpr::Edx, Gpr::Ecx)],
            host_reg_of: [(Gpr::Edx, ArmReg::R0), (Gpr::Ecx, ArmReg::R1)].into_iter().collect(),
            imm_params: vec![],
            unemulated_flags: 0,
            has_branch: false,
        });
        let block = GuestBlock {
            pc: 0x1_0000,
            instrs: vec![
                ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
                ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(9)),
            ],
        };
        let mem = Memory::new();
        let low = lower_block_with_rules(&mem, &block, &rules);
        assert_eq!(low.hits.len(), 1);
        assert_eq!(low.hits[0].0, 2, "longest match wins");
    }

    #[test]
    fn unemulated_flags_block_application() {
        // A rule with C unemulated must not apply when a later in-block
        // instruction reads C.
        let mut rules = RuleSet::new();
        rules.insert(Rule {
            guest: vec![ArmInstr::dps(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Imm(1))],
            host: vec![X86Instr::Un { op: ldbt_x86::UnOp::Inc, dst: Operand::Reg(Gpr::Ecx) }],
            host_reg_of: [(Gpr::Ecx, ArmReg::R0)].into_iter().collect(),
            imm_params: vec![],
            unemulated_flags: 0b0010, // C
            has_branch: false,
        });
        let block = GuestBlock {
            pc: 0x1_0000,
            instrs: vec![
                ArmInstr::dps(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Imm(1)),
                // adc reads the carry the rule cannot produce.
                ArmInstr::dp(DpOp::Adc, ArmReg::R5, ArmReg::R5, Operand2::Imm(0)),
            ],
        };
        let mem = Memory::new();
        let low = lower_block_with_rules(&mem, &block, &rules);
        assert_eq!(low.covered, vec![false, false], "rule must be skipped");
    }

    #[test]
    fn mixed_block_correctness_against_interpreter() {
        // A block with a store, a rule-covered pair, and a compare.
        let mut rules = RuleSet::new();
        rules.insert(figure1_rule());
        let instrs = vec![
            ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0)),
            ArmInstr::dp(DpOp::Sub, ArmReg::R1, ArmReg::R1, Operand2::Imm(7)),
            ArmInstr::str(ArmReg::R1, ldbt_arm::AddrMode::Imm(ArmReg::R6, 4)),
            ArmInstr::dp(DpOp::Eor, ArmReg::R2, ArmReg::R1, Operand2::Imm(0xff)),
        ];
        let block = GuestBlock { pc: 0x1_0000, instrs: instrs.clone() };
        let mem = Memory::new();
        let low = lower_block_with_rules(&mem, &block, &rules);
        let (st, exit) = run(&low.code, |st| {
            set_guest(st, ArmReg::R0, 11);
            set_guest(st, ArmReg::R1, 100);
            set_guest(st, ArmReg::R6, 0x8000);
        });
        assert_eq!(exit, SeqExit::Returned);
        // Reference: the ARM interpreter.
        let mut arm = ldbt_arm::ArmState::new();
        arm.set_reg(ArmReg::R0, 11);
        arm.set_reg(ArmReg::R1, 100);
        arm.set_reg(ArmReg::R6, 0x8000);
        for i in &instrs {
            arm.exec(i);
        }
        assert_eq!(guest(&st, ArmReg::R1), arm.reg(ArmReg::R1));
        assert_eq!(guest(&st, ArmReg::R2), arm.reg(ArmReg::R2));
        assert_eq!(st.mem.read(0x8004, Width::W32), arm.mem.read(0x8004, Width::W32));
    }

    #[test]
    fn suppressed_application_falls_back_to_tcg() {
        let mut rules = RuleSet::new();
        rules.insert(figure1_rule());
        let block = GuestBlock {
            pc: 0x1_0000,
            instrs: vec![
                ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
                ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(12)),
            ],
        };
        let mem = Memory::new();
        let full = lower_block_with_rules(&mem, &block, &rules);
        assert_eq!(full.hits.len(), 1);
        assert_eq!(full.bindings.len(), full.hits.len(), "bindings parallel hits");
        assert_eq!(full.bindings[0].regs[&ArmReg::R0], ArmReg::R4);
        let probe = lower_block_with_rules_suppress(&mem, &block, &rules, true, None, Some(0));
        assert_eq!(probe.hits.len(), 0, "suppressed application emits no rule");
        assert!(probe.bindings.is_empty());
        assert_eq!(probe.covered, vec![false, false]);
        assert!(probe.tcg_ops > 0, "suppressed stretch takes the TCG path");
        // Both lowerings compute the same guest state.
        for low in [&full, &probe] {
            let (st, exit) = run(&low.code, |st| {
                set_guest(st, ArmReg::R4, 100);
                set_guest(st, ArmReg::R7, 30);
            });
            assert_eq!(exit, SeqExit::Returned);
            assert_eq!(st.reg(Gpr::Eax), 0x1_0008);
            assert_eq!(guest(&st, ArmReg::R4), 118);
        }
        // Suppressing an index that does not exist changes nothing.
        let noop = lower_block_with_rules_suppress(&mem, &block, &rules, true, None, Some(7));
        assert_eq!(noop.hits.len(), 1);
    }

    /// The scratch-register invariant (see backend.rs and sb.rs): rule
    /// glue loads every host register the rule body reads from the env
    /// before use, so rule-covered blocks — fully covered, partially
    /// covered, or branch-covered — depend on nothing from host entry
    /// state but %esp. The superblock optimizer's cross-seam liveness
    /// assumes exactly this.
    #[test]
    fn rule_lowered_blocks_read_no_host_entry_state() {
        let mut rules = RuleSet::new();
        rules.insert(figure1_rule());
        let shapes: Vec<(&str, Vec<ArmInstr>)> = vec![
            (
                "fully covered",
                vec![
                    ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
                    ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(12)),
                ],
            ),
            (
                "partially covered",
                vec![
                    ArmInstr::dp(DpOp::Mvn, ArmReg::R2, ArmReg::R0, Operand2::Reg(ArmReg::R2)),
                    ArmInstr::dp(DpOp::Add, ArmReg::R4, ArmReg::R4, Operand2::Reg(ArmReg::R7)),
                    ArmInstr::dp(DpOp::Sub, ArmReg::R4, ArmReg::R4, Operand2::Imm(3)),
                ],
            ),
        ];
        for (name, instrs) in shapes {
            let block = GuestBlock { pc: 0x1_0000, instrs };
            let mem = Memory::new();
            let low = lower_block_with_rules(&mem, &block, &rules);
            let (regs, flags) = crate::sb::entry_reads(&low.code);
            assert_eq!(regs & !(1 << Gpr::Esp.index()), 0, "{name}: reads host regs {regs:#010b}");
            assert_eq!(flags, 0, "{name}: reads host EFLAGS {flags:#06b}");
        }
    }
}
