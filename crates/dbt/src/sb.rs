//! Superblock formation: hot chained block sequences re-materialized as
//! straight-line regions.
//!
//! A superblock is an ordered list of already-translated blocks (a
//! *path* through the chain graph, picked by hotness). Each block's host
//! code is cloned and *specialized* against the seam state its
//! predecessor in the path is known to leave behind:
//!
//! * **redundant home loads** — `movl env(r), %hostreg` when the host
//!   register is known to still hold that guest register from the
//!   previous part — are elided,
//! * the **flag-materialization stub** (the `cmpl $0, flagmode; je ...`
//!   prologue of flag-reading blocks) is elided when the seam state
//!   proves flag-mode is zero, killing the redundant EFLAGS/hostflags
//!   materialization at chain seams,
//! * the **flag-mode reset** (`movl $0, flagmode`) is elided when
//!   flag-mode is already known zero,
//! * the trailing **seam exit pair** (`movl $pc, %eax; chain @next`) is
//!   stripped when the next part provably redefines `%eax` before any
//!   use, so the seam costs zero host instructions.
//!
//! Specialization never re-translates: it only deletes instructions from
//! a clone, so a region is architecturally bit-identical to running the
//! member blocks back to back (the watchdog's comparison surface — env
//! registers, guest memory, next PC — is untouched by every elision).
//! Cross-block reuse of the interpreter's last-page memory caches is
//! inherent: the caches live in `X86State.mem` and persist across
//! `run_seq` calls, so a straightened region keeps them hot through
//! every seam.
//!
//! The engine (see `engine.rs`) owns formation triggers, region
//! dispatch, the two-way link bookkeeping, and invalidation; this module
//! is the pure code-transformation layer.

use crate::env::{ENV_BASE, FLAGMODE_OFFSET};
use ldbt_x86::{AluOp, Cc, Gpr, Operand, ShiftOp, UnOp, X86Instr, X86Mem};
use std::rc::Rc;

/// Sentinel: block is not the head of any live region.
pub const NO_SB: u32 = u32::MAX;

/// Maximum number of parts in one region (a self-loop unrolls to this).
pub const SB_MAX_PARTS: usize = 8;

/// One member of a superblock: a specialized clone of an arena block.
#[derive(Debug, Clone)]
pub struct SbPart {
    /// Arena id of the original block (execs/hits/guest_len accounting
    /// and watchdog sampling all go through the original).
    pub id: u32,
    /// Specialized host code (elisions applied to a clone).
    pub code: Rc<Vec<X86Instr>>,
    /// The trailing seam exit pair was stripped: running off the end of
    /// `code` means "continue at the next part".
    pub fallthrough_seam: bool,
}

/// A formed region: an ordered path of specialized parts.
#[derive(Debug, Clone)]
pub struct Superblock {
    /// Arena id of the head block (`CachedBlock::sb_head` points back).
    pub head: u32,
    /// The path, in execution order.
    pub parts: Vec<SbPart>,
    /// Invalidated (member purged or re-patched); never executed again.
    pub dead: bool,
}

/// Abstract value of the env flag-mode slot at a seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagAbs {
    /// Provably zero: the NZCV env slots are authoritative.
    Zero,
    /// Anything (including a pending §5 lazy save).
    Unknown,
}

/// What is known about host state at a part boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeamState {
    /// `tags[gpr] = Some(slot)`: the host register provably holds the
    /// same value as guest register slot `slot` (env offset `4*slot`),
    /// and the env slot is current.
    pub tags: [Option<u8>; 8],
    /// Abstract flag-mode value.
    pub flagmode: FlagAbs,
}

impl SeamState {
    /// The no-knowledge state (region entry from the dispatcher).
    pub fn entry() -> SeamState {
        SeamState { tags: [None; 8], flagmode: FlagAbs::Unknown }
    }
}

/// Classify an absolute env address.
enum EnvSlot {
    /// A guest register slot r0–r14 (index).
    Reg(u8),
    /// The flag-mode slot.
    FlagMode,
    /// Some other env slot (flags, hostflags, spill).
    Other,
    /// Not an env address at all.
    NotEnv,
}

fn classify(m: &X86Mem) -> EnvSlot {
    if m.base.is_some() || m.index.is_some() {
        return EnvSlot::NotEnv; // dynamic: handled by the caller as "may alias anything"
    }
    let a = m.disp as u32;
    if a == ENV_BASE + FLAGMODE_OFFSET {
        return EnvSlot::FlagMode;
    }
    if (ENV_BASE..ENV_BASE + 0x3C).contains(&a) && a.is_multiple_of(4) {
        return EnvSlot::Reg(((a - ENV_BASE) / 4) as u8);
    }
    if (ENV_BASE..ENV_BASE + 0x100).contains(&a) {
        return EnvSlot::Other;
    }
    EnvSlot::NotEnv
}

/// Whether `m` is a memory operand that could alias a guest-register env
/// slot at runtime (any base/index addressing must be assumed to).
fn dynamic_addr(m: &X86Mem) -> bool {
    m.base.is_some() || m.index.is_some()
}

/// The flag-materialization stub starts at `i`: `cmpl $0, flagmode;
/// je +N` with the stub body within bounds. Returns the exclusive end
/// index of the stub.
fn stub_extent(code: &[X86Instr], i: usize) -> Option<usize> {
    let X86Instr::Alu { op: AluOp::Cmp, dst: Operand::Mem(m), src: Operand::Imm(0) } =
        code.get(i)?
    else {
        return None;
    };
    if !matches!(classify(m), EnvSlot::FlagMode) {
        return None;
    }
    let X86Instr::Jcc { cc: Cc::E, target } = code.get(i + 1)? else { return None };
    let t = *target;
    if t <= 0 {
        return None;
    }
    let end = i + 2 + t as usize;
    (end <= code.len()).then_some(end)
}

/// Whether eliding the stub's `cmpl` is EFLAGS-safe: no instruction
/// after `from` reads host EFLAGS before they are rewritten. Stops at
/// the first flag writer (safe) or block exit (safe — successors never
/// read live-in EFLAGS; the flag-mode protocol goes through the env).
fn eflags_dead_after(code: &[X86Instr], from: usize) -> bool {
    for ins in &code[from..] {
        if ins.flags_read() != 0 {
            return false; // Jcc/setcc/adc/pushfd: the cmp is load-bearing
        }
        if ins.flags_written() != 0 {
            return true;
        }
        match ins {
            // Cannot follow the jump linearly: be conservative.
            X86Instr::Jmp { .. } | X86Instr::Call { .. } => return false,
            // Block exits are safe: no generated block reads live-in
            // EFLAGS (the flag protocol goes through the env, and every
            // flag consumer is preceded by its producer in-block).
            X86Instr::Ret
            | X86Instr::JmpInd { .. }
            | X86Instr::ChainJmp { .. }
            | X86Instr::Halt => return true,
            _ => {}
        }
    }
    true
}

/// Kill every tag naming guest slot `slot`.
fn kill_slot(tags: &mut [Option<u8>; 8], slot: u8) {
    for t in tags.iter_mut() {
        if *t == Some(slot) {
            *t = None;
        }
    }
}

/// The memory operand `ins` writes, if any (stack pushes report an
/// `%esp`-based store; a memory-destination `cmp`/`test` is reported as
/// a store too, which over-kills but never under-kills).
fn store_mem(ins: &X86Instr) -> Option<X86Mem> {
    match ins {
        X86Instr::Mov { dst: Operand::Mem(m), .. }
        | X86Instr::Alu { dst: Operand::Mem(m), .. }
        | X86Instr::Shift { dst: Operand::Mem(m), .. }
        | X86Instr::Un { dst: Operand::Mem(m), .. }
        | X86Instr::Pop { dst: Operand::Mem(m) } => Some(*m),
        X86Instr::MovStore { dst, .. } => Some(*dst),
        X86Instr::Push { .. } | X86Instr::Pushfd | X86Instr::Call { .. } => {
            // Stack pushes: dynamic addresses (through %esp).
            Some(X86Mem::base(Gpr::Esp))
        }
        _ => None,
    }
}

/// Apply one instruction's *writes* to the seam state, without assuming
/// it is on the guaranteed straight-line path (`merge` mode: stores may
/// or may not execute, so they only ever remove knowledge).
fn apply_kills(st: &mut SeamState, ins: &X86Instr, merge: bool) {
    if let Some(d) = ins.def() {
        st.tags[d.index()] = None;
    }
    if let Some(m) = store_mem(ins) {
        if dynamic_addr(&m) {
            // Could alias any env slot: drop all register knowledge.
            st.tags = [None; 8];
            st.flagmode = FlagAbs::Unknown;
        } else {
            match classify(&m) {
                EnvSlot::Reg(s) => kill_slot(&mut st.tags, s),
                EnvSlot::FlagMode => {
                    let zero =
                        matches!(ins, X86Instr::Mov { dst: Operand::Mem(_), src: Operand::Imm(0) });
                    // A conditional (or non-zero) write degrades to
                    // Unknown; a zero write on a guaranteed path sets
                    // Zero; in merge mode "was Zero and writes zero"
                    // stays Zero.
                    st.flagmode = if zero && (!merge || st.flagmode == FlagAbs::Zero) {
                        FlagAbs::Zero
                    } else {
                        FlagAbs::Unknown
                    };
                }
                EnvSlot::Other | EnvSlot::NotEnv => {}
            }
        }
    }
}

/// Specialize one part's host code against the seam state on entry.
///
/// Returns the (possibly shorter) code and the seam state at the part's
/// straight-line exit — the state a successor part may rely on no matter
/// which exit is actually taken, because elisions and state *generation*
/// are restricted to the straight-line prefix that dominates every exit,
/// and everything after the first branch only *removes* knowledge.
pub fn specialize_part(code: &[X86Instr], entry: &SeamState) -> (Vec<X86Instr>, SeamState) {
    let mut st = entry.clone();
    // Backward jumps would let later code re-enter the elided prefix with
    // shifted targets; none of our lowerers emit them, but a learned rule
    // template could. Refuse to elide in that case (state tracking stays
    // valid: elision is what moves instructions).
    let allow_elide = !code.iter().any(
        |i| matches!(i, X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } if *target < 0),
    );
    let mut out: Vec<X86Instr> = Vec::with_capacity(code.len());
    let mut i = 0usize;
    let mut straight = true;
    while i < code.len() {
        let ins = &code[i];
        // The flag-materialization stub is handled atomically: its
        // internal forward jumps stay self-contained whether it is
        // elided or kept, and either way it leaves flag-mode zero.
        if straight {
            if let Some(end) = stub_extent(code, i) {
                if allow_elide && st.flagmode == FlagAbs::Zero && eflags_dead_after(code, end) {
                    // Provably skipped at runtime: drop guard and body.
                    i = end;
                    continue;
                }
                // Kept: the body clobbers %eax/%ecx and ends with
                // flag-mode zero on both paths.
                out.extend_from_slice(&code[i..end]);
                st.tags[Gpr::Eax.index()] = None;
                st.tags[Gpr::Ecx.index()] = None;
                st.flagmode = FlagAbs::Zero;
                i = end;
                continue;
            }
        }
        if straight {
            match ins {
                // Home load: `movl env(slot), %r`.
                X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Mem(m) }
                    if matches!(classify(m), EnvSlot::Reg(_)) =>
                {
                    let EnvSlot::Reg(s) = classify(m) else { unreachable!() };
                    if allow_elide && st.tags[r.index()] == Some(s) {
                        i += 1; // redundant: register already holds the slot
                        continue;
                    }
                    // Another host register provably holds the slot: a
                    // register-register copy replaces the memory load
                    // (cheaper to execute, and it feeds the region's
                    // copy propagation).
                    if allow_elide {
                        if let Some(q) = st.tags.iter().position(|t| *t == Some(s)) {
                            out.push(X86Instr::mov_rr(*r, Gpr::from_index(q)));
                            st.tags[r.index()] = Some(s);
                            i += 1;
                            continue;
                        }
                    }
                    st.tags[r.index()] = Some(s);
                    out.push(*ins);
                    i += 1;
                    continue;
                }
                // Writeback: `movl %r, env(slot)`.
                X86Instr::Mov { dst: Operand::Mem(m), src: Operand::Reg(r) }
                    if matches!(classify(m), EnvSlot::Reg(_)) =>
                {
                    let EnvSlot::Reg(s) = classify(m) else { unreachable!() };
                    kill_slot(&mut st.tags, s);
                    st.tags[r.index()] = Some(s);
                    out.push(*ins);
                    i += 1;
                    continue;
                }
                // Flag-mode reset: `movl $0, flagmode`.
                X86Instr::Mov { dst: Operand::Mem(m), src: Operand::Imm(0) }
                    if matches!(classify(m), EnvSlot::FlagMode) =>
                {
                    if allow_elide && st.flagmode == FlagAbs::Zero {
                        i += 1; // already zero
                        continue;
                    }
                    st.flagmode = FlagAbs::Zero;
                    out.push(*ins);
                    i += 1;
                    continue;
                }
                // Register copy propagates a tag.
                X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Reg(q) } => {
                    st.tags[r.index()] = st.tags[q.index()];
                    out.push(*ins);
                    i += 1;
                    continue;
                }
                _ => {}
            }
            if matches!(
                ins,
                X86Instr::Jcc { .. }
                    | X86Instr::Jmp { .. }
                    | X86Instr::JmpInd { .. }
                    | X86Instr::Call { .. }
                    | X86Instr::Ret
                    | X86Instr::ChainJmp { .. }
                    | X86Instr::Halt
            ) {
                straight = false;
            }
        }
        apply_kills(&mut st, ins, !straight);
        out.push(*ins);
        i += 1;
    }
    (out, st)
}

// ---------------------------------------------------------------------
// Region-level liveness optimization.
//
// Once a hot chain is straightened, the merged body is full of rule and
// lowering glue that only made sense at block granularity: values copied
// through chains of scratch registers, results computed and thrown away
// before the next seam, immediates shuffled into registers only to be
// stored. Host scratch registers are invisible outside the region —
// translated blocks communicate exclusively through the env, plus `%eax`
// for the dispatcher protocol and `%esp` for the host stack (the
// `entry_reads` invariant, asserted at block insertion in debug builds)
// — so a cross-seam liveness pass may rewrite and delete freely as long
// as every env access, memory effect, and exit is preserved.
// ---------------------------------------------------------------------

/// Register liveness (bit per [`Gpr::index`]) plus EFLAGS liveness (the
/// [`X86Instr::flags_written`] mask layout) at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Live {
    regs: u8,
    flags: u8,
}

impl Live {
    const NONE: Live = Live { regs: 0, flags: 0 };
    const ALL: Live = Live { regs: 0xFF, flags: 0b1111 };

    fn union(self, o: Live) -> Live {
        Live { regs: self.regs | o.regs, flags: self.flags | o.flags }
    }
}

fn bit(r: Gpr) -> u8 {
    1u8 << r.index()
}

/// What is live when control escapes a region to foreign code (the
/// dispatcher after `ret`, or another translated block after a chained
/// side exit): `%eax` carries the next guest pc and `%esp` is the host
/// stack pointer; every other register and all EFLAGS are scratch,
/// because translated blocks start from the env ([`entry_reads`]).
fn exit_live() -> Live {
    Live { regs: bit(Gpr::Eax) | bit(Gpr::Esp), flags: 0 }
}

/// Whether every jump destination lands inside `[0, len]` (`len` itself
/// is the past-the-end fallthrough). Out-of-range jumps would fault at
/// runtime; the optimizer refuses to touch such code.
fn jumps_in_range(code: &[X86Instr]) -> bool {
    code.iter().enumerate().all(|(i, ins)| match ins {
        X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } => {
            (0..=code.len() as i64).contains(&(i as i64 + 1 + *target as i64))
        }
        _ => true,
    })
}

/// Per-instruction liveness. `end_live` is what is live when execution
/// runs off the end of `code` (the successor part's entry liveness for a
/// stripped seam, [`exit_live`] otherwise); `exit` what is live at every
/// escape to foreign code. `seam_next` is the block id of the region's
/// next part, if any: a `ChainJmp` to *that* block is an in-region seam
/// — `run_superblock` continues straight into the next part with host
/// registers intact, and the next part may have been specialized to read
/// them — so it flows into `end_live`, not `exit`. Every other
/// `ChainJmp` leaves the region and lands on arena code, which reads
/// nothing but the env. Iterates to a fixpoint, so backward jumps are
/// handled exactly. Returns the live-*out* set per instruction and the
/// live-in set of the entry point.
fn liveness(
    code: &[X86Instr],
    end_live: Live,
    exit: Live,
    seam_next: Option<u32>,
) -> (Vec<Live>, Live) {
    let n = code.len();
    let mut live_in = vec![Live::NONE; n + 1];
    live_in[n] = end_live;
    let mut live_out = vec![Live::NONE; n];
    loop {
        let mut changed = false;
        for i in (0..n).rev() {
            let ins = &code[i];
            let dest =
                |t: i32| -> Live { live_in[(i as i64 + 1 + t as i64).clamp(0, n as i64) as usize] };
            let out = match ins {
                X86Instr::ChainJmp { block } if Some(*block) == seam_next => end_live,
                X86Instr::Ret
                | X86Instr::JmpInd { .. }
                | X86Instr::ChainJmp { .. }
                | X86Instr::Halt => exit,
                // A call hands control to code this analysis cannot see
                // and expects it to return: keep everything.
                X86Instr::Call { .. } => Live::ALL,
                X86Instr::Jmp { target } => dest(*target),
                X86Instr::Jcc { target, .. } => dest(*target).union(live_in[i + 1]),
                _ => live_in[i + 1],
            };
            live_out[i] = out;
            let mut regs = out.regs;
            if let Some(d) = ins.def() {
                regs &= !bit(d);
            }
            for u in ins.uses() {
                regs |= bit(u);
            }
            let li = Live { regs, flags: ins.flags_read() | (out.flags & !ins.flags_written()) };
            if li != live_in[i] {
                live_in[i] = li;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (live_out, live_in[0])
}

/// The host registers and EFLAGS `code` may read before writing them —
/// its dependence on entry state. Every translated block must depend on
/// nothing but `%esp`: blocks are entered from the dispatcher or an
/// arbitrary chained predecessor and load all guest state from the env.
/// This invariant is what makes [`exit_live`]'s scratch assumption (and
/// with it the whole region optimizer) sound; the engine asserts it for
/// every inserted block in debug builds.
pub fn entry_reads(code: &[X86Instr]) -> (u8, u8) {
    let (_, li) = liveness(code, Live::NONE, Live::NONE, None);
    (li.regs, li.flags)
}

/// Whether `ins` may be deleted once its results are dead: no memory
/// write, no stack or control-flow effect, and any memory *read* must be
/// a static env access (the env is always mapped, so deletion cannot
/// suppress a fault the original code would raise).
fn removable(ins: &X86Instr) -> bool {
    if store_mem(ins).is_some() || ins.is_block_end() {
        return false;
    }
    if matches!(
        ins,
        X86Instr::Jcc { .. }
            | X86Instr::Push { .. }
            | X86Instr::Pop { .. }
            | X86Instr::Pushfd
            | X86Instr::Popfd
    ) {
        return false;
    }
    let src_mem = match ins {
        X86Instr::Mov { src: Operand::Mem(m), .. }
        | X86Instr::Alu { src: Operand::Mem(m), .. }
        | X86Instr::Imul { src: Operand::Mem(m), .. }
        | X86Instr::Movx { src: Operand::Mem(m), .. } => Some(m),
        _ => None,
    };
    match src_mem {
        Some(m) => !dynamic_addr(m) && !matches!(classify(m), EnvSlot::NotEnv),
        None => true,
    }
}

/// Rebuild `code` keeping only instructions with `keep[i]`, re-encoding
/// the relative jump targets around the holes. A target that pointed at
/// a removed instruction lands on the next kept one.
fn remap(code: &[X86Instr], keep: &[bool]) -> Vec<X86Instr> {
    let n = code.len();
    let mut pos = vec![0usize; n + 1];
    let mut c = 0usize;
    for i in 0..n {
        pos[i] = c;
        if keep[i] {
            c += 1;
        }
    }
    pos[n] = c;
    let mut out = Vec::with_capacity(c);
    for i in 0..n {
        if !keep[i] {
            continue;
        }
        let retarget = |t: i32| -> i32 {
            let d = (i as i64 + 1 + t as i64).clamp(0, n as i64) as usize;
            pos[d] as i32 - pos[i] as i32 - 1
        };
        out.push(match code[i] {
            X86Instr::Jmp { target } => X86Instr::Jmp { target: retarget(target) },
            X86Instr::Jcc { cc, target } => X86Instr::Jcc { cc, target: retarget(target) },
            ins => ins,
        });
    }
    out
}

/// Delete instructions whose register result and flag effects are both
/// dead (plus no-op self-moves), iterating until nothing more falls out.
/// Returns the new code (`None` if unchanged) and the entry liveness for
/// threading across the preceding seam.
fn eliminate_dead(
    code: &[X86Instr],
    end_live: Live,
    seam_next: Option<u32>,
) -> (Option<Vec<X86Instr>>, Live) {
    let mut cur: Vec<X86Instr> = code.to_vec();
    let mut any = false;
    loop {
        let n = cur.len();
        let (live_out, live_in0) = liveness(&cur, end_live, exit_live(), seam_next);
        let mut keep = vec![true; n];
        let mut removed = false;
        for (i, ins) in cur.iter().enumerate() {
            let noop = matches!(
                ins,
                X86Instr::Mov { dst: Operand::Reg(a), src: Operand::Reg(b) } if a == b
            );
            if !noop {
                if !removable(ins) {
                    continue;
                }
                let effect = ins.def().is_some() || ins.flags_written() != 0;
                let dead_def = ins.def().is_none_or(|d| live_out[i].regs & bit(d) == 0);
                let dead_flags = ins.flags_written() & live_out[i].flags == 0;
                if !(effect && dead_def && dead_flags) {
                    continue;
                }
            }
            keep[i] = false;
            removed = true;
        }
        if !removed {
            return (any.then_some(cur), live_in0);
        }
        any = true;
        cur = remap(&cur, &keep);
    }
}

/// Constant-fold a pure-register ALU/shift/unary whose inputs are all
/// known. Returns the destination and the folded value; the caller must
/// separately prove the instruction's EFLAGS results dead, because the
/// replacement `mov` writes none.
fn fold(ins: &X86Instr, vals: &[Option<Operand>; 8]) -> Option<(Gpr, i32)> {
    let cv = |r: Gpr| match vals[r.index()] {
        Some(Operand::Imm(v)) => Some(v),
        _ => None,
    };
    match *ins {
        X86Instr::Alu { op, dst: Operand::Reg(r), src }
            if !op.is_compare() && !op.reads_carry() =>
        {
            let a = cv(r)?;
            let b = match src {
                Operand::Imm(v) => v,
                Operand::Reg(q) => cv(q)?,
                Operand::Mem(_) => return None,
            };
            let v = match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::And => a & b,
                AluOp::Or => a | b,
                AluOp::Xor => a ^ b,
                _ => return None,
            };
            Some((r, v))
        }
        X86Instr::Shift { op, dst: Operand::Reg(r), count } => {
            let a = cv(r)?;
            let c = count as u32 & 31;
            let v = match op {
                ShiftOp::Shl => ((a as u32) << c) as i32,
                ShiftOp::Shr => ((a as u32) >> c) as i32,
                ShiftOp::Sar => a >> c,
            };
            Some((r, v))
        }
        X86Instr::Un { op, dst: Operand::Reg(r) } => {
            let a = cv(r)?;
            let v = match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::Not => !a,
                UnOp::Inc => a.wrapping_add(1),
                UnOp::Dec => a.wrapping_sub(1),
            };
            Some((r, v))
        }
        _ => None,
    }
}

/// Drop every known register equality invalidated by a write to `d`.
fn invalidate(vals: &mut [Option<Operand>; 8], d: Gpr) {
    vals[d.index()] = None;
    for v in vals.iter_mut() {
        if *v == Some(Operand::Reg(d)) {
            *v = None;
        }
    }
}

/// Substitute a known equality into one *read* operand. `imm_ok` says an
/// immediate is encodable in this position.
fn subst_operand(op: &mut Operand, vals: &[Option<Operand>; 8], imm_ok: bool) -> bool {
    match op {
        Operand::Reg(q) => match vals[q.index()] {
            Some(Operand::Reg(p)) if p != *q => {
                *op = Operand::Reg(p);
                true
            }
            Some(Operand::Imm(v)) if imm_ok => {
                *op = Operand::Imm(v);
                true
            }
            _ => false,
        },
        Operand::Mem(m) => subst_mem(m, vals),
        Operand::Imm(_) => false,
    }
}

/// Substitute into an address: base/index registers with known register
/// equalities are renamed, and known-constant bases fold into the
/// displacement (the computed address is identical either way).
fn subst_mem(m: &mut X86Mem, vals: &[Option<Operand>; 8]) -> bool {
    let mut ch = false;
    if let Some(b) = m.base {
        match vals[b.index()] {
            Some(Operand::Reg(p)) if p != b => {
                m.base = Some(p);
                ch = true;
            }
            Some(Operand::Imm(v)) => {
                m.base = None;
                m.disp = m.disp.wrapping_add(v);
                ch = true;
            }
            _ => {}
        }
    }
    if let Some((ix, s)) = m.index {
        match vals[ix.index()] {
            Some(Operand::Reg(p)) if p != ix => {
                m.index = Some((p, s));
                ch = true;
            }
            Some(Operand::Imm(v)) => {
                m.index = None;
                m.disp = m.disp.wrapping_add(v.wrapping_mul(s as i32));
                ch = true;
            }
            _ => {}
        }
    }
    ch
}

/// Substitute known equalities into every read position of `ins`.
/// Read-write operands (ALU destinations, `setcc`, sub-word stores) are
/// never renamed; compare destinations are pure reads and are.
fn rewrite_reads(ins: &mut X86Instr, vals: &[Option<Operand>; 8]) -> bool {
    match ins {
        X86Instr::Mov { dst, src } => {
            let mut ch = subst_operand(src, vals, true);
            if let Operand::Mem(m) = dst {
                ch |= subst_mem(m, vals);
            }
            ch
        }
        X86Instr::Alu { op, dst, src } => {
            let mut ch = subst_operand(src, vals, true);
            match dst {
                Operand::Mem(m) => ch |= subst_mem(m, vals),
                // cmp/test read their destination without writing it.
                Operand::Reg(q) if op.is_compare() => {
                    if let Some(Operand::Reg(p)) = vals[q.index()] {
                        if p != *q {
                            *dst = Operand::Reg(p);
                            ch = true;
                        }
                    }
                }
                _ => {}
            }
            ch
        }
        X86Instr::Lea { addr, .. } => subst_mem(addr, vals),
        X86Instr::Imul { src, .. } => subst_operand(src, vals, false),
        X86Instr::Shift { dst: Operand::Mem(m), .. }
        | X86Instr::Un { dst: Operand::Mem(m), .. } => subst_mem(m, vals),
        X86Instr::Movx { src, .. } => subst_operand(src, vals, false),
        // The source's low bits are stored: renaming is value-safe, but
        // W8 needs a byte-addressable register — skip the source.
        X86Instr::MovStore { dst, .. } => subst_mem(dst, vals),
        X86Instr::Push { src } => subst_operand(src, vals, true),
        X86Instr::JmpInd { src } => subst_operand(src, vals, false),
        X86Instr::Pop { dst: Operand::Mem(m) } => subst_mem(m, vals),
        _ => false,
    }
}

/// Forward copy/constant propagation with local constant folding over
/// one part. Equalities are dropped at every jump target (join points;
/// the target set is precomputed, so backward edges join correctly). A
/// fold replaces a flag-writing instruction with a `mov`, so it requires
/// the instruction's EFLAGS results dead per `live_out`. Folds only ever
/// *remove* flag writes whose results were already dead, so `live_out`
/// computed before the pass stays a sound over-approximation throughout.
fn propagate(code: &[X86Instr], live_out: &[Live]) -> Option<Vec<X86Instr>> {
    let n = code.len();
    let mut is_target = vec![false; n + 1];
    for (i, ins) in code.iter().enumerate() {
        if let X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } = ins {
            is_target[(i as i64 + 1 + *target as i64).clamp(0, n as i64) as usize] = true;
        }
    }
    let mut vals: [Option<Operand>; 8] = [None; 8];
    let mut out = Vec::with_capacity(n);
    let mut changed = false;
    for (i, ins) in code.iter().enumerate() {
        if is_target[i] {
            vals = [None; 8];
        }
        let mut ins = *ins;
        changed |= rewrite_reads(&mut ins, &vals);
        if let Some((d, v)) = fold(&ins, &vals) {
            if ins.flags_written() & live_out[i].flags == 0 {
                ins = X86Instr::mov_imm(d, v);
                changed = true;
            }
        }
        if let Some(d) = ins.def() {
            invalidate(&mut vals, d);
        }
        if matches!(
            ins,
            X86Instr::Push { .. }
                | X86Instr::Pop { .. }
                | X86Instr::Pushfd
                | X86Instr::Popfd
                | X86Instr::Call { .. }
                | X86Instr::Ret
        ) {
            invalidate(&mut vals, Gpr::Esp);
        }
        if let X86Instr::Mov { dst: Operand::Reg(r), src } = ins {
            match src {
                Operand::Reg(q) if q != r => vals[r.index()] = Some(Operand::Reg(q)),
                Operand::Imm(v) => vals[r.index()] = Some(Operand::Imm(v)),
                _ => {}
            }
        }
        out.push(ins);
    }
    changed.then_some(out)
}

/// Liveness-driven cleanup of a whole region, run after specialization
/// and seam stripping: forward copy/constant propagation inside each
/// part, then dead code elimination with cross-seam liveness — a seam
/// (stripped fallthrough *or* a `ChainJmp` to the next part's block,
/// which `run_superblock` follows without leaving the region) threads
/// the successor part's entry liveness into its predecessor, so a value
/// is dead only when no later part on the straightened path reads it
/// before control could reach foreign code. This matters because
/// specialized parts legitimately read registers at entry — that is the
/// seam optimization — so their entry liveness is *not* empty. Every
/// env access, memory effect, and exit is preserved, so the watchdog
/// comparison surface and all guest-visible state are untouched; only
/// executed host instructions shrink.
pub fn optimize_region(parts: &mut [SbPart]) {
    for _ in 0..4 {
        let mut changed = false;
        let mut next_entry = exit_live();
        for k in (0..parts.len()).rev() {
            let seam_next = parts.get(k + 1).map(|p| p.id);
            // What is live past the end of this part: the next part's
            // entry for a stripped seam; unreachable otherwise. The same
            // set is what an in-region ChainJmp seam flows into (see
            // `liveness`), so any non-last part uses the threaded value.
            let end_live = if seam_next.is_some() { next_entry } else { exit_live() };
            let mut code: Vec<X86Instr> = (*parts[k].code).clone();
            if jumps_in_range(&code) {
                let mut part_changed = false;
                for _ in 0..4 {
                    let (live_out, _) = liveness(&code, end_live, exit_live(), seam_next);
                    let Some(c) = propagate(&code, &live_out) else { break };
                    code = c;
                    part_changed = true;
                }
                let (c, _) = eliminate_dead(&code, end_live, seam_next);
                if let Some(c) = c {
                    code = c;
                    part_changed = true;
                }
                if part_changed {
                    changed = true;
                    parts[k].code = Rc::new(code.clone());
                }
            }
            let (_, entry) = liveness(&code, end_live, exit_live(), seam_next);
            next_entry = entry;
        }
        if !changed {
            break;
        }
    }
}

/// Whether executing `code` from its start provably writes `%eax` before
/// any instruction reads it (and before any exit the analysis cannot
/// follow). Used to prove a predecessor's seam exit pair — which is what
/// normally freshens `%eax` — can be stripped.
fn eax_redefined_first(code: &[X86Instr], ip: usize, depth: u32) -> bool {
    if depth == 0 {
        return false;
    }
    let mut i = ip;
    loop {
        let Some(ins) = code.get(i) else {
            // Ran off the end: only reachable when this part's own seam
            // pair was stripped, which required its successor to pass
            // this same check first.
            return true;
        };
        if ins.uses().contains(&Gpr::Eax) {
            return false;
        }
        if ins.def() == Some(Gpr::Eax) {
            return true;
        }
        match ins {
            X86Instr::Jcc { target, .. } => {
                if *target < 0 {
                    return false;
                }
                return eax_redefined_first(code, i + 1, depth - 1)
                    && eax_redefined_first(code, i + 1 + *target as usize, depth - 1);
            }
            X86Instr::Jmp { target } => {
                if *target < 0 {
                    return false;
                }
                i = i + 1 + *target as usize;
                continue;
            }
            // Halt never consults %eax; everything else hands control to
            // code this analysis cannot see (the dispatcher reads %eax
            // after `ret`) — refuse.
            X86Instr::Halt => return true,
            X86Instr::Ret | X86Instr::JmpInd { .. } | X86Instr::Call { .. } => return false,
            X86Instr::ChainJmp { .. } => return false,
            _ => {}
        }
        i += 1;
    }
}

/// Strip each part's trailing seam exit pair (`movl $next_pc, %eax;
/// chain @next_id`) where the next part provably redefines `%eax` before
/// reading it. Decided back to front so a stripped part's own
/// past-the-end fallthrough is covered by its successor's proof.
pub fn strip_seam_exits(parts: &mut [SbPart], pcs: &[u32]) {
    debug_assert_eq!(parts.len(), pcs.len());
    for k in (0..parts.len().saturating_sub(1)).rev() {
        let next_id = parts[k + 1].id;
        let next_pc = pcs[k + 1];
        let code = &parts[k].code;
        let n = code.len();
        if n < 2 {
            continue;
        }
        let pair_ok = matches!(
            code[n - 2],
            X86Instr::Mov { dst: Operand::Reg(Gpr::Eax), src: Operand::Imm(v) }
                if v as u32 == next_pc
        ) && matches!(code[n - 1], X86Instr::ChainJmp { block } if block == next_id);
        if !pair_ok || !eax_redefined_first(&parts[k + 1].code, 0, 16) {
            continue;
        }
        // No forward jump may land inside the stripped pair or past the
        // code end — either would change meaning once the pair is gone.
        // A jump to exactly n-2 lands on the pair's first instruction,
        // which after stripping is the past-the-end fallthrough: that is
        // precisely the seam semantics, so it stays legal.
        let jump_into_pair = code.iter().enumerate().any(|(at, ins)| match ins {
            X86Instr::Jcc { target, .. } | X86Instr::Jmp { target } if *target > 0 => {
                let dest = at + 1 + *target as usize;
                dest > n - 2
            }
            _ => false,
        });
        if jump_into_pair {
            continue;
        }
        let part = &mut parts[k];
        let mut new_code = (*part.code).clone();
        new_code.truncate(n - 2);
        part.code = Rc::new(new_code);
        part.fallthrough_seam = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{env_mem, reg_mem, FLAGMODE_OFFSET, HOSTFLAGS_OFFSET};
    use ldbt_arm::ArmReg;

    fn load(r: Gpr, g: ArmReg) -> X86Instr {
        X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Mem(reg_mem(g)) }
    }

    fn store(g: ArmReg, r: Gpr) -> X86Instr {
        X86Instr::Mov { dst: Operand::Mem(reg_mem(g)), src: Operand::Reg(r) }
    }

    fn flagmode_reset() -> X86Instr {
        X86Instr::Mov { dst: Operand::Mem(env_mem(FLAGMODE_OFFSET)), src: Operand::Imm(0) }
    }

    fn exit_pair(pc: u32, block: u32) -> [X86Instr; 2] {
        [X86Instr::mov_imm(Gpr::Eax, pc as i32), X86Instr::ChainJmp { block }]
    }

    /// A miniature but faithful flag stub (guard + body + reset).
    fn mini_stub() -> Vec<X86Instr> {
        vec![
            X86Instr::Alu {
                op: AluOp::Cmp,
                dst: Operand::Mem(env_mem(FLAGMODE_OFFSET)),
                src: Operand::Imm(0),
            },
            X86Instr::Jcc { cc: Cc::E, target: 4 },
            X86Instr::Mov {
                dst: Operand::Reg(Gpr::Ecx),
                src: Operand::Mem(env_mem(FLAGMODE_OFFSET)),
            },
            X86Instr::Push { src: Operand::Mem(env_mem(HOSTFLAGS_OFFSET)) },
            X86Instr::Popfd,
            flagmode_reset(),
        ]
    }

    #[test]
    fn entry_state_keeps_everything() {
        let code = vec![load(Gpr::Ecx, ArmReg::R0), X86Instr::alu_ri(AluOp::Add, Gpr::Ecx, 1)];
        let (out, st) = specialize_part(&code, &SeamState::entry());
        assert_eq!(out, code, "nothing provable at entry: nothing elided");
        // The add killed the tag the load generated.
        assert_eq!(st.tags[Gpr::Ecx.index()], None);
    }

    #[test]
    fn redundant_home_load_elided_and_writeback_tags() {
        // Part A writes back r4 from %esi; part B reloads it.
        let a = vec![store(ArmReg::R4, Gpr::Esi), X86Instr::Ret];
        let (_, seam) = specialize_part(&a, &SeamState::entry());
        assert_eq!(seam.tags[Gpr::Esi.index()], Some(4));
        let b = vec![load(Gpr::Esi, ArmReg::R4), X86Instr::alu_ri(AluOp::Add, Gpr::Esi, 7)];
        let (out, _) = specialize_part(&b, &seam);
        assert_eq!(out.len(), 1, "reload of a still-live home is dropped");
        assert!(matches!(out[0], X86Instr::Alu { .. }));
        // With a cold seam the load must survive.
        let (cold, _) = specialize_part(&b, &SeamState::entry());
        assert_eq!(cold.len(), 2);
    }

    #[test]
    fn load_to_different_reg_not_elided() {
        let a = vec![store(ArmReg::R4, Gpr::Esi), X86Instr::Ret];
        let (_, seam) = specialize_part(&a, &SeamState::entry());
        let b = vec![load(Gpr::Edi, ArmReg::R4)];
        let (out, st) = specialize_part(&b, &seam);
        assert_eq!(out.len(), 1, "different target register: keep the load");
        assert_eq!(st.tags[Gpr::Edi.index()], Some(4));
    }

    #[test]
    fn flagmode_reset_elided_when_zero() {
        let a = vec![flagmode_reset(), X86Instr::Ret];
        let (_, seam) = specialize_part(&a, &SeamState::entry());
        assert_eq!(seam.flagmode, FlagAbs::Zero);
        let b = vec![flagmode_reset(), X86Instr::alu_ri(AluOp::Add, Gpr::Ecx, 1)];
        let (out, st) = specialize_part(&b, &seam);
        assert_eq!(out.len(), 1, "redundant reset dropped");
        assert_eq!(st.flagmode, FlagAbs::Zero);
    }

    #[test]
    fn flag_stub_elided_only_when_flagmode_zero_and_eflags_dead() {
        let mut b = mini_stub();
        // Body: a flag writer follows, so the stub's cmp flags are dead.
        b.push(X86Instr::alu_ri(AluOp::Add, Gpr::Ecx, 1));
        let zero = SeamState { tags: [None; 8], flagmode: FlagAbs::Zero };
        let (out, st) = specialize_part(&b, &zero);
        assert_eq!(out.len(), 1, "whole stub elided: {out:?}");
        assert_eq!(st.flagmode, FlagAbs::Zero);
        // Unknown flag-mode: the stub must stay, and normalizes to Zero.
        let (kept, st2) = specialize_part(&b, &SeamState::entry());
        assert_eq!(kept.len(), b.len());
        assert_eq!(st2.flagmode, FlagAbs::Zero);
    }

    #[test]
    fn flag_stub_kept_when_eflags_still_read() {
        // A setcc consumes EFLAGS right after the stub: the stub's cmp is
        // load-bearing for it, so elision must refuse.
        let mut b = mini_stub();
        b.push(X86Instr::Setcc { cc: Cc::E, dst: Gpr::Ecx });
        let zero = SeamState { tags: [None; 8], flagmode: FlagAbs::Zero };
        let (out, _) = specialize_part(&b, &zero);
        assert_eq!(out.len(), b.len(), "EFLAGS consumer blocks stub elision");
    }

    #[test]
    fn dynamic_store_kills_all_tags() {
        let a = vec![store(ArmReg::R4, Gpr::Esi), X86Instr::Ret];
        let (_, mut seam) = specialize_part(&a, &SeamState::entry());
        seam.flagmode = FlagAbs::Zero;
        let b = vec![X86Instr::Mov {
            dst: Operand::Mem(X86Mem::base(Gpr::Edx)),
            src: Operand::Reg(Gpr::Esi),
        }];
        let (_, st) = specialize_part(&b, &seam);
        assert_eq!(st.tags, [None; 8], "a store through a pointer may alias the env");
        assert_eq!(st.flagmode, FlagAbs::Unknown);
    }

    #[test]
    fn post_branch_code_only_removes_knowledge() {
        // After the first branch nothing is guaranteed to execute: a
        // home load there must not generate a tag, and a conditional
        // writeback must kill one.
        let code = vec![
            store(ArmReg::R4, Gpr::Esi),
            X86Instr::Jcc { cc: Cc::E, target: 1 },
            store(ArmReg::R4, Gpr::Edi), // maybe-executed: r4 no longer tied to %esi
            load(Gpr::Ebx, ArmReg::R5),  // maybe-executed: generates nothing
        ];
        let (out, st) = specialize_part(&code, &SeamState::entry());
        assert_eq!(out.len(), code.len());
        assert_eq!(st.tags[Gpr::Esi.index()], None);
        assert_eq!(st.tags[Gpr::Ebx.index()], None);
    }

    #[test]
    fn backward_jump_disables_elision() {
        let a = vec![store(ArmReg::R4, Gpr::Esi), X86Instr::Ret];
        let (_, seam) = specialize_part(&a, &SeamState::entry());
        let b = vec![load(Gpr::Esi, ArmReg::R4), X86Instr::Jcc { cc: Cc::E, target: -1 }];
        let (out, _) = specialize_part(&b, &seam);
        assert_eq!(out.len(), 2, "backward jump: shifting indices is unsafe");
    }

    #[test]
    fn seam_exit_pair_stripped_when_eax_dead() {
        let pair = exit_pair(0x1_0040, 7);
        let mut parts = vec![
            SbPart {
                id: 3,
                code: Rc::new(vec![X86Instr::alu_ri(AluOp::Add, Gpr::Ecx, 1), pair[0], pair[1]]),
                fallthrough_seam: false,
            },
            SbPart {
                id: 7,
                // Next part redefines %eax before any use (a Jump exit).
                code: Rc::new(vec![
                    X86Instr::alu_ri(AluOp::Add, Gpr::Edx, 2),
                    X86Instr::mov_imm(Gpr::Eax, 0x1_0080),
                    X86Instr::Ret,
                ]),
                fallthrough_seam: false,
            },
        ];
        strip_seam_exits(&mut parts, &[0x1_0000, 0x1_0040]);
        assert!(parts[0].fallthrough_seam);
        assert_eq!(parts[0].code.len(), 1, "pair stripped");
        assert!(!parts[1].fallthrough_seam, "last part never stripped");
    }

    #[test]
    fn seam_exit_pair_kept_when_next_reads_eax() {
        let pair = exit_pair(0x1_0040, 7);
        let mut parts = vec![
            SbPart { id: 3, code: Rc::new(vec![pair[0], pair[1]]), fallthrough_seam: false },
            SbPart {
                id: 7,
                // Reads %eax (e.g. via an indirect-exit mov) before writing.
                code: Rc::new(vec![
                    X86Instr::mov_rr(Gpr::Ecx, Gpr::Eax),
                    X86Instr::mov_imm(Gpr::Eax, 0),
                    X86Instr::Ret,
                ]),
                fallthrough_seam: false,
            },
        ];
        strip_seam_exits(&mut parts, &[0x1_0000, 0x1_0040]);
        assert!(!parts[0].fallthrough_seam, "eax live-in: keep the pair");
        assert_eq!(parts[0].code.len(), 2);
    }

    #[test]
    fn seam_exit_pair_kept_when_target_mismatches() {
        let pair = exit_pair(0x9999, 7); // wrong pc for part 1
        let mut parts = vec![
            SbPart { id: 3, code: Rc::new(vec![pair[0], pair[1]]), fallthrough_seam: false },
            SbPart {
                id: 7,
                code: Rc::new(vec![X86Instr::mov_imm(Gpr::Eax, 0), X86Instr::Ret]),
                fallthrough_seam: false,
            },
        ];
        strip_seam_exits(&mut parts, &[0x1_0000, 0x1_0040]);
        assert!(!parts[0].fallthrough_seam);
    }

    #[test]
    fn eax_analysis_follows_both_branch_arms() {
        // Branch-terminator shape: cmp; jcc over the not-taken arm; both
        // arms define %eax first thing.
        let code = vec![
            X86Instr::Alu { op: AluOp::Cmp, dst: Operand::Reg(Gpr::Ecx), src: Operand::Imm(0) },
            X86Instr::Jcc { cc: Cc::Ne, target: 2 },
            X86Instr::mov_imm(Gpr::Eax, 0x10),
            X86Instr::Ret,
            X86Instr::mov_imm(Gpr::Eax, 0x20),
            X86Instr::Ret,
        ];
        assert!(eax_redefined_first(&code, 0, 16));
        // But a bare chain-jump path (no def) must refuse.
        let leak = vec![X86Instr::ChainJmp { block: 5 }];
        assert!(!eax_redefined_first(&leak, 0, 16));
    }

    /// Regression (caught on gobmk): a part ending in a *conditional*
    /// ChainJmp seam (`fallthrough_seam == false`) still continues into
    /// the next part with registers intact, and that next part may have
    /// been specialized to read them. The optimizer must thread the
    /// successor's entry liveness through the ChainJmp-to-next-part
    /// edge, not treat it as a register-killing region escape — here,
    /// stripping `%ecx = %ebx` from part 0 would leave part 1 comparing
    /// a stale `%ecx`.
    #[test]
    fn chainjmp_seam_threads_successor_entry_liveness() {
        let part0 = vec![
            load(Gpr::Ebx, ArmReg::R0),
            X86Instr::mov_rr(Gpr::Ecx, Gpr::Ebx), // dead, unless part 1 needs %ecx
            store(ArmReg::R1, Gpr::Ebx),
            X86Instr::Alu { op: AluOp::Cmp, dst: Operand::Reg(Gpr::Ebx), src: Operand::Imm(9) },
            X86Instr::Jcc { cc: Cc::L, target: 2 },
            X86Instr::mov_imm(Gpr::Eax, 0x100),
            X86Instr::ChainJmp { block: 7 }, // in-region seam: next part's block
            X86Instr::mov_imm(Gpr::Eax, 0x200),
            X86Instr::ChainJmp { block: 3 }, // side exit
        ];
        // Part 1 was specialized against the seam state: no home load of
        // r0, it reads %ecx straight away.
        let part1 = vec![
            X86Instr::Alu { op: AluOp::Cmp, dst: Operand::Reg(Gpr::Ecx), src: Operand::Imm(4) },
            X86Instr::Jcc { cc: Cc::L, target: 2 },
            X86Instr::mov_imm(Gpr::Eax, 0x300),
            X86Instr::Ret,
            X86Instr::mov_imm(Gpr::Eax, 0x400),
            X86Instr::Ret,
        ];
        let mut parts = vec![
            SbPart { id: 5, code: Rc::new(part0), fallthrough_seam: false },
            SbPart { id: 7, code: Rc::new(part1), fallthrough_seam: false },
        ];
        optimize_region(&mut parts);
        assert!(
            parts[0].code.iter().any(|i| matches!(
                i,
                X86Instr::Mov { dst: Operand::Reg(Gpr::Ecx), src: Operand::Reg(Gpr::Ebx) }
            )),
            "%ecx def feeding the specialized successor must survive: {:?}",
            parts[0].code
        );
        // Sanity: with no successor depending on it, the same copy IS
        // removed (it is genuinely dead at a real region escape).
        let solo = vec![
            load(Gpr::Ebx, ArmReg::R0),
            X86Instr::mov_rr(Gpr::Ecx, Gpr::Ebx),
            store(ArmReg::R1, Gpr::Ebx),
            X86Instr::mov_imm(Gpr::Eax, 0x100),
            X86Instr::Ret,
        ];
        let mut alone = vec![SbPart { id: 5, code: Rc::new(solo), fallthrough_seam: false }];
        optimize_region(&mut alone);
        assert!(
            !alone[0].code.iter().any(|i| matches!(
                i,
                X86Instr::Mov { dst: Operand::Reg(Gpr::Ecx), src: Operand::Reg(Gpr::Ebx) }
            )),
            "dead copy at a real escape is removed: {:?}",
            alone[0].code
        );
    }
}
