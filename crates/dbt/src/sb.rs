//! Superblock formation: hot chained block sequences re-materialized as
//! straight-line regions.
//!
//! A superblock is an ordered list of already-translated blocks (a
//! *path* through the chain graph, picked by hotness). Each block's host
//! code is cloned and *specialized* against the seam state its
//! predecessor in the path is known to leave behind:
//!
//! * **redundant home loads** — `movl env(r), %hostreg` when the host
//!   register is known to still hold that guest register from the
//!   previous part — are elided,
//! * the **flag-materialization stub** (the `cmpl $0, flagmode; je ...`
//!   prologue of flag-reading blocks) is elided when the seam state
//!   proves flag-mode is zero, killing the redundant EFLAGS/hostflags
//!   materialization at chain seams,
//! * the **flag-mode reset** (`movl $0, flagmode`) is elided when
//!   flag-mode is already known zero,
//! * the trailing **seam exit pair** (`movl $pc, %eax; chain @next`) is
//!   stripped when the next part provably redefines `%eax` before any
//!   use, so the seam costs zero host instructions.
//!
//! Specialization never re-translates: it only deletes instructions from
//! a clone, so a region is architecturally bit-identical to running the
//! member blocks back to back (the watchdog's comparison surface — env
//! registers, guest memory, next PC — is untouched by every elision).
//! Cross-block reuse of the interpreter's last-page memory caches is
//! inherent: the caches live in `X86State.mem` and persist across
//! `run_seq` calls, so a straightened region keeps them hot through
//! every seam.
//!
//! The engine (see `engine.rs`) owns formation triggers, region
//! dispatch, the two-way link bookkeeping, and invalidation; this module
//! is the pure code-transformation layer.

use crate::env::{ENV_BASE, FLAGMODE_OFFSET};
use ldbt_isa::{CostModel, Width};
use ldbt_x86::{AluOp, Cc, Gpr, Operand, ShiftOp, UnOp, X86Instr, X86Mem};
use std::rc::Rc;

/// Sentinel: block is not the head of any live region.
pub const NO_SB: u32 = u32::MAX;

/// Maximum number of parts in one region (a self-loop unrolls to this).
pub const SB_MAX_PARTS: usize = 8;

/// One member of a superblock: a specialized clone of an arena block.
#[derive(Debug, Clone)]
pub struct SbPart {
    /// Arena id of the original block (execs/hits/guest_len accounting
    /// and watchdog sampling all go through the original).
    pub id: u32,
    /// Specialized host code (elisions applied to a clone).
    pub code: Rc<Vec<X86Instr>>,
    /// The trailing seam exit pair was stripped: running off the end of
    /// `code` means "continue at the next part".
    pub fallthrough_seam: bool,
}

/// A formed region: an ordered path of specialized parts.
#[derive(Debug, Clone)]
pub struct Superblock {
    /// Arena id of the head block (`CachedBlock::sb_head` points back).
    pub head: u32,
    /// The path, in execution order.
    pub parts: Vec<SbPart>,
    /// Region register allocation: `(guest slot, pinned host register)`
    /// pairs. Inside the region the pinned register is the guest
    /// register; the env home is refreshed by writeback stubs at every
    /// escape and by the engine at in-region part boundaries before a
    /// watchdog snapshot (see [`allocate_region`]).
    pub ra: Vec<(u8, Gpr)>,
    /// Region-entry preamble: loads each pinned register from its env
    /// home. Run by the engine once per region entry — not on the loop
    /// backedge, where the pinned registers (not env) are authoritative.
    pub preamble: Rc<Vec<X86Instr>>,
    /// Invalidated (member purged or re-patched); never executed again.
    pub dead: bool,
}

/// Abstract value of the env flag-mode slot at a seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagAbs {
    /// Provably zero: the NZCV env slots are authoritative.
    Zero,
    /// Anything (including a pending §5 lazy save).
    Unknown,
}

/// What is known about host state at a part boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeamState {
    /// `tags[gpr] = Some(slot)`: the host register provably holds the
    /// same value as guest register slot `slot` (env offset `4*slot`),
    /// and the env slot is current.
    pub tags: [Option<u8>; 8],
    /// Abstract flag-mode value.
    pub flagmode: FlagAbs,
}

impl SeamState {
    /// The no-knowledge state (region entry from the dispatcher).
    pub fn entry() -> SeamState {
        SeamState { tags: [None; 8], flagmode: FlagAbs::Unknown }
    }
}

/// Classify an absolute env address.
enum EnvSlot {
    /// A guest register slot r0–r14 (index).
    Reg(u8),
    /// The flag-mode slot.
    FlagMode,
    /// Some other env slot (flags, hostflags, spill).
    Other,
    /// Not an env address at all.
    NotEnv,
}

fn classify(m: &X86Mem) -> EnvSlot {
    if m.base.is_some() || m.index.is_some() {
        return EnvSlot::NotEnv; // dynamic: handled by the caller as "may alias anything"
    }
    let a = m.disp as u32;
    if a == ENV_BASE + FLAGMODE_OFFSET {
        return EnvSlot::FlagMode;
    }
    if (ENV_BASE..ENV_BASE + 0x3C).contains(&a) && a.is_multiple_of(4) {
        return EnvSlot::Reg(((a - ENV_BASE) / 4) as u8);
    }
    if (ENV_BASE..ENV_BASE + 0x100).contains(&a) {
        return EnvSlot::Other;
    }
    EnvSlot::NotEnv
}

/// Whether `m` is a memory operand that could alias a guest-register env
/// slot at runtime (any base/index addressing must be assumed to).
fn dynamic_addr(m: &X86Mem) -> bool {
    m.base.is_some() || m.index.is_some()
}

/// The flag-materialization stub starts at `i`: `cmpl $0, flagmode;
/// je +N` with the stub body within bounds. Returns the exclusive end
/// index of the stub.
fn stub_extent(code: &[X86Instr], i: usize) -> Option<usize> {
    let X86Instr::Alu { op: AluOp::Cmp, dst: Operand::Mem(m), src: Operand::Imm(0) } =
        code.get(i)?
    else {
        return None;
    };
    if !matches!(classify(m), EnvSlot::FlagMode) {
        return None;
    }
    let X86Instr::Jcc { cc: Cc::E, target } = code.get(i + 1)? else { return None };
    let t = *target;
    if t <= 0 {
        return None;
    }
    let end = i + 2 + t as usize;
    (end <= code.len()).then_some(end)
}

/// Whether eliding the stub's `cmpl` is EFLAGS-safe: no instruction
/// after `from` reads host EFLAGS before they are rewritten. Stops at
/// the first flag writer (safe) or block exit (safe — successors never
/// read live-in EFLAGS; the flag-mode protocol goes through the env).
fn eflags_dead_after(code: &[X86Instr], from: usize) -> bool {
    for ins in &code[from..] {
        if ins.flags_read() != 0 {
            return false; // Jcc/setcc/adc/pushfd: the cmp is load-bearing
        }
        if ins.flags_written() != 0 {
            return true;
        }
        match ins {
            // Cannot follow the jump linearly: be conservative.
            X86Instr::Jmp { .. } | X86Instr::Call { .. } => return false,
            // Block exits are safe: no generated block reads live-in
            // EFLAGS (the flag protocol goes through the env, and every
            // flag consumer is preceded by its producer in-block).
            X86Instr::Ret
            | X86Instr::JmpInd { .. }
            | X86Instr::ChainJmp { .. }
            | X86Instr::Halt => return true,
            _ => {}
        }
    }
    true
}

/// Kill every tag naming guest slot `slot`.
fn kill_slot(tags: &mut [Option<u8>; 8], slot: u8) {
    for t in tags.iter_mut() {
        if *t == Some(slot) {
            *t = None;
        }
    }
}

/// The memory operand `ins` writes, if any (stack pushes report an
/// `%esp`-based store; a memory-destination `cmp`/`test` is reported as
/// a store too, which over-kills but never under-kills).
fn store_mem(ins: &X86Instr) -> Option<X86Mem> {
    match ins {
        X86Instr::Mov { dst: Operand::Mem(m), .. }
        | X86Instr::Alu { dst: Operand::Mem(m), .. }
        | X86Instr::Shift { dst: Operand::Mem(m), .. }
        | X86Instr::Un { dst: Operand::Mem(m), .. }
        | X86Instr::Pop { dst: Operand::Mem(m) } => Some(*m),
        X86Instr::MovStore { dst, .. } => Some(*dst),
        X86Instr::Push { .. } | X86Instr::Pushfd | X86Instr::Call { .. } => {
            // Stack pushes: dynamic addresses (through %esp).
            Some(X86Mem::base(Gpr::Esp))
        }
        _ => None,
    }
}

/// Apply one instruction's *writes* to the seam state, without assuming
/// it is on the guaranteed straight-line path (`merge` mode: stores may
/// or may not execute, so they only ever remove knowledge).
fn apply_kills(st: &mut SeamState, ins: &X86Instr, merge: bool) {
    if let Some(d) = ins.def() {
        st.tags[d.index()] = None;
    }
    if let Some(m) = store_mem(ins) {
        if dynamic_addr(&m) {
            // Could alias any env slot: drop all register knowledge.
            st.tags = [None; 8];
            st.flagmode = FlagAbs::Unknown;
        } else {
            match classify(&m) {
                EnvSlot::Reg(s) => kill_slot(&mut st.tags, s),
                EnvSlot::FlagMode => {
                    let zero =
                        matches!(ins, X86Instr::Mov { dst: Operand::Mem(_), src: Operand::Imm(0) });
                    // A conditional (or non-zero) write degrades to
                    // Unknown; a zero write on a guaranteed path sets
                    // Zero; in merge mode "was Zero and writes zero"
                    // stays Zero.
                    st.flagmode = if zero && (!merge || st.flagmode == FlagAbs::Zero) {
                        FlagAbs::Zero
                    } else {
                        FlagAbs::Unknown
                    };
                }
                EnvSlot::Other | EnvSlot::NotEnv => {}
            }
        }
    }
}

/// Specialize one part's host code against the seam state on entry.
///
/// Returns the (possibly shorter) code and the seam state at the part's
/// straight-line exit — the state a successor part may rely on no matter
/// which exit is actually taken, because elisions and state *generation*
/// are restricted to the straight-line prefix that dominates every exit,
/// and everything after the first branch only *removes* knowledge.
pub fn specialize_part(code: &[X86Instr], entry: &SeamState) -> (Vec<X86Instr>, SeamState) {
    let mut st = entry.clone();
    // Backward jumps would let later code re-enter the elided prefix with
    // shifted targets; none of our lowerers emit them, but a learned rule
    // template could. Refuse to elide in that case (state tracking stays
    // valid: elision is what moves instructions).
    let allow_elide = !code.iter().any(
        |i| matches!(i, X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } if *target < 0),
    );
    let mut out: Vec<X86Instr> = Vec::with_capacity(code.len());
    let mut i = 0usize;
    let mut straight = true;
    while i < code.len() {
        let ins = &code[i];
        // The flag-materialization stub is handled atomically: its
        // internal forward jumps stay self-contained whether it is
        // elided or kept, and either way it leaves flag-mode zero.
        if straight {
            if let Some(end) = stub_extent(code, i) {
                if allow_elide && st.flagmode == FlagAbs::Zero && eflags_dead_after(code, end) {
                    // Provably skipped at runtime: drop guard and body.
                    i = end;
                    continue;
                }
                // Kept: the body clobbers %eax/%ecx and ends with
                // flag-mode zero on both paths.
                out.extend_from_slice(&code[i..end]);
                st.tags[Gpr::Eax.index()] = None;
                st.tags[Gpr::Ecx.index()] = None;
                st.flagmode = FlagAbs::Zero;
                i = end;
                continue;
            }
        }
        if straight {
            match ins {
                // Home load: `movl env(slot), %r`.
                X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Mem(m) }
                    if matches!(classify(m), EnvSlot::Reg(_)) =>
                {
                    let EnvSlot::Reg(s) = classify(m) else { unreachable!() };
                    if allow_elide && st.tags[r.index()] == Some(s) {
                        i += 1; // redundant: register already holds the slot
                        continue;
                    }
                    // Another host register provably holds the slot: a
                    // register-register copy replaces the memory load
                    // (cheaper to execute, and it feeds the region's
                    // copy propagation).
                    if allow_elide {
                        if let Some(q) = st.tags.iter().position(|t| *t == Some(s)) {
                            out.push(X86Instr::mov_rr(*r, Gpr::from_index(q)));
                            st.tags[r.index()] = Some(s);
                            i += 1;
                            continue;
                        }
                    }
                    st.tags[r.index()] = Some(s);
                    out.push(*ins);
                    i += 1;
                    continue;
                }
                // Writeback: `movl %r, env(slot)`.
                X86Instr::Mov { dst: Operand::Mem(m), src: Operand::Reg(r) }
                    if matches!(classify(m), EnvSlot::Reg(_)) =>
                {
                    let EnvSlot::Reg(s) = classify(m) else { unreachable!() };
                    kill_slot(&mut st.tags, s);
                    st.tags[r.index()] = Some(s);
                    out.push(*ins);
                    i += 1;
                    continue;
                }
                // Flag-mode reset: `movl $0, flagmode`.
                X86Instr::Mov { dst: Operand::Mem(m), src: Operand::Imm(0) }
                    if matches!(classify(m), EnvSlot::FlagMode) =>
                {
                    if allow_elide && st.flagmode == FlagAbs::Zero {
                        i += 1; // already zero
                        continue;
                    }
                    st.flagmode = FlagAbs::Zero;
                    out.push(*ins);
                    i += 1;
                    continue;
                }
                // Register copy propagates a tag.
                X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Reg(q) } => {
                    st.tags[r.index()] = st.tags[q.index()];
                    out.push(*ins);
                    i += 1;
                    continue;
                }
                _ => {}
            }
            if matches!(
                ins,
                X86Instr::Jcc { .. }
                    | X86Instr::Jmp { .. }
                    | X86Instr::JmpInd { .. }
                    | X86Instr::Call { .. }
                    | X86Instr::Ret
                    | X86Instr::ChainJmp { .. }
                    | X86Instr::Halt
            ) {
                straight = false;
            }
        }
        apply_kills(&mut st, ins, !straight);
        out.push(*ins);
        i += 1;
    }
    (out, st)
}

// ---------------------------------------------------------------------
// Region-level liveness optimization.
//
// Once a hot chain is straightened, the merged body is full of rule and
// lowering glue that only made sense at block granularity: values copied
// through chains of scratch registers, results computed and thrown away
// before the next seam, immediates shuffled into registers only to be
// stored. Host scratch registers are invisible outside the region —
// translated blocks communicate exclusively through the env, plus `%eax`
// for the dispatcher protocol and `%esp` for the host stack (the
// `entry_reads` invariant, asserted at block insertion in debug builds)
// — so a cross-seam liveness pass may rewrite and delete freely as long
// as every env access, memory effect, and exit is preserved.
// ---------------------------------------------------------------------

/// Register liveness (bit per [`Gpr::index`]) plus EFLAGS liveness (the
/// [`X86Instr::flags_written`] mask layout) at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Live {
    regs: u8,
    flags: u8,
}

impl Live {
    const NONE: Live = Live { regs: 0, flags: 0 };
    const ALL: Live = Live { regs: 0xFF, flags: 0b1111 };

    fn union(self, o: Live) -> Live {
        Live { regs: self.regs | o.regs, flags: self.flags | o.flags }
    }
}

fn bit(r: Gpr) -> u8 {
    1u8 << r.index()
}

/// What is live when control escapes a region to foreign code (the
/// dispatcher after `ret`, or another translated block after a chained
/// side exit): `%eax` carries the next guest pc and `%esp` is the host
/// stack pointer; every other register and all EFLAGS are scratch,
/// because translated blocks start from the env ([`entry_reads`]).
fn exit_live() -> Live {
    Live { regs: bit(Gpr::Eax) | bit(Gpr::Esp), flags: 0 }
}

/// Whether every jump destination lands inside `[0, len]` (`len` itself
/// is the past-the-end fallthrough). Out-of-range jumps would fault at
/// runtime; the optimizer refuses to touch such code.
fn jumps_in_range(code: &[X86Instr]) -> bool {
    code.iter().enumerate().all(|(i, ins)| match ins {
        X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } => {
            (0..=code.len() as i64).contains(&(i as i64 + 1 + *target as i64))
        }
        _ => true,
    })
}

/// Per-instruction liveness. `end_live` is what is live when execution
/// runs off the end of `code` (the successor part's entry liveness for a
/// stripped seam, [`exit_live`] otherwise); `exit` what is live at every
/// escape to foreign code. `seam_next` is the block id of the region's
/// next part, if any: a `ChainJmp` to *that* block is an in-region seam
/// — `run_superblock` continues straight into the next part with host
/// registers intact, and the next part may have been specialized to read
/// them — so it flows into `end_live`, not `exit`. Every other
/// `ChainJmp` leaves the region and lands on arena code, which reads
/// nothing but the env. Iterates to a fixpoint, so backward jumps are
/// handled exactly. Returns the live-*out* set per instruction and the
/// live-in set of the entry point.
fn liveness(
    code: &[X86Instr],
    end_live: Live,
    exit: Live,
    seam_next: Option<u32>,
) -> (Vec<Live>, Live) {
    let n = code.len();
    let mut live_in = vec![Live::NONE; n + 1];
    live_in[n] = end_live;
    let mut live_out = vec![Live::NONE; n];
    loop {
        let mut changed = false;
        for i in (0..n).rev() {
            let ins = &code[i];
            let dest =
                |t: i32| -> Live { live_in[(i as i64 + 1 + t as i64).clamp(0, n as i64) as usize] };
            let out = match ins {
                X86Instr::ChainJmp { block } if Some(*block) == seam_next => end_live,
                X86Instr::Ret
                | X86Instr::JmpInd { .. }
                | X86Instr::ChainJmp { .. }
                | X86Instr::Halt => exit,
                // A call hands control to code this analysis cannot see
                // and expects it to return: keep everything.
                X86Instr::Call { .. } => Live::ALL,
                X86Instr::Jmp { target } => dest(*target),
                X86Instr::Jcc { target, .. } => dest(*target).union(live_in[i + 1]),
                _ => live_in[i + 1],
            };
            live_out[i] = out;
            let mut regs = out.regs;
            if let Some(d) = ins.def() {
                regs &= !bit(d);
            }
            for u in ins.uses() {
                regs |= bit(u);
            }
            let li = Live { regs, flags: ins.flags_read() | (out.flags & !ins.flags_written()) };
            if li != live_in[i] {
                live_in[i] = li;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (live_out, live_in[0])
}

/// The host registers and EFLAGS `code` may read before writing them —
/// its dependence on entry state. Every translated block must depend on
/// nothing but `%esp`: blocks are entered from the dispatcher or an
/// arbitrary chained predecessor and load all guest state from the env.
/// This invariant is what makes [`exit_live`]'s scratch assumption (and
/// with it the whole region optimizer) sound; the engine asserts it for
/// every inserted block in debug builds.
pub fn entry_reads(code: &[X86Instr]) -> (u8, u8) {
    let (_, li) = liveness(code, Live::NONE, Live::NONE, None);
    (li.regs, li.flags)
}

/// Whether `ins` may be deleted once its results are dead: no memory
/// write, no stack or control-flow effect, and any memory *read* must be
/// a static env access (the env is always mapped, so deletion cannot
/// suppress a fault the original code would raise).
fn removable(ins: &X86Instr) -> bool {
    if store_mem(ins).is_some() || ins.is_block_end() {
        return false;
    }
    if matches!(
        ins,
        X86Instr::Jcc { .. }
            | X86Instr::Push { .. }
            | X86Instr::Pop { .. }
            | X86Instr::Pushfd
            | X86Instr::Popfd
    ) {
        return false;
    }
    let src_mem = match ins {
        X86Instr::Mov { src: Operand::Mem(m), .. }
        | X86Instr::Alu { src: Operand::Mem(m), .. }
        | X86Instr::Imul { src: Operand::Mem(m), .. }
        | X86Instr::Movx { src: Operand::Mem(m), .. } => Some(m),
        _ => None,
    };
    match src_mem {
        Some(m) => !dynamic_addr(m) && !matches!(classify(m), EnvSlot::NotEnv),
        None => true,
    }
}

/// Rebuild `code` keeping only instructions with `keep[i]`, re-encoding
/// the relative jump targets around the holes. A target that pointed at
/// a removed instruction lands on the next kept one.
fn remap(code: &[X86Instr], keep: &[bool]) -> Vec<X86Instr> {
    let n = code.len();
    let mut pos = vec![0usize; n + 1];
    let mut c = 0usize;
    for i in 0..n {
        pos[i] = c;
        if keep[i] {
            c += 1;
        }
    }
    pos[n] = c;
    let mut out = Vec::with_capacity(c);
    for i in 0..n {
        if !keep[i] {
            continue;
        }
        let retarget = |t: i32| -> i32 {
            let d = (i as i64 + 1 + t as i64).clamp(0, n as i64) as usize;
            pos[d] as i32 - pos[i] as i32 - 1
        };
        out.push(match code[i] {
            X86Instr::Jmp { target } => X86Instr::Jmp { target: retarget(target) },
            X86Instr::Jcc { cc, target } => X86Instr::Jcc { cc, target: retarget(target) },
            ins => ins,
        });
    }
    out
}

/// Delete instructions whose register result and flag effects are both
/// dead (plus no-op self-moves), iterating until nothing more falls out.
/// Returns the new code (`None` if unchanged) and the entry liveness for
/// threading across the preceding seam.
fn eliminate_dead(
    code: &[X86Instr],
    end_live: Live,
    exit: Live,
    seam_next: Option<u32>,
) -> (Option<Vec<X86Instr>>, Live) {
    let mut cur: Vec<X86Instr> = code.to_vec();
    let mut any = false;
    loop {
        let n = cur.len();
        let (live_out, live_in0) = liveness(&cur, end_live, exit, seam_next);
        let mut keep = vec![true; n];
        let mut removed = false;
        for (i, ins) in cur.iter().enumerate() {
            let noop = matches!(
                ins,
                X86Instr::Mov { dst: Operand::Reg(a), src: Operand::Reg(b) } if a == b
            );
            if !noop {
                if !removable(ins) {
                    continue;
                }
                let effect = ins.def().is_some() || ins.flags_written() != 0;
                let dead_def = ins.def().is_none_or(|d| live_out[i].regs & bit(d) == 0);
                let dead_flags = ins.flags_written() & live_out[i].flags == 0;
                if !(effect && dead_def && dead_flags) {
                    continue;
                }
            }
            keep[i] = false;
            removed = true;
        }
        if !removed {
            return (any.then_some(cur), live_in0);
        }
        any = true;
        cur = remap(&cur, &keep);
    }
}

/// Constant-fold a pure-register ALU/shift/unary whose inputs are all
/// known. Returns the destination and the folded value; the caller must
/// separately prove the instruction's EFLAGS results dead, because the
/// replacement `mov` writes none.
fn fold(ins: &X86Instr, vals: &[Option<Operand>; 8]) -> Option<(Gpr, i32)> {
    let cv = |r: Gpr| match vals[r.index()] {
        Some(Operand::Imm(v)) => Some(v),
        _ => None,
    };
    match *ins {
        X86Instr::Alu { op, dst: Operand::Reg(r), src }
            if !op.is_compare() && !op.reads_carry() =>
        {
            let a = cv(r)?;
            let b = match src {
                Operand::Imm(v) => v,
                Operand::Reg(q) => cv(q)?,
                Operand::Mem(_) => return None,
            };
            let v = match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::And => a & b,
                AluOp::Or => a | b,
                AluOp::Xor => a ^ b,
                _ => return None,
            };
            Some((r, v))
        }
        X86Instr::Shift { op, dst: Operand::Reg(r), count } => {
            let a = cv(r)?;
            let c = count as u32 & 31;
            let v = match op {
                ShiftOp::Shl => ((a as u32) << c) as i32,
                ShiftOp::Shr => ((a as u32) >> c) as i32,
                ShiftOp::Sar => a >> c,
            };
            Some((r, v))
        }
        X86Instr::Un { op, dst: Operand::Reg(r) } => {
            let a = cv(r)?;
            let v = match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::Not => !a,
                UnOp::Inc => a.wrapping_add(1),
                UnOp::Dec => a.wrapping_sub(1),
            };
            Some((r, v))
        }
        _ => None,
    }
}

/// Drop every known register equality invalidated by a write to `d`.
fn invalidate(vals: &mut [Option<Operand>; 8], d: Gpr) {
    vals[d.index()] = None;
    for v in vals.iter_mut() {
        if *v == Some(Operand::Reg(d)) {
            *v = None;
        }
    }
}

/// Substitute a known equality into one *read* operand. `imm_ok` says an
/// immediate is encodable in this position.
fn subst_operand(op: &mut Operand, vals: &[Option<Operand>; 8], imm_ok: bool) -> bool {
    match op {
        Operand::Reg(q) => match vals[q.index()] {
            Some(Operand::Reg(p)) if p != *q => {
                *op = Operand::Reg(p);
                true
            }
            Some(Operand::Imm(v)) if imm_ok => {
                *op = Operand::Imm(v);
                true
            }
            _ => false,
        },
        Operand::Mem(m) => subst_mem(m, vals),
        Operand::Imm(_) => false,
    }
}

/// Substitute into an address: base/index registers with known register
/// equalities are renamed, and known-constant bases fold into the
/// displacement (the computed address is identical either way).
fn subst_mem(m: &mut X86Mem, vals: &[Option<Operand>; 8]) -> bool {
    let mut ch = false;
    if let Some(b) = m.base {
        match vals[b.index()] {
            Some(Operand::Reg(p)) if p != b => {
                m.base = Some(p);
                ch = true;
            }
            Some(Operand::Imm(v)) => {
                m.base = None;
                m.disp = m.disp.wrapping_add(v);
                ch = true;
            }
            _ => {}
        }
    }
    if let Some((ix, s)) = m.index {
        match vals[ix.index()] {
            Some(Operand::Reg(p)) if p != ix => {
                m.index = Some((p, s));
                ch = true;
            }
            Some(Operand::Imm(v)) => {
                m.index = None;
                m.disp = m.disp.wrapping_add(v.wrapping_mul(s as i32));
                ch = true;
            }
            _ => {}
        }
    }
    ch
}

/// Substitute known equalities into every read position of `ins`.
/// Read-write operands (ALU destinations, `setcc`, sub-word stores) are
/// never renamed; compare destinations are pure reads and are.
fn rewrite_reads(ins: &mut X86Instr, vals: &[Option<Operand>; 8]) -> bool {
    match ins {
        X86Instr::Mov { dst, src } => {
            let mut ch = subst_operand(src, vals, true);
            if let Operand::Mem(m) = dst {
                ch |= subst_mem(m, vals);
            }
            ch
        }
        X86Instr::Alu { op, dst, src } => {
            let mut ch = subst_operand(src, vals, true);
            match dst {
                Operand::Mem(m) => ch |= subst_mem(m, vals),
                // cmp/test read their destination without writing it.
                Operand::Reg(q) if op.is_compare() => {
                    if let Some(Operand::Reg(p)) = vals[q.index()] {
                        if p != *q {
                            *dst = Operand::Reg(p);
                            ch = true;
                        }
                    }
                }
                _ => {}
            }
            ch
        }
        X86Instr::Lea { addr, .. } => subst_mem(addr, vals),
        X86Instr::Imul { src, .. } => subst_operand(src, vals, false),
        X86Instr::Shift { dst: Operand::Mem(m), .. }
        | X86Instr::Un { dst: Operand::Mem(m), .. } => subst_mem(m, vals),
        X86Instr::Movx { src, .. } => subst_operand(src, vals, false),
        // The source's low bits are stored: renaming is value-safe, but
        // W8 needs a byte-addressable register — skip the source.
        X86Instr::MovStore { dst, .. } => subst_mem(dst, vals),
        X86Instr::Push { src } => subst_operand(src, vals, true),
        X86Instr::JmpInd { src } => subst_operand(src, vals, false),
        X86Instr::Pop { dst: Operand::Mem(m) } => subst_mem(m, vals),
        _ => false,
    }
}

/// Forward copy/constant propagation with local constant folding over
/// one part. Equalities are dropped at every jump target (join points;
/// the target set is precomputed, so backward edges join correctly). A
/// fold replaces a flag-writing instruction with a `mov`, so it requires
/// the instruction's EFLAGS results dead per `live_out`. Folds only ever
/// *remove* flag writes whose results were already dead, so `live_out`
/// computed before the pass stays a sound over-approximation throughout.
fn propagate(code: &[X86Instr], live_out: &[Live]) -> Option<Vec<X86Instr>> {
    let n = code.len();
    let mut is_target = vec![false; n + 1];
    for (i, ins) in code.iter().enumerate() {
        if let X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } = ins {
            is_target[(i as i64 + 1 + *target as i64).clamp(0, n as i64) as usize] = true;
        }
    }
    let mut vals: [Option<Operand>; 8] = [None; 8];
    let mut out = Vec::with_capacity(n);
    let mut changed = false;
    for (i, ins) in code.iter().enumerate() {
        if is_target[i] {
            vals = [None; 8];
        }
        let mut ins = *ins;
        changed |= rewrite_reads(&mut ins, &vals);
        if let Some((d, v)) = fold(&ins, &vals) {
            if ins.flags_written() & live_out[i].flags == 0 {
                ins = X86Instr::mov_imm(d, v);
                changed = true;
            }
        }
        if let Some(d) = ins.def() {
            invalidate(&mut vals, d);
        }
        if matches!(
            ins,
            X86Instr::Push { .. }
                | X86Instr::Pop { .. }
                | X86Instr::Pushfd
                | X86Instr::Popfd
                | X86Instr::Call { .. }
                | X86Instr::Ret
        ) {
            invalidate(&mut vals, Gpr::Esp);
        }
        if let X86Instr::Mov { dst: Operand::Reg(r), src } = ins {
            match src {
                Operand::Reg(q) if q != r => vals[r.index()] = Some(Operand::Reg(q)),
                Operand::Imm(v) => vals[r.index()] = Some(Operand::Imm(v)),
                _ => {}
            }
        }
        out.push(ins);
    }
    changed.then_some(out)
}

/// Liveness-driven cleanup of a whole region, run after specialization
/// and seam stripping: forward copy/constant propagation inside each
/// part, then dead code elimination with cross-seam liveness — a seam
/// (stripped fallthrough *or* a `ChainJmp` to the next part's block,
/// which `run_superblock` follows without leaving the region) threads
/// the successor part's entry liveness into its predecessor, so a value
/// is dead only when no later part on the straightened path reads it
/// before control could reach foreign code. This matters because
/// specialized parts legitimately read registers at entry — that is the
/// seam optimization — so their entry liveness is *not* empty. Every
/// env access, memory effect, and exit is preserved, so the watchdog
/// comparison surface and all guest-visible state are untouched; only
/// executed host instructions shrink.
pub fn optimize_region(parts: &mut [SbPart]) {
    optimize_region_inner(parts, 0);
}

/// [`optimize_region`] with an extra set of registers (`pinned`, a
/// register bitmask) held live across every in-region seam and at every
/// exit — a region allocation's pinned registers carry guest state over
/// seams *and* over the loop backedge (a `ChainJmp` escape from
/// `liveness`'s point of view), so they may never be invalidated
/// anywhere in the region.
fn optimize_region_inner(parts: &mut [SbPart], pinned: u8) {
    let exit = Live { regs: exit_live().regs | pinned, flags: exit_live().flags };
    for _ in 0..4 {
        let mut changed = false;
        let mut next_entry = exit;
        for k in (0..parts.len()).rev() {
            let seam_next = parts.get(k + 1).map(|p| p.id);
            // What is live past the end of this part: the next part's
            // entry for a stripped seam; unreachable otherwise. The same
            // set is what an in-region ChainJmp seam flows into (see
            // `liveness`), so any non-last part uses the threaded value.
            let end_live = if seam_next.is_some() {
                Live { regs: next_entry.regs | pinned, flags: next_entry.flags }
            } else {
                exit
            };
            let mut code: Vec<X86Instr> = (*parts[k].code).clone();
            if jumps_in_range(&code) {
                let mut part_changed = false;
                for _ in 0..4 {
                    let (live_out, _) = liveness(&code, end_live, exit, seam_next);
                    let Some(c) = propagate(&code, &live_out) else { break };
                    code = c;
                    part_changed = true;
                }
                let (c, _) = eliminate_dead(&code, end_live, exit, seam_next);
                if let Some(c) = c {
                    code = c;
                    part_changed = true;
                }
                if part_changed {
                    changed = true;
                    parts[k].code = Rc::new(code.clone());
                }
            }
            let (_, entry) = liveness(&code, end_live, exit, seam_next);
            next_entry = entry;
        }
        if !changed {
            break;
        }
    }
}

/// Whether executing `code` from its start provably writes `%eax` before
/// any instruction reads it (and before any exit the analysis cannot
/// follow). Used to prove a predecessor's seam exit pair — which is what
/// normally freshens `%eax` — can be stripped.
fn eax_redefined_first(code: &[X86Instr], ip: usize, depth: u32) -> bool {
    if depth == 0 {
        return false;
    }
    let mut i = ip;
    loop {
        let Some(ins) = code.get(i) else {
            // Ran off the end: only reachable when this part's own seam
            // pair was stripped, which required its successor to pass
            // this same check first.
            return true;
        };
        if ins.uses().contains(&Gpr::Eax) {
            return false;
        }
        if ins.def() == Some(Gpr::Eax) {
            return true;
        }
        match ins {
            X86Instr::Jcc { target, .. } => {
                if *target < 0 {
                    return false;
                }
                return eax_redefined_first(code, i + 1, depth - 1)
                    && eax_redefined_first(code, i + 1 + *target as usize, depth - 1);
            }
            X86Instr::Jmp { target } => {
                if *target < 0 {
                    return false;
                }
                i = i + 1 + *target as usize;
                continue;
            }
            // Halt never consults %eax; everything else hands control to
            // code this analysis cannot see (the dispatcher reads %eax
            // after `ret`) — refuse.
            X86Instr::Halt => return true,
            X86Instr::Ret | X86Instr::JmpInd { .. } | X86Instr::Call { .. } => return false,
            X86Instr::ChainJmp { .. } => return false,
            _ => {}
        }
        i += 1;
    }
}

/// Strip each part's trailing seam exit pair (`movl $next_pc, %eax;
/// chain @next_id`) where the next part provably redefines `%eax` before
/// reading it. Decided back to front so a stripped part's own
/// past-the-end fallthrough is covered by its successor's proof.
pub fn strip_seam_exits(parts: &mut [SbPart], pcs: &[u32]) {
    debug_assert_eq!(parts.len(), pcs.len());
    for k in (0..parts.len().saturating_sub(1)).rev() {
        let next_id = parts[k + 1].id;
        let next_pc = pcs[k + 1];
        let code = &parts[k].code;
        let n = code.len();
        if n < 2 {
            continue;
        }
        let pair_ok = matches!(
            code[n - 2],
            X86Instr::Mov { dst: Operand::Reg(Gpr::Eax), src: Operand::Imm(v) }
                if v as u32 == next_pc
        ) && matches!(code[n - 1], X86Instr::ChainJmp { block } if block == next_id);
        if !pair_ok || !eax_redefined_first(&parts[k + 1].code, 0, 16) {
            continue;
        }
        // No forward jump may land inside the stripped pair or past the
        // code end — either would change meaning once the pair is gone.
        // A jump to exactly n-2 lands on the pair's first instruction,
        // which after stripping is the past-the-end fallthrough: that is
        // precisely the seam semantics, so it stays legal.
        let jump_into_pair = code.iter().enumerate().any(|(at, ins)| match ins {
            X86Instr::Jcc { target, .. } | X86Instr::Jmp { target } if *target > 0 => {
                let dest = at + 1 + *target as usize;
                dest > n - 2
            }
            _ => false,
        });
        if jump_into_pair {
            continue;
        }
        let part = &mut parts[k];
        let mut new_code = (*part.code).clone();
        new_code.truncate(n - 2);
        part.code = Rc::new(new_code);
        part.fallthrough_seam = true;
    }
}

// ---------------------------------------------------------------------------
// Guest memory access fusion
// ---------------------------------------------------------------------------
//
// A region-scope dataflow pass over each part's straightened body that
// performs store-to-load forwarding, redundant-load elimination, dead-store
// sinking, and pairing of adjacent narrow stores into word stores. All
// reasoning is *segment-local*: facts are discarded at every jump target
// (join points) and at calls, exactly like `propagate`. Fusion never
// removes a store whose bytes could be observed (a side exit, a possibly
// aliasing read, or an address-register redefinition all block the
// elimination), so the watchdog comparison surface — memory at part
// boundaries — is bit-identical with the pass on or off. Eliminated
// *loads* are trivially fault-safe: memory in this substrate never faults
// and the forwarded value is by construction the value the load would have
// produced. Narrow-store pairing only fires for two 16-bit stores covering
// one 4-aligned word — an unaligned or page-crossing pair can never
// qualify — and is gated on the `isa::cost` model pricing the word store
// cheaper than the two narrow stores it replaces.

/// Byte width of an access.
fn width_bytes(w: Width) -> u32 {
    w.bits() / 8
}

/// The absolute address of a register-free address expression.
fn abs_addr(m: &X86Mem) -> Option<u32> {
    (m.base.is_none() && m.index.is_none()).then_some(m.disp as u32)
}

/// `stack` is an `%esp`-relative address and `other` a static env
/// address: disjoint because the host stack lives strictly below
/// `ENV_BASE` (const-asserted in `dbt::env`).
fn esp_vs_env(stack: &X86Mem, other: &X86Mem) -> bool {
    stack.base == Some(Gpr::Esp)
        && stack.index.is_none()
        && matches!(abs_addr(other), Some(a) if a >= ENV_BASE)
}

/// Whether the byte ranges `[m1, m1+w1)` and `[m2, m2+w2)` may overlap.
/// Conservative: only three disjointness proofs exist — both addresses
/// absolute, same-base same-(no-)index displacement deltas, and the
/// `%esp`-vs-env rule.
fn may_overlap(m1: &X86Mem, w1: u32, m2: &X86Mem, w2: u32) -> bool {
    if let (Some(a), Some(b)) = (abs_addr(m1), abs_addr(m2)) {
        // u64 arithmetic so address-space wraparound cannot fake overlap.
        return (a as u64) < b as u64 + w2 as u64 && (b as u64) < a as u64 + w1 as u64;
    }
    if m1.index.is_none() && m2.index.is_none() && m1.base.is_some() && m1.base == m2.base {
        let (d1, d2) = (m1.disp as i64, m2.disp as i64);
        return d1 < d2 + w2 as i64 && d2 < d1 + w1 as i64;
    }
    if esp_vs_env(m1, m2) || esp_vs_env(m2, m1) {
        return false;
    }
    true
}

/// A known equality: reading `width` bytes at `mem` yields `val` (for a
/// sub-word fact with a register value, the register's *low* bits).
#[derive(Debug, Clone, Copy, PartialEq)]
struct MemFact {
    mem: X86Mem,
    width: Width,
    val: Operand,
}

/// Memory addresses `ins` *reads*, with byte widths. Complements
/// `store_mem`: read-modify-write ALU destinations (and `cmp` with a
/// memory destination) read their bytes, and stack pops read through
/// `%esp`.
fn load_mems(ins: &X86Instr) -> Vec<(X86Mem, u32)> {
    let mut v = Vec::new();
    match *ins {
        X86Instr::Mov { src: Operand::Mem(m), .. }
        | X86Instr::Alu { src: Operand::Mem(m), .. }
        | X86Instr::Imul { src: Operand::Mem(m), .. }
        | X86Instr::JmpInd { src: Operand::Mem(m) } => v.push((m, 4)),
        X86Instr::Movx { src: Operand::Mem(m), width, .. } => v.push((m, width_bytes(width))),
        _ => {}
    }
    match *ins {
        X86Instr::Alu { dst: Operand::Mem(m), .. }
        | X86Instr::Shift { dst: Operand::Mem(m), .. }
        | X86Instr::Un { dst: Operand::Mem(m), .. } => v.push((m, 4)),
        _ => {}
    }
    if matches!(ins, X86Instr::Pop { .. } | X86Instr::Popfd | X86Instr::Ret) {
        v.push((X86Mem::base(Gpr::Esp), 4));
    }
    v
}

/// Update the fact/constant state for one (already rewritten)
/// instruction: kill facts clobbered by its store, its register def, or
/// an `%esp` adjustment, then record any new equality it establishes.
fn apply_effects(ins: &X86Instr, facts: &mut Vec<MemFact>, consts: &mut [Option<i32>; 8]) {
    if let Some(sm) = store_mem(ins) {
        let w = match *ins {
            X86Instr::MovStore { width, .. } => width_bytes(width),
            _ => 4,
        };
        facts.retain(|f| !may_overlap(&f.mem, width_bytes(f.width), &sm, w));
    }
    if let Some(d) = ins.def() {
        facts.retain(|f| f.val != Operand::Reg(d) && !f.mem.regs().contains(&d));
        consts[d.index()] = None;
    }
    if matches!(
        ins,
        X86Instr::Push { .. }
            | X86Instr::Pop { .. }
            | X86Instr::Pushfd
            | X86Instr::Popfd
            | X86Instr::Call { .. }
            | X86Instr::Ret
    ) {
        // %esp moved: every %esp-relative address now names other bytes.
        facts.retain(|f| !f.mem.regs().contains(&Gpr::Esp));
        consts[Gpr::Esp.index()] = None;
    }
    if matches!(ins, X86Instr::Call { .. }) {
        facts.clear();
        *consts = [None; 8];
    }
    match *ins {
        X86Instr::Mov { dst: Operand::Mem(m), src: src @ (Operand::Reg(_) | Operand::Imm(_)) } => {
            facts.push(MemFact { mem: m, width: Width::W32, val: src });
        }
        X86Instr::MovStore { width, src, dst } => {
            facts.push(MemFact { mem: dst, width, val: Operand::Reg(src) });
        }
        X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Mem(m) } if !m.regs().contains(&r) => {
            facts.push(MemFact { mem: m, width: Width::W32, val: Operand::Reg(r) });
        }
        X86Instr::Movx { width, dst, src: Operand::Mem(m), .. } if !m.regs().contains(&dst) => {
            facts.push(MemFact { mem: m, width, val: Operand::Reg(dst) });
        }
        _ => {}
    }
    if let X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Imm(v) } = *ins {
        consts[r.index()] = Some(v);
    }
}

/// Replace a memory read in `ins` with a known equal value, if any.
/// A register value standing in for a narrow read uses the register's
/// low bits, which both zero- and sign-extension then treat exactly as
/// they would the memory bytes. A full-width fact also serves a narrow
/// read at the same address expression (little-endian low bytes). W8
/// register substitution additionally requires a byte-addressable
/// register (`%eax`–`%ebx`), mirroring the encoder's constraint.
fn forward_into(ins: X86Instr, facts: &[MemFact], elim: &mut u64) -> X86Instr {
    let find = |m: &X86Mem, w: Width| {
        facts.iter().find(|f| f.mem == *m && (f.width == w || f.width == Width::W32)).map(|f| f.val)
    };
    match ins {
        X86Instr::Mov { dst: dst @ Operand::Reg(_), src: Operand::Mem(m) } => {
            if let Some(v) = find(&m, Width::W32) {
                *elim += 1;
                return X86Instr::Mov { dst, src: v };
            }
        }
        X86Instr::Alu { op, dst, src: Operand::Mem(m) } => {
            if let Some(v) = find(&m, Width::W32) {
                *elim += 1;
                return X86Instr::Alu { op, dst, src: v };
            }
        }
        X86Instr::Imul { dst, src: Operand::Mem(m) } => {
            if let Some(v @ Operand::Reg(_)) = find(&m, Width::W32) {
                *elim += 1;
                return X86Instr::Imul { dst, src: v };
            }
        }
        X86Instr::Movx { sign, width, dst, src: Operand::Mem(m) } => {
            if let Some(v @ Operand::Reg(q)) = find(&m, width) {
                if width != Width::W8 || q.index() < 4 {
                    *elim += 1;
                    return X86Instr::Movx { sign, width, dst, src: v };
                }
            }
        }
        _ => {}
    }
    ins
}

/// Try to pair the two leading instructions of `w` — adjacent 16-bit
/// stores of known constants covering one 4-aligned word — into a single
/// word-store, when the cost model prices that cheaper. Returns the
/// replacement. An unaligned word (`addr % 4 != 0`, including any
/// page-crossing pair) never qualifies.
fn pair_stores(w: &[X86Instr], consts: &[Option<i32>; 8], model: &CostModel) -> Option<X86Instr> {
    let [X86Instr::MovStore { width: Width::W16, src: s1, dst: d1 }, X86Instr::MovStore { width: Width::W16, src: s2, dst: d2 }, ..] =
        *w
    else {
        return None;
    };
    let (a1, a2) = (abs_addr(&d1)?, abs_addr(&d2)?);
    let (v1, v2) = (consts[s1.index()]?, consts[s2.index()]?);
    let (lo, l, h) = if a2 == a1.checked_add(2)? {
        (a1, v1, v2)
    } else if a1 == a2.checked_add(2)? {
        (a2, v2, v1)
    } else {
        return None;
    };
    if lo % 4 != 0 {
        return None;
    }
    let word = (l as u32 & 0xffff) | ((h as u32) << 16);
    let fused = X86Instr::Mov {
        dst: Operand::Mem(X86Mem::absolute(lo as i32)),
        src: Operand::Imm(word as i32),
    };
    let before = model.cost(w[0].kind()) + model.cost(w[1].kind());
    (model.cost(fused.kind()) < before).then_some(fused)
}

/// Pass 1: one forward sweep doing store-to-load forwarding, redundant
/// load elimination, and narrow-store pairing. Returns the rewritten
/// code, the number of accesses eliminated or replaced by a cheaper
/// form, and the facts that hold at *every* transition to the seam
/// successor (`seam_next` chains plus the stripped fallthrough when
/// `ft_seam`) — a seam executes nothing, so the caller may thread those
/// facts into the next part's sweep.
///
/// `entry` seeds the sweep with facts carried across the preceding seam.
/// The seed is only sound because a part's entry (other than the region
/// head, which the caller seeds empty) is reachable *solely* through
/// that seam: mid-region parts are never dispatch targets and the
/// resident backedge re-enters at part 0 alone.
fn fuse_forward(
    code: &[X86Instr],
    entry: Vec<MemFact>,
    seam_next: Option<u32>,
    ft_seam: bool,
) -> (Vec<X86Instr>, u64, Vec<MemFact>) {
    let n = code.len();
    let mut is_target = vec![false; n + 1];
    for (i, ins) in code.iter().enumerate() {
        if let X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } = ins {
            is_target[(i as i64 + 1 + *target as i64).clamp(0, n as i64) as usize] = true;
        }
    }
    let model = CostModel::default();
    let mut facts: Vec<MemFact> = entry;
    let mut consts: [Option<i32>; 8] = [None; 8];
    let mut out = Vec::with_capacity(n);
    let mut elim = 0u64;
    // Intersection of the fact sets at each seam transition site.
    let mut seam_facts: Option<Vec<MemFact>> = None;
    let meet = |cur: &[MemFact], acc: &mut Option<Vec<MemFact>>| match acc {
        None => *acc = Some(cur.to_vec()),
        Some(a) => a.retain(|f| cur.contains(f)),
    };
    let mut i = 0usize;
    while i < n {
        if is_target[i] {
            facts.clear();
            consts = [None; 8];
        }
        // Pairing consumes two instructions; a jump landing between them
        // must see both stores, so the pair is refused across a target.
        if i + 1 < n && !is_target[i + 1] {
            if let Some(fused) = pair_stores(&code[i..], &consts, &model) {
                apply_effects(&fused, &mut facts, &mut consts);
                out.push(fused);
                elim += 1;
                i += 2;
                continue;
            }
        }
        let ins = forward_into(code[i], &facts, &mut elim);
        apply_effects(&ins, &mut facts, &mut consts);
        match ins {
            // An in-region chained seam: the jump executes nothing more.
            X86Instr::ChainJmp { block } if Some(block) == seam_next => {
                meet(&facts, &mut seam_facts);
            }
            // A stripped seam is also reached by jumps landing exactly on
            // the end of the code (e.g. a branch over the part's escape).
            X86Instr::Jmp { target } | X86Instr::Jcc { target, .. }
                if ft_seam && i as i64 + 1 + target as i64 == n as i64 =>
            {
                meet(&facts, &mut seam_facts);
            }
            _ => {}
        }
        out.push(ins);
        i += 1;
    }
    // The linear fallthrough reaches a stripped seam only when the last
    // instruction does not end the straight line (a trailing escape means
    // the seam is entered solely through the jump sites above).
    if ft_seam && (n == 0 || !code[n - 1].is_block_end()) {
        meet(&facts, &mut seam_facts);
    }
    (out, elim, seam_facts.unwrap_or_default())
}

/// Pass 2: dead-store sinking. A plain store (`mov` to memory or a
/// narrow `MovStore` — never a read-modify-write, which also produces
/// flags) is removed when a later store in the same straight-line
/// segment fully overwrites its bytes through the *same* address
/// expression before any possibly-aliasing read, any control transfer
/// (`Jcc` side exits escape to foreign code that may read memory), any
/// jump target, or any redefinition of the address registers.
fn eliminate_dead_stores(code: &[X86Instr]) -> (Option<Vec<X86Instr>>, u64) {
    let n = code.len();
    let mut is_target = vec![false; n + 1];
    for (i, ins) in code.iter().enumerate() {
        if let X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } = ins {
            is_target[(i as i64 + 1 + *target as i64).clamp(0, n as i64) as usize] = true;
        }
    }
    let mut keep = vec![true; n];
    let mut elim = 0u64;
    for i in 0..n {
        let (m, w) = match code[i] {
            X86Instr::Mov { dst: Operand::Mem(m), .. } => (m, 4u32),
            X86Instr::MovStore { width, dst, .. } => (dst, width_bytes(width)),
            _ => continue,
        };
        let addr_regs = m.regs();
        let mut j = i + 1;
        let dead = loop {
            if j >= n || is_target[j] {
                break false;
            }
            let nxt = code[j];
            let covers = match nxt {
                X86Instr::Mov { dst: Operand::Mem(m2), .. } => m2 == m,
                X86Instr::MovStore { width: w2, dst: m2, .. } => m2 == m && width_bytes(w2) >= w,
                _ => false,
            };
            if covers && keep[j] {
                break true;
            }
            if nxt.is_block_end() || matches!(nxt, X86Instr::Jcc { .. }) {
                break false;
            }
            if load_mems(&nxt).iter().any(|(lm, lw)| may_overlap(lm, *lw, &m, w)) {
                break false;
            }
            if nxt.def().is_some_and(|d| addr_regs.contains(&d)) {
                break false;
            }
            if addr_regs.contains(&Gpr::Esp)
                && matches!(
                    nxt,
                    X86Instr::Push { .. }
                        | X86Instr::Pop { .. }
                        | X86Instr::Pushfd
                        | X86Instr::Popfd
                )
            {
                break false;
            }
            j += 1;
        };
        if dead {
            keep[i] = false;
            elim += 1;
        }
    }
    if elim == 0 {
        return (None, 0);
    }
    (Some(remap(code, &keep)), elim)
}

/// Fuse guest memory accesses across the region, part by part, with
/// store-to-load facts carried across stripped seams (a seam executes
/// nothing, so an equality proven at every seam transition of part `k`
/// still holds at part `k + 1`'s entry). The region head starts with no
/// facts — it is a dispatch target and the resident backedge re-enters
/// there. Returns the number of accesses eliminated, forwarded, or
/// paired.
pub fn fuse_region(parts: &mut [SbPart]) -> u64 {
    let mut total = 0u64;
    let mut carry: Vec<MemFact> = Vec::new();
    for k in 0..parts.len() {
        let seam_next = parts.get(k + 1).map(|p| p.id);
        let code: Vec<X86Instr> = (*parts[k].code).clone();
        if !jumps_in_range(&code) {
            carry = Vec::new();
            continue;
        }
        let entry = std::mem::take(&mut carry);
        let (fwd, e1, exit_facts) =
            fuse_forward(&code, entry, seam_next, parts[k].fallthrough_seam);
        let (sunk, e2) = eliminate_dead_stores(&fwd);
        if e1 + e2 > 0 {
            parts[k].code = Rc::new(sunk.unwrap_or(fwd));
            total += e1 + e2;
        }
        carry = exit_facts;
    }
    total
}

// ---------------------------------------------------------------------------
// Region register allocation
// ---------------------------------------------------------------------------
//
// Promote hot guest register env slots to host registers pinned for the
// whole region. After promotion the pinned register *is* the guest
// register inside the region: a preamble (owned by the engine, run once
// at region entry — see [`Superblock::preamble`]) loads it from the env
// home, every interior access is rewritten to the register form, and an
// unconditional writeback sequence re-materializes the env home
// immediately before every escape (ret / indirect jump / halt / chain to
// a block outside the straightened path). In-region seams and the
// *backedge* — a `ChainJmp` to the region's own head, which
// `run_superblock` follows back to part 0 without leaving the region —
// do NOT write back: that residency is the point. The engine therefore
// materializes pinned registers into env before any watchdog snapshot or
// comparison taken at an in-region boundary (`Engine::run_superblock`
// does exactly that, and only there: after an escape the writebacks have
// already run and the pinned register may legitimately be stale).
//
// Legality is whole-region: any call, any backward jump, or any explicit
// `%esp` definition refuses the allocation entirely. Dynamically
// addressed accesses — loads and stores — are permitted: the guest
// address space (code, globals, guest stack) lies strictly below
// `HOST_STACK_TOP < ENV_BASE`, so guest code cannot legitimately name a
// pinned slot's env home; the differential watchdog remains the safety
// net for one that somehow does (DESIGN.md §16). A slot accessed by any
// sub-word or misaligned-overlap form is unpinnable; remaining
// candidates are ranked by static access count and pinned to `POOL`
// registers the region never touches, most-accessed first, while free
// registers last. Under spill pressure (no free registers) the region
// simply keeps its current env-home behavior.

/// The absolute address expression of guest register slot `s`.
fn slot_mem(s: u8) -> X86Mem {
    X86Mem::absolute((ENV_BASE + 4 * s as u32) as i32)
}

/// Whether `ins` leaves the region given the next part on the path and
/// the region's head block. A `ChainJmp` to the head is the loop
/// backedge: `run_superblock` follows it back to part 0 in-region, so it
/// is not an escape.
fn is_escape(ins: &X86Instr, seam_next: Option<u32>, head: u32) -> bool {
    match *ins {
        X86Instr::Ret | X86Instr::JmpInd { .. } | X86Instr::Halt => true,
        X86Instr::ChainJmp { block } => Some(block) != seam_next && block != head,
        _ => false,
    }
}

/// Insert `block` before position `p`, stretching relative jump targets
/// that cross the insertion point. A jump landing exactly *at* `p` keeps
/// its target: after insertion it lands on the first inserted
/// instruction, so an escape reached by jump still runs the writebacks
/// inserted before it. Backward jumps are refused region-wide before
/// this is ever called.
fn insert_before(code: &mut Vec<X86Instr>, p: usize, block: &[X86Instr]) {
    let len = block.len() as i32;
    for (a, ins) in code.iter_mut().enumerate() {
        if let X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } = ins {
            let dest = a as i64 + 1 + *target as i64;
            if a < p && dest > p as i64 {
                *target += len;
            }
        }
    }
    code.splice(p..p, block.iter().copied());
}

/// Static memory accesses of `ins` as `(address, bytes, supported)`:
/// `supported` means the access is a whole-slot W32 form the allocator
/// knows how to rewrite to a plain register operand with identical value
/// and flags behavior. An unsupported access overlapping a slot poisons
/// that slot.
fn static_accesses(ins: &X86Instr) -> Vec<(X86Mem, u32, bool)> {
    let mut v = Vec::new();
    match *ins {
        X86Instr::Mov { dst: Operand::Mem(m), .. } | X86Instr::Mov { src: Operand::Mem(m), .. } => {
            v.push((m, 4, true));
        }
        X86Instr::Alu { dst: Operand::Mem(m), .. } | X86Instr::Alu { src: Operand::Mem(m), .. } => {
            v.push((m, 4, true));
        }
        X86Instr::Imul { src: Operand::Mem(m), .. }
        | X86Instr::Shift { dst: Operand::Mem(m), .. }
        | X86Instr::Un { dst: Operand::Mem(m), .. }
        | X86Instr::Push { src: Operand::Mem(m) }
        | X86Instr::Pop { dst: Operand::Mem(m) } => v.push((m, 4, true)),
        X86Instr::Movx { src: Operand::Mem(m), width, .. } => {
            v.push((m, width_bytes(width), false));
        }
        X86Instr::MovStore { width, dst, .. } => v.push((dst, width_bytes(width), false)),
        X86Instr::JmpInd { src: Operand::Mem(m) } | X86Instr::Lea { addr: m, .. } => {
            v.push((m, 4, false));
        }
        _ => {}
    }
    v
}

/// Rewrite every whole-slot access to slot `s` in `ins` to use the
/// pinned register `p` instead of the env home.
fn rewrite_slot_access(ins: &mut X86Instr, s: u8, p: Gpr) {
    let slot = slot_mem(s);
    let hit = |o: &Operand| matches!(o, Operand::Mem(m) if *m == slot);
    *ins = match *ins {
        X86Instr::Mov { dst: dst @ Operand::Reg(_), src } if hit(&src) => {
            X86Instr::Mov { dst, src: Operand::Reg(p) }
        }
        X86Instr::Mov { dst, src } if hit(&dst) => X86Instr::Mov { dst: Operand::Reg(p), src },
        X86Instr::Alu { op, dst, src } if hit(&dst) => {
            X86Instr::Alu { op, dst: Operand::Reg(p), src }
        }
        X86Instr::Alu { op, dst, src } if hit(&src) => {
            X86Instr::Alu { op, dst, src: Operand::Reg(p) }
        }
        X86Instr::Imul { dst, src } if hit(&src) => X86Instr::Imul { dst, src: Operand::Reg(p) },
        X86Instr::Shift { op, dst, count } if hit(&dst) => {
            X86Instr::Shift { op, dst: Operand::Reg(p), count }
        }
        X86Instr::Un { op, dst } if hit(&dst) => X86Instr::Un { op, dst: Operand::Reg(p) },
        X86Instr::Push { src } if hit(&src) => X86Instr::Push { src: Operand::Reg(p) },
        X86Instr::Pop { dst } if hit(&dst) => X86Instr::Pop { dst: Operand::Reg(p) },
        other => other,
    };
}

/// Region-wide register allocation: pin hot guest register slots to host
/// registers from `pool` that the region never otherwise touches.
/// Returns the allocation (`(slot, pinned register)` pairs, empty when
/// nothing was pinned). See the module section comment for the contract.
pub fn allocate_region(parts: &mut [SbPart], pool: &[Gpr]) -> Vec<(u8, Gpr)> {
    // ---- whole-region legality ----
    // Calls hand control to code that may use any register; an explicit
    // `%esp` definition breaks the stack/env disjointness reasoning;
    // backward jumps would complicate writeback insertion (a jump could
    // then land *after* an inserted block it must execute). Dynamically
    // addressed accesses — loads and stores — are permitted: the guest
    // address space (code, globals, guest stack) lies strictly below
    // `HOST_STACK_TOP < ENV_BASE`, so guest code cannot legitimately name
    // a pinned slot's env home; the differential watchdog remains the
    // safety net for one that somehow does (DESIGN.md §16).
    for part in parts.iter() {
        if !jumps_in_range(&part.code) {
            return Vec::new();
        }
        for ins in part.code.iter() {
            if matches!(ins, X86Instr::Call { .. }) || ins.def() == Some(Gpr::Esp) {
                return Vec::new();
            }
            if let X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } = ins {
                if *target < 0 {
                    return Vec::new();
                }
            }
        }
    }
    // ---- per-slot census + register usage ----
    let head = parts[0].id;
    let mut count = [0u32; 15];
    let mut pinnable = [true; 15];
    let mut used: u8 = bit(Gpr::Eax) | bit(Gpr::Esp);
    let mut escapes = 0u32;
    for (k, part) in parts.iter().enumerate() {
        let seam_next = parts.get(k + 1).map(|p| p.id);
        for ins in part.code.iter() {
            for u in ins.uses() {
                used |= bit(u);
            }
            if let Some(d) = ins.def() {
                used |= bit(d);
            }
            if is_escape(ins, seam_next, head) {
                escapes += 1;
            }
            for (m, bytes, supported) in static_accesses(ins) {
                if dynamic_addr(&m) {
                    continue;
                }
                let a = m.disp as u32;
                for s in 0..15u32 {
                    let lo = ENV_BASE + 4 * s;
                    if a < lo + 4 && lo < a.saturating_add(bytes) {
                        if supported && a == lo && bytes == 4 {
                            count[s as usize] += 1;
                        } else {
                            pinnable[s as usize] = false;
                        }
                    }
                }
            }
        }
    }
    // ---- selection: hottest slots onto unused pool registers ----
    // A pin costs one preamble load plus one writeback per escape; it
    // must be reached by at least two rewritten accesses to pay off.
    let mut hot: Vec<u8> = (0..15u8)
        .filter(|&s| pinnable[s as usize] && count[s as usize] >= 2u32.max(escapes))
        .collect();
    hot.sort_by_key(|&s| (std::cmp::Reverse(count[s as usize]), s));
    let free: Vec<Gpr> = pool.iter().copied().filter(|&p| used & bit(p) == 0).collect();
    let ra: Vec<(u8, Gpr)> = hot.into_iter().zip(free).collect();
    if ra.is_empty() {
        return ra;
    }
    // ---- rewrite: interior accesses, preamble, writebacks ----
    for part in parts.iter_mut() {
        let mut code = (*part.code).clone();
        for ins in code.iter_mut() {
            for &(s, p) in &ra {
                rewrite_slot_access(ins, s, p);
            }
        }
        part.code = Rc::new(code);
    }
    for k in 0..parts.len() {
        let seam_next = parts.get(k + 1).map(|p| p.id);
        let mut code = (*parts[k].code).clone();
        let sites: Vec<usize> = code
            .iter()
            .enumerate()
            .filter(|(_, ins)| is_escape(ins, seam_next, head))
            .map(|(i, _)| i)
            .collect();
        let wb: Vec<X86Instr> = ra
            .iter()
            .map(|&(s, p)| X86Instr::Mov { dst: Operand::Mem(slot_mem(s)), src: Operand::Reg(p) })
            .collect();
        for &at in sites.iter().rev() {
            insert_before(&mut code, at, &wb);
        }
        parts[k].code = Rc::new(code);
    }
    ra
}

/// The region-entry preamble for an allocation: one load from each
/// pinned slot's env home. The engine runs this once per region entry,
/// *not* on the loop backedge (where the pinned registers — not env —
/// are authoritative).
pub fn ra_preamble(ra: &[(u8, Gpr)]) -> Vec<X86Instr> {
    ra.iter()
        .map(|&(s, p)| X86Instr::Mov { dst: Operand::Reg(p), src: Operand::Mem(slot_mem(s)) })
        .collect()
}

/// [`optimize_region`] with the pinned registers of an allocation held
/// live across every in-region seam, so cleanup can never invalidate a
/// pinned register between parts (a writeback's source may be renamed
/// away from the pin by propagation; the pin itself must still hold the
/// guest value at the next seam for the engine's watchdog
/// materialization).
pub fn optimize_region_pinned(parts: &mut [SbPart], ra: &[(u8, Gpr)]) {
    let pinned = ra.iter().fold(0u8, |acc, &(_, p)| acc | bit(p));
    optimize_region_inner(parts, pinned);
}

/// The region allocation contract, checked by the engine after region
/// formation (debug builds): part 0 reads only `%esp` and the pinned
/// registers (which the entry preamble defines) and no flags at entry,
/// and every escape is immediately preceded by a writeback store to each
/// pinned slot's env home (later passes may rewrite the *source* of a
/// writeback but never remove or reorder the store).
pub fn region_contract(parts: &[SbPart], ra: &[(u8, Gpr)]) -> bool {
    let Some(first) = parts.first() else {
        return true;
    };
    let head = first.id;
    let pinned = ra.iter().fold(0u8, |acc, &(_, p)| acc | bit(p));
    let (regs, flags) = entry_reads(&first.code);
    if regs & !(bit(Gpr::Esp) | pinned) != 0 || flags != 0 {
        return false;
    }
    for (k, part) in parts.iter().enumerate() {
        let seam_next = parts.get(k + 1).map(|p| p.id);
        for (i, ins) in part.code.iter().enumerate() {
            if !is_escape(ins, seam_next, head) {
                continue;
            }
            let window = &part.code[i.saturating_sub(ra.len())..i];
            for &(s, _) in ra {
                let slot = slot_mem(s);
                let wrote = window
                    .iter()
                    .any(|w| matches!(w, X86Instr::Mov { dst: Operand::Mem(m), .. } if *m == slot));
                if !wrote {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{env_mem, reg_mem, FLAGMODE_OFFSET, HOSTFLAGS_OFFSET};
    use ldbt_arm::ArmReg;

    fn load(r: Gpr, g: ArmReg) -> X86Instr {
        X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Mem(reg_mem(g)) }
    }

    fn store(g: ArmReg, r: Gpr) -> X86Instr {
        X86Instr::Mov { dst: Operand::Mem(reg_mem(g)), src: Operand::Reg(r) }
    }

    fn flagmode_reset() -> X86Instr {
        X86Instr::Mov { dst: Operand::Mem(env_mem(FLAGMODE_OFFSET)), src: Operand::Imm(0) }
    }

    fn exit_pair(pc: u32, block: u32) -> [X86Instr; 2] {
        [X86Instr::mov_imm(Gpr::Eax, pc as i32), X86Instr::ChainJmp { block }]
    }

    /// A miniature but faithful flag stub (guard + body + reset).
    fn mini_stub() -> Vec<X86Instr> {
        vec![
            X86Instr::Alu {
                op: AluOp::Cmp,
                dst: Operand::Mem(env_mem(FLAGMODE_OFFSET)),
                src: Operand::Imm(0),
            },
            X86Instr::Jcc { cc: Cc::E, target: 4 },
            X86Instr::Mov {
                dst: Operand::Reg(Gpr::Ecx),
                src: Operand::Mem(env_mem(FLAGMODE_OFFSET)),
            },
            X86Instr::Push { src: Operand::Mem(env_mem(HOSTFLAGS_OFFSET)) },
            X86Instr::Popfd,
            flagmode_reset(),
        ]
    }

    #[test]
    fn entry_state_keeps_everything() {
        let code = vec![load(Gpr::Ecx, ArmReg::R0), X86Instr::alu_ri(AluOp::Add, Gpr::Ecx, 1)];
        let (out, st) = specialize_part(&code, &SeamState::entry());
        assert_eq!(out, code, "nothing provable at entry: nothing elided");
        // The add killed the tag the load generated.
        assert_eq!(st.tags[Gpr::Ecx.index()], None);
    }

    #[test]
    fn redundant_home_load_elided_and_writeback_tags() {
        // Part A writes back r4 from %esi; part B reloads it.
        let a = vec![store(ArmReg::R4, Gpr::Esi), X86Instr::Ret];
        let (_, seam) = specialize_part(&a, &SeamState::entry());
        assert_eq!(seam.tags[Gpr::Esi.index()], Some(4));
        let b = vec![load(Gpr::Esi, ArmReg::R4), X86Instr::alu_ri(AluOp::Add, Gpr::Esi, 7)];
        let (out, _) = specialize_part(&b, &seam);
        assert_eq!(out.len(), 1, "reload of a still-live home is dropped");
        assert!(matches!(out[0], X86Instr::Alu { .. }));
        // With a cold seam the load must survive.
        let (cold, _) = specialize_part(&b, &SeamState::entry());
        assert_eq!(cold.len(), 2);
    }

    #[test]
    fn load_to_different_reg_not_elided() {
        let a = vec![store(ArmReg::R4, Gpr::Esi), X86Instr::Ret];
        let (_, seam) = specialize_part(&a, &SeamState::entry());
        let b = vec![load(Gpr::Edi, ArmReg::R4)];
        let (out, st) = specialize_part(&b, &seam);
        assert_eq!(out.len(), 1, "different target register: keep the load");
        assert_eq!(st.tags[Gpr::Edi.index()], Some(4));
    }

    #[test]
    fn flagmode_reset_elided_when_zero() {
        let a = vec![flagmode_reset(), X86Instr::Ret];
        let (_, seam) = specialize_part(&a, &SeamState::entry());
        assert_eq!(seam.flagmode, FlagAbs::Zero);
        let b = vec![flagmode_reset(), X86Instr::alu_ri(AluOp::Add, Gpr::Ecx, 1)];
        let (out, st) = specialize_part(&b, &seam);
        assert_eq!(out.len(), 1, "redundant reset dropped");
        assert_eq!(st.flagmode, FlagAbs::Zero);
    }

    #[test]
    fn flag_stub_elided_only_when_flagmode_zero_and_eflags_dead() {
        let mut b = mini_stub();
        // Body: a flag writer follows, so the stub's cmp flags are dead.
        b.push(X86Instr::alu_ri(AluOp::Add, Gpr::Ecx, 1));
        let zero = SeamState { tags: [None; 8], flagmode: FlagAbs::Zero };
        let (out, st) = specialize_part(&b, &zero);
        assert_eq!(out.len(), 1, "whole stub elided: {out:?}");
        assert_eq!(st.flagmode, FlagAbs::Zero);
        // Unknown flag-mode: the stub must stay, and normalizes to Zero.
        let (kept, st2) = specialize_part(&b, &SeamState::entry());
        assert_eq!(kept.len(), b.len());
        assert_eq!(st2.flagmode, FlagAbs::Zero);
    }

    #[test]
    fn flag_stub_kept_when_eflags_still_read() {
        // A setcc consumes EFLAGS right after the stub: the stub's cmp is
        // load-bearing for it, so elision must refuse.
        let mut b = mini_stub();
        b.push(X86Instr::Setcc { cc: Cc::E, dst: Gpr::Ecx });
        let zero = SeamState { tags: [None; 8], flagmode: FlagAbs::Zero };
        let (out, _) = specialize_part(&b, &zero);
        assert_eq!(out.len(), b.len(), "EFLAGS consumer blocks stub elision");
    }

    #[test]
    fn dynamic_store_kills_all_tags() {
        let a = vec![store(ArmReg::R4, Gpr::Esi), X86Instr::Ret];
        let (_, mut seam) = specialize_part(&a, &SeamState::entry());
        seam.flagmode = FlagAbs::Zero;
        let b = vec![X86Instr::Mov {
            dst: Operand::Mem(X86Mem::base(Gpr::Edx)),
            src: Operand::Reg(Gpr::Esi),
        }];
        let (_, st) = specialize_part(&b, &seam);
        assert_eq!(st.tags, [None; 8], "a store through a pointer may alias the env");
        assert_eq!(st.flagmode, FlagAbs::Unknown);
    }

    #[test]
    fn post_branch_code_only_removes_knowledge() {
        // After the first branch nothing is guaranteed to execute: a
        // home load there must not generate a tag, and a conditional
        // writeback must kill one.
        let code = vec![
            store(ArmReg::R4, Gpr::Esi),
            X86Instr::Jcc { cc: Cc::E, target: 1 },
            store(ArmReg::R4, Gpr::Edi), // maybe-executed: r4 no longer tied to %esi
            load(Gpr::Ebx, ArmReg::R5),  // maybe-executed: generates nothing
        ];
        let (out, st) = specialize_part(&code, &SeamState::entry());
        assert_eq!(out.len(), code.len());
        assert_eq!(st.tags[Gpr::Esi.index()], None);
        assert_eq!(st.tags[Gpr::Ebx.index()], None);
    }

    #[test]
    fn backward_jump_disables_elision() {
        let a = vec![store(ArmReg::R4, Gpr::Esi), X86Instr::Ret];
        let (_, seam) = specialize_part(&a, &SeamState::entry());
        let b = vec![load(Gpr::Esi, ArmReg::R4), X86Instr::Jcc { cc: Cc::E, target: -1 }];
        let (out, _) = specialize_part(&b, &seam);
        assert_eq!(out.len(), 2, "backward jump: shifting indices is unsafe");
    }

    #[test]
    fn seam_exit_pair_stripped_when_eax_dead() {
        let pair = exit_pair(0x1_0040, 7);
        let mut parts = vec![
            SbPart {
                id: 3,
                code: Rc::new(vec![X86Instr::alu_ri(AluOp::Add, Gpr::Ecx, 1), pair[0], pair[1]]),
                fallthrough_seam: false,
            },
            SbPart {
                id: 7,
                // Next part redefines %eax before any use (a Jump exit).
                code: Rc::new(vec![
                    X86Instr::alu_ri(AluOp::Add, Gpr::Edx, 2),
                    X86Instr::mov_imm(Gpr::Eax, 0x1_0080),
                    X86Instr::Ret,
                ]),
                fallthrough_seam: false,
            },
        ];
        strip_seam_exits(&mut parts, &[0x1_0000, 0x1_0040]);
        assert!(parts[0].fallthrough_seam);
        assert_eq!(parts[0].code.len(), 1, "pair stripped");
        assert!(!parts[1].fallthrough_seam, "last part never stripped");
    }

    #[test]
    fn seam_exit_pair_kept_when_next_reads_eax() {
        let pair = exit_pair(0x1_0040, 7);
        let mut parts = vec![
            SbPart { id: 3, code: Rc::new(vec![pair[0], pair[1]]), fallthrough_seam: false },
            SbPart {
                id: 7,
                // Reads %eax (e.g. via an indirect-exit mov) before writing.
                code: Rc::new(vec![
                    X86Instr::mov_rr(Gpr::Ecx, Gpr::Eax),
                    X86Instr::mov_imm(Gpr::Eax, 0),
                    X86Instr::Ret,
                ]),
                fallthrough_seam: false,
            },
        ];
        strip_seam_exits(&mut parts, &[0x1_0000, 0x1_0040]);
        assert!(!parts[0].fallthrough_seam, "eax live-in: keep the pair");
        assert_eq!(parts[0].code.len(), 2);
    }

    #[test]
    fn seam_exit_pair_kept_when_target_mismatches() {
        let pair = exit_pair(0x9999, 7); // wrong pc for part 1
        let mut parts = vec![
            SbPart { id: 3, code: Rc::new(vec![pair[0], pair[1]]), fallthrough_seam: false },
            SbPart {
                id: 7,
                code: Rc::new(vec![X86Instr::mov_imm(Gpr::Eax, 0), X86Instr::Ret]),
                fallthrough_seam: false,
            },
        ];
        strip_seam_exits(&mut parts, &[0x1_0000, 0x1_0040]);
        assert!(!parts[0].fallthrough_seam);
    }

    #[test]
    fn eax_analysis_follows_both_branch_arms() {
        // Branch-terminator shape: cmp; jcc over the not-taken arm; both
        // arms define %eax first thing.
        let code = vec![
            X86Instr::Alu { op: AluOp::Cmp, dst: Operand::Reg(Gpr::Ecx), src: Operand::Imm(0) },
            X86Instr::Jcc { cc: Cc::Ne, target: 2 },
            X86Instr::mov_imm(Gpr::Eax, 0x10),
            X86Instr::Ret,
            X86Instr::mov_imm(Gpr::Eax, 0x20),
            X86Instr::Ret,
        ];
        assert!(eax_redefined_first(&code, 0, 16));
        // But a bare chain-jump path (no def) must refuse.
        let leak = vec![X86Instr::ChainJmp { block: 5 }];
        assert!(!eax_redefined_first(&leak, 0, 16));
    }

    /// Regression (caught on gobmk): a part ending in a *conditional*
    /// ChainJmp seam (`fallthrough_seam == false`) still continues into
    /// the next part with registers intact, and that next part may have
    /// been specialized to read them. The optimizer must thread the
    /// successor's entry liveness through the ChainJmp-to-next-part
    /// edge, not treat it as a register-killing region escape — here,
    /// stripping `%ecx = %ebx` from part 0 would leave part 1 comparing
    /// a stale `%ecx`.
    #[test]
    fn chainjmp_seam_threads_successor_entry_liveness() {
        let part0 = vec![
            load(Gpr::Ebx, ArmReg::R0),
            X86Instr::mov_rr(Gpr::Ecx, Gpr::Ebx), // dead, unless part 1 needs %ecx
            store(ArmReg::R1, Gpr::Ebx),
            X86Instr::Alu { op: AluOp::Cmp, dst: Operand::Reg(Gpr::Ebx), src: Operand::Imm(9) },
            X86Instr::Jcc { cc: Cc::L, target: 2 },
            X86Instr::mov_imm(Gpr::Eax, 0x100),
            X86Instr::ChainJmp { block: 7 }, // in-region seam: next part's block
            X86Instr::mov_imm(Gpr::Eax, 0x200),
            X86Instr::ChainJmp { block: 3 }, // side exit
        ];
        // Part 1 was specialized against the seam state: no home load of
        // r0, it reads %ecx straight away.
        let part1 = vec![
            X86Instr::Alu { op: AluOp::Cmp, dst: Operand::Reg(Gpr::Ecx), src: Operand::Imm(4) },
            X86Instr::Jcc { cc: Cc::L, target: 2 },
            X86Instr::mov_imm(Gpr::Eax, 0x300),
            X86Instr::Ret,
            X86Instr::mov_imm(Gpr::Eax, 0x400),
            X86Instr::Ret,
        ];
        let mut parts = vec![
            SbPart { id: 5, code: Rc::new(part0), fallthrough_seam: false },
            SbPart { id: 7, code: Rc::new(part1), fallthrough_seam: false },
        ];
        optimize_region(&mut parts);
        assert!(
            parts[0].code.iter().any(|i| matches!(
                i,
                X86Instr::Mov { dst: Operand::Reg(Gpr::Ecx), src: Operand::Reg(Gpr::Ebx) }
            )),
            "%ecx def feeding the specialized successor must survive: {:?}",
            parts[0].code
        );
        // Sanity: with no successor depending on it, the same copy IS
        // removed (it is genuinely dead at a real region escape).
        let solo = vec![
            load(Gpr::Ebx, ArmReg::R0),
            X86Instr::mov_rr(Gpr::Ecx, Gpr::Ebx),
            store(ArmReg::R1, Gpr::Ebx),
            X86Instr::mov_imm(Gpr::Eax, 0x100),
            X86Instr::Ret,
        ];
        let mut alone = vec![SbPart { id: 5, code: Rc::new(solo), fallthrough_seam: false }];
        optimize_region(&mut alone);
        assert!(
            !alone[0].code.iter().any(|i| matches!(
                i,
                X86Instr::Mov { dst: Operand::Reg(Gpr::Ecx), src: Operand::Reg(Gpr::Ebx) }
            )),
            "dead copy at a real escape is removed: {:?}",
            alone[0].code
        );
    }

    // ---- guest memory access fusion ----

    fn part(id: u32, code: Vec<X86Instr>) -> SbPart {
        SbPart { id, code: Rc::new(code), fallthrough_seam: false }
    }

    #[test]
    fn fusion_forwards_store_to_load() {
        let mut parts = vec![part(
            1,
            vec![
                store(ArmReg::R4, Gpr::Esi),
                load(Gpr::Edi, ArmReg::R4),
                X86Instr::alu_ri(AluOp::Add, Gpr::Edi, 1),
                X86Instr::Ret,
            ],
        )];
        let n = fuse_region(&mut parts);
        assert_eq!(n, 1);
        assert!(
            parts[0].code.iter().any(|i| matches!(
                i,
                X86Instr::Mov { dst: Operand::Reg(Gpr::Edi), src: Operand::Reg(Gpr::Esi) }
            )),
            "load forwarded from the store: {:?}",
            parts[0].code
        );
    }

    #[test]
    fn fusion_eliminates_redundant_load() {
        // Two loads of the same slot: the second reuses the first's value.
        let mut parts = vec![part(
            1,
            vec![load(Gpr::Esi, ArmReg::R4), load(Gpr::Edi, ArmReg::R4), X86Instr::Ret],
        )];
        assert_eq!(fuse_region(&mut parts), 1);
        assert!(parts[0].code.iter().any(|i| matches!(
            i,
            X86Instr::Mov { dst: Operand::Reg(Gpr::Edi), src: Operand::Reg(Gpr::Esi) }
        )));
    }

    #[test]
    fn fusion_sinks_dead_store() {
        // The first store is fully shadowed before any read.
        let mut parts = vec![part(
            1,
            vec![store(ArmReg::R4, Gpr::Esi), store(ArmReg::R4, Gpr::Edi), X86Instr::Ret],
        )];
        assert_eq!(fuse_region(&mut parts), 1);
        let stores = parts[0]
            .code
            .iter()
            .filter(|i| matches!(i, X86Instr::Mov { dst: Operand::Mem(_), .. }))
            .count();
        assert_eq!(stores, 1, "shadowed store sunk: {:?}", parts[0].code);
    }

    #[test]
    fn fusion_dead_store_blocked_by_read_and_branch() {
        // An intervening load of the same bytes keeps the store.
        let read = vec![
            store(ArmReg::R4, Gpr::Esi),
            load(Gpr::Ebx, ArmReg::R4),
            store(ArmReg::R4, Gpr::Edi),
            X86Instr::Ret,
        ];
        let (sunk, n) = eliminate_dead_stores(&read);
        assert!(sunk.is_none() && n == 0, "aliasing read is a barrier");
        // A conditional branch escapes to code that may read memory.
        let branch = vec![
            store(ArmReg::R4, Gpr::Esi),
            X86Instr::Jcc { cc: Cc::E, target: 0 },
            store(ArmReg::R4, Gpr::Edi),
            X86Instr::Ret,
        ];
        let (sunk, n) = eliminate_dead_stores(&branch);
        assert!(sunk.is_none() && n == 0, "Jcc is a barrier");
    }

    #[test]
    fn fusion_pairs_adjacent_narrow_stores() {
        let base = 0x0050_0000i32; // word-aligned guest address
        let mut parts = vec![part(
            1,
            vec![
                X86Instr::mov_imm(Gpr::Esi, 0x1111),
                X86Instr::mov_imm(Gpr::Edi, 0x2222),
                X86Instr::MovStore {
                    width: Width::W16,
                    src: Gpr::Esi,
                    dst: X86Mem::absolute(base),
                },
                X86Instr::MovStore {
                    width: Width::W16,
                    src: Gpr::Edi,
                    dst: X86Mem::absolute(base + 2),
                },
                X86Instr::Ret,
            ],
        )];
        assert!(fuse_region(&mut parts) >= 1);
        assert!(
            parts[0].code.iter().any(|i| matches!(
                i,
                X86Instr::Mov { dst: Operand::Mem(_), src: Operand::Imm(0x2222_1111) }
            )),
            "paired into one word store: {:?}",
            parts[0].code
        );
    }

    #[test]
    fn fusion_refuses_misaligned_pair() {
        // lo % 4 == 2: the fused word store would be misaligned and could
        // cross a page boundary, changing fault behavior.
        let base = 0x0050_0002i32;
        let code = vec![
            X86Instr::mov_imm(Gpr::Esi, 0x1111),
            X86Instr::mov_imm(Gpr::Edi, 0x2222),
            X86Instr::MovStore { width: Width::W16, src: Gpr::Esi, dst: X86Mem::absolute(base) },
            X86Instr::MovStore {
                width: Width::W16,
                src: Gpr::Edi,
                dst: X86Mem::absolute(base + 2),
            },
            X86Instr::Ret,
        ];
        let (out, n, _) = fuse_forward(&code, Vec::new(), None, false);
        assert_eq!(n, 0, "misaligned pair refused");
        assert_eq!(out, code);
    }

    #[test]
    fn fusion_carries_facts_across_seams() {
        // Part 0 stores r4 and falls through the stripped seam; part 1's
        // reload forwards from the carried fact.
        let mut parts = vec![
            SbPart {
                id: 1,
                code: Rc::new(vec![store(ArmReg::R4, Gpr::Esi)]),
                fallthrough_seam: true,
            },
            part(2, vec![load(Gpr::Edi, ArmReg::R4), X86Instr::Ret]),
        ];
        assert_eq!(fuse_region(&mut parts), 1);
        assert!(parts[1].code.iter().any(|i| matches!(
            i,
            X86Instr::Mov { dst: Operand::Reg(Gpr::Edi), src: Operand::Reg(Gpr::Esi) }
        )));
    }

    #[test]
    fn fusion_meets_facts_at_every_seam_entry() {
        // The seam is reachable both by the branch over the escape and by
        // the fallthrough, with *different* facts: only the intersection
        // may carry, which here is empty — the next part's load survives.
        let mut parts = vec![
            SbPart {
                id: 1,
                code: Rc::new(vec![
                    store(ArmReg::R4, Gpr::Esi),
                    X86Instr::Jcc { cc: Cc::E, target: 1 },
                    store(ArmReg::R4, Gpr::Edi),
                ]),
                fallthrough_seam: true,
            },
            part(2, vec![load(Gpr::Ebx, ArmReg::R4), X86Instr::Ret]),
        ];
        fuse_region(&mut parts);
        assert!(
            parts[1].code.iter().any(|i| matches!(
                i,
                X86Instr::Mov { dst: Operand::Reg(Gpr::Ebx), src: Operand::Mem(_) }
            )),
            "conflicting seam facts must not forward: {:?}",
            parts[1].code
        );
    }

    #[test]
    fn fusion_trailing_escape_does_not_leak_facts() {
        // Part 0's seam is reached only through the branch at index 1;
        // the store after it belongs to the escape path and its fact must
        // not reach part 1.
        let mut parts = vec![
            SbPart {
                id: 1,
                code: Rc::new(vec![
                    X86Instr::Alu {
                        op: AluOp::Cmp,
                        dst: Operand::Reg(Gpr::Ecx),
                        src: Operand::Imm(0),
                    },
                    X86Instr::Jcc { cc: Cc::E, target: 3 },
                    store(ArmReg::R4, Gpr::Esi),
                    X86Instr::mov_imm(Gpr::Eax, 0x100),
                    X86Instr::Ret,
                ]),
                fallthrough_seam: true,
            },
            part(2, vec![load(Gpr::Edi, ArmReg::R4), X86Instr::Ret]),
        ];
        fuse_region(&mut parts);
        assert!(
            parts[1].code.iter().any(|i| matches!(
                i,
                X86Instr::Mov { dst: Operand::Reg(Gpr::Edi), src: Operand::Mem(_) }
            )),
            "escape-path fact leaked across the seam: {:?}",
            parts[1].code
        );
    }

    #[test]
    fn may_overlap_disjoint_and_esp_cases() {
        let a = X86Mem::absolute(0x1000);
        let b = X86Mem::absolute(0x1004);
        assert!(!may_overlap(&a, 4, &b, 4), "disjoint absolute intervals");
        assert!(may_overlap(&a, 4, &X86Mem::absolute(0x1002), 4), "overlapping intervals");
        let stack = X86Mem { base: Some(Gpr::Esp), index: None, disp: 0 };
        let env = X86Mem::absolute(ENV_BASE as i32);
        assert!(!may_overlap(&stack, 4, &env, 4), "host stack and env are disjoint");
        let unknown = X86Mem { base: Some(Gpr::Edx), index: None, disp: 0 };
        assert!(may_overlap(&unknown, 4, &env, 4), "unknown base must be conservative");
    }

    // ---- region register allocation ----

    /// Two-part loop region: head increments r4 and seams; the tail
    /// accesses r4 twice more and ends with `tail_exit` (plus preceding
    /// `mov %eax, pc` as the exit pair).
    fn ra_region(tail_exit: X86Instr) -> Vec<SbPart> {
        vec![
            SbPart {
                id: 5,
                code: Rc::new(vec![
                    X86Instr::Mov { dst: Operand::Reg(Gpr::Edx), src: Operand::Mem(slot_mem(4)) },
                    X86Instr::alu_ri(AluOp::Add, Gpr::Edx, 1),
                    X86Instr::Mov { dst: Operand::Mem(slot_mem(4)), src: Operand::Reg(Gpr::Edx) },
                ]),
                fallthrough_seam: true,
            },
            part(
                7,
                vec![
                    X86Instr::Mov { dst: Operand::Reg(Gpr::Edx), src: Operand::Mem(slot_mem(4)) },
                    X86Instr::alu_ri(AluOp::Add, Gpr::Edx, 2),
                    X86Instr::Mov { dst: Operand::Mem(slot_mem(4)), src: Operand::Reg(Gpr::Edx) },
                    X86Instr::mov_imm(Gpr::Eax, 0x100),
                    tail_exit,
                ],
            ),
        ]
    }

    #[test]
    fn allocate_region_pins_and_writes_back_at_escape() {
        let mut parts = ra_region(X86Instr::ChainJmp { block: 9 });
        let ra = allocate_region(&mut parts, &[Gpr::Ecx, Gpr::Ebx]);
        assert_eq!(ra, vec![(4, Gpr::Ecx)]);
        // Interior accesses rewritten: the only remaining slot-4 memory
        // reference is the writeback immediately before the escape.
        let slot4 = slot_mem(4);
        for (k, p) in parts.iter().enumerate() {
            for (i, ins) in p.code.iter().enumerate() {
                let touches = static_accesses(ins).iter().any(|(m, _, _)| *m == slot4);
                if touches {
                    assert_eq!(k, 1);
                    assert!(
                        matches!(
                            ins,
                            X86Instr::Mov { dst: Operand::Mem(_), src: Operand::Reg(Gpr::Ecx) }
                        ) && matches!(p.code[i + 1], X86Instr::ChainJmp { block: 9 }),
                        "only a writeback right before the escape may touch the home: {ins:?}"
                    );
                }
            }
        }
        assert!(region_contract(&parts, &ra));
    }

    #[test]
    fn allocate_region_backedge_is_not_an_escape() {
        // The tail chains back to the head: a resident backedge. No
        // writeback may be inserted before it — the pins stay live and
        // the engine re-enters part 0 without re-running the preamble.
        let mut parts = ra_region(X86Instr::ChainJmp { block: 5 });
        let ra = allocate_region(&mut parts, &[Gpr::Ecx, Gpr::Ebx]);
        assert_eq!(ra, vec![(4, Gpr::Ecx)]);
        let slot4 = slot_mem(4);
        let any_home_access = parts
            .iter()
            .flat_map(|p| p.code.iter())
            .any(|ins| static_accesses(ins).iter().any(|(m, _, _)| *m == slot4));
        assert!(!any_home_access, "no writeback on the backedge: {:?}", parts[1].code);
        assert!(region_contract(&parts, &ra));
    }

    #[test]
    fn allocate_region_refusals() {
        // A Call may clobber any register.
        let mut with_call = ra_region(X86Instr::ChainJmp { block: 9 });
        Rc::make_mut(&mut with_call[0].code).insert(0, X86Instr::Call { target: 0 });
        assert!(allocate_region(&mut with_call, &[Gpr::Ecx]).is_empty());
        // An %esp definition breaks stack/env disjointness reasoning.
        let mut with_esp = ra_region(X86Instr::ChainJmp { block: 9 });
        Rc::make_mut(&mut with_esp[0].code).insert(0, X86Instr::alu_ri(AluOp::Add, Gpr::Esp, 4));
        assert!(allocate_region(&mut with_esp, &[Gpr::Ecx]).is_empty());
        // A backward jump could land after an inserted writeback block.
        let mut with_back = ra_region(X86Instr::ChainJmp { block: 9 });
        Rc::make_mut(&mut with_back[1].code).insert(3, X86Instr::Jcc { cc: Cc::E, target: -2 });
        assert!(allocate_region(&mut with_back, &[Gpr::Ecx]).is_empty());
        // No free pool register: the region keeps its env-home behavior.
        let mut no_free = ra_region(X86Instr::ChainJmp { block: 9 });
        assert!(allocate_region(&mut no_free, &[Gpr::Edx]).is_empty());
    }

    #[test]
    fn allocate_region_subword_access_poisons_slot() {
        let mut parts = ra_region(X86Instr::ChainJmp { block: 9 });
        Rc::make_mut(&mut parts[0].code)
            .insert(0, X86Instr::MovStore { width: Width::W8, src: Gpr::Edx, dst: slot_mem(4) });
        assert!(
            allocate_region(&mut parts, &[Gpr::Ecx]).is_empty(),
            "sub-word home access cannot be rewritten to a register"
        );
    }

    #[test]
    fn ra_preamble_loads_each_pin() {
        let pre = ra_preamble(&[(4, Gpr::Ecx), (6, Gpr::Esi)]);
        assert_eq!(
            pre,
            vec![
                X86Instr::Mov { dst: Operand::Reg(Gpr::Ecx), src: Operand::Mem(slot_mem(4)) },
                X86Instr::Mov { dst: Operand::Reg(Gpr::Esi), src: Operand::Mem(slot_mem(6)) },
            ]
        );
    }

    #[test]
    fn region_contract_detects_missing_writeback() {
        let mut parts = ra_region(X86Instr::ChainJmp { block: 9 });
        let ra = allocate_region(&mut parts, &[Gpr::Ecx, Gpr::Ebx]);
        assert!(region_contract(&parts, &ra));
        // Drop the writeback: the contract must notice.
        let code = Rc::make_mut(&mut parts[1].code);
        let wb = code
            .iter()
            .position(|i| matches!(i, X86Instr::Mov { dst: Operand::Mem(_), src: Operand::Reg(_) }))
            .unwrap();
        code.remove(wb);
        assert!(!region_contract(&parts, &ra));
    }

    #[test]
    fn insert_before_stretches_spanning_jumps() {
        // jcc at 0 over index 1 to index 2; insertion at 1 stretches it.
        let mut code = vec![
            X86Instr::Jcc { cc: Cc::E, target: 1 },
            X86Instr::alu_ri(AluOp::Add, Gpr::Ecx, 1),
            X86Instr::Ret,
        ];
        insert_before(&mut code, 1, &[X86Instr::alu_ri(AluOp::Add, Gpr::Edx, 7)]);
        assert_eq!(code.len(), 4);
        assert!(matches!(code[0], X86Instr::Jcc { target: 2, .. }), "stretched: {code:?}");
        // A jump landing exactly at the insertion point keeps its target:
        // it must run the inserted block (writebacks before an escape).
        let mut code = vec![
            X86Instr::Jcc { cc: Cc::E, target: 1 },
            X86Instr::alu_ri(AluOp::Add, Gpr::Ecx, 1),
            X86Instr::Ret,
        ];
        insert_before(&mut code, 2, &[X86Instr::alu_ri(AluOp::Add, Gpr::Edx, 7)]);
        assert!(matches!(code[0], X86Instr::Jcc { target: 1, .. }), "kept: {code:?}");
    }
}
