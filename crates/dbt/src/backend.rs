//! Lowering TCG micro-ops to host (x86) code.
//!
//! QEMU-style conventions:
//!
//! * the guest register file lives in the env; each guest register
//!   accessed by a block gets a *home* host register, loaded on first use
//!   and written back (if dirty) at every block exit,
//! * `%eax` is the dispatcher register (the block returns the next guest
//!   PC in it) and doubles as scratch,
//! * temporaries that exceed the register pool spill to env slots,
//! * blocks that read live-in guest flags get a prologue stub that, when
//!   a predecessor left lazily-saved host flags (paper §5), materializes
//!   the env NZCV slots from the saved EFLAGS image — the moral
//!   equivalent of the paper's two-version blocks, selected by the same
//!   boolean flag-mode.

use crate::env::{
    env_mem, flag_mem, reg_mem, FlagId, FLAGMODE_OFFSET, HOSTFLAGS_OFFSET, SPILL_OFFSET,
    SPILL_SLOTS,
};
use crate::tcg::{BlockEnd, TcgAlu, TcgBlock, TcgCond, TcgOp, Temp};
use ldbt_arm::ArmReg;
use ldbt_isa::Width;
use ldbt_x86::{AluOp, Cc, Gpr, Operand, ShiftOp, UnOp, X86Instr, X86Mem};
use std::collections::HashMap;

/// The allocatable host register pool: every general-purpose register
/// except `%eax` (exit-pc linkage) and `%esp` (host stack). The region
/// allocator in [`crate::sb`] pins guest registers to the pool entries a
/// region's code leaves untouched.
pub(crate) const POOL: [Gpr; 6] = [Gpr::Ecx, Gpr::Edx, Gpr::Ebx, Gpr::Esi, Gpr::Edi, Gpr::Ebp];

fn cc_of(c: TcgCond) -> Cc {
    match c {
        TcgCond::Eq => Cc::E,
        TcgCond::Ne => Cc::Ne,
        TcgCond::Ltu => Cc::B,
        TcgCond::Leu => Cc::Be,
        TcgCond::Geu => Cc::Ae,
        TcgCond::Gtu => Cc::A,
        TcgCond::Lts => Cc::L,
        TcgCond::Ges => Cc::Ge,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegUse {
    Free,
    Temp(Temp),
    Home(ArmReg),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TLoc {
    Reg(Gpr),
    Spill(u32),
}

struct Lowerer {
    code: Vec<X86Instr>,
    /// Cache guest registers in host registers for the block (QEMU
    /// style).
    home_caching: bool,
    /// Number of pool registers available. The JIT path shrinks this,
    /// modeling the extra spills the paper attributes to LLVM keeping a
    /// copy of the guest register file in host memory (reserved base
    /// registers, shadow slots).
    pool_limit: usize,
    reg_state: HashMap<Gpr, RegUse>,
    temp_loc: HashMap<Temp, TLoc>,
    home: HashMap<ArmReg, Gpr>,
    dirty: HashMap<ArmReg, bool>,
    last_use: HashMap<Temp, usize>,
    free_slots: Vec<u32>,
    cur: usize,
}

impl Lowerer {
    fn new(block: &TcgBlock) -> Lowerer {
        let mut last_use: HashMap<Temp, usize> = HashMap::new();
        for (i, op) in block.ops.iter().enumerate() {
            for u in op.uses() {
                last_use.insert(u, i);
            }
        }
        let end_idx = block.ops.len();
        match block.end {
            BlockEnd::Branch { cond, .. } => {
                last_use.insert(cond, end_idx);
            }
            BlockEnd::Indirect(t) => {
                last_use.insert(t, end_idx);
            }
            _ => {}
        }
        Lowerer {
            code: Vec::new(),
            home_caching: true,
            pool_limit: POOL.len(),
            reg_state: POOL.iter().map(|r| (*r, RegUse::Free)).collect(),
            temp_loc: HashMap::new(),
            home: HashMap::new(),
            dirty: HashMap::new(),
            last_use,
            free_slots: (0..SPILL_SLOTS).rev().collect(),
            cur: 0,
        }
    }

    fn emit(&mut self, i: X86Instr) {
        self.code.push(i);
    }

    fn spill_mem(&self, slot: u32) -> X86Mem {
        env_mem(SPILL_OFFSET + 4 * slot)
    }

    /// Grab a free pool register, evicting if necessary. Registers
    /// holding temps in `forbid` are never victimized (they are operands
    /// of the op being lowered).
    fn grab_reg(&mut self, forbid: &[Temp]) -> Gpr {
        let pool = &POOL[..self.pool_limit];
        if let Some(r) = pool.iter().find(|r| self.reg_state[r] == RegUse::Free) {
            return *r;
        }
        // Prefer evicting a clean home, then a dirty home, then spill the
        // temp with the furthest last use.
        let mut clean = None;
        let mut dirty = None;
        for r in pool.iter().copied() {
            if let RegUse::Home(g) = self.reg_state[&r] {
                if self.dirty.get(&g).copied().unwrap_or(false) {
                    dirty.get_or_insert((r, g));
                } else {
                    clean.get_or_insert((r, g));
                }
            }
        }
        if let Some((r, g)) = clean.or(dirty) {
            if self.dirty.get(&g).copied().unwrap_or(false) {
                self.emit(X86Instr::Mov { dst: Operand::Mem(reg_mem(g)), src: Operand::Reg(r) });
            }
            self.home.remove(&g);
            self.dirty.remove(&g);
            self.reg_state.insert(r, RegUse::Free);
            return r;
        }
        // All pool regs hold temps: spill the one used furthest away.
        let (victim_reg, victim_temp) = pool
            .iter()
            .filter_map(|r| match self.reg_state[r] {
                RegUse::Temp(t) if !forbid.contains(&t) => Some((*r, t)),
                _ => None,
            })
            .max_by_key(|(_, t)| self.last_use.get(t).copied().unwrap_or(0))
            .expect("pool has evictable temps");
        // The pool holds at most `POOL.len()` temps, each spillable once,
        // and slots are recycled on reload/death — pressure can never
        // exhaust `SPILL_SLOTS` (16) while the pool is ≥ 2 wide.
        debug_assert!(
            self.free_slots.len() <= SPILL_SLOTS as usize,
            "spill slot bookkeeping overflowed SPILL_SLOTS"
        );
        let slot = self.free_slots.pop().expect("out of spill slots");
        let m = self.spill_mem(slot);
        self.emit(X86Instr::Mov { dst: Operand::Mem(m), src: Operand::Reg(victim_reg) });
        self.temp_loc.insert(victim_temp, TLoc::Spill(slot));
        self.reg_state.insert(victim_reg, RegUse::Free);
        victim_reg
    }

    /// The home register for a guest register, loading it if requested.
    fn guest_home(&mut self, g: ArmReg, load: bool) -> Option<Gpr> {
        if !self.home_caching {
            return None;
        }
        if let Some(r) = self.home.get(&g) {
            return Some(*r);
        }
        // Only cache if a register is free or a home can be evicted —
        // avoid thrashing temps.
        let has_room = POOL[..self.pool_limit]
            .iter()
            .any(|r| matches!(self.reg_state[r], RegUse::Free | RegUse::Home(_)));
        if !has_room {
            return None;
        }
        let r = self.grab_reg(&[]);
        self.reg_state.insert(r, RegUse::Home(g));
        self.home.insert(g, r);
        self.dirty.insert(g, false);
        if load {
            self.emit(X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Mem(reg_mem(g)) });
        }
        Some(r)
    }

    /// Materialize a temp into a pool register, un-spilling it if needed.
    /// `forbid` protects other operands of the current op from eviction.
    fn unspill(&mut self, t: Temp, forbid: &[Temp]) -> Gpr {
        match self.temp_loc.get(&t).copied() {
            Some(TLoc::Reg(r)) => r,
            Some(TLoc::Spill(slot)) => {
                let r = self.grab_reg(forbid);
                let m = self.spill_mem(slot);
                self.emit(X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Mem(m) });
                self.reg_state.insert(r, RegUse::Temp(t));
                self.temp_loc.insert(t, TLoc::Reg(r));
                self.free_slots.push(slot);
                r
            }
            None => panic!("use of undefined temp {t:?}"),
        }
    }

    /// A source operand for a temp (spills stay in memory).
    fn temp_operand(&self, t: Temp) -> Operand {
        match self.temp_loc.get(&t).copied() {
            Some(TLoc::Reg(r)) => Operand::Reg(r),
            Some(TLoc::Spill(slot)) => Operand::Mem(self.spill_mem(slot)),
            None => panic!("use of undefined temp {t:?}"),
        }
    }

    /// Allocate a register for a temp definition.
    fn def_temp(&mut self, t: Temp, forbid: &[Temp]) -> Gpr {
        let r = self.grab_reg(forbid);
        self.reg_state.insert(r, RegUse::Temp(t));
        self.temp_loc.insert(t, TLoc::Reg(r));
        r
    }

    /// Release temps whose last use has passed.
    fn expire(&mut self, idx: usize) {
        let dead: Vec<Temp> = self
            .temp_loc
            .keys()
            .copied()
            .filter(|t| self.last_use.get(t).copied().unwrap_or(0) <= idx)
            .collect();
        for t in dead {
            match self.temp_loc.remove(&t) {
                Some(TLoc::Reg(r)) if self.reg_state[&r] == RegUse::Temp(t) => {
                    self.reg_state.insert(r, RegUse::Free);
                }
                Some(TLoc::Spill(slot)) => self.free_slots.push(slot),
                Some(TLoc::Reg(_)) | None => {}
            }
        }
    }

    fn writeback_all(&mut self) {
        let mut dirty: Vec<(ArmReg, Gpr)> = self
            .home
            .iter()
            .filter(|(g, _)| self.dirty.get(g).copied().unwrap_or(false))
            .map(|(g, r)| (*g, *r))
            .collect();
        dirty.sort_by_key(|(g, _)| g.index());
        for (g, r) in dirty {
            self.emit(X86Instr::Mov { dst: Operand::Mem(reg_mem(g)), src: Operand::Reg(r) });
        }
    }

    fn lower_op(&mut self, op: &TcgOp, idx: usize) {
        self.cur = idx;
        match *op {
            TcgOp::MovI(d, v) => {
                let r = self.def_temp(d, &[]);
                self.emit(X86Instr::mov_imm(r, v as i32));
            }
            TcgOp::Mov(d, s) => {
                let r = self.def_temp(d, &[s]);
                let src = self.temp_operand(s);
                self.emit(X86Instr::Mov { dst: Operand::Reg(r), src });
            }
            TcgOp::Alu(aop, d, a, b) => {
                let sa = self.unspill(a, &[b]);
                let r = self.def_temp(d, &[a, b]);
                if r != sa {
                    self.emit(X86Instr::mov_rr(r, sa));
                }
                let sb = self.temp_operand(b);
                match aop {
                    TcgAlu::Shl | TcgAlu::Lshr | TcgAlu::Ashr => {
                        unreachable!("variable shift in TCG stream")
                    }
                    TcgAlu::Mul => self.emit(X86Instr::Imul { dst: r, src: sb }),
                    _ => {
                        let x86op = match aop {
                            TcgAlu::Add => AluOp::Add,
                            TcgAlu::Sub => AluOp::Sub,
                            TcgAlu::And => AluOp::And,
                            TcgAlu::Or => AluOp::Or,
                            TcgAlu::Xor => AluOp::Xor,
                            _ => unreachable!(),
                        };
                        self.emit(X86Instr::Alu { op: x86op, dst: Operand::Reg(r), src: sb });
                    }
                }
            }
            TcgOp::AluI(aop, d, a, imm) => {
                let sa = self.unspill(a, &[]);
                let r = self.def_temp(d, &[a]);
                if r != sa {
                    self.emit(X86Instr::mov_rr(r, sa));
                }
                match aop {
                    TcgAlu::Shl | TcgAlu::Lshr | TcgAlu::Ashr => {
                        let sop = match aop {
                            TcgAlu::Shl => ShiftOp::Shl,
                            TcgAlu::Lshr => ShiftOp::Shr,
                            _ => ShiftOp::Sar,
                        };
                        let count = (imm & 31) as u8;
                        if count != 0 {
                            self.emit(X86Instr::Shift { op: sop, dst: Operand::Reg(r), count });
                        }
                    }
                    TcgAlu::Mul => {
                        self.emit(X86Instr::mov_imm(Gpr::Eax, imm as i32));
                        self.emit(X86Instr::Imul { dst: r, src: Operand::Reg(Gpr::Eax) });
                    }
                    _ => {
                        let x86op = match aop {
                            TcgAlu::Add => AluOp::Add,
                            TcgAlu::Sub => AluOp::Sub,
                            TcgAlu::And => AluOp::And,
                            TcgAlu::Or => AluOp::Or,
                            TcgAlu::Xor => AluOp::Xor,
                            _ => unreachable!(),
                        };
                        self.emit(X86Instr::alu_ri(x86op, r, imm as i32));
                    }
                }
            }
            TcgOp::Not(d, a) => {
                let sa = self.unspill(a, &[]);
                let r = self.def_temp(d, &[a]);
                if r != sa {
                    self.emit(X86Instr::mov_rr(r, sa));
                }
                self.emit(X86Instr::Un { op: UnOp::Not, dst: Operand::Reg(r) });
            }
            TcgOp::Neg(d, a) => {
                let sa = self.unspill(a, &[]);
                let r = self.def_temp(d, &[a]);
                if r != sa {
                    self.emit(X86Instr::mov_rr(r, sa));
                }
                self.emit(X86Instr::Un { op: UnOp::Neg, dst: Operand::Reg(r) });
            }
            TcgOp::Setc(d, cond, a, b) => {
                let sa = self.unspill(a, &[b]);
                let sb = self.temp_operand(b);
                self.emit(X86Instr::Alu { op: AluOp::Cmp, dst: Operand::Reg(sa), src: sb });
                // setcc needs a byte register; go through %eax (movs and
                // register shuffles below do not touch EFLAGS).
                self.emit(X86Instr::mov_imm(Gpr::Eax, 0));
                self.emit(X86Instr::Setcc { cc: cc_of(cond), dst: Gpr::Eax });
                let r = self.def_temp(d, &[]);
                self.emit(X86Instr::mov_rr(r, Gpr::Eax));
            }
            TcgOp::GetReg(d, g) => match self.guest_home(g, true) {
                Some(h) => {
                    let r = self.def_temp(d, &[]);
                    self.emit(X86Instr::mov_rr(r, h));
                }
                None => {
                    let r = self.def_temp(d, &[]);
                    self.emit(X86Instr::Mov {
                        dst: Operand::Reg(r),
                        src: Operand::Mem(reg_mem(g)),
                    });
                }
            },
            TcgOp::PutReg(g, s) => {
                let src = self.unspill(s, &[]);
                match self.home.get(&g).copied() {
                    Some(h) => {
                        if h != src {
                            self.emit(X86Instr::mov_rr(h, src));
                        }
                        self.dirty.insert(g, true);
                    }
                    None => match self.guest_home(g, false) {
                        Some(h) => {
                            self.emit(X86Instr::mov_rr(h, src));
                            self.dirty.insert(g, true);
                        }
                        None => {
                            self.emit(X86Instr::Mov {
                                dst: Operand::Mem(reg_mem(g)),
                                src: Operand::Reg(src),
                            });
                        }
                    },
                }
            }
            TcgOp::GetFlag(d, f) => {
                let r = self.def_temp(d, &[]);
                self.emit(X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Mem(flag_mem(f)) });
            }
            TcgOp::PutFlag(f, s) => {
                let src = self.unspill(s, &[]);
                self.emit(X86Instr::Mov { dst: Operand::Mem(flag_mem(f)), src: Operand::Reg(src) });
            }
            TcgOp::Load(d, a, width, signed) => {
                let base = self.unspill(a, &[]);
                let r = self.def_temp(d, &[a]);
                let m = X86Mem::base(base);
                match width {
                    Width::W32 => {
                        self.emit(X86Instr::Mov { dst: Operand::Reg(r), src: Operand::Mem(m) })
                    }
                    w => self.emit(X86Instr::Movx {
                        sign: signed,
                        width: w,
                        dst: r,
                        src: Operand::Mem(m),
                    }),
                }
            }
            TcgOp::Store(s, a, width) => {
                let val = self.unspill(s, &[a]);
                let base = self.unspill(a, &[s]);
                match width {
                    Width::W32 => self.emit(X86Instr::Mov {
                        dst: Operand::Mem(X86Mem::base(base)),
                        src: Operand::Reg(val),
                    }),
                    w => {
                        let src = if val.low8_name().is_some() || w == Width::W16 {
                            val
                        } else {
                            self.emit(X86Instr::mov_rr(Gpr::Eax, val));
                            Gpr::Eax
                        };
                        self.emit(X86Instr::MovStore { width: w, src, dst: X86Mem::base(base) });
                    }
                }
            }
        }
    }
}

/// The flag-materialization prologue for blocks that read live-in guest
/// flags (see module docs). Ends just before the block body.
fn flag_stub(code: &mut Vec<X86Instr>) {
    let start = code.len();
    code.push(X86Instr::Alu {
        op: AluOp::Cmp,
        dst: Operand::Mem(env_mem(FLAGMODE_OFFSET)),
        src: Operand::Imm(0),
    });
    //

    // Patched below to skip the stub when flag-mode is 0.
    code.push(X86Instr::Jcc { cc: Cc::E, target: 0 });
    let je_at = code.len() - 1;
    code.push(X86Instr::Mov {
        dst: Operand::Reg(Gpr::Ecx),
        src: Operand::Mem(env_mem(FLAGMODE_OFFSET)),
    });
    code.push(X86Instr::Push { src: Operand::Mem(env_mem(HOSTFLAGS_OFFSET)) });
    code.push(X86Instr::Popfd);
    let set = |code: &mut Vec<X86Instr>, cc: Cc, f: FlagId| {
        code.push(X86Instr::mov_imm(Gpr::Eax, 0));
        code.push(X86Instr::Setcc { cc, dst: Gpr::Eax });
        code.push(X86Instr::Mov { dst: Operand::Mem(flag_mem(f)), src: Operand::Reg(Gpr::Eax) });
    };
    set(code, Cc::S, FlagId::N);
    set(code, Cc::E, FlagId::Z);
    set(code, Cc::O, FlagId::V);
    // Carry: polarity bit 1 of the saved mode decides CF vs ¬CF.
    code.push(X86Instr::mov_imm(Gpr::Eax, 0));
    code.push(X86Instr::Setcc { cc: Cc::B, dst: Gpr::Eax });
    code.push(X86Instr::Alu { op: AluOp::Test, dst: Operand::Reg(Gpr::Ecx), src: Operand::Imm(2) });
    code.push(X86Instr::Jcc { cc: Cc::Ne, target: 1 }); // skip the invert
    code.push(X86Instr::alu_ri(AluOp::Xor, Gpr::Eax, 1));
    code.push(X86Instr::Mov {
        dst: Operand::Mem(flag_mem(FlagId::C)),
        src: Operand::Reg(Gpr::Eax),
    });
    code.push(X86Instr::Mov { dst: Operand::Mem(env_mem(FLAGMODE_OFFSET)), src: Operand::Imm(0) });
    // Patch the skip target.
    let end = code.len();
    let skip = (end - je_at - 1) as i32;
    if let X86Instr::Jcc { target, .. } = &mut code[je_at] {
        *target = skip;
    }
    let _ = start;
}

/// Host code for one block plus its direct-exit metadata.
///
/// `exits` lists every patchable direct exit as `(ret_index, target_pc)`
/// — the `Ret` whose preceding `mov $pc, %eax` names a statically known
/// successor. The engine's block chainer patches exactly these sites
/// and nothing else; exits are declared here, at lowering time, because
/// pattern-matching `mov/ret` pairs after the fact cannot distinguish a
/// genuine exit stub from a coincidental literal `mov` into `%eax`
/// before an indirect return.
#[derive(Debug, Clone)]
pub struct LoweredBlock {
    pub code: Vec<X86Instr>,
    pub exits: Vec<(usize, u32)>,
}

/// Lower a TCG block to host code.
pub fn lower_block(block: &TcgBlock) -> LoweredBlock {
    lower_block_opts(block, true, POOL.len())
}

/// [`lower_block`] with explicit control over guest-register home
/// caching and the register-pool size (the JIT path shrinks the pool).
pub fn lower_block_opts(block: &TcgBlock, home_caching: bool, pool_limit: usize) -> LoweredBlock {
    let mut l = Lowerer::new(block);
    l.home_caching = home_caching;
    l.pool_limit = pool_limit.clamp(2, POOL.len());
    if block.reads_live_in_flags {
        flag_stub(&mut l.code);
    }
    if block.writes_flags {
        l.emit(X86Instr::Mov { dst: Operand::Mem(env_mem(FLAGMODE_OFFSET)), src: Operand::Imm(0) });
    }
    for (idx, op) in block.ops.iter().enumerate() {
        l.lower_op(op, idx);
        l.expire(idx);
    }
    // Terminator. Direct exits (Jump, both Branch arms) are recorded as
    // they are emitted; an Indirect return deliberately is not, even
    // though it ends in `mov %eax; ret` too.
    let mut exits = Vec::new();
    match block.end {
        BlockEnd::Jump(pc) => {
            l.writeback_all();
            l.emit(X86Instr::mov_imm(Gpr::Eax, pc as i32));
            exits.push((l.code.len(), pc));
            l.emit(X86Instr::Ret);
        }
        BlockEnd::Halt => {
            l.writeback_all();
            l.emit(X86Instr::Halt);
        }
        BlockEnd::Trap(pc) => {
            // Precise trap: every dirty guest register reaches its env
            // home before the sentinel; %eax carries the trapping PC.
            l.writeback_all();
            l.emit(X86Instr::mov_imm(Gpr::Eax, pc as i32));
            l.emit(X86Instr::Trap);
        }
        BlockEnd::Indirect(t) => {
            let src = l.temp_operand(t);
            l.writeback_all();
            l.emit(X86Instr::Mov { dst: Operand::Reg(Gpr::Eax), src });
            l.emit(X86Instr::Ret);
        }
        BlockEnd::Branch { cond, taken, not_taken } => {
            let c = l.temp_operand(cond);
            l.writeback_all();
            l.emit(X86Instr::Alu { op: AluOp::Cmp, dst: c, src: Operand::Imm(0) });
            l.emit(X86Instr::Jcc { cc: Cc::Ne, target: 2 });
            l.emit(X86Instr::mov_imm(Gpr::Eax, not_taken as i32));
            exits.push((l.code.len(), not_taken));
            l.emit(X86Instr::Ret);
            l.emit(X86Instr::mov_imm(Gpr::Eax, taken as i32));
            exits.push((l.code.len(), taken));
            l.emit(X86Instr::Ret);
        }
    }
    LoweredBlock { code: l.code, exits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ENV_BASE;
    use crate::tcg::{translate_block, GuestBlock};
    use ldbt_arm::{ArmInstr, Cond, DpOp, Operand2};
    use ldbt_isa::{CostModel, ExecStats, Memory};
    use ldbt_x86::interp::{run_seq, SeqExit};
    use ldbt_x86::X86State;

    fn run_block(
        instrs: Vec<ArmInstr>,
        setup: impl FnOnce(&mut Memory),
    ) -> (X86State, SeqExit, Vec<X86Instr>) {
        let block = GuestBlock { pc: 0x1_0000, instrs };
        let mem = Memory::new();
        let tcg = translate_block(&mem, &block);
        assert_eq!(tcg.unsupported_at, None);
        let code = lower_block(&tcg).code;
        let mut st = X86State::new();
        st.set_reg(Gpr::Esp, crate::env::HOST_STACK_TOP);
        setup(&mut st.mem);
        let mut stats = ExecStats::new();
        let exit = run_seq(&mut st, &code, 10_000, &CostModel::default(), &mut stats);
        (st, exit, code)
    }

    fn set_guest_reg(mem: &mut Memory, r: ArmReg, v: u32) {
        mem.write(ENV_BASE + 4 * r.index() as u32, v, Width::W32);
    }

    fn guest_reg(st: &X86State, r: ArmReg) -> u32 {
        st.mem.read(ENV_BASE + 4 * r.index() as u32, Width::W32)
    }

    #[test]
    fn add_block_updates_env() {
        let (st, exit, _) = run_block(
            vec![ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0))],
            |mem| {
                set_guest_reg(mem, ArmReg::R0, 5);
                set_guest_reg(mem, ArmReg::R1, 7);
            },
        );
        assert_eq!(exit, SeqExit::Returned);
        assert_eq!(st.reg(Gpr::Eax), 0x1_0004, "next pc");
        assert_eq!(guest_reg(&st, ArmReg::R1), 12);
        assert_eq!(guest_reg(&st, ArmReg::R0), 5);
    }

    #[test]
    fn cmp_branch_block_sets_flags_and_selects_target() {
        let instrs = vec![
            ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)),
            ArmInstr::B { offset: 3, cond: Cond::Ne },
        ];
        let (st, exit, _) = run_block(instrs.clone(), |mem| {
            set_guest_reg(mem, ArmReg::R2, 1);
            set_guest_reg(mem, ArmReg::R3, 2);
        });
        assert_eq!(exit, SeqExit::Returned);
        // taken: next(0x10008) + 3*4 = 0x10014.
        assert_eq!(st.reg(Gpr::Eax), 0x1_0014);
        let (st2, _, _) = run_block(instrs, |mem| {
            set_guest_reg(mem, ArmReg::R2, 2);
            set_guest_reg(mem, ArmReg::R3, 2);
        });
        assert_eq!(st2.reg(Gpr::Eax), 0x1_0008, "fall through when equal");
    }

    #[test]
    fn flag_slots_materialized() {
        // cmp writes NZCV env slots when the flags are live out
        // (conservative here because the block ends with a return-like bx).
        let (st, _, _) = run_block(
            vec![
                ArmInstr::cmp(ArmReg::R2, Operand2::Imm(5)),
                ArmInstr::Bx { rm: ArmReg::Lr, cond: Cond::Al },
            ],
            |mem| {
                set_guest_reg(mem, ArmReg::R2, 3);
                set_guest_reg(mem, ArmReg::Lr, 0x2_0000);
            },
        );
        assert_eq!(st.reg(Gpr::Eax), 0x2_0000, "indirect exit to lr");
        // 3 - 5: N=1 Z=0 C=0 (borrow) V=0.
        assert_eq!(st.mem.read(ENV_BASE + FlagId::N.offset(), Width::W32), 1);
        assert_eq!(st.mem.read(ENV_BASE + FlagId::Z.offset(), Width::W32), 0);
        assert_eq!(st.mem.read(ENV_BASE + FlagId::C.offset(), Width::W32), 0);
        assert_eq!(st.mem.read(ENV_BASE + FlagId::V.offset(), Width::W32), 0);
    }

    #[test]
    fn dead_flags_not_materialized() {
        // cmp followed in-block by bne: only Z is consumed, and the branch
        // targets immediately redefine all flags with another cmp — so
        // N/C/V must be pruned.
        let mut mem = Memory::new();
        // Place `cmp r0, #0; svc` at both targets so the liveness scan
        // sees a full redefinition.
        let cmp = ldbt_arm::encode::encode(&ArmInstr::cmp(ArmReg::R0, Operand2::Imm(0))).unwrap();
        let svc = ldbt_arm::encode::encode(&ArmInstr::Svc { imm: 0, cond: Cond::Al }).unwrap();
        for base in [0x1_0008u32, 0x1_0014] {
            mem.write(base, cmp, Width::W32);
            mem.write(base + 4, svc, Width::W32);
        }
        let block = GuestBlock {
            pc: 0x1_0000,
            instrs: vec![
                ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)),
                ArmInstr::B { offset: 3, cond: Cond::Ne },
            ],
        };
        let tcg = translate_block(&mem, &block);
        let flag_puts = tcg.ops.iter().filter(|o| matches!(o, TcgOp::PutFlag(_, _))).count();
        assert_eq!(flag_puts, 1, "only Z materialized: {:?}", tcg.ops);
    }

    #[test]
    fn load_store_block() {
        let (st, _, _) = run_block(
            vec![
                ArmInstr::ldr(ArmReg::R0, ldbt_arm::AddrMode::Imm(ArmReg::R1, 4)),
                ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Imm(1)),
                ArmInstr::str(ArmReg::R0, ldbt_arm::AddrMode::Imm(ArmReg::R1, 8)),
            ],
            |mem| {
                set_guest_reg(mem, ArmReg::R1, 0x8000);
                mem.write(0x8004, 41, Width::W32);
            },
        );
        assert_eq!(st.mem.read(0x8008, Width::W32), 42);
        assert_eq!(guest_reg(&st, ArmReg::R0), 42);
    }

    #[test]
    fn sub_word_accesses() {
        let (st, _, _) = run_block(
            vec![
                ArmInstr::Ldr {
                    rt: ArmReg::R0,
                    addr: ldbt_arm::AddrMode::Imm(ArmReg::R1, 0),
                    width: Width::W8,
                    signed: true,
                    cond: Cond::Al,
                },
                ArmInstr::Str {
                    rt: ArmReg::R0,
                    addr: ldbt_arm::AddrMode::Imm(ArmReg::R1, 4),
                    width: Width::W8,
                    cond: Cond::Al,
                },
            ],
            |mem| {
                set_guest_reg(mem, ArmReg::R1, 0x8000);
                mem.write(0x8000, 0x80, Width::W8);
                mem.write(0x8004, 0xffff_ffff, Width::W32);
            },
        );
        assert_eq!(guest_reg(&st, ArmReg::R0), 0xffff_ff80, "sign extended");
        assert_eq!(st.mem.read(0x8004, Width::W32), 0xffff_ff80);
    }

    #[test]
    fn predicated_mov_via_select() {
        // movne r0, #9 with Z=1 (not taken) and Z=0 (taken).
        let instr = ArmInstr::Dp {
            op: DpOp::Mov,
            rd: ArmReg::R0,
            rn: ArmReg::R0,
            op2: Operand2::Imm(9),
            set_flags: false,
            cond: Cond::Ne,
        };
        let (st, _, _) = run_block(vec![instr], |mem| {
            set_guest_reg(mem, ArmReg::R0, 1);
            mem.write(ENV_BASE + FlagId::Z.offset(), 1, Width::W32);
        });
        assert_eq!(guest_reg(&st, ArmReg::R0), 1, "suppressed");
        let (st2, _, _) = run_block(vec![instr], |mem| {
            set_guest_reg(mem, ArmReg::R0, 1);
            mem.write(ENV_BASE + FlagId::Z.offset(), 0, Width::W32);
        });
        assert_eq!(guest_reg(&st2, ArmReg::R0), 9, "executed");
    }

    /// Regression for the spill bookkeeping assertion in `grab_reg`: an
    /// adversarial block keeping more than the 6 pool registers' worth of
    /// guest state live, lowered at the narrowest legal pool, must stay
    /// within `SPILL_SLOTS` — every spill reference the lowered code
    /// makes has to land inside the env spill area, and the debug
    /// assertion (active in test builds) must not fire.
    #[test]
    fn spill_pressure_never_exceeds_spill_slots() {
        // 13 guest registers, each read and written, with every result
        // depending on a neighbor so homes stay live across the block.
        let mut instrs = Vec::new();
        for i in 0..13usize {
            instrs.push(ArmInstr::dp(
                DpOp::Add,
                ArmReg::from_index(i),
                ArmReg::from_index(i),
                Operand2::Reg(ArmReg::from_index((i + 1) % 13)),
            ));
        }
        let block = GuestBlock { pc: 0x1_0000, instrs };
        let mem = Memory::new();
        let tcg = translate_block(&mem, &block);
        assert_eq!(tcg.unsupported_at, None);
        // A 2-wide pool is below the allocator's floor: a two-operand ALU
        // can pin both pool registers via `forbid`, leaving no evictable
        // victim. Three registers is the narrowest legal pool.
        for pool_limit in [3, 4, POOL.len()] {
            let code = lower_block_opts(&tcg, true, pool_limit).code;
            let spill_lo = ENV_BASE + SPILL_OFFSET;
            let spill_hi = spill_lo + 4 * SPILL_SLOTS;
            for ins in &code {
                let mems: Vec<X86Mem> = match *ins {
                    X86Instr::Mov { dst: Operand::Mem(m), .. }
                    | X86Instr::Mov { src: Operand::Mem(m), .. }
                    | X86Instr::Alu { dst: Operand::Mem(m), .. }
                    | X86Instr::Alu { src: Operand::Mem(m), .. } => vec![m],
                    _ => vec![],
                };
                for m in mems {
                    let a = m.disp as u32;
                    if m.base.is_none() && a >= spill_lo {
                        assert!(
                            a < spill_hi,
                            "spill reference {a:#x} beyond SPILL_SLOTS in {ins:?}"
                        );
                    }
                }
            }
            // The block still computes the right values at this pressure.
            let mut st = X86State::new();
            st.set_reg(Gpr::Esp, crate::env::HOST_STACK_TOP);
            for i in 0..13usize {
                set_guest_reg(&mut st.mem, ArmReg::from_index(i), 100 * i as u32);
            }
            let mut stats = ExecStats::new();
            let exit = run_seq(&mut st, &code, 10_000, &CostModel::default(), &mut stats);
            assert_eq!(exit, SeqExit::Returned, "pool_limit={pool_limit}");
            // Expected values come from simulating the sequence: r12 reads
            // r0 *after* instruction 0 already rewrote it.
            let mut want = [0u32; 13];
            for (i, w) in want.iter_mut().enumerate() {
                *w = 100 * i as u32;
            }
            for i in 0..13usize {
                want[i] = want[i].wrapping_add(want[(i + 1) % 13]);
            }
            for (i, w) in want.iter().enumerate() {
                assert_eq!(
                    guest_reg(&st, ArmReg::from_index(i)),
                    *w,
                    "r{i} at pool_limit={pool_limit}"
                );
            }
        }
    }

    #[test]
    fn many_guest_regs_force_eviction() {
        // Touch 9 distinct guest registers; pool has 6.
        let mut instrs = Vec::new();
        for i in 0..9 {
            instrs.push(ArmInstr::dp(
                DpOp::Add,
                ArmReg::from_index(i),
                ArmReg::from_index(i),
                Operand2::Imm(i as u32 + 1),
            ));
        }
        let (st, exit, _) = run_block(instrs, |mem| {
            for i in 0..9 {
                set_guest_reg(mem, ArmReg::from_index(i), 100 * i as u32);
            }
        });
        assert_eq!(exit, SeqExit::Returned);
        for i in 0..9 {
            assert_eq!(
                guest_reg(&st, ArmReg::from_index(i)),
                100 * i as u32 + i as u32 + 1,
                "r{i}"
            );
        }
    }

    #[test]
    fn flag_stub_materializes_saved_host_flags() {
        // A block that reads live-in flags (bne at block start) with
        // flag-mode = 1 and saved host EFLAGS where ZF=0.
        let block =
            GuestBlock { pc: 0x1_0000, instrs: vec![ArmInstr::B { offset: 3, cond: Cond::Ne }] };
        let mem = Memory::new();
        let tcg = translate_block(&mem, &block);
        assert!(tcg.reads_live_in_flags);
        let code = lower_block(&tcg).code;
        let mut st = X86State::new();
        st.set_reg(Gpr::Esp, crate::env::HOST_STACK_TOP);
        // Saved flags: ZF clear (so NE holds), mode=1, sub polarity.
        st.mem.write(ENV_BASE + HOSTFLAGS_OFFSET, 0, Width::W32);
        st.mem.write(ENV_BASE + FLAGMODE_OFFSET, 1, Width::W32);
        let mut stats = ExecStats::new();
        let exit = run_seq(&mut st, &code, 10_000, &CostModel::default(), &mut stats);
        assert_eq!(exit, SeqExit::Returned);
        assert_eq!(st.reg(Gpr::Eax), 0x1_0010, "branch taken (ZF=0 → ne)");
        assert_eq!(
            st.mem.read(ENV_BASE + FLAGMODE_OFFSET, Width::W32),
            0,
            "mode reset after materialization"
        );
        assert_eq!(
            st.mem.read(ENV_BASE + FlagId::C.offset(), Width::W32),
            1,
            "sub polarity: CF=0 → ARM C=1"
        );
    }

    /// The scratch-register invariant the superblock optimizer depends
    /// on (sb.rs): lowered blocks communicate only through the env and
    /// %esp — they must never *read* a host register or EFLAGS bit left
    /// behind by the previous block. `entry_reads` computes the code's
    /// dependence on host entry state by backward liveness; anything but
    /// %esp here would make cross-seam dead-code elimination unsound.
    #[test]
    fn lowered_blocks_read_no_host_entry_state() {
        let shapes: Vec<(&str, Vec<ArmInstr>)> = vec![
            (
                "dp",
                vec![ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0))],
            ),
            (
                "cmp+branch",
                vec![
                    ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3)),
                    ArmInstr::B { offset: 3, cond: Cond::Ne },
                ],
            ),
            (
                "mem",
                vec![
                    ArmInstr::ldr(ArmReg::R0, ldbt_arm::AddrMode::Imm(ArmReg::R1, 4)),
                    ArmInstr::str(ArmReg::R0, ldbt_arm::AddrMode::Imm(ArmReg::R1, 8)),
                ],
            ),
            (
                "flag-setting",
                vec![
                    ArmInstr::dps(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Imm(1)),
                    ArmInstr::B { offset: 2, cond: Cond::Eq },
                ],
            ),
        ];
        for (name, instrs) in shapes {
            let block = GuestBlock { pc: 0x1_0000, instrs };
            let mem = Memory::new();
            let code = lower_block(&translate_block(&mem, &block)).code;
            let (regs, flags) = crate::sb::entry_reads(&code);
            assert_eq!(regs & !(1 << Gpr::Esp.index()), 0, "{name}: reads host regs {regs:#010b}");
            assert_eq!(flags, 0, "{name}: reads host EFLAGS {flags:#06b}");
        }
    }
}
