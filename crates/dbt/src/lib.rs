#![forbid(unsafe_code)]
//! The cross-ISA dynamic binary translator (the QEMU stand-in).
//!
//! A block-at-a-time ARM→x86 DBT with three interchangeable translators:
//!
//! * [`tcg`]/[`backend`] — the baseline: each guest instruction expands
//!   into TCG-like micro-ops which the backend lowers to host code, with
//!   the guest register file held in host memory (the `env`, see [`mod@env`])
//!   and condition codes materialized into env slots,
//! * [`rules`] — the paper's contribution: learned rules translate
//!   maximal guest sequences directly to host code, cooperating with the
//!   register allocator and the condition-code scheme of §5 (host-flag
//!   save, flag-mode dispatch, liveness screening of unemulated flags),
//! * [`jit`] — an HQEMU-style optimizing backend: the same TCG stream is
//!   cleaned up (value numbering, dead get/put removal) before lowering,
//!   at a much higher modeled translation cost.
//!
//! The [`engine`] owns the code cache and the dispatcher (QEMU
//! convention: a translated block returns the next guest PC in `%eax`)
//! and runs translated code on the `ldbt-x86` interpreter, accumulating
//! the cycle-model statistics every experiment consumes.

pub mod backend;
pub mod engine;
pub mod env;
pub mod jit;
pub mod rules;
pub mod sb;
pub mod share;
pub mod stats;
pub mod tcg;

pub use engine::{Engine, RunOutcome, Translator, TrapKind};
pub use share::RuleCell;
pub use stats::{BlockProfile, DbtStats, ExecProfile, RuleProfile};
