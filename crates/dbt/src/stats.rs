//! DBT-level statistics: everything Figures 8–12 are computed from.

use ldbt_isa::ExecStats;
use std::collections::HashMap;

/// Statistics accumulated by an [`crate::Engine`] run.
#[derive(Debug, Clone, Default)]
pub struct DbtStats {
    /// Host-side dynamic execution statistics (instructions, cycles,
    /// translation cycles).
    pub exec: ExecStats,
    /// Dynamic guest instructions emulated.
    pub guest_dyn: u64,
    /// Dynamic guest instructions emulated through learned rules
    /// (`Σ Fᵢ·Bᵢ` in the paper's coverage definition).
    pub guest_dyn_covered: u64,
    /// Static guest instructions translated (`m`).
    pub guest_static: u64,
    /// Static guest instructions covered by rules (`Σ Bᵢ`).
    pub guest_static_covered: u64,
    /// Blocks translated.
    pub blocks: u64,
    /// Block dispatches executed.
    pub block_execs: u64,
    /// Guest instructions emulated by the interpreter helper.
    pub helper_steps: u64,
    /// Rule-match hash lookups performed during translation.
    pub rule_lookups: u64,
    /// Distinct rules hit at least once: stable key → rule length.
    pub hit_rules: HashMap<u64, usize>,
    /// Watchdog differential cross-checks performed (`LDBT_WATCHDOG`).
    pub watchdog_checks: u64,
    /// Rules quarantined by the watchdog after a state mismatch.
    pub quarantined_rules: u64,
    /// Dispatcher lookups served by the indirect-branch target cache.
    pub ibtc_hits: u64,
    /// Dispatcher lookups that fell through to the map (or translator).
    pub ibtc_misses: u64,
    /// Direct-branch exit stubs patched into chained jumps.
    pub chain_links: u64,
    /// Chained links severed by a quarantine purge.
    pub chain_unlinks: u64,
    /// Block entries reached through a chained jump (no dispatcher).
    pub chained_execs: u64,
}

impl DbtStats {
    /// Fresh statistics.
    pub fn new() -> Self {
        DbtStats::default()
    }

    /// Static rule coverage `Sₚ = Σ Bᵢ / m` (Figure 11).
    pub fn static_coverage(&self) -> f64 {
        if self.guest_static == 0 {
            0.0
        } else {
            self.guest_static_covered as f64 / self.guest_static as f64
        }
    }

    /// Dynamic rule coverage `Dₚ = Σ Fᵢ·Bᵢ / Σ Fᵢ` (Figure 11).
    pub fn dynamic_coverage(&self) -> f64 {
        if self.guest_dyn == 0 {
            0.0
        } else {
            self.guest_dyn_covered as f64 / self.guest_dyn as f64
        }
    }

    /// Histogram of hit-rule lengths (Figure 12): length → distinct rules.
    pub fn hit_length_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        for len in self.hit_rules.values() {
            *h.entry(*len).or_insert(0) += 1;
        }
        h
    }

    /// Total modeled time (translation + execution cycles).
    pub fn total_cycles(&self) -> u64 {
        self.exec.total_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_ratios() {
        let mut s = DbtStats::new();
        s.guest_static = 10;
        s.guest_static_covered = 6;
        s.guest_dyn = 1000;
        s.guest_dyn_covered = 850;
        assert!((s.static_coverage() - 0.6).abs() < 1e-12);
        assert!((s.dynamic_coverage() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn zero_division_safe() {
        let s = DbtStats::new();
        assert_eq!(s.static_coverage(), 0.0);
        assert_eq!(s.dynamic_coverage(), 0.0);
    }

    #[test]
    fn histogram_counts_distinct_rules() {
        let mut s = DbtStats::new();
        s.hit_rules.insert(1, 2);
        s.hit_rules.insert(2, 2);
        s.hit_rules.insert(3, 4);
        let h = s.hit_length_histogram();
        assert_eq!(h[&2], 2);
        assert_eq!(h[&4], 1);
    }
}
