//! DBT-level statistics: everything Figures 8–12 are computed from.
//!
//! The counters live in an [`ldbt_obs::registry::CounterBlock`] — a
//! `Cell`-backed, named-and-indexed registry — rather than loose struct
//! fields. That buys three things: bumps are `&self` (the dispatcher
//! borrows blocks and stats simultaneously without fighting the borrow
//! checker or allocating), the full counter set snapshots in one
//! declaration-ordered pass for `LDBT_STATS_JSON` run reports, and new
//! counters are one enum variant + one name, not a struct/consumer
//! sweep. Readers go through the named accessor methods below.

use ldbt_isa::ExecStats;
use ldbt_obs::registry::CounterBlock;
use std::collections::BTreeMap;

/// Registry index of every engine counter. Discriminants are indices
/// into [`DBT_COUNTER_NAMES`] / the counter block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum DbtCtr {
    /// Dynamic guest instructions emulated.
    GuestDyn = 0,
    /// Dynamic guest instructions emulated through learned rules
    /// (`Σ Fᵢ·Bᵢ` in the paper's coverage definition).
    GuestDynCovered,
    /// Static guest instructions translated (`m`).
    GuestStatic,
    /// Static guest instructions covered by rules (`Σ Bᵢ`).
    GuestStaticCovered,
    /// Blocks translated.
    Blocks,
    /// Block dispatches executed.
    BlockExecs,
    /// Guest instructions emulated by the interpreter helper.
    HelperSteps,
    /// Rule-match hash lookups performed during translation.
    RuleLookups,
    /// Watchdog differential cross-checks performed (`LDBT_WATCHDOG`).
    WatchdogChecks,
    /// Rules quarantined by the watchdog after a state mismatch.
    QuarantinedRules,
    /// Dispatcher lookups served by the indirect-branch target cache.
    IbtcHits,
    /// Dispatcher lookups that fell through to the map (or translator).
    IbtcMisses,
    /// Direct-branch exit stubs patched into chained jumps.
    ChainLinks,
    /// Chained links severed by a quarantine purge.
    ChainUnlinks,
    /// Block entries reached through a chained jump (no dispatcher).
    ChainedExecs,
    /// Superblock regions formed from hot chains.
    SbFormed,
    /// Block executions served from a superblock region part.
    SbExecs,
    /// Superblock regions invalidated (quarantine purge or re-patching
    /// of a member block).
    SbInvalidated,
    /// Watchdog mismatches attributed to a single rule by bisection
    /// replay (`LDBT_REPAIR`).
    WdAttributed,
    /// Rules tombstoned on the conservative path (attribution failed or
    /// was disabled while repair was on) — collateral quarantine, as
    /// opposed to [`DbtCtr::QuarantinedRules`] which counts attributed
    /// (or repair-off) quarantines only.
    WdCollateral,
    /// Counterexample-guided repair attempts started.
    WdRepairAttempts,
    /// Repairs that re-verified and were hot-published.
    WdRepaired,
    /// Repair attempts that failed (the rule stayed quarantined).
    WdRepairFailed,
    /// Guest register env slots promoted to pinned host registers by the
    /// region allocator (one per slot per formed region).
    RaPromoted,
    /// Guest memory accesses eliminated or paired by region fusion
    /// (store-to-load forwarding, redundant-load and dead-store
    /// elimination, narrow-store pairing).
    FuseElim,
    /// Translations invalidated for coherence: a guest store hit the
    /// block's byte range (self-modifying code), or reset-time
    /// revalidation found the guest bytes changed.
    SmcInvalidations,
    /// Guest traps surfaced to the driver: trap instruction (`svc #n`,
    /// n ≠ 0), undecodable word, or out-of-range memory access.
    Traps,
}

/// Registry names, in [`DbtCtr`] declaration order (the snapshot and
/// run-report order).
pub const DBT_COUNTER_NAMES: &[&str] = &[
    "guest_dyn",
    "guest_dyn_covered",
    "guest_static",
    "guest_static_covered",
    "blocks",
    "block_execs",
    "helper_steps",
    "rule_lookups",
    "watchdog_checks",
    "quarantined_rules",
    "ibtc_hits",
    "ibtc_misses",
    "chain_links",
    "chain_unlinks",
    "chained_execs",
    "sb_formed",
    "sb_execs",
    "sb_invalidated",
    "wd_attributed",
    "wd_collateral",
    "wd_repair_attempts",
    "wd_repaired",
    "wd_repair_failed",
    "ra_promoted",
    "fuse_elim",
    "smc_invalidations",
    "traps",
];

/// Statistics accumulated by an [`crate::Engine`] run.
#[derive(Debug, Clone)]
pub struct DbtStats {
    /// Host-side dynamic execution statistics (instructions, cycles,
    /// translation cycles).
    pub exec: ExecStats,
    /// Distinct rules hit at least once: stable key → rule length.
    /// Ordered so every per-rule rendering (Figure 12, run reports) is
    /// deterministic.
    pub hit_rules: BTreeMap<u64, usize>,
    ctrs: CounterBlock,
}

impl Default for DbtStats {
    fn default() -> Self {
        DbtStats {
            exec: ExecStats::default(),
            hit_rules: BTreeMap::new(),
            ctrs: CounterBlock::new(DBT_COUNTER_NAMES),
        }
    }
}

impl DbtStats {
    /// Fresh statistics.
    pub fn new() -> Self {
        DbtStats::default()
    }

    /// Bump a counter by one. `&self`: counters are `Cell`s, so the
    /// dispatch hot path needs no `&mut` and allocates nothing.
    #[inline]
    pub fn bump(&self, c: DbtCtr) {
        self.ctrs.bump(c as usize);
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, c: DbtCtr, n: u64) {
        self.ctrs.add(c as usize, n);
    }

    /// Read a counter.
    #[inline]
    pub fn get(&self, c: DbtCtr) -> u64 {
        self.ctrs.get(c as usize)
    }

    /// The raw counter block (for folding a finished run into a shared
    /// cross-thread registry via `SharedCounters::absorb` — the
    /// serve-mode aggregation path). Host-side `exec` counters are not
    /// part of the block; see [`DbtStats::registry`].
    pub fn counters(&self) -> &CounterBlock {
        &self.ctrs
    }

    /// Declaration-ordered `(name, value)` snapshot of the registry,
    /// including the host-side execution counters.
    pub fn registry(&self) -> Vec<(&'static str, u64)> {
        let mut all = self.ctrs.snapshot();
        all.push(("host_instrs", self.exec.host_instrs));
        all.push(("exec_cycles", self.exec.exec_cycles));
        all.push(("translation_cycles", self.exec.translation_cycles));
        all.push(("mem_loads", self.exec.mem_loads));
        all.push(("mem_stores", self.exec.mem_stores));
        all
    }

    pub fn guest_dyn(&self) -> u64 {
        self.get(DbtCtr::GuestDyn)
    }
    pub fn guest_dyn_covered(&self) -> u64 {
        self.get(DbtCtr::GuestDynCovered)
    }
    pub fn guest_static(&self) -> u64 {
        self.get(DbtCtr::GuestStatic)
    }
    pub fn guest_static_covered(&self) -> u64 {
        self.get(DbtCtr::GuestStaticCovered)
    }
    pub fn blocks(&self) -> u64 {
        self.get(DbtCtr::Blocks)
    }
    pub fn block_execs(&self) -> u64 {
        self.get(DbtCtr::BlockExecs)
    }
    pub fn helper_steps(&self) -> u64 {
        self.get(DbtCtr::HelperSteps)
    }
    pub fn rule_lookups(&self) -> u64 {
        self.get(DbtCtr::RuleLookups)
    }
    pub fn watchdog_checks(&self) -> u64 {
        self.get(DbtCtr::WatchdogChecks)
    }
    pub fn quarantined_rules(&self) -> u64 {
        self.get(DbtCtr::QuarantinedRules)
    }
    pub fn ibtc_hits(&self) -> u64 {
        self.get(DbtCtr::IbtcHits)
    }
    pub fn ibtc_misses(&self) -> u64 {
        self.get(DbtCtr::IbtcMisses)
    }
    pub fn chain_links(&self) -> u64 {
        self.get(DbtCtr::ChainLinks)
    }
    pub fn chain_unlinks(&self) -> u64 {
        self.get(DbtCtr::ChainUnlinks)
    }
    pub fn chained_execs(&self) -> u64 {
        self.get(DbtCtr::ChainedExecs)
    }
    pub fn sb_formed(&self) -> u64 {
        self.get(DbtCtr::SbFormed)
    }
    pub fn sb_execs(&self) -> u64 {
        self.get(DbtCtr::SbExecs)
    }
    pub fn sb_invalidated(&self) -> u64 {
        self.get(DbtCtr::SbInvalidated)
    }
    pub fn wd_attributed(&self) -> u64 {
        self.get(DbtCtr::WdAttributed)
    }
    pub fn wd_collateral(&self) -> u64 {
        self.get(DbtCtr::WdCollateral)
    }
    pub fn wd_repair_attempts(&self) -> u64 {
        self.get(DbtCtr::WdRepairAttempts)
    }
    pub fn wd_repaired(&self) -> u64 {
        self.get(DbtCtr::WdRepaired)
    }
    pub fn wd_repair_failed(&self) -> u64 {
        self.get(DbtCtr::WdRepairFailed)
    }

    /// Guest register slots pinned to host registers by region allocation.
    pub fn ra_promoted(&self) -> u64 {
        self.get(DbtCtr::RaPromoted)
    }

    /// Guest memory accesses eliminated or paired by region fusion.
    pub fn fuse_elim(&self) -> u64 {
        self.get(DbtCtr::FuseElim)
    }

    /// Translations invalidated by guest stores or reset revalidation.
    pub fn smc_invalidations(&self) -> u64 {
        self.get(DbtCtr::SmcInvalidations)
    }

    /// Guest traps surfaced to the driver.
    pub fn traps(&self) -> u64 {
        self.get(DbtCtr::Traps)
    }

    /// Static rule coverage `Sₚ = Σ Bᵢ / m` (Figure 11).
    pub fn static_coverage(&self) -> f64 {
        if self.guest_static() == 0 {
            0.0
        } else {
            self.guest_static_covered() as f64 / self.guest_static() as f64
        }
    }

    /// Dynamic rule coverage `Dₚ = Σ Fᵢ·Bᵢ / Σ Fᵢ` (Figure 11).
    pub fn dynamic_coverage(&self) -> f64 {
        if self.guest_dyn() == 0 {
            0.0
        } else {
            self.guest_dyn_covered() as f64 / self.guest_dyn() as f64
        }
    }

    /// Histogram of hit-rule lengths (Figure 12): length → distinct
    /// rules, in ascending length order.
    pub fn hit_length_histogram(&self) -> BTreeMap<usize, usize> {
        let mut h = BTreeMap::new();
        for len in self.hit_rules.values() {
            *h.entry(*len).or_insert(0) += 1;
        }
        h
    }

    /// Total modeled time (translation + execution cycles).
    pub fn total_cycles(&self) -> u64 {
        self.exec.total_cycles()
    }
}

/// Per-rule execution attribution: one row per distinct rule hit in the
/// code cache, summed over the live blocks it was applied in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleProfile {
    /// Stable rule key (sort key of every rendering).
    pub key: u64,
    /// Rule length in guest instructions.
    pub len: usize,
    /// Live blocks the rule is applied in.
    pub blocks: u64,
    /// Executions of those blocks (dispatches + chained entries).
    pub execs: u64,
}

/// One hot block, by execution count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    pub pc: u32,
    pub execs: u64,
    pub guest_len: u64,
    /// Guest instructions of the block covered by rules.
    pub covered: u64,
}

/// Execution-hotness profile computed from the code-cache arena at
/// snapshot time (see `Engine::profile`) — attribution costs the
/// dispatch hot path nothing beyond the per-block `execs` counter it
/// already maintains.
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    /// Per-rule attribution, sorted by stable key.
    pub rules: Vec<RuleProfile>,
    /// The hottest live blocks (descending execs, pc tiebreak), capped
    /// at [`ExecProfile::HOT_BLOCKS`].
    pub hot_blocks: Vec<BlockProfile>,
    /// Log2 histogram of per-block execution counts: `hotness[i]` is
    /// the number of live blocks whose exec count has bit length `i`.
    pub hotness: Vec<u64>,
}

impl ExecProfile {
    /// Cap on the `hot_blocks` list.
    pub const HOT_BLOCKS: usize = 10;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_ratios() {
        let s = DbtStats::new();
        s.add(DbtCtr::GuestStatic, 10);
        s.add(DbtCtr::GuestStaticCovered, 6);
        s.add(DbtCtr::GuestDyn, 1000);
        s.add(DbtCtr::GuestDynCovered, 850);
        assert!((s.static_coverage() - 0.6).abs() < 1e-12);
        assert!((s.dynamic_coverage() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn zero_division_safe() {
        let s = DbtStats::new();
        assert_eq!(s.static_coverage(), 0.0);
        assert_eq!(s.dynamic_coverage(), 0.0);
    }

    #[test]
    fn histogram_counts_distinct_rules() {
        let mut s = DbtStats::new();
        s.hit_rules.insert(1, 2);
        s.hit_rules.insert(2, 2);
        s.hit_rules.insert(3, 4);
        let h = s.hit_length_histogram();
        assert_eq!(h[&2], 2);
        assert_eq!(h[&4], 1);
    }

    #[test]
    fn registry_snapshot_is_declaration_ordered_and_complete() {
        let s = DbtStats::new();
        s.bump(DbtCtr::Blocks);
        s.add(DbtCtr::ChainedExecs, 7);
        let snap = s.registry();
        assert_eq!(snap.len(), DBT_COUNTER_NAMES.len() + 5);
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        assert_eq!(&names[..DBT_COUNTER_NAMES.len()], DBT_COUNTER_NAMES);
        assert_eq!(snap[DbtCtr::Blocks as usize], ("blocks", 1));
        assert_eq!(snap[DbtCtr::ChainedExecs as usize], ("chained_execs", 7));
    }

    #[test]
    fn clone_snapshots_counter_state() {
        let s = DbtStats::new();
        s.bump(DbtCtr::IbtcHits);
        let t = s.clone();
        s.bump(DbtCtr::IbtcHits);
        assert_eq!(t.ibtc_hits(), 1);
        assert_eq!(s.ibtc_hits(), 2);
    }
}
