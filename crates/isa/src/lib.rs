#![forbid(unsafe_code)]
//! Shared ISA abstractions for the learned-DBT system.
//!
//! This crate holds the small set of types that are meaningful across both
//! the guest (ARM-flavored RISC, `ldbt-arm`) and host (x86-flavored CISC,
//! `ldbt-x86`) instruction sets:
//!
//! * bit widths and bit-manipulation helpers ([`Width`], [`bits::sign_extend`]),
//! * source-line debug locations ([`SourceLoc`]) — the unit the rule
//!   learner keys on,
//! * the normalized memory-address form `base ± index × scale + offset`
//!   ([`NormAddr`]) used by the operand-parameterization heuristics,
//! * the byte-addressed sparse [`Memory`] shared by both concrete
//!   interpreters,
//! * execution statistics and the cycle cost model ([`ExecStats`],
//!   [`CostModel`]) used by the DBT execution engine.
//!
//! # Example
//!
//! ```
//! use ldbt_isa::{Memory, Width};
//!
//! let mut mem = Memory::new();
//! mem.write(0x1000, 0xdead_beef, Width::W32);
//! assert_eq!(mem.read(0x1000, Width::W32), 0xdead_beef);
//! assert_eq!(mem.read(0x1002, Width::W16), 0xdead);
//! ```

pub mod addr;
pub mod bits;
pub mod cost;
pub mod mem;
pub mod source;

pub use addr::{NormAddr, Scale};
pub use bits::{sign_extend, truncate, Width};
pub use cost::{CostModel, ExecStats, InstrKind};
pub use mem::Memory;
pub use source::{SourceLoc, SourceMap};
