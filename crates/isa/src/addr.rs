//! Normalized memory addresses: `base ± index × scale + offset`.
//!
//! Section 3.2 of the paper normalizes every guest and host addressing mode
//! into this common form before mapping live-in registers. The form is
//! generic over the register type so both ISAs (and the learner's
//! parameterized registers) can reuse it.

use std::fmt;

/// A scale factor, kept in its *syntactic* form.
///
/// The paper deliberately keeps `(1 << 2)` distinct from `4` so that the
/// immediate-operand mapping can later record `(1 << 2) ↦ 4` (ARM encodes
/// scaled index registers as shifts, x86 as SIB scale bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// A literal multiplier, e.g. x86's SIB `4`.
    Value(u32),
    /// A left-shift amount, e.g. ARM's `lsl #2`.
    Shl(u32),
}

impl Scale {
    /// The numeric multiplier this scale denotes.
    ///
    /// ```
    /// use ldbt_isa::Scale;
    /// assert_eq!(Scale::Shl(3).factor(), 8);
    /// assert_eq!(Scale::Value(8).factor(), 8);
    /// ```
    pub fn factor(self) -> u32 {
        match self {
            Scale::Value(v) => v,
            Scale::Shl(s) => 1u32.wrapping_shl(s),
        }
    }

    /// Whether two scales denote the same multiplier regardless of form.
    pub fn same_factor(self, other: Scale) -> bool {
        self.factor() == other.factor()
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scale::Value(v) => write!(f, "{v}"),
            Scale::Shl(s) => write!(f, "(1 << {s})"),
        }
    }
}

/// A normalized memory address `base + index × scale + offset`.
///
/// Either component register may be absent (e.g. an absolute address has
/// neither). `offset` is a signed displacement.
///
/// ```
/// use ldbt_isa::{NormAddr, Scale};
/// // -0x4(%ecx,%eax,4)  normalizes to  ecx + eax*4 + (-4)
/// let a = NormAddr { base: Some("ecx"), index: Some(("eax", Scale::Value(4))), offset: -4 };
/// assert_eq!(a.to_string(), "ecx + eax*4 + -4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NormAddr<R> {
    /// The base register, if any.
    pub base: Option<R>,
    /// The index register and its scale, if any.
    pub index: Option<(R, Scale)>,
    /// Signed displacement added to the address.
    pub offset: i64,
}

impl<R> NormAddr<R> {
    /// An address consisting of a bare base register.
    pub fn base(base: R) -> Self {
        NormAddr { base: Some(base), index: None, offset: 0 }
    }

    /// An absolute address (displacement only).
    pub fn absolute(offset: i64) -> Self {
        NormAddr { base: None, index: None, offset }
    }

    /// The registers appearing in the address, base first.
    pub fn regs(&self) -> impl Iterator<Item = &R> {
        self.base.iter().chain(self.index.iter().map(|(r, _)| r))
    }

    /// Map the register type, preserving structure.
    pub fn map<S>(self, mut f: impl FnMut(R) -> S) -> NormAddr<S> {
        NormAddr {
            base: self.base.map(&mut f),
            index: self.index.map(|(r, s)| (f(r), s)),
            offset: self.offset,
        }
    }

    /// Number of registers used by the address (0–2).
    pub fn reg_count(&self) -> usize {
        self.base.is_some() as usize + self.index.is_some() as usize
    }
}

impl<R: fmt::Display> fmt::Display for NormAddr<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if let Some(b) = &self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((r, s)) = &self.index {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{r}*{s}")?;
            wrote = true;
        }
        if self.offset != 0 || !wrote {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.offset)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factor() {
        assert_eq!(Scale::Value(1).factor(), 1);
        assert_eq!(Scale::Shl(0).factor(), 1);
        assert_eq!(Scale::Shl(2).factor(), 4);
        assert!(Scale::Shl(2).same_factor(Scale::Value(4)));
        assert!(!Scale::Shl(1).same_factor(Scale::Value(4)));
    }

    #[test]
    fn scale_display_keeps_syntactic_form() {
        assert_eq!(Scale::Shl(2).to_string(), "(1 << 2)");
        assert_eq!(Scale::Value(4).to_string(), "4");
    }

    #[test]
    fn norm_addr_constructors() {
        let a: NormAddr<u8> = NormAddr::base(3);
        assert_eq!(a.reg_count(), 1);
        assert_eq!(a.offset, 0);
        let b: NormAddr<u8> = NormAddr::absolute(0x100);
        assert_eq!(b.reg_count(), 0);
        assert_eq!(b.to_string(), "256");
    }

    #[test]
    fn norm_addr_regs_iterates_base_then_index() {
        let a = NormAddr { base: Some("r1"), index: Some(("r0", Scale::Shl(2))), offset: -4 };
        let regs: Vec<_> = a.regs().collect();
        assert_eq!(regs, vec![&"r1", &"r0"]);
        assert_eq!(a.to_string(), "r1 + r0*(1 << 2) + -4");
    }

    #[test]
    fn norm_addr_map() {
        let a = NormAddr { base: Some(1u8), index: Some((2u8, Scale::Value(8))), offset: 12 };
        let b = a.map(|r| r * 10);
        assert_eq!(b.base, Some(10));
        assert_eq!(b.index, Some((20, Scale::Value(8))));
        assert_eq!(b.offset, 12);
    }
}
