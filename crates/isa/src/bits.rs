//! Bit widths and low-level bit manipulation helpers.

use std::fmt;

/// An operand or access width, in bits.
///
/// Both modeled ISAs are 32-bit machines; sub-word widths appear in memory
/// accesses (`ldrb`, `movzbl`, …) and in zero/sign extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8 bits.
    W8,
    /// 16 bits.
    W16,
    /// 32 bits (the native word size of both modeled ISAs).
    W32,
}

impl Width {
    /// Number of bits in this width.
    ///
    /// ```
    /// assert_eq!(ldbt_isa::Width::W16.bits(), 16);
    /// ```
    pub const fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
        }
    }

    /// Number of bytes in this width.
    pub const fn bytes(self) -> u32 {
        self.bits() / 8
    }

    /// Mask with the low `bits()` bits set.
    pub const fn mask(self) -> u64 {
        match self {
            Width::W8 => 0xff,
            Width::W16 => 0xffff,
            Width::W32 => 0xffff_ffff,
        }
    }

    /// All widths, narrowest first.
    pub const ALL: [Width; 3] = [Width::W8, Width::W16, Width::W32];
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.bits())
    }
}

/// Sign-extend the low `width` bits of `value` to 64 bits.
///
/// ```
/// use ldbt_isa::{bits::sign_extend, Width};
/// assert_eq!(sign_extend(0xff, Width::W8), -1i64 as u64);
/// assert_eq!(sign_extend(0x7f, Width::W8), 0x7f);
/// ```
pub fn sign_extend(value: u64, width: Width) -> u64 {
    let bits = width.bits();
    let shift = 64 - bits;
    (((value << shift) as i64) >> shift) as u64
}

/// Truncate `value` to the low `width` bits (zero-extending the rest).
///
/// ```
/// use ldbt_isa::{bits::truncate, Width};
/// assert_eq!(truncate(0x1_2345, Width::W16), 0x2345);
/// ```
pub fn truncate(value: u64, width: Width) -> u64 {
    value & width.mask()
}

/// Carry flag for a 32-bit addition `a + b + carry_in`.
pub fn add_carry32(a: u32, b: u32, carry_in: bool) -> bool {
    (a as u64) + (b as u64) + (carry_in as u64) > u32::MAX as u64
}

/// Signed-overflow flag for a 32-bit addition `a + b + carry_in`.
pub fn add_overflow32(a: u32, b: u32, carry_in: bool) -> bool {
    let r = a.wrapping_add(b).wrapping_add(carry_in as u32);
    // Overflow iff operands share sign and the result sign differs.
    ((a ^ r) & (b ^ r)) >> 31 != 0
}

/// ARM-style carry (NOT borrow) for a 32-bit subtraction `a - b - !carry_in`.
///
/// ARM's `C` after `SUBS` is set when no borrow occurred, i.e. `a >= b` for
/// a plain subtract. x86's `CF` is the *borrow*, i.e. the inverse.
pub fn sub_carry32_arm(a: u32, b: u32, carry_in: bool) -> bool {
    let full = (a as u64).wrapping_add(!b as u64).wrapping_add(carry_in as u64);
    full > u32::MAX as u64
}

/// Signed-overflow flag for a 32-bit subtraction `a - b`.
pub fn sub_overflow32(a: u32, b: u32) -> bool {
    let r = a.wrapping_sub(b);
    ((a ^ b) & (a ^ r)) >> 31 != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_accessors() {
        assert_eq!(Width::W8.bits(), 8);
        assert_eq!(Width::W32.bytes(), 4);
        assert_eq!(Width::W16.mask(), 0xffff);
        assert_eq!(Width::ALL.len(), 3);
        assert!(Width::W8 < Width::W32);
    }

    #[test]
    fn display() {
        assert_eq!(Width::W32.to_string(), "i32");
    }

    #[test]
    fn sign_extend_positive_and_negative() {
        assert_eq!(sign_extend(0x80, Width::W8), 0xffff_ffff_ffff_ff80);
        assert_eq!(sign_extend(0x7fff, Width::W16), 0x7fff);
        assert_eq!(sign_extend(0x8000, Width::W16), 0xffff_ffff_ffff_8000);
        assert_eq!(sign_extend(0xffff_ffff, Width::W32), u64::MAX);
    }

    #[test]
    fn truncate_masks() {
        assert_eq!(truncate(u64::MAX, Width::W8), 0xff);
        assert_eq!(truncate(0x1234_5678_9abc, Width::W32), 0x5678_9abc);
    }

    #[test]
    fn add_flags() {
        assert!(add_carry32(u32::MAX, 1, false));
        assert!(!add_carry32(1, 2, false));
        assert!(add_carry32(u32::MAX, 0, true));
        assert!(add_overflow32(i32::MAX as u32, 1, false));
        assert!(!add_overflow32(1, 1, false));
        assert!(add_overflow32(i32::MIN as u32, i32::MIN as u32, false));
    }

    #[test]
    fn sub_flags() {
        // ARM carry = no borrow.
        assert!(sub_carry32_arm(5, 3, true));
        assert!(!sub_carry32_arm(3, 5, true));
        assert!(sub_carry32_arm(3, 3, true));
        assert!(sub_overflow32(i32::MIN as u32, 1));
        assert!(!sub_overflow32(5, 3));
        assert!(sub_overflow32(i32::MAX as u32, u32::MAX)); // MAX - (-1) overflows
    }

    #[test]
    fn exhaustive_8bit_carry_matches_wide_arithmetic() {
        for a in 0..=255u32 {
            for b in 0..=255u32 {
                let a32 = a << 24;
                let b32 = b << 24;
                let wide = (a32 as u64) + (b32 as u64);
                assert_eq!(add_carry32(a32, b32, false), wide > u32::MAX as u64);
            }
        }
    }
}
