//! A sparse, byte-addressed, little-endian memory.
//!
//! Both modeled ISAs are little-endian (the paper assumes matching
//! endianness between guest and host). The memory is page-sparse so that
//! widely separated code / global / stack regions do not allocate the
//! whole address space.

use crate::bits::Width;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// A sparse 32-bit little-endian byte-addressable memory.
///
/// Reads of never-written bytes return zero, which keeps concrete
/// interpretation deterministic.
///
/// ```
/// use ldbt_isa::{Memory, Width};
/// let mut m = Memory::new();
/// m.write(0xfffc, 0x1122_3344, Width::W32);
/// assert_eq!(m.read(0xfffc, Width::W32), 0x1122_3344);
/// assert_eq!(m.read(0xfffe, Width::W8), 0x22);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Create an empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let page =
            self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Read `width` bytes starting at `addr`, little-endian, zero-extended.
    pub fn read(&self, addr: u32, width: Width) -> u32 {
        let mut v: u32 = 0;
        for i in 0..width.bytes() {
            v |= (self.read_u8(addr.wrapping_add(i)) as u32) << (8 * i);
        }
        v
    }

    /// Write the low `width` bytes of `value` at `addr`, little-endian.
    pub fn write(&mut self, addr: u32, value: u32, width: Width) {
        for i in 0..width.bytes() {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copy a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr.wrapping_add(i as u32))).collect()
    }

    /// Number of resident pages (for diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// The lowest address whose byte differs between the two memories,
    /// skipping addresses for which `ignore` returns `true`.
    ///
    /// Never-written pages compare as all-zero on both sides, matching
    /// the zero-fill read semantics; the scan covers the union of
    /// resident pages. Used by the DBT watchdog to compare guest-visible
    /// memory while excluding the host-private env and stack regions.
    pub fn first_difference(&self, other: &Memory, ignore: impl Fn(u32) -> bool) -> Option<u32> {
        const ZERO: [u8; PAGE_SIZE] = [0; PAGE_SIZE];
        let mut page_ids: Vec<u32> = self.pages.keys().chain(other.pages.keys()).copied().collect();
        page_ids.sort_unstable();
        page_ids.dedup();
        for p in page_ids {
            let a = self.pages.get(&p).map_or(&ZERO, |b| &**b);
            let b = other.pages.get(&p).map_or(&ZERO, |b| &**b);
            if a == b {
                continue;
            }
            for i in 0..PAGE_SIZE {
                if a[i] != b[i] {
                    let addr = (p << PAGE_SHIFT) | i as u32;
                    if !ignore(addr) {
                        return Some(addr);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read(0, Width::W32), 0);
        assert_eq!(m.read(0xdead_beef, Width::W8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write(0x100, 0x0a0b_0c0d, Width::W32);
        assert_eq!(m.read_u8(0x100), 0x0d);
        assert_eq!(m.read_u8(0x101), 0x0c);
        assert_eq!(m.read_u8(0x102), 0x0b);
        assert_eq!(m.read_u8(0x103), 0x0a);
        assert_eq!(m.read(0x100, Width::W16), 0x0c0d);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as u32 - 2; // straddles the first page boundary
        m.write(addr, 0x1234_5678, Width::W32);
        assert_eq!(m.read(addr, Width::W32), 0x1234_5678);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn partial_width_writes_do_not_clobber_neighbors() {
        let mut m = Memory::new();
        m.write(0x200, 0xffff_ffff, Width::W32);
        m.write(0x201, 0x00, Width::W8);
        assert_eq!(m.read(0x200, Width::W32), 0xffff_00ff);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = Memory::new();
        let data = [1u8, 2, 3, 4, 5];
        m.write_bytes(0x300, &data);
        assert_eq!(m.read_bytes(0x300, 5), data.to_vec());
    }

    #[test]
    fn first_difference_scans_union_and_honors_ignore() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        assert_eq!(a.first_difference(&b, |_| false), None);
        // A page resident on only one side but all-zero is not a diff.
        a.write(0x5000, 0, Width::W32);
        assert_eq!(a.first_difference(&b, |_| false), None);
        b.write(0x9002, 7, Width::W8);
        a.write(0x9004, 1, Width::W8);
        assert_eq!(a.first_difference(&b, |_| false), Some(0x9002));
        assert_eq!(b.first_difference(&a, |_| false), Some(0x9002), "symmetric");
        assert_eq!(a.first_difference(&b, |addr| addr == 0x9002), Some(0x9004));
        assert_eq!(a.first_difference(&b, |addr| addr >= 0x9000), None);
    }

    #[test]
    fn wrapping_addresses() {
        let mut m = Memory::new();
        m.write(u32::MAX, 0xab, Width::W8);
        m.write(0, 0xcd, Width::W8);
        assert_eq!(m.read(u32::MAX, Width::W16), 0xcdab);
    }
}
