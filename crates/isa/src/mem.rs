//! A sparse, byte-addressed, little-endian memory.
//!
//! Both modeled ISAs are little-endian (the paper assumes matching
//! endianness between guest and host). The memory is page-sparse so that
//! widely separated code / global / stack regions do not allocate the
//! whole address space.
//!
//! # Hot path
//!
//! Pages live in a stable arena (`data`) addressed through a page-id →
//! slot index; the emulation hot path avoids the `HashMap` probe with a
//! one-entry *last-page cache* per access side (read and write). Aligned
//! `W16`/`W32` accesses that provably sit inside one page are performed
//! as single word operations (`from_le_bytes`/`to_le_bytes`); unaligned
//! or page-crossing accesses fall back to the byte loop. Slots are never
//! removed or reordered, so a cached `(page, slot)` pair can only go
//! stale by pointing at a page that is still resident — never at freed
//! or moved storage.
//!
//! # Self-modifying code protection
//!
//! A dynamic translator must notice guest stores into bytes it has
//! already translated. The memory keeps a per-page *code bitmap*
//! ([`Memory::mark_code`]) and every store path checks the bit for the
//! page(s) it touches; hits are appended to a store log the translator
//! drains with [`Memory::take_code_writes`] and filters against its
//! recorded block ranges. The check is one shift + one indexed load on
//! the store fast path and the bitmap starts empty, so programs that
//! never mark code pay a single bounds-checked `Vec::get` per store.
//! Marks are page-granular and sticky (spurious hits are filtered by
//! the consumer against exact block byte ranges).

use crate::bits::Width;
use std::cell::Cell;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Sentinel page id for an empty last-page cache: real page ids fit in
/// 20 bits (`addr >> 12`), so `u32::MAX` can never match.
const NO_PAGE: u32 = u32::MAX;

/// A sparse 32-bit little-endian byte-addressable memory.
///
/// Reads of never-written bytes return zero, which keeps concrete
/// interpretation deterministic.
///
/// ```
/// use ldbt_isa::{Memory, Width};
/// let mut m = Memory::new();
/// m.write(0xfffc, 0x1122_3344, Width::W32);
/// assert_eq!(m.read(0xfffc, Width::W32), 0x1122_3344);
/// assert_eq!(m.read(0xfffe, Width::W8), 0x22);
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    /// Page id (`addr >> 12`) → slot in `data`.
    index: HashMap<u32, u32>,
    /// Page storage; slots are append-only and never move.
    data: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Last page resolved by a read: `(page id, slot)`.
    rcache: Cell<(u32, u32)>,
    /// Last page resolved by a write: `(page id, slot)`.
    wcache: Cell<(u32, u32)>,
    /// Per-page "contains translated code" bitmap: bit `page & 63` of
    /// word `page >> 6`. Lazily grown, so it stays empty (and the store
    /// check trivially cheap) until something calls [`Memory::mark_code`].
    code_bitmap: Vec<u64>,
    /// Stores that hit a marked page: `(addr, len)` spans, in order.
    code_writes: Vec<(u32, u32)>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory {
            index: HashMap::new(),
            data: Vec::new(),
            rcache: Cell::new((NO_PAGE, 0)),
            wcache: Cell::new((NO_PAGE, 0)),
            code_bitmap: Vec::new(),
            code_writes: Vec::new(),
        }
    }
}

impl Memory {
    /// Create an empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// The slot of a resident page, via the read-side last-page cache.
    #[inline]
    fn read_slot(&self, page: u32) -> Option<usize> {
        let (cp, cs) = self.rcache.get();
        if cp == page {
            return Some(cs as usize);
        }
        let slot = *self.index.get(&page)?;
        self.rcache.set((page, slot));
        Some(slot as usize)
    }

    /// The slot of a page for writing (allocating it if absent), via the
    /// write-side last-page cache.
    #[inline]
    fn write_slot(&mut self, page: u32) -> usize {
        let (cp, cs) = self.wcache.get();
        if cp == page {
            return cs as usize;
        }
        let slot = match self.index.get(&page) {
            Some(&s) => s,
            None => {
                let s = self.data.len() as u32;
                self.data.push(Box::new([0u8; PAGE_SIZE]));
                self.index.insert(page, s);
                s
            }
        };
        self.wcache.set((page, slot));
        slot as usize
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.read_slot(addr >> PAGE_SHIFT) {
            Some(slot) => self.data[slot][(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Raw byte store, no code-page check — the shared primitive under
    /// every public write path (which log a span *once* before poking).
    #[inline]
    fn poke(&mut self, addr: u32, value: u8) {
        let slot = self.write_slot(addr >> PAGE_SHIFT);
        self.data[slot][(addr & PAGE_MASK) as usize] = value;
    }

    /// Is `page`'s code bit set? Pages beyond the lazily-grown bitmap
    /// are unmarked, so the common case is one bounds-checked load.
    #[inline]
    fn page_marked(&self, page: u32) -> bool {
        match self.code_bitmap.get((page >> 6) as usize) {
            Some(w) => w & (1u64 << (page & 63)) != 0,
            None => false,
        }
    }

    /// Record a store span in the code-write log iff it touches a marked
    /// page. `len` must be nonzero.
    #[inline]
    fn note_store(&mut self, addr: u32, len: u32) {
        let first = addr >> PAGE_SHIFT;
        let last = addr.wrapping_add(len - 1) >> PAGE_SHIFT;
        if first == last {
            // Fast path: span inside one page — one bitmap probe.
            if self.page_marked(first) {
                self.code_writes.push((addr, len));
            }
            return;
        }
        let mut p = first;
        loop {
            if self.page_marked(p) {
                self.code_writes.push((addr, len));
                return;
            }
            if p == last {
                return;
            }
            p = p.wrapping_add(1);
        }
    }

    /// Mark the pages overlapped by `[addr, addr + len)` as containing
    /// translated code: subsequent stores into them land in the
    /// code-write log. Marks are sticky (page-granular; the consumer
    /// filters by exact range).
    pub fn mark_code(&mut self, addr: u32, len: u32) {
        if len == 0 {
            return;
        }
        let first = addr >> PAGE_SHIFT;
        let last = addr.wrapping_add(len - 1) >> PAGE_SHIFT;
        let mut p = first;
        loop {
            let w = (p >> 6) as usize;
            if self.code_bitmap.len() <= w {
                self.code_bitmap.resize(w + 1, 0);
            }
            self.code_bitmap[w] |= 1u64 << (p & 63);
            if p == last {
                return;
            }
            p = p.wrapping_add(1);
        }
    }

    /// Whether any page is marked as containing translated code.
    pub fn has_code_marks(&self) -> bool {
        self.code_bitmap.iter().any(|w| *w != 0)
    }

    /// Clear every code-page mark (and the pending store log). Used when
    /// the consumer flushes its whole translation cache.
    pub fn clear_code_marks(&mut self) {
        self.code_bitmap.clear();
        self.code_writes.clear();
    }

    /// Whether stores into marked pages are pending in the log — the
    /// dispatcher's cheap "anything to do?" probe.
    #[inline]
    pub fn has_code_writes(&self) -> bool {
        !self.code_writes.is_empty()
    }

    /// Drain the log of stores that hit marked code pages, in store
    /// order. Spans are page-filtered only; callers intersect them with
    /// exact translated ranges.
    pub fn take_code_writes(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.code_writes)
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.note_store(addr, 1);
        self.poke(addr, value);
    }

    /// Read `width` bytes starting at `addr`, little-endian, zero-extended.
    ///
    /// Aligned `W16`/`W32` reads (which cannot cross a page) go through
    /// the word-wide fast path; everything else takes the byte loop.
    #[inline]
    pub fn read(&self, addr: u32, width: Width) -> u32 {
        let off = (addr & PAGE_MASK) as usize;
        match width {
            Width::W8 => self.read_u8(addr) as u32,
            Width::W16 if off & 1 == 0 => match self.read_slot(addr >> PAGE_SHIFT) {
                Some(slot) => {
                    let p = &self.data[slot];
                    u16::from_le_bytes([p[off], p[off + 1]]) as u32
                }
                None => 0,
            },
            Width::W32 if off & 3 == 0 => match self.read_slot(addr >> PAGE_SHIFT) {
                Some(slot) => {
                    let p = &self.data[slot];
                    u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]])
                }
                None => 0,
            },
            _ => self.read_slow(addr, width),
        }
    }

    /// The byte-loop fallback for unaligned or page-crossing reads.
    fn read_slow(&self, addr: u32, width: Width) -> u32 {
        let mut v: u32 = 0;
        for i in 0..width.bytes() {
            v |= (self.read_u8(addr.wrapping_add(i)) as u32) << (8 * i);
        }
        v
    }

    /// Write the low `width` bytes of `value` at `addr`, little-endian.
    ///
    /// Aligned `W16`/`W32` writes go through the word-wide fast path;
    /// everything else takes the byte loop.
    #[inline]
    pub fn write(&mut self, addr: u32, value: u32, width: Width) {
        let off = (addr & PAGE_MASK) as usize;
        match width {
            Width::W8 => self.write_u8(addr, value as u8),
            Width::W16 if off & 1 == 0 => {
                self.note_store(addr, 2);
                let slot = self.write_slot(addr >> PAGE_SHIFT);
                self.data[slot][off..off + 2].copy_from_slice(&(value as u16).to_le_bytes());
            }
            Width::W32 if off & 3 == 0 => {
                self.note_store(addr, 4);
                let slot = self.write_slot(addr >> PAGE_SHIFT);
                self.data[slot][off..off + 4].copy_from_slice(&value.to_le_bytes());
            }
            _ => self.write_slow(addr, value, width),
        }
    }

    /// The byte-loop fallback for unaligned or page-crossing writes.
    /// Logs the span once, then pokes raw bytes.
    fn write_slow(&mut self, addr: u32, value: u32, width: Width) {
        self.note_store(addr, width.bytes());
        for i in 0..width.bytes() {
            self.poke(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copy a byte slice into memory starting at `addr`, page-chunked.
    ///
    /// Drops both last-page caches afterwards: bulk loads rewrite whole
    /// regions (image loading, snapshot restore) and must never leave a
    /// stale-looking cache entry behind.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        if !bytes.is_empty() {
            self.note_store(addr, bytes.len() as u32);
        }
        let mut cur = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (cur & PAGE_MASK) as usize;
            let room = PAGE_SIZE - off;
            let n = room.min(rest.len());
            let slot = self.write_slot(cur >> PAGE_SHIFT);
            self.data[slot][off..off + n].copy_from_slice(&rest[..n]);
            cur = cur.wrapping_add(n as u32);
            rest = &rest[n..];
        }
        self.rcache.set((NO_PAGE, 0));
        self.wcache.set((NO_PAGE, 0));
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr.wrapping_add(i as u32))).collect()
    }

    /// Number of resident pages (for diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.index.len()
    }

    /// The lowest address whose byte differs between the two memories,
    /// skipping addresses for which `ignore` returns `true`.
    ///
    /// Never-written pages compare as all-zero on both sides, matching
    /// the zero-fill read semantics; the scan covers the union of
    /// resident pages. Used by the DBT watchdog to compare guest-visible
    /// memory while excluding the host-private env and stack regions.
    pub fn first_difference(&self, other: &Memory, ignore: impl Fn(u32) -> bool) -> Option<u32> {
        const ZERO: [u8; PAGE_SIZE] = [0; PAGE_SIZE];
        let mut page_ids: Vec<u32> = self.index.keys().chain(other.index.keys()).copied().collect();
        page_ids.sort_unstable();
        page_ids.dedup();
        for p in page_ids {
            let a = self.index.get(&p).map_or(&ZERO, |&s| &*self.data[s as usize]);
            let b = other.index.get(&p).map_or(&ZERO, |&s| &*other.data[s as usize]);
            if a == b {
                continue;
            }
            for i in 0..PAGE_SIZE {
                if a[i] != b[i] {
                    let addr = (p << PAGE_SHIFT) | i as u32;
                    if !ignore(addr) {
                        return Some(addr);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read(0, Width::W32), 0);
        assert_eq!(m.read(0xdead_beef, Width::W8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write(0x100, 0x0a0b_0c0d, Width::W32);
        assert_eq!(m.read_u8(0x100), 0x0d);
        assert_eq!(m.read_u8(0x101), 0x0c);
        assert_eq!(m.read_u8(0x102), 0x0b);
        assert_eq!(m.read_u8(0x103), 0x0a);
        assert_eq!(m.read(0x100, Width::W16), 0x0c0d);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as u32 - 2; // straddles the first page boundary
        m.write(addr, 0x1234_5678, Width::W32);
        assert_eq!(m.read(addr, Width::W32), 0x1234_5678);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn partial_width_writes_do_not_clobber_neighbors() {
        let mut m = Memory::new();
        m.write(0x200, 0xffff_ffff, Width::W32);
        m.write(0x201, 0x00, Width::W8);
        assert_eq!(m.read(0x200, Width::W32), 0xffff_00ff);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = Memory::new();
        let data = [1u8, 2, 3, 4, 5];
        m.write_bytes(0x300, &data);
        assert_eq!(m.read_bytes(0x300, 5), data.to_vec());
    }

    #[test]
    fn write_bytes_spanning_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).cycle().take(3 * PAGE_SIZE / 2).map(|b| b as u8).collect();
        let addr = PAGE_SIZE as u32 - 100;
        m.write_bytes(addr, &data);
        assert_eq!(m.read_bytes(addr, data.len()), data);
        assert_eq!(m.resident_pages(), 3);
    }

    #[test]
    fn unaligned_word_access_falls_back_correctly() {
        let mut m = Memory::new();
        // Unaligned W32 and W16 read/write at every misalignment.
        for mis in 1..4u32 {
            let addr = 0x400 + 16 * mis + mis;
            m.write(addr, 0x8899_aabb, Width::W32);
            assert_eq!(m.read(addr, Width::W32), 0x8899_aabb, "mis={mis}");
            // Bytewise view matches little-endian order.
            assert_eq!(m.read_u8(addr), 0xbb);
            assert_eq!(m.read_u8(addr + 3), 0x88);
        }
        let addr = 0x501;
        m.write(addr, 0xbeef, Width::W16);
        assert_eq!(m.read(addr, Width::W16), 0xbeef);
        assert_eq!(m.read_u8(addr), 0xef);
        assert_eq!(m.read_u8(addr + 1), 0xbe);
    }

    #[test]
    fn page_cross_w32_and_w16() {
        let mut m = Memory::new();
        // W32 across a page boundary, all split points.
        for k in 1..4u32 {
            let addr = 4 * PAGE_SIZE as u32 - k;
            m.write(addr, 0x0102_0304, Width::W32);
            assert_eq!(m.read(addr, Width::W32), 0x0102_0304, "split={k}");
        }
        // W16 across a page boundary.
        let addr = 8 * PAGE_SIZE as u32 - 1;
        m.write(addr, 0xa55a, Width::W16);
        assert_eq!(m.read(addr, Width::W16), 0xa55a);
        assert_eq!(m.read_u8(addr), 0x5a);
        assert_eq!(m.read_u8(addr + 1), 0xa5);
    }

    #[test]
    fn last_page_cache_invalidated_by_write_bytes() {
        let mut m = Memory::new();
        // Warm both caches on the page.
        m.write(0x1000, 0x1111_1111, Width::W32);
        assert_eq!(m.read(0x1000, Width::W32), 0x1111_1111);
        // Bulk overwrite through write_bytes must be visible immediately
        // (and drops the caches).
        m.write_bytes(0x1000, &[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(m.read(0x1000, Width::W32), 0xefbe_adde);
        assert_eq!(m.read_u8(0x1003), 0xef);
        // Writes after the invalidation still land on the right page.
        m.write(0x1ffc, 7, Width::W32);
        assert_eq!(m.read(0x1ffc, Width::W32), 7);
    }

    #[test]
    fn read_cache_follows_page_switches() {
        let mut m = Memory::new();
        m.write(0x2000, 0xaa, Width::W8);
        m.write(0x7000, 0xbb, Width::W8);
        // Alternate between pages: the one-entry cache must re-resolve.
        for _ in 0..4 {
            assert_eq!(m.read_u8(0x2000), 0xaa);
            assert_eq!(m.read_u8(0x7000), 0xbb);
        }
        // Reading a non-resident page does not disturb the cache.
        assert_eq!(m.read_u8(0x9123), 0);
        assert_eq!(m.read_u8(0x2000), 0xaa);
    }

    #[test]
    fn clone_carries_data_and_stays_coherent() {
        let mut a = Memory::new();
        a.write(0x3000, 0x1234_5678, Width::W32);
        assert_eq!(a.read(0x3000, Width::W32), 0x1234_5678); // warm rcache
        let mut b = a.clone();
        b.write(0x3000, 0x9abc_def0, Width::W32);
        assert_eq!(a.read(0x3000, Width::W32), 0x1234_5678, "clone is independent");
        assert_eq!(b.read(0x3000, Width::W32), 0x9abc_def0);
    }

    #[test]
    fn first_difference_scans_union_and_honors_ignore() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        assert_eq!(a.first_difference(&b, |_| false), None);
        // A page resident on only one side but all-zero is not a diff.
        a.write(0x5000, 0, Width::W32);
        assert_eq!(a.first_difference(&b, |_| false), None);
        b.write(0x9002, 7, Width::W8);
        a.write(0x9004, 1, Width::W8);
        assert_eq!(a.first_difference(&b, |_| false), Some(0x9002));
        assert_eq!(b.first_difference(&a, |_| false), Some(0x9002), "symmetric");
        assert_eq!(a.first_difference(&b, |addr| addr == 0x9002), Some(0x9004));
        assert_eq!(a.first_difference(&b, |addr| addr >= 0x9000), None);
    }

    #[test]
    fn wrapping_addresses() {
        let mut m = Memory::new();
        m.write(u32::MAX, 0xab, Width::W8);
        m.write(0, 0xcd, Width::W8);
        assert_eq!(m.read(u32::MAX, Width::W16), 0xcdab);
    }

    #[test]
    fn unmarked_stores_log_nothing() {
        let mut m = Memory::new();
        m.write(0x1000, 0x1234_5678, Width::W32);
        m.write_bytes(0x2000, &[1, 2, 3]);
        m.write_u8(0x3000, 9);
        assert!(!m.has_code_marks());
        assert!(!m.has_code_writes());
        assert_eq!(m.take_code_writes(), vec![]);
    }

    #[test]
    fn marked_page_catches_every_store_path() {
        let mut m = Memory::new();
        m.mark_code(0x1_0000, 8); // marks page 0x10 only
        assert!(m.has_code_marks());
        m.write_u8(0x1_0040, 1);
        m.write(0x1_0080, 2, Width::W16);
        m.write(0x1_00c0, 3, Width::W32);
        m.write(0x1_0101, 4, Width::W32); // unaligned → write_slow
        m.write_bytes(0x1_0200, &[5, 6]);
        m.write(0x2_0000, 7, Width::W32); // different page: unlogged
        assert_eq!(
            m.take_code_writes(),
            vec![(0x1_0040, 1), (0x1_0080, 2), (0x1_00c0, 4), (0x1_0101, 4), (0x1_0200, 2)]
        );
        assert!(!m.has_code_writes(), "take drains the log");
        m.write_u8(0x1_0000, 0xff);
        assert_eq!(m.take_code_writes(), vec![(0x1_0000, 1)], "marks are sticky");
    }

    #[test]
    fn page_crossing_store_hits_either_marked_page() {
        let mut m = Memory::new();
        m.mark_code(0x5000, 4); // page 5 only
                                // W32 straddling pages 4 and 5: span starts on the unmarked page.
        m.write(0x4ffe, 0xdead_beef, Width::W32);
        // write_bytes span ending inside page 5.
        m.write_bytes(0x4f00, &vec![0u8; 0x140]);
        // And one fully inside the unmarked page 4.
        m.write(0x4000, 1, Width::W32);
        assert_eq!(m.take_code_writes(), vec![(0x4ffe, 4), (0x4f00, 0x140)]);
    }

    #[test]
    fn mark_code_spans_pages_and_clear_resets() {
        let mut m = Memory::new();
        m.mark_code(0x1ffc, 8); // straddles pages 1 and 2
        m.write(0x1f00, 1, Width::W32);
        m.write(0x2f00, 2, Width::W32);
        assert_eq!(m.take_code_writes(), vec![(0x1f00, 4), (0x2f00, 4)]);
        m.clear_code_marks();
        assert!(!m.has_code_marks());
        m.write(0x1f00, 3, Width::W32);
        assert!(!m.has_code_writes());
        m.mark_code(0x1000, 0);
        assert!(!m.has_code_marks(), "zero-length mark is a no-op");
    }

    #[test]
    fn clone_carries_code_marks_and_log() {
        let mut a = Memory::new();
        a.mark_code(0x1000, 4);
        a.write(0x1000, 7, Width::W32);
        let mut b = a.clone();
        assert_eq!(b.take_code_writes(), vec![(0x1000, 4)]);
        b.write(0x1004, 8, Width::W32);
        assert!(b.has_code_writes(), "clone keeps the marks");
        assert_eq!(a.take_code_writes(), vec![(0x1000, 4)], "sides are independent");
    }
}
