//! Source-level debug locations.
//!
//! The paper's learning scope is a *line of source code*: the compiler
//! tags every emitted machine instruction with the source line it came
//! from (mirroring DWARF line tables), and the learner extracts the guest
//! and host instruction groups that share a line.

use std::collections::BTreeMap;
use std::fmt;

/// A source location: file id plus 1-based line number.
///
/// Files are interned as small integers by the compiler session; the
/// learner only ever compares locations for equality and ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceLoc {
    /// Interned file identifier.
    pub file: u32,
    /// 1-based line number. Line 0 means "no debug info".
    pub line: u32,
}

impl SourceLoc {
    /// A location in file 0 at the given line.
    pub fn line(line: u32) -> Self {
        SourceLoc { file: 0, line }
    }

    /// The "no debug info" sentinel (compiler-generated glue code).
    pub const NONE: SourceLoc = SourceLoc { file: 0, line: 0 };

    /// Whether this location carries real debug info.
    pub fn is_known(self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}:{}", self.file, self.line)
    }
}

/// A line table mapping instruction indices to source locations, as the
/// compiler backends emit it (the moral equivalent of `.debug_line`).
///
/// ```
/// use ldbt_isa::{SourceLoc, SourceMap};
/// let mut map = SourceMap::new();
/// map.record(0, SourceLoc::line(10));
/// map.record(1, SourceLoc::line(10));
/// map.record(2, SourceLoc::line(11));
/// assert_eq!(map.loc(1), SourceLoc::line(10));
/// let groups: Vec<_> = map.line_groups().collect();
/// assert_eq!(groups, vec![(SourceLoc::line(10), 0..2), (SourceLoc::line(11), 2..3)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    locs: BTreeMap<usize, SourceLoc>,
}

impl SourceMap {
    /// Create an empty line table.
    pub fn new() -> Self {
        SourceMap::default()
    }

    /// Record that instruction `index` was generated from `loc`.
    pub fn record(&mut self, index: usize, loc: SourceLoc) {
        self.locs.insert(index, loc);
    }

    /// The location of instruction `index` ([`SourceLoc::NONE`] if untagged).
    pub fn loc(&self, index: usize) -> SourceLoc {
        self.locs.get(&index).copied().unwrap_or(SourceLoc::NONE)
    }

    /// Number of tagged instructions.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Iterate over maximal runs of *consecutive* instructions that share a
    /// source location, in instruction order.
    ///
    /// This is exactly the grouping the learner uses: a guest snippet is one
    /// contiguous run attributed to a single line. Non-contiguous
    /// re-occurrences of a line (e.g. loop rotation) produce separate groups.
    pub fn line_groups(&self) -> impl Iterator<Item = (SourceLoc, std::ops::Range<usize>)> + '_ {
        let entries: Vec<(usize, SourceLoc)> = self.locs.iter().map(|(k, v)| (*k, *v)).collect();
        LineGroups { entries, pos: 0 }
    }
}

struct LineGroups {
    entries: Vec<(usize, SourceLoc)>,
    pos: usize,
}

impl Iterator for LineGroups {
    type Item = (SourceLoc, std::ops::Range<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.entries.len() {
            return None;
        }
        let (start_idx, loc) = self.entries[self.pos];
        let mut end_idx = start_idx + 1;
        self.pos += 1;
        while self.pos < self.entries.len() {
            let (idx, l) = self.entries[self.pos];
            if l == loc && idx == end_idx {
                end_idx += 1;
                self.pos += 1;
            } else {
                break;
            }
        }
        Some((loc, start_idx..end_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_sentinel() {
        assert!(!SourceLoc::NONE.is_known());
        assert!(SourceLoc::line(5).is_known());
        assert_eq!(SourceLoc::line(5).to_string(), "file0:5");
    }

    #[test]
    fn missing_index_is_none() {
        let map = SourceMap::new();
        assert_eq!(map.loc(42), SourceLoc::NONE);
        assert!(map.is_empty());
    }

    #[test]
    fn groups_split_on_line_change() {
        let mut map = SourceMap::new();
        for (i, l) in [(0, 1), (1, 1), (2, 2), (3, 1)] {
            map.record(i, SourceLoc::line(l));
        }
        let groups: Vec<_> = map.line_groups().collect();
        assert_eq!(
            groups,
            vec![
                (SourceLoc::line(1), 0..2),
                (SourceLoc::line(2), 2..3),
                (SourceLoc::line(1), 3..4),
            ]
        );
    }

    #[test]
    fn groups_split_on_gap() {
        let mut map = SourceMap::new();
        map.record(0, SourceLoc::line(7));
        map.record(2, SourceLoc::line(7)); // gap at index 1
        let groups: Vec<_> = map.line_groups().collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1, 0..1);
        assert_eq!(groups[1].1, 2..3);
    }

    #[test]
    fn len_counts_entries() {
        let mut map = SourceMap::new();
        map.record(3, SourceLoc::line(1));
        map.record(4, SourceLoc::line(1));
        assert_eq!(map.len(), 2);
    }
}
