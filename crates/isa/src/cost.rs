//! Execution statistics and the host cycle cost model.
//!
//! The paper reports *relative* metrics — speedup over QEMU, percentage of
//! dynamic host instructions removed, rule coverage. Our execution
//! substrate is an interpreter, so wall-clock time is replaced by a modeled
//! cycle count: `time = translation_cycles + Σ cost(dynamic host instr)`.
//! The per-kind costs below are loosely calibrated to a small out-of-order
//! x86 core; only their ratios matter for the reproduced shapes.

/// Coarse classification of host instructions for the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// Register-to-register ALU operation (incl. `lea`).
    Alu,
    /// Integer multiply.
    Mul,
    /// Memory load (or ALU op with a memory source).
    Load,
    /// Memory store.
    Store,
    /// Taken or not-taken direct branch / jump.
    Branch,
    /// Indirect branch (returns, computed jumps).
    IndirectBranch,
    /// Flag save/restore traffic (`pushfd`/`popfd`-style).
    FlagSync,
    /// Call/return linkage.
    CallRet,
}

/// Cycle costs per [`InstrKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of an ALU instruction.
    pub alu: u64,
    /// Cost of a multiply.
    pub mul: u64,
    /// Cost of a load.
    pub load: u64,
    /// Cost of a store.
    pub store: u64,
    /// Cost of a direct branch.
    pub branch: u64,
    /// Cost of an indirect branch.
    pub indirect_branch: u64,
    /// Cost of a flag save/restore instruction.
    pub flag_sync: u64,
    /// Cost of a call or return.
    pub call_ret: u64,
}

impl CostModel {
    /// Cost of one instruction of kind `kind`.
    pub fn cost(&self, kind: InstrKind) -> u64 {
        match kind {
            InstrKind::Alu => self.alu,
            InstrKind::Mul => self.mul,
            InstrKind::Load => self.load,
            InstrKind::Store => self.store,
            InstrKind::Branch => self.branch,
            InstrKind::IndirectBranch => self.indirect_branch,
            InstrKind::FlagSync => self.flag_sync,
            InstrKind::CallRet => self.call_ret,
        }
    }
}

impl Default for CostModel {
    /// The calibration used by all experiments.
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul: 3,
            load: 3,
            store: 2,
            branch: 2,
            indirect_branch: 8,
            flag_sync: 4,
            call_ret: 4,
        }
    }
}

/// Dynamic execution statistics accumulated by an execution engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Dynamic host instructions executed.
    pub host_instrs: u64,
    /// Modeled execution cycles (cost-weighted host instructions).
    pub exec_cycles: u64,
    /// Modeled translation cycles (compile-time work).
    pub translation_cycles: u64,
    /// Guest instructions translated (static).
    pub guest_instrs_translated: u64,
    /// Guest basic blocks translated (static).
    pub blocks_translated: u64,
    /// Dynamic memory loads executed (ALU-with-memory-source included).
    pub mem_loads: u64,
    /// Dynamic memory stores executed.
    pub mem_stores: u64,
}

impl ExecStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        ExecStats::default()
    }

    /// Record execution of one host instruction of kind `kind`.
    pub fn record(&mut self, kind: InstrKind, model: &CostModel) {
        self.host_instrs += 1;
        self.exec_cycles += model.cost(kind);
        match kind {
            InstrKind::Load => self.mem_loads += 1,
            InstrKind::Store => self.mem_stores += 1,
            _ => {}
        }
    }

    /// Total modeled time: translation plus execution.
    pub fn total_cycles(&self) -> u64 {
        self.exec_cycles + self.translation_cycles
    }

    /// Speedup of `self` relative to a `baseline` (baseline_time / self_time).
    ///
    /// Returns `f64::INFINITY` if `self` took zero cycles.
    pub fn speedup_over(&self, baseline: &ExecStats) -> f64 {
        let own = self.total_cycles();
        if own == 0 {
            return f64::INFINITY;
        }
        baseline.total_cycles() as f64 / own as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_ordered_sensibly() {
        let m = CostModel::default();
        assert!(m.alu < m.load);
        assert!(m.branch < m.indirect_branch);
        assert!(m.alu <= m.mul);
        assert_eq!(m.cost(InstrKind::Alu), m.alu);
        assert_eq!(m.cost(InstrKind::IndirectBranch), m.indirect_branch);
    }

    #[test]
    fn record_accumulates() {
        let m = CostModel::default();
        let mut s = ExecStats::new();
        s.record(InstrKind::Alu, &m);
        s.record(InstrKind::Load, &m);
        s.record(InstrKind::Store, &m);
        assert_eq!(s.host_instrs, 3);
        assert_eq!(s.exec_cycles, m.alu + m.load + m.store);
        assert_eq!(s.mem_loads, 1);
        assert_eq!(s.mem_stores, 1);
    }

    #[test]
    fn speedup() {
        let mut fast = ExecStats::new();
        fast.exec_cycles = 100;
        let mut slow = ExecStats::new();
        slow.exec_cycles = 200;
        slow.translation_cycles = 50;
        assert!((fast.speedup_over(&slow) - 2.5).abs() < 1e-12);
        let zero = ExecStats::new();
        assert!(zero.speedup_over(&slow).is_infinite());
    }

    #[test]
    fn total_includes_translation() {
        let mut s = ExecStats::new();
        s.exec_cycles = 10;
        s.translation_cycles = 5;
        assert_eq!(s.total_cycles(), 15);
    }
}
