//! Minimal JSON tree: writer with escaping plus a recursive-descent
//! parser, enough for NDJSON trace lines and the run-report schema
//! check. Objects preserve insertion order so rendered reports are
//! deterministic byte-for-byte.

use std::fmt;

/// A JSON value. Numbers are `f64`; every counter this workspace emits
/// fits without precision loss (< 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from an ordered field list.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Integer counters render without a fractional part.
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Field lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialize into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Integers print as integers (`17`, not `17.0`); everything else uses
/// the shortest `f64` rendering Rust provides.
fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Lone surrogates degrade to U+FFFD; the
                            // workspace never emits them.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_value() {
        let v = Json::obj(vec![
            ("schema", Json::Str("ldbt-run-report/v1".into())),
            ("n", Json::u64(42)),
            ("pi", Json::Num(1.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::u64(1), Json::Str("x\"y\n".into())])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains("\"n\":42"), "integers render without fraction: {text}");
        assert!(text.contains("\\\"y\\n"), "escaping applied: {text}");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj(vec![("z", Json::u64(1)), ("a", Json::u64(2))]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_handles_numbers_and_escapes() {
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        let v = parse("{ \"k\" : [ 1 , 2 ] }").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }
}
