//! Span-style NDJSON event tracing, gated by `LDBT_TRACE`.
//!
//! Selector grammar (documented parse table, unit-tested below):
//!
//! | `LDBT_TRACE` value      | effect                                   |
//! |-------------------------|------------------------------------------|
//! | unset / empty / `"0"` / `"off"` | tracing disabled                 |
//! | `learn`                 | learn-pipeline events only               |
//! | `exec`                  | engine events only                       |
//! | `all`                   | both scopes                              |
//! | `<scope>:<path>`        | as above, written to `<path>` (else stderr) |
//! | anything else           | tracing disabled (fail safe, not fatal)  |
//!
//! Every event is one JSON object per line with a monotonic `ts_us`
//! (microseconds since tracer init), a `scope`, and an `ev` name.
//! Timestamps are taken *inside* the writer lock so file order is
//! timestamp order even when learn workers race — the selfcheck relies
//! on that.

use std::fs::File;
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::escape_into;

/// Which half of the system an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    Learn,
    Exec,
}

impl Scope {
    pub fn name(self) -> &'static str {
        match self {
            Scope::Learn => "learn",
            Scope::Exec => "exec",
        }
    }
}

/// Parsed form of `LDBT_TRACE`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceConfig {
    pub learn: bool,
    pub exec: bool,
    pub path: Option<String>,
}

impl TraceConfig {
    pub fn disabled(&self) -> bool {
        !self.learn && !self.exec
    }
}

/// Pure parse of the `LDBT_TRACE` selector (see module table).
pub fn parse_trace(raw: Option<&str>) -> TraceConfig {
    let raw = match raw {
        Some(s) => s.trim(),
        None => return TraceConfig::default(),
    };
    let (scope, path) = match raw.split_once(':') {
        Some((s, p)) if !p.is_empty() => (s, Some(p.to_string())),
        Some((s, _)) => (s, None),
        None => (raw, None),
    };
    let (learn, exec) = match scope {
        "learn" => (true, false),
        "exec" => (false, true),
        "all" => (true, true),
        // "", "0", "off", and unknown selectors all mean disabled.
        _ => (false, false),
    };
    if !learn && !exec {
        return TraceConfig::default();
    }
    TraceConfig { learn, exec, path }
}

/// One typed field value. Borrowed strings keep event sites
/// allocation-free up to the final render.
#[derive(Debug, Clone, Copy)]
pub enum Val<'a> {
    U(u64),
    I(i64),
    F(f64),
    S(&'a str),
    B(bool),
}

/// Render one NDJSON line (no trailing newline). Pure, unit-testable.
pub fn render_event(ts_us: u64, scope: Scope, ev: &str, fields: &[(&str, Val)]) -> String {
    let mut out = String::with_capacity(64 + 16 * fields.len());
    out.push_str("{\"ts_us\":");
    out.push_str(&ts_us.to_string());
    out.push_str(",\"scope\":\"");
    out.push_str(scope.name());
    out.push_str("\",\"ev\":\"");
    escape_into(ev, &mut out);
    out.push('"');
    for (k, v) in fields {
        out.push_str(",\"");
        escape_into(k, &mut out);
        out.push_str("\":");
        match v {
            Val::U(n) => out.push_str(&n.to_string()),
            Val::I(n) => out.push_str(&n.to_string()),
            Val::F(n) => out.push_str(&format!("{n}")),
            Val::B(b) => out.push_str(if *b { "true" } else { "false" }),
            Val::S(s) => {
                out.push('"');
                escape_into(s, &mut out);
                out.push('"');
            }
        }
    }
    out.push('}');
    out
}

struct Tracer {
    learn: bool,
    exec: bool,
    epoch: Instant,
    out: Mutex<Box<dyn Write + Send>>,
}

static TRACER: OnceLock<Option<Tracer>> = OnceLock::new();

fn tracer() -> Option<&'static Tracer> {
    TRACER
        .get_or_init(|| {
            let cfg = parse_trace(std::env::var("LDBT_TRACE").ok().as_deref());
            if cfg.disabled() {
                return None;
            }
            let out: Box<dyn Write + Send> = match &cfg.path {
                Some(p) => match File::create(p) {
                    Ok(f) => Box::new(f),
                    Err(e) => {
                        // Fail safe: keep tracing, to stderr.
                        eprintln!("LDBT_TRACE: cannot create {p}: {e}; tracing to stderr");
                        Box::new(std::io::stderr())
                    }
                },
                None => Box::new(std::io::stderr()),
            };
            Some(Tracer {
                learn: cfg.learn,
                exec: cfg.exec,
                epoch: Instant::now(),
                out: Mutex::new(out),
            })
        })
        .as_ref()
}

/// Cheap guard for event sites: one `OnceLock` load when disabled.
#[inline]
pub fn enabled(scope: Scope) -> bool {
    match tracer() {
        Some(t) => match scope {
            Scope::Learn => t.learn,
            Scope::Exec => t.exec,
        },
        None => false,
    }
}

/// Emit one event if the scope is enabled. The timestamp is taken under
/// the writer lock so lines are monotonic in file order.
pub fn emit(scope: Scope, ev: &str, fields: &[(&str, Val)]) {
    let Some(t) = tracer() else { return };
    let on = match scope {
        Scope::Learn => t.learn,
        Scope::Exec => t.exec,
    };
    if !on {
        return;
    }
    let mut out = t.out.lock().unwrap_or_else(|e| e.into_inner());
    let ts_us = t.epoch.elapsed().as_micros() as u64;
    let line = render_event(ts_us, scope, ev, fields);
    // A full disk is not worth crashing a run over; drop the line.
    let _ = writeln!(out, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_table() {
        // (input, learn, exec, path)
        let cases: &[(Option<&str>, bool, bool, Option<&str>)] = &[
            (None, false, false, None),
            (Some(""), false, false, None),
            (Some("0"), false, false, None),
            (Some("off"), false, false, None),
            (Some("bogus"), false, false, None),
            (Some("learn"), true, false, None),
            (Some("exec"), false, true, None),
            (Some("all"), true, true, None),
            (Some("exec:/tmp/t.ndjson"), false, true, Some("/tmp/t.ndjson")),
            (Some("all:out.ndjson"), true, true, Some("out.ndjson")),
            (Some(" learn "), true, false, None),
            // Unknown scope with a path is still disabled, and the path
            // is dropped with it.
            (Some("bogus:/tmp/x"), false, false, None),
            (Some("learn:"), true, false, None),
        ];
        for (raw, learn, exec, path) in cases {
            let cfg = parse_trace(*raw);
            assert_eq!(cfg.learn, *learn, "learn for {raw:?}");
            assert_eq!(cfg.exec, *exec, "exec for {raw:?}");
            assert_eq!(cfg.path.as_deref(), *path, "path for {raw:?}");
        }
    }

    #[test]
    fn render_is_valid_single_line_json() {
        let line = render_event(
            17,
            Scope::Exec,
            "translate",
            &[
                ("pc", Val::U(0x8000)),
                ("kind", Val::S("rules")),
                ("delta", Val::I(-3)),
                ("ratio", Val::F(0.5)),
                ("chained", Val::B(true)),
            ],
        );
        assert!(!line.contains('\n'));
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ts_us").and_then(crate::json::Json::as_num), Some(17.0));
        assert_eq!(v.get("scope").and_then(crate::json::Json::as_str), Some("exec"));
        assert_eq!(v.get("ev").and_then(crate::json::Json::as_str), Some("translate"));
        assert_eq!(v.get("pc").and_then(crate::json::Json::as_num), Some(32768.0));
        assert_eq!(v.get("kind").and_then(crate::json::Json::as_str), Some("rules"));
        assert_eq!(v.get("delta").and_then(crate::json::Json::as_num), Some(-3.0));
        assert_eq!(v.get("chained"), Some(&crate::json::Json::Bool(true)));
    }

    #[test]
    fn render_escapes_field_content() {
        let line = render_event(0, Scope::Learn, "e\"v", &[("k", Val::S("a\nb"))]);
        assert!(crate::json::parse(&line).is_ok(), "{line}");
    }
}
