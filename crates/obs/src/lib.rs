#![forbid(unsafe_code)]
//! Observability layer for the learned-DBT workspace.
//!
//! Three pieces, deliberately dependency-free so every crate can use them:
//!
//! * [`registry`] — monotonic counters and log2-bucket histograms. The
//!   single-threaded engine hot path uses [`registry::CounterBlock`]
//!   (`Cell`-backed, zero-allocation `&self` bumps); parallel learn
//!   workers accumulate into [`registry::WorkerCounters`] which flush
//!   into a shared [`registry::SharedCounters`] on drop.
//! * [`trace`] — span-style NDJSON event tracing, enabled by
//!   `LDBT_TRACE=learn|exec|all[:path]`. Disabled tracing costs one
//!   atomic load per (already-coarse) event site.
//! * [`json`] + [`selfcheck`] — a hand-rolled JSON writer/parser (the
//!   build environment has no crates.io access, hence no serde) and the
//!   schema self-checks for trace files and `LDBT_STATS_JSON` run
//!   reports, exercised by the `obs_selfcheck` binary from `tier1.sh`.

pub mod json;
pub mod registry;
pub mod selfcheck;
pub mod trace;
