//! Metrics registry: named monotonic counters and log2-bucket
//! histograms.
//!
//! Two flavors match the workspace's two concurrency regimes:
//!
//! * [`CounterBlock`] — `Cell`-backed, single-threaded, `&self` bumps
//!   with zero allocation. This is what sits in the engine dispatch hot
//!   path (the engine itself is `!Sync`; the cells make stat bumps
//!   possible without threading `&mut` through the dispatcher).
//! * [`SharedCounters`] + [`WorkerCounters`] — parallel learn workers
//!   bump a private `Cell` block and flush it into the shared atomics
//!   exactly once, on drop, so the hot loop never touches contended
//!   cache lines.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed block of named `u64` counters addressed by index. Callers
/// define an enum whose discriminants are the indices (see
/// `ldbt-dbt::stats::DbtCtr`).
pub struct CounterBlock {
    names: &'static [&'static str],
    vals: Box<[Cell<u64>]>,
}

impl CounterBlock {
    pub fn new(names: &'static [&'static str]) -> Self {
        CounterBlock { names, vals: names.iter().map(|_| Cell::new(0)).collect() }
    }

    #[inline]
    pub fn add(&self, i: usize, n: u64) {
        let c = &self.vals[i];
        c.set(c.get() + n);
    }

    #[inline]
    pub fn bump(&self, i: usize) {
        self.add(i, 1);
    }

    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.vals[i].get()
    }

    pub fn set(&self, i: usize, v: u64) {
        self.vals[i].set(v);
    }

    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Ordered (name, value) snapshot — registry order is declaration
    /// order, so rendered reports are deterministic.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.names.iter().zip(&self.vals[..]).map(|(n, v)| (*n, v.get())).collect()
    }
}

impl Clone for CounterBlock {
    fn clone(&self) -> Self {
        let fresh = CounterBlock::new(self.names);
        for (i, v) in self.vals.iter().enumerate() {
            fresh.vals[i].set(v.get());
        }
        fresh
    }
}

impl std::fmt::Debug for CounterBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

/// Number of log2 buckets: bucket `i` counts values whose bit length is
/// `i`, i.e. bucket 0 holds zeros, bucket k holds [2^(k-1), 2^k).
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucket histogram for hotness-style distributions.
pub struct Hist {
    buckets: [Cell<u64>; HIST_BUCKETS],
}

impl Hist {
    pub fn new() -> Self {
        Hist { buckets: std::array::from_fn(|_| Cell::new(0)) }
    }

    /// Bucket index for a value (its bit length).
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    #[inline]
    pub fn record(&self, v: u64) {
        let b = &self.buckets[Self::bucket_of(v)];
        b.set(b.get() + 1);
    }

    /// All 65 bucket counts in order.
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets.iter().map(Cell::get).collect()
    }

    /// Only the populated buckets, as (bit_length, count).
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| c.get() > 0)
            .map(|(i, c)| (i, c.get()))
            .collect()
    }
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.nonzero()).finish()
    }
}

/// Cross-thread counter block: the aggregation target for parallel
/// learn workers. Relaxed ordering suffices — values are only read
/// after the worker scope joins.
pub struct SharedCounters {
    names: &'static [&'static str],
    vals: Box<[AtomicU64]>,
}

impl SharedCounters {
    pub fn new(names: &'static [&'static str]) -> Self {
        SharedCounters { names, vals: names.iter().map(|_| AtomicU64::new(0)).collect() }
    }

    pub fn add(&self, i: usize, n: u64) {
        self.vals[i].fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self, i: usize) -> u64 {
        self.vals[i].load(Ordering::Relaxed)
    }

    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.names
            .iter()
            .zip(&self.vals[..])
            .map(|(n, v)| (*n, v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Fold a per-tenant [`CounterBlock`] into the shared registry in one
    /// pass (the engine flavor of multi-tenant aggregation: an engine's
    /// `DbtStats` counters live in a `Cell` block on its own thread, and
    /// serve-mode flushes them here after the run, so concurrent tenants
    /// never race or interleave partial counts).
    ///
    /// # Panics
    ///
    /// Panics if `block` was built over a different name table — the
    /// indices would silently mis-attribute counts otherwise.
    pub fn absorb(&self, block: &CounterBlock) {
        assert!(
            std::ptr::eq(self.names, block.names()) || self.names == block.names(),
            "absorb requires identical counter name tables"
        );
        for (i, (_, v)) in block.snapshot().into_iter().enumerate() {
            if v > 0 {
                self.add(i, v);
            }
        }
    }
}

impl std::fmt::Debug for SharedCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

/// Per-worker counter guard: bumps stay in thread-local `Cell`s and are
/// flushed into the [`SharedCounters`] exactly once, when the worker's
/// state is dropped (scope join, or teardown after a contained panic).
///
/// The shared registry is borrowed for any lifetime, not just
/// `'static`, so scoped worker pools — learn workers over a global
/// registry, serve-mode tenant engines over a per-call one — both fit.
pub struct WorkerCounters<'a> {
    shared: &'a SharedCounters,
    local: CounterBlock,
}

impl<'a> WorkerCounters<'a> {
    pub fn new(shared: &'a SharedCounters) -> Self {
        WorkerCounters { shared, local: CounterBlock::new(shared.names()) }
    }

    #[inline]
    pub fn add(&self, i: usize, n: u64) {
        self.local.add(i, n);
    }

    #[inline]
    pub fn bump(&self, i: usize) {
        self.local.bump(i);
    }

    pub fn local_get(&self, i: usize) -> u64 {
        self.local.get(i)
    }
}

impl Drop for WorkerCounters<'_> {
    fn drop(&mut self) {
        self.shared.absorb(&self.local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    const NAMES: &[&str] = &["a", "b", "c"];

    #[test]
    fn counter_block_bumps_and_snapshots_in_order() {
        let c = CounterBlock::new(NAMES);
        c.bump(0);
        c.add(2, 41);
        c.bump(2);
        assert_eq!(c.snapshot(), vec![("a", 1), ("b", 0), ("c", 42)]);
        let d = c.clone();
        c.bump(0);
        assert_eq!(d.get(0), 1, "clone is an independent copy");
        assert_eq!(c.get(0), 2);
    }

    #[test]
    fn hist_buckets_by_bit_length() {
        let h = Hist::new();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.nonzero(), vec![(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (64, 1)]);
        assert_eq!(h.snapshot().len(), HIST_BUCKETS);
    }

    #[test]
    fn worker_counters_flush_on_drop_across_threads() {
        static SHARED: OnceLock<SharedCounters> = OnceLock::new();
        let shared = SHARED.get_or_init(|| SharedCounters::new(NAMES));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let w = WorkerCounters::new(shared);
                    for _ in 0..100 {
                        w.bump(1);
                    }
                    assert_eq!(w.local_get(1), 100);
                    // Nothing is visible in `shared` until drop; after
                    // the scope joins everything is.
                });
            }
        });
        assert_eq!(shared.get(1), 400);
        assert_eq!(shared.get(0), 0);
    }

    #[test]
    fn absorb_folds_a_block_into_shared() {
        let shared = SharedCounters::new(NAMES);
        let block = CounterBlock::new(NAMES);
        block.add(0, 5);
        block.add(2, 7);
        shared.absorb(&block);
        shared.absorb(&block);
        assert_eq!(shared.snapshot(), vec![("a", 10), ("b", 0), ("c", 14)]);
    }

    #[test]
    #[should_panic(expected = "identical counter name tables")]
    fn absorb_rejects_mismatched_name_tables() {
        const OTHER: &[&str] = &["x"];
        let shared = SharedCounters::new(NAMES);
        shared.absorb(&CounterBlock::new(OTHER));
    }

    #[test]
    fn worker_counters_borrow_a_scoped_registry() {
        // Not `'static`: a stack-local registry works for scoped tenant
        // pools (the serve-mode pattern).
        let shared = SharedCounters::new(NAMES);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let w = WorkerCounters::new(&shared);
                    w.add(2, 21);
                });
            }
        });
        assert_eq!(shared.get(2), 42);
    }
}
