//! Schema validator for observability artifacts, used by
//! `scripts/tier1.sh`:
//!
//! ```text
//! obs_selfcheck trace  <path>   # validate an LDBT_TRACE NDJSON file
//! obs_selfcheck report <path>   # validate an LDBT_STATS_JSON run report
//! ```
//!
//! Exits 0 on success (printing a one-line summary), 1 on any schema
//! violation or I/O error.

use ldbt_obs::selfcheck;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [m, p] => (m.as_str(), p.as_str()),
        _ => {
            eprintln!("usage: obs_selfcheck <trace|report> <path>");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_selfcheck: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match mode {
        "trace" => selfcheck::check_trace_ndjson(&text).map(|n| format!("{path}: ok ({n} events)")),
        "report" => selfcheck::check_run_report(&text).map(|()| format!("{path}: ok")),
        _ => {
            eprintln!("usage: obs_selfcheck <trace|report> <path>");
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_selfcheck: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
