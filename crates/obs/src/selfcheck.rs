//! Schema self-checks for the two machine-readable artifacts the
//! workspace emits: `LDBT_TRACE` NDJSON files and `LDBT_STATS_JSON`
//! run reports. `scripts/tier1.sh` runs these via the `obs_selfcheck`
//! binary against real trace/report output.

use crate::json::{parse, Json};

/// Current run-report schema tag.
pub const REPORT_SCHEMA: &str = "ldbt-run-report/v1";

/// Validate an NDJSON trace: every non-empty line is a JSON object with
/// a numeric `ts_us` (non-decreasing in file order), a known `scope`,
/// and a non-empty `ev`. Returns the event count.
pub fn check_trace_ndjson(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut prev_ts = 0.0f64;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let v = parse(line).map_err(|e| at(&format!("not JSON: {e}")))?;
        if v.as_obj().is_none() {
            return Err(at("not an object"));
        }
        let ts =
            v.get("ts_us").and_then(Json::as_num).ok_or_else(|| at("missing numeric ts_us"))?;
        if ts < prev_ts {
            return Err(at(&format!("ts_us went backwards ({ts} < {prev_ts})")));
        }
        prev_ts = ts;
        match v.get("scope").and_then(Json::as_str) {
            Some("learn" | "exec") => {}
            other => return Err(at(&format!("bad scope {other:?}"))),
        }
        match v.get("ev").and_then(Json::as_str) {
            Some(ev) if !ev.is_empty() => {}
            _ => return Err(at("missing ev")),
        }
        count += 1;
    }
    Ok(count)
}

/// Validate a run report produced by `ldbt-core::report`. Checks the
/// schema tag, the shape of `benches` / `learn` / `learn_workers`, and
/// that every per-rule profile is sorted by its stable key.
pub fn check_run_report(text: &str) -> Result<(), String> {
    let v = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    match v.get("schema").and_then(Json::as_str) {
        Some(REPORT_SCHEMA) => {}
        other => return Err(format!("bad schema tag {other:?} (want {REPORT_SCHEMA:?})")),
    }
    let benches = v.get("benches").and_then(Json::as_arr).ok_or("missing benches array")?;
    for (i, b) in benches.iter().enumerate() {
        let ctx = |msg: &str| format!("benches[{i}]: {msg}");
        let name = b.get("name").and_then(Json::as_str).ok_or_else(|| ctx("missing name"))?;
        b.get("engine").and_then(Json::as_str).ok_or_else(|| ctx("missing engine"))?;
        check_counters(b.get("counters"), &format!("benches[{i}] ({name})"))?;
        if let Some(rules) = b.get("rules") {
            let rules = rules.as_arr().ok_or_else(|| ctx("rules is not an array"))?;
            let mut prev: Option<&str> = None;
            for (j, r) in rules.iter().enumerate() {
                let rctx = |msg: &str| format!("benches[{i}].rules[{j}]: {msg}");
                let key = r.get("key").and_then(Json::as_str).ok_or_else(|| rctx("missing key"))?;
                for f in ["len", "blocks", "execs"] {
                    r.get(f).and_then(Json::as_num).ok_or_else(|| rctx(&format!("missing {f}")))?;
                }
                // Keys render as fixed-width hex, so string order is
                // numeric order; strictly increasing ⇒ sorted + unique.
                if let Some(p) = prev {
                    if key <= p {
                        return Err(rctx(&format!("keys not sorted ({key} after {p})")));
                    }
                }
                prev = Some(key);
            }
        }
        if let Some(hot) = b.get("hot_blocks") {
            hot.as_arr().ok_or_else(|| ctx("hot_blocks is not an array"))?;
        }
    }
    if let Some(learn) = v.get("learn") {
        let learn = learn.as_arr().ok_or("learn is not an array")?;
        for (i, l) in learn.iter().enumerate() {
            l.get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("learn[{i}]: missing name"))?;
            check_counters(l.get("counters"), &format!("learn[{i}]"))?;
        }
    }
    if let Some(w) = v.get("learn_workers") {
        check_counters(Some(w), "learn_workers")?;
    }
    Ok(())
}

/// A counters object maps names to numbers, nothing else.
fn check_counters(v: Option<&Json>, ctx: &str) -> Result<(), String> {
    let fields =
        v.and_then(Json::as_obj).ok_or_else(|| format!("{ctx}: missing counters object"))?;
    for (k, val) in fields {
        if val.as_num().is_none() {
            return Err(format!("{ctx}: counter {k:?} is not a number"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{render_event, Scope, Val};

    #[test]
    fn accepts_rendered_trace_lines() {
        let text = [
            render_event(1, Scope::Learn, "phase", &[("name", Val::S("classify"))]),
            String::new(),
            render_event(2, Scope::Exec, "translate", &[("pc", Val::U(0x8000))]),
            render_event(2, Scope::Exec, "chain_link", &[]),
        ]
        .join("\n");
        assert_eq!(check_trace_ndjson(&text), Ok(3));
    }

    #[test]
    fn rejects_bad_traces() {
        let backwards =
            [render_event(5, Scope::Exec, "a", &[]), render_event(4, Scope::Exec, "b", &[])]
                .join("\n");
        assert!(check_trace_ndjson(&backwards).unwrap_err().contains("backwards"));
        assert!(check_trace_ndjson("{\"ts_us\":1,\"scope\":\"zap\",\"ev\":\"x\"}")
            .unwrap_err()
            .contains("scope"));
        assert!(check_trace_ndjson("not json").is_err());
        assert!(check_trace_ndjson("[1]").unwrap_err().contains("object"));
    }

    fn report(rules: &str) -> String {
        format!(
            "{{\"schema\":\"ldbt-run-report/v1\",\"benches\":[{{\"name\":\"b\",\
             \"engine\":\"rules\",\"counters\":{{\"x\":1}},\"rules\":[{rules}]}}],\
             \"learn\":[{{\"name\":\"b\",\"counters\":{{\"pairs\":2}}}}],\
             \"learn_workers\":{{\"verified\":3}}}}"
        )
    }

    #[test]
    fn accepts_a_well_formed_report() {
        let r = report(
            "{\"key\":\"0x01\",\"len\":1,\"blocks\":2,\"execs\":3},\
             {\"key\":\"0x02\",\"len\":1,\"blocks\":1,\"execs\":1}",
        );
        assert_eq!(check_run_report(&r), Ok(()));
    }

    #[test]
    fn rejects_unsorted_rules_and_bad_schema() {
        let r = report(
            "{\"key\":\"0x02\",\"len\":1,\"blocks\":1,\"execs\":1},\
             {\"key\":\"0x01\",\"len\":1,\"blocks\":1,\"execs\":1}",
        );
        assert!(check_run_report(&r).unwrap_err().contains("not sorted"));
        assert!(check_run_report("{\"schema\":\"v0\",\"benches\":[]}")
            .unwrap_err()
            .contains("schema"));
        assert!(check_run_report("{\"schema\":\"ldbt-run-report/v1\"}")
            .unwrap_err()
            .contains("benches"));
        let bad_ctr = "{\"schema\":\"ldbt-run-report/v1\",\"benches\":[{\"name\":\"b\",\
                       \"engine\":\"tcg\",\"counters\":{\"x\":\"nope\"}}]}";
        assert!(check_run_report(bad_ctr).unwrap_err().contains("not a number"));
    }
}
