#![forbid(unsafe_code)]
//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of Criterion's API its benches use: `Criterion`,
//! `bench_function`, `benchmark_group` (+ `sample_size`), `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology: each benchmark is warmed up, then timed over `sample_size`
//! samples (one run each once a run exceeds ~10 ms, batched otherwise);
//! the harness reports min / median / mean wall-clock time per iteration.
//! Results print in a Criterion-like one-line format. Pass a substring as
//! the first CLI argument to filter benchmarks by name.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
        Criterion { sample_size: 30, filter }
    }
}

impl Criterion {
    /// Override the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        run_one(name, self.sample_size, f);
        self
    }

    /// Start a named group of benchmarks (`group/name` reporting).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.parent.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        run_one(&full, self.sample_size.unwrap_or(self.parent.sample_size), f);
        self
    }

    /// Finish the group (reporting is immediate; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run and time the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: how many iterations fit in ~10 ms?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<40} time: [min {} median {} mean {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion { sample_size: 3, filter: None };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion { sample_size: 2, filter: Some("nomatch".into()) };
        let mut g = c.benchmark_group("grp");
        let mut ran = false;
        g.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| ());
        });
        g.finish();
        assert!(!ran, "filter must skip non-matching benchmarks");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
