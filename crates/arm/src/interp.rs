//! Concrete interpreter for the ARM subset.
//!
//! [`ArmState`] executes individual decoded instructions;
//! [`ArmMachine`] adds instruction fetch from memory and a run loop, and
//! serves as the *golden reference model*: the DBT's translated host code
//! must leave the guest-visible state identical to what this interpreter
//! computes.

use crate::encode::{decode, DecodeArmError};
use crate::flags::Flags;
use crate::insn::{AddrMode, ArmInstr, Operand2, Shift};
use crate::reg::ArmReg;
use crate::semantics::{eval_dp, eval_shift};
use ldbt_isa::{bits, Memory, Width};
use std::fmt;

/// The guest-visible architectural state.
#[derive(Debug, Clone, Default)]
pub struct ArmState {
    /// The 16 general registers (`regs[15]` is the PC).
    pub regs: [u32; 16],
    /// The NZCV flags.
    pub flags: Flags,
    /// Guest memory.
    pub mem: Memory,
    /// Optional upper bound of the guest-addressable region: a load or
    /// store whose effective address is at or beyond it raises
    /// [`ArmEvent::Trap`] *before* the access (the faulting instruction
    /// has no side effects). `None` (the default) disables the check.
    /// Mirrors `X86State::guest_limit` exactly so the DBT watchdog's
    /// differential compare stays sound across trap exits.
    pub trap_limit: Option<u32>,
}

/// The control-flow outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmEvent {
    /// Fall through to the next instruction.
    Next,
    /// Relative branch taken: word offset from the *next* instruction.
    Branch(i32),
    /// Call (`bl`): like [`ArmEvent::Branch`] but `lr` was written.
    Call(i32),
    /// Indirect branch to an absolute byte address.
    Indirect(u32),
    /// `svc` executed; payload is the immediate (0 = program exit,
    /// anything else traps — see [`ArmStop::Trap`]).
    Syscall(u32),
    /// A load or store crossed [`ArmState::trap_limit`]; payload is the
    /// faulting effective address. Raised before the access, so the
    /// instruction has no side effects.
    Trap(u32),
}

impl ArmState {
    /// A zeroed state.
    pub fn new() -> Self {
        ArmState::default()
    }

    /// Read a register.
    pub fn reg(&self, r: ArmReg) -> u32 {
        self.regs[r.index()]
    }

    /// Write a register.
    pub fn set_reg(&mut self, r: ArmReg, v: u32) {
        self.regs[r.index()] = v;
    }

    fn operand2(&self, op2: Operand2) -> (u32, bool) {
        match op2 {
            Operand2::Imm(v) => (v, self.flags.c),
            Operand2::Reg(r) => (self.reg(r), self.flags.c),
            Operand2::RegShift(r, s) => eval_shift(self.reg(r), Some(s), self.flags.c),
        }
    }

    /// The effective byte address of an addressing mode.
    pub fn effective_addr(&self, addr: AddrMode) -> u32 {
        match addr {
            AddrMode::Imm(rn, off) => self.reg(rn).wrapping_add(off as u32),
            AddrMode::Reg(rn, rm) => self.reg(rn).wrapping_add(self.reg(rm)),
            AddrMode::RegShift(rn, rm, s) => {
                let (idx, _) = eval_shift(self.reg(rm), Some(Shift::Lsl(s)), false);
                self.reg(rn).wrapping_add(idx)
            }
        }
    }

    /// Execute one decoded instruction against this state.
    ///
    /// Predicated instructions whose condition fails are no-ops that
    /// return [`ArmEvent::Next`]. The PC register is *not* advanced here;
    /// the caller owns control flow.
    pub fn exec(&mut self, instr: &ArmInstr) -> ArmEvent {
        if !instr.cond().eval(self.flags) {
            return ArmEvent::Next;
        }
        match *instr {
            ArmInstr::Dp { op, rd, rn, op2, set_flags, .. } => {
                let (b, shifter_carry) = self.operand2(op2);
                let a = if op.is_move() { 0 } else { self.reg(rn) };
                let r = eval_dp(op, a, b, shifter_carry, self.flags);
                if set_flags {
                    self.flags = r.flags;
                }
                if !op.is_compare() {
                    self.set_reg(rd, r.value);
                }
                ArmEvent::Next
            }
            ArmInstr::Mul { rd, rn, rm, set_flags, .. } => {
                let v = self.reg(rn).wrapping_mul(self.reg(rm));
                self.set_reg(rd, v);
                if set_flags {
                    self.flags.set_nz(v);
                }
                ArmEvent::Next
            }
            ArmInstr::Ldr { rt, addr, width, signed, .. } => {
                let a = self.effective_addr(addr);
                if self.trap_limit.is_some_and(|limit| a >= limit) {
                    return ArmEvent::Trap(a);
                }
                let raw = self.mem.read(a, width);
                let v = if signed && width != Width::W32 {
                    bits::sign_extend(raw as u64, width) as u32
                } else {
                    raw
                };
                self.set_reg(rt, v);
                ArmEvent::Next
            }
            ArmInstr::Str { rt, addr, width, .. } => {
                let a = self.effective_addr(addr);
                if self.trap_limit.is_some_and(|limit| a >= limit) {
                    return ArmEvent::Trap(a);
                }
                self.mem.write(a, self.reg(rt), width);
                ArmEvent::Next
            }
            ArmInstr::B { offset, .. } => ArmEvent::Branch(offset),
            ArmInstr::Bl { offset, .. } => ArmEvent::Call(offset),
            ArmInstr::Bx { rm, .. } => ArmEvent::Indirect(self.reg(rm)),
            ArmInstr::Svc { imm, .. } => ArmEvent::Syscall(imm),
        }
    }
}

/// Why a guest trap stopped an [`ArmMachine`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmTrapCause {
    /// `svc #n` with n ≠ 0 executed; payload is the immediate.
    Svc(u32),
    /// A load or store crossed the configured trap limit; payload is
    /// the faulting effective address.
    Mem(u32),
}

/// Why an [`ArmMachine`] run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArmStop {
    /// `svc #0` executed — normal program exit.
    Halt,
    /// The step budget was exhausted.
    OutOfFuel,
    /// Instruction fetch hit an undecodable word.
    Decode(DecodeArmError),
    /// A guest trap: `svc #n` (n ≠ 0) or an out-of-range memory access.
    /// The PC is left at the trapping instruction.
    Trap {
        /// Guest PC of the trapping instruction.
        pc: u32,
        /// What trapped.
        cause: ArmTrapCause,
    },
}

impl fmt::Display for ArmStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmStop::Halt => write!(f, "halted"),
            ArmStop::OutOfFuel => write!(f, "out of fuel"),
            ArmStop::Decode(e) => write!(f, "decode fault: {e}"),
            ArmStop::Trap { pc, cause: ArmTrapCause::Svc(n) } => {
                write!(f, "trap: svc #{n} at {pc:#x}")
            }
            ArmStop::Trap { pc, cause: ArmTrapCause::Mem(a) } => {
                write!(f, "trap: memory access at {a:#x} from {pc:#x}")
            }
        }
    }
}

/// A fetch–decode–execute machine over guest memory.
///
/// ```
/// use ldbt_arm::{encode::assemble, ArmInstr, ArmMachine, ArmReg, Cond, DpOp, Operand2};
///
/// // r0 = 2 + 3
/// let prog = assemble(&[
///     ArmInstr::mov(ArmReg::R0, Operand2::Imm(2)),
///     ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Imm(3)),
///     ArmInstr::Svc { imm: 0, cond: Cond::Al },
/// ]).unwrap();
/// let mut m = ArmMachine::new();
/// m.load(0x1000, &prog);
/// m.state.regs[15] = 0x1000;
/// m.run(100);
/// assert_eq!(m.state.reg(ArmReg::R0), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ArmMachine {
    /// The architectural state (PC in `regs[15]`).
    pub state: ArmState,
    /// Dynamic guest instructions executed.
    pub steps: u64,
}

impl ArmMachine {
    /// A machine with zeroed state.
    pub fn new() -> Self {
        ArmMachine::default()
    }

    /// Copy a program image into guest memory at `addr`.
    pub fn load(&mut self, addr: u32, image: &[u8]) {
        self.state.mem.write_bytes(addr, image);
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.state.regs[15]
    }

    /// Execute one instruction at the current PC.
    ///
    /// Returns the event; updates PC for all events except
    /// [`ArmEvent::Syscall`] and [`ArmEvent::Trap`] — a halting `svc #0`,
    /// a trapping `svc #n`, and an out-of-range access all leave the PC
    /// at the instruction that raised them (the trap-precision contract
    /// the DBT's repair snapshots rely on).
    pub fn step(&mut self) -> Result<ArmEvent, DecodeArmError> {
        let pc = self.pc();
        let word = self.state.mem.read(pc, Width::W32);
        let instr = decode(word)?;
        let event = self.state.exec(&instr);
        self.steps += 1;
        let next = pc.wrapping_add(4);
        match event {
            ArmEvent::Next => self.state.regs[15] = next,
            ArmEvent::Branch(off) => {
                self.state.regs[15] = next.wrapping_add((off as u32).wrapping_mul(4));
            }
            ArmEvent::Call(off) => {
                self.state.set_reg(ArmReg::Lr, next);
                self.state.regs[15] = next.wrapping_add((off as u32).wrapping_mul(4));
            }
            ArmEvent::Indirect(addr) => self.state.regs[15] = addr,
            ArmEvent::Syscall(_) | ArmEvent::Trap(_) => {}
        }
        Ok(event)
    }

    /// Run until halt, trap, decode fault, or `fuel` instructions.
    pub fn run(&mut self, fuel: u64) -> ArmStop {
        for _ in 0..fuel {
            match self.step() {
                Ok(ArmEvent::Syscall(0)) => return ArmStop::Halt,
                Ok(ArmEvent::Syscall(n)) => {
                    return ArmStop::Trap { pc: self.pc(), cause: ArmTrapCause::Svc(n) }
                }
                Ok(ArmEvent::Trap(a)) => {
                    return ArmStop::Trap { pc: self.pc(), cause: ArmTrapCause::Mem(a) }
                }
                Ok(_) => {}
                Err(e) => return ArmStop::Decode(e),
            }
        }
        ArmStop::OutOfFuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::encode::assemble;
    use crate::insn::DpOp;

    fn machine(prog: &[ArmInstr]) -> ArmMachine {
        let mut m = ArmMachine::new();
        m.load(0x1000, &assemble(prog).unwrap());
        m.state.regs[15] = 0x1000;
        m
    }

    #[test]
    fn arithmetic_and_flags() {
        let mut m = machine(&[
            ArmInstr::mov(ArmReg::R0, Operand2::Imm(7)),
            ArmInstr::dps(DpOp::Sub, ArmReg::R1, ArmReg::R0, Operand2::Imm(7)),
            ArmInstr::Svc { imm: 0, cond: Cond::Al },
        ]);
        assert_eq!(m.run(10), ArmStop::Halt);
        assert_eq!(m.state.reg(ArmReg::R1), 0);
        assert!(m.state.flags.z);
        assert!(m.state.flags.c); // no borrow
        assert_eq!(m.steps, 3);
    }

    #[test]
    fn predicated_instruction_skipped() {
        let mut m = machine(&[
            ArmInstr::cmp(ArmReg::R0, Operand2::Imm(1)), // 0 < 1 → NE
            ArmInstr::Dp {
                op: DpOp::Mov,
                rd: ArmReg::R2,
                rn: ArmReg::R0,
                op2: Operand2::Imm(9),
                set_flags: false,
                cond: Cond::Eq, // fails
            },
            ArmInstr::Dp {
                op: DpOp::Mov,
                rd: ArmReg::R3,
                rn: ArmReg::R0,
                op2: Operand2::Imm(8),
                set_flags: false,
                cond: Cond::Ne, // succeeds
            },
            ArmInstr::Svc { imm: 0, cond: Cond::Al },
        ]);
        assert_eq!(m.run(10), ArmStop::Halt);
        assert_eq!(m.state.reg(ArmReg::R2), 0);
        assert_eq!(m.state.reg(ArmReg::R3), 8);
    }

    #[test]
    fn loop_with_branch() {
        // r0 = 5; r1 = 0; do { r1 += r0; r0 -= 1 } while (r0 != 0)
        let mut m = machine(&[
            ArmInstr::mov(ArmReg::R0, Operand2::Imm(5)),
            ArmInstr::mov(ArmReg::R1, Operand2::Imm(0)),
            ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0)),
            ArmInstr::dps(DpOp::Sub, ArmReg::R0, ArmReg::R0, Operand2::Imm(1)),
            ArmInstr::B { offset: -3, cond: Cond::Ne },
            ArmInstr::Svc { imm: 0, cond: Cond::Al },
        ]);
        assert_eq!(m.run(100), ArmStop::Halt);
        assert_eq!(m.state.reg(ArmReg::R1), 15);
        assert_eq!(m.state.reg(ArmReg::R0), 0);
    }

    #[test]
    fn memory_and_scaled_addressing() {
        let mut m = machine(&[
            // r1 = base, r0 = index
            ArmInstr::str(ArmReg::R2, AddrMode::RegShift(ArmReg::R1, ArmReg::R0, 2)),
            ArmInstr::ldr(ArmReg::R3, AddrMode::RegShift(ArmReg::R1, ArmReg::R0, 2)),
            ArmInstr::Svc { imm: 0, cond: Cond::Al },
        ]);
        m.state.set_reg(ArmReg::R1, 0x8000);
        m.state.set_reg(ArmReg::R0, 3);
        m.state.set_reg(ArmReg::R2, 0xcafe_f00d);
        assert_eq!(m.run(10), ArmStop::Halt);
        assert_eq!(m.state.mem.read(0x8000 + 12, Width::W32), 0xcafe_f00d);
        assert_eq!(m.state.reg(ArmReg::R3), 0xcafe_f00d);
    }

    #[test]
    fn signed_byte_load() {
        let mut m = machine(&[
            ArmInstr::Ldr {
                rt: ArmReg::R0,
                addr: AddrMode::Imm(ArmReg::R1, 0),
                width: Width::W8,
                signed: true,
                cond: Cond::Al,
            },
            ArmInstr::Ldr {
                rt: ArmReg::R2,
                addr: AddrMode::Imm(ArmReg::R1, 0),
                width: Width::W8,
                signed: false,
                cond: Cond::Al,
            },
            ArmInstr::Svc { imm: 0, cond: Cond::Al },
        ]);
        m.state.set_reg(ArmReg::R1, 0x9000);
        m.state.mem.write_u8(0x9000, 0x80);
        assert_eq!(m.run(10), ArmStop::Halt);
        assert_eq!(m.state.reg(ArmReg::R0), 0xffff_ff80);
        assert_eq!(m.state.reg(ArmReg::R2), 0x80);
    }

    #[test]
    fn call_and_return() {
        // main: bl f; svc    f: mov r0, #42; bx lr
        let mut m = machine(&[
            ArmInstr::Bl { offset: 1, cond: Cond::Al }, // to index 2
            ArmInstr::Svc { imm: 0, cond: Cond::Al },
            ArmInstr::mov(ArmReg::R0, Operand2::Imm(42)),
            ArmInstr::Bx { rm: ArmReg::Lr, cond: Cond::Al },
        ]);
        assert_eq!(m.run(10), ArmStop::Halt);
        assert_eq!(m.state.reg(ArmReg::R0), 42);
        assert_eq!(m.state.reg(ArmReg::Lr), 0x1004);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut m = machine(&[ArmInstr::B { offset: -2, cond: Cond::Al }]);
        assert_eq!(m.run(10), ArmStop::OutOfFuel);
        assert_eq!(m.steps, 10);
    }

    #[test]
    fn decode_fault_stops() {
        let mut m = ArmMachine::new();
        m.state.mem.write(0x1000, 0xf000_0000, Width::W32);
        m.state.regs[15] = 0x1000;
        assert!(matches!(m.run(10), ArmStop::Decode(_)));
    }

    #[test]
    fn svc_nonzero_traps_with_pc_at_the_svc() {
        let mut m = machine(&[
            ArmInstr::mov(ArmReg::R0, Operand2::Imm(9)),
            ArmInstr::Svc { imm: 1, cond: Cond::Al },
            ArmInstr::mov(ArmReg::R0, Operand2::Imm(99)), // must not run
        ]);
        assert_eq!(m.run(10), ArmStop::Trap { pc: 0x1004, cause: ArmTrapCause::Svc(1) });
        assert_eq!(m.state.reg(ArmReg::R0), 9);
        assert_eq!(m.pc(), 0x1004, "pc stays at the svc");
    }

    #[test]
    fn trap_limit_stops_loads_and_stores_without_side_effects() {
        let mut m = machine(&[
            ArmInstr::str(ArmReg::R2, AddrMode::Imm(ArmReg::R1, 0)),
            ArmInstr::Svc { imm: 0, cond: Cond::Al },
        ]);
        m.state.trap_limit = Some(0x10_0000);
        m.state.set_reg(ArmReg::R1, 0x10_0000);
        m.state.set_reg(ArmReg::R2, 0xbeef);
        assert_eq!(m.run(10), ArmStop::Trap { pc: 0x1000, cause: ArmTrapCause::Mem(0x10_0000) });
        assert_eq!(m.state.mem.read(0x10_0000, Width::W32), 0, "store suppressed");

        let mut m = machine(&[
            ArmInstr::ldr(ArmReg::R0, AddrMode::Imm(ArmReg::R1, 4)),
            ArmInstr::Svc { imm: 0, cond: Cond::Al },
        ]);
        m.state.trap_limit = Some(0x10_0000);
        m.state.set_reg(ArmReg::R1, 0x10_0000);
        assert_eq!(m.run(10), ArmStop::Trap { pc: 0x1000, cause: ArmTrapCause::Mem(0x10_0004) });
        // Just below the limit is unaffected.
        let mut m = machine(&[
            ArmInstr::ldr(ArmReg::R0, AddrMode::Imm(ArmReg::R1, 0)),
            ArmInstr::Svc { imm: 0, cond: Cond::Al },
        ]);
        m.state.trap_limit = Some(0x10_0000);
        m.state.set_reg(ArmReg::R1, 0x10_0000 - 4);
        assert_eq!(m.run(10), ArmStop::Halt);
    }

    #[test]
    fn mul_sets_nz_only() {
        let mut m = machine(&[
            ArmInstr::Mul {
                rd: ArmReg::R0,
                rn: ArmReg::R1,
                rm: ArmReg::R2,
                set_flags: true,
                cond: Cond::Al,
            },
            ArmInstr::Svc { imm: 0, cond: Cond::Al },
        ]);
        m.state.set_reg(ArmReg::R1, 0x10000);
        m.state.set_reg(ArmReg::R2, 0x10000); // product wraps to 0
        m.state.flags.c = true;
        assert_eq!(m.run(10), ArmStop::Halt);
        assert_eq!(m.state.reg(ArmReg::R0), 0);
        assert!(m.state.flags.z);
        assert!(m.state.flags.c, "C preserved by mul");
    }
}
