#![forbid(unsafe_code)]
//! The guest instruction set: a 32-bit ARM-flavored RISC ISA.
//!
//! This crate models the guest side of the paper's ARM→x86 translation
//! pipeline. It is a faithful *subset* of ARMv7's integer ISA — a
//! load/store architecture with:
//!
//! * 16 general registers (`r0`–`r12`, `sp`, `lr`, `pc`),
//! * NZCV condition flags and fully predicated data-processing
//!   instructions,
//! * flexible second operands (`add r0, r1, r2, lsl #2`),
//! * base+offset / base+index(+shift) addressing modes,
//! * a fixed 32-bit instruction encoding with immediate-range limits
//!   (the "host ISA specific constraints" of paper §5 when ARM is the
//!   host).
//!
//! Provided components: the instruction type ([`ArmInstr`]), a binary
//! encoder/decoder ([`encode`]), an assembly printer, shared semantic
//! helpers ([`semantics`]) reused by the symbolic executor, and a concrete
//! interpreter ([`interp`]) used both as the golden reference model and as
//! the DBT's guest-architecture oracle in tests.
//!
//! # Example
//!
//! ```
//! use ldbt_arm::{ArmInstr, ArmReg, DpOp, Operand2};
//!
//! // add r1, r1, r0
//! let i = ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0));
//! assert_eq!(i.to_string(), "add r1, r1, r0");
//! let word = ldbt_arm::encode::encode(&i).unwrap();
//! assert_eq!(ldbt_arm::encode::decode(word).unwrap(), i);
//! ```

pub mod cond;
pub mod encode;
pub mod flags;
pub mod insn;
pub mod interp;
pub mod reg;
pub mod semantics;

pub use cond::Cond;
pub use flags::Flags;
pub use insn::{AddrMode, ArmInstr, DpOp, Operand2, Shift};
pub use interp::{ArmEvent, ArmMachine, ArmState, ArmStop, ArmTrapCause};
pub use reg::ArmReg;
