//! The ARM NZCV condition flags.

use std::fmt;

/// The four ARM condition-code flags.
///
/// * `n` — negative (bit 31 of the result),
/// * `z` — zero,
/// * `c` — carry (for subtraction: *no borrow*, the inverse of x86 `CF`),
/// * `v` — signed overflow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Negative flag.
    pub n: bool,
    /// Zero flag.
    pub z: bool,
    /// Carry flag (ARM polarity: set = no borrow on subtraction).
    pub c: bool,
    /// Signed-overflow flag.
    pub v: bool,
}

impl Flags {
    /// All flags clear.
    pub fn new() -> Self {
        Flags::default()
    }

    /// Set `n` and `z` from a 32-bit result, leaving `c` and `v` intact.
    pub fn set_nz(&mut self, result: u32) {
        self.n = (result >> 31) != 0;
        self.z = result == 0;
    }

    /// Pack as a 4-bit NZCV nibble (bit 3 = N … bit 0 = V).
    pub fn to_nzcv(self) -> u8 {
        ((self.n as u8) << 3) | ((self.z as u8) << 2) | ((self.c as u8) << 1) | (self.v as u8)
    }

    /// Unpack from a 4-bit NZCV nibble.
    pub fn from_nzcv(bits: u8) -> Self {
        Flags {
            n: bits & 0b1000 != 0,
            z: bits & 0b0100 != 0,
            c: bits & 0b0010 != 0,
            v: bits & 0b0001 != 0,
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.n { 'N' } else { 'n' },
            if self.z { 'Z' } else { 'z' },
            if self.c { 'C' } else { 'c' },
            if self.v { 'V' } else { 'v' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_nz_cases() {
        let mut f = Flags { c: true, v: true, ..Flags::new() };
        f.set_nz(0);
        assert!(f.z && !f.n && f.c && f.v);
        f.set_nz(0x8000_0000);
        assert!(f.n && !f.z && f.c && f.v);
        f.set_nz(1);
        assert!(!f.n && !f.z);
    }

    #[test]
    fn nzcv_roundtrip() {
        for bits in 0..16u8 {
            assert_eq!(Flags::from_nzcv(bits).to_nzcv(), bits);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Flags::new().to_string(), "nzcv");
        assert_eq!(Flags { n: true, z: false, c: true, v: false }.to_string(), "NzCv");
    }
}
