//! Binary encoding and decoding of ARM instructions.
//!
//! Instructions are fixed 32-bit little-endian words. The field layout is
//! ARM-flavored (condition in the top nibble, 4-bit register fields) but
//! simplified: data-processing immediates are plain 12-bit zero-extended
//! values rather than rotated 8-bit constants. The limited immediate range
//! is exactly the kind of "host ISA specific constraint" paper §5
//! discusses for ARM-as-host; constants outside the range must be
//! materialized in two instructions (see `ldbt-compiler`).
//!
//! Word layout by class (bits 27:26):
//!
//! ```text
//! 00 data-processing  cond[31:28] 00 I[25] op[24:21] S[20] rn[19:16] rd[15:12]
//!                       I=1: imm12[11:0]
//!                       I=0: shamt[11:7] shtype[6:5] 0[4] rm[3:0]
//! 01 load/store       cond 01 R[25] width[24:23] sign[22] 0[21] L[20] rn rt
//!                       R=0: off12[11:0] (two's complement)
//!                       R=1: shamt[11:7] 0[6:4] rm[3:0]
//! 10 branch family    cond 10 kind[25:24] (00 b, 01 bl, 10 bx, 11 svc)
//!                       b/bl: off24[23:0]   bx: rm[3:0]   svc: imm24[23:0]
//! 11 multiply         cond 11 0[25:21] S[20] rd[19:16] rm[11:8] rn[3:0]
//! ```

use crate::cond::Cond;
use crate::insn::{AddrMode, ArmInstr, DpOp, Operand2, Shift};
use crate::reg::ArmReg;
use ldbt_isa::Width;
use std::fmt;

/// Error produced when an instruction cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeArmError {
    /// Data-processing immediate out of the 12-bit range.
    ImmediateRange(u32),
    /// Load/store offset out of the signed 12-bit range.
    OffsetRange(i32),
    /// Shift amount outside 1–31.
    ShiftAmount(u8),
    /// Branch offset outside the signed 24-bit range.
    BranchRange(i32),
    /// `svc` immediate outside 24 bits.
    SvcRange(u32),
}

impl fmt::Display for EncodeArmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeArmError::ImmediateRange(v) => {
                write!(f, "immediate #{v} does not fit in 12 bits")
            }
            EncodeArmError::OffsetRange(v) => {
                write!(f, "offset #{v} does not fit in signed 12 bits")
            }
            EncodeArmError::ShiftAmount(a) => write!(f, "shift amount {a} outside 1..=31"),
            EncodeArmError::BranchRange(v) => {
                write!(f, "branch offset {v} does not fit in 24 bits")
            }
            EncodeArmError::SvcRange(v) => write!(f, "svc immediate {v} does not fit in 24 bits"),
        }
    }
}

impl std::error::Error for EncodeArmError {}

/// Error produced when a word does not decode to a valid instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeArmError {
    /// The offending word.
    pub word: u32,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for DecodeArmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeArmError {}

/// The maximum encodable data-processing immediate.
pub const MAX_DP_IMM: u32 = 0xfff;
/// The inclusive range of load/store immediate offsets.
pub const MEM_OFFSET_RANGE: std::ops::RangeInclusive<i32> = -2048..=2047;

fn shift_bits(shift: Shift) -> Result<u32, EncodeArmError> {
    let (ty, amt) = match shift {
        Shift::Lsl(a) => (0u32, a),
        Shift::Lsr(a) => (1, a),
        Shift::Asr(a) => (2, a),
        Shift::Ror(a) => (3, a),
    };
    if amt == 0 || amt > 31 {
        return Err(EncodeArmError::ShiftAmount(amt));
    }
    Ok(((amt as u32) << 7) | (ty << 5))
}

/// Encode one instruction into a 32-bit word.
///
/// # Errors
///
/// Returns an [`EncodeArmError`] if an immediate, offset, shift amount or
/// branch displacement falls outside its encodable range.
pub fn encode(instr: &ArmInstr) -> Result<u32, EncodeArmError> {
    let cond = instr.cond().encoding() << 28;
    let word = match *instr {
        ArmInstr::Dp { op, rd, rn, op2, set_flags, .. } => {
            let mut w = (op as u32) << 21
                | (set_flags as u32) << 20
                | (rn.index() as u32) << 16
                | (rd.index() as u32) << 12;
            match op2 {
                Operand2::Imm(v) => {
                    if v > MAX_DP_IMM {
                        return Err(EncodeArmError::ImmediateRange(v));
                    }
                    w |= 1 << 25 | v;
                }
                Operand2::Reg(rm) => w |= rm.index() as u32,
                Operand2::RegShift(rm, shift) => {
                    w |= shift_bits(shift)? | rm.index() as u32;
                }
            }
            w
        }
        ArmInstr::Ldr { rt, addr, width, signed, .. } => mem_word(rt, addr, width, signed, true)?,
        ArmInstr::Str { rt, addr, width, .. } => mem_word(rt, addr, width, false, false)?,
        ArmInstr::B { offset, .. } => 0b10 << 26 | off24(offset)?,
        ArmInstr::Bl { offset, .. } => 0b10 << 26 | 0b01 << 24 | off24(offset)?,
        ArmInstr::Bx { rm, .. } => 0b10 << 26 | 0b10 << 24 | rm.index() as u32,
        ArmInstr::Svc { imm, .. } => {
            if imm > 0xff_ffff {
                return Err(EncodeArmError::SvcRange(imm));
            }
            0b10 << 26 | 0b11 << 24 | imm
        }
        ArmInstr::Mul { rd, rn, rm, set_flags, .. } => {
            0b11 << 26
                | (set_flags as u32) << 20
                | (rd.index() as u32) << 16
                | (rm.index() as u32) << 8
                | rn.index() as u32
        }
    };
    Ok(cond | word)
}

fn off24(offset: i32) -> Result<u32, EncodeArmError> {
    if !(-(1 << 23)..(1 << 23)).contains(&offset) {
        return Err(EncodeArmError::BranchRange(offset));
    }
    Ok((offset as u32) & 0xff_ffff)
}

fn mem_word(
    rt: ArmReg,
    addr: AddrMode,
    width: Width,
    signed: bool,
    load: bool,
) -> Result<u32, EncodeArmError> {
    let wbits = match width {
        Width::W8 => 0u32,
        Width::W16 => 1,
        Width::W32 => 2,
    };
    let mut w = 0b01 << 26
        | wbits << 23
        | (signed as u32) << 22
        | (load as u32) << 20
        | (rt.index() as u32) << 12;
    match addr {
        AddrMode::Imm(rn, off) => {
            if !MEM_OFFSET_RANGE.contains(&off) {
                return Err(EncodeArmError::OffsetRange(off));
            }
            w |= (rn.index() as u32) << 16 | ((off as u32) & 0xfff);
        }
        AddrMode::Reg(rn, rm) => {
            w |= 1 << 25 | (rn.index() as u32) << 16 | rm.index() as u32;
        }
        AddrMode::RegShift(rn, rm, s) => {
            if s == 0 || s > 31 {
                return Err(EncodeArmError::ShiftAmount(s));
            }
            w |= 1 << 25 | (rn.index() as u32) << 16 | (s as u32) << 7 | rm.index() as u32;
        }
    }
    Ok(w)
}

/// Decode a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns a [`DecodeArmError`] for reserved encodings (e.g. condition
/// `0b1111`, non-canonical zero fields, or a register shift with amount 0
/// and non-`lsl` type).
pub fn decode(word: u32) -> Result<ArmInstr, DecodeArmError> {
    let err = |reason| Err(DecodeArmError { word, reason });
    let Some(cond) = Cond::from_encoding(word >> 28) else {
        return err("reserved condition 0b1111");
    };
    let reg = |shift: u32| ArmReg::from_index(((word >> shift) & 0xf) as usize);
    match (word >> 26) & 0b11 {
        0b00 => {
            let op = DpOp::ALL[((word >> 21) & 0xf) as usize % 15];
            if ((word >> 21) & 0xf) as usize == 15 {
                return err("reserved data-processing opcode");
            }
            let set_flags = (word >> 20) & 1 != 0;
            let rn = reg(16);
            let rd = reg(12);
            if op.is_compare() && !set_flags {
                return err("compare opcode without S bit");
            }
            let op2 = if (word >> 25) & 1 != 0 {
                Operand2::Imm(word & 0xfff)
            } else {
                if (word >> 4) & 1 != 0 {
                    return err("bit 4 must be zero in register op2");
                }
                let rm = reg(0);
                let amt = ((word >> 7) & 0x1f) as u8;
                let ty = (word >> 5) & 0b11;
                if amt == 0 {
                    if ty != 0 {
                        return err("shift amount 0 with non-lsl type");
                    }
                    Operand2::Reg(rm)
                } else {
                    let shift = match ty {
                        0 => Shift::Lsl(amt),
                        1 => Shift::Lsr(amt),
                        2 => Shift::Asr(amt),
                        _ => Shift::Ror(amt),
                    };
                    Operand2::RegShift(rm, shift)
                }
            };
            let set_flags = set_flags || op.is_compare();
            Ok(ArmInstr::Dp { op, rd, rn, op2, set_flags, cond })
        }
        0b01 => {
            let width = match (word >> 23) & 0b11 {
                0 => Width::W8,
                1 => Width::W16,
                2 => Width::W32,
                _ => return err("reserved load/store width"),
            };
            let signed = (word >> 22) & 1 != 0;
            let load = (word >> 20) & 1 != 0;
            if (word >> 21) & 1 != 0 {
                return err("bit 21 must be zero in load/store");
            }
            let rn = reg(16);
            let rt = reg(12);
            let addr = if (word >> 25) & 1 != 0 {
                let rm = reg(0);
                let s = ((word >> 7) & 0x1f) as u8;
                if (word >> 4) & 0b111 != 0 {
                    return err("bits 6:4 must be zero in register load/store");
                }
                if s == 0 {
                    AddrMode::Reg(rn, rm)
                } else {
                    AddrMode::RegShift(rn, rm, s)
                }
            } else {
                let off = ((word & 0xfff) << 20) as i32 >> 20;
                AddrMode::Imm(rn, off)
            };
            if load {
                Ok(ArmInstr::Ldr { rt, addr, width, signed, cond })
            } else {
                if signed {
                    return err("signed store is invalid");
                }
                Ok(ArmInstr::Str { rt, addr, width, cond })
            }
        }
        0b10 => {
            let kind = (word >> 24) & 0b11;
            let offset = ((word & 0xff_ffff) << 8) as i32 >> 8;
            match kind {
                0b00 => Ok(ArmInstr::B { offset, cond }),
                0b01 => Ok(ArmInstr::Bl { offset, cond }),
                0b10 => {
                    if word & 0xff_fff0 != 0 {
                        return err("bits 23:4 must be zero in bx");
                    }
                    Ok(ArmInstr::Bx { rm: reg(0), cond })
                }
                _ => Ok(ArmInstr::Svc { imm: word & 0xff_ffff, cond }),
            }
        }
        _ => {
            if (word >> 21) & 0x1f != 0 {
                return err("bits 25:21 must be zero in multiply");
            }
            if (word >> 4) & 0xf != 0 || (word >> 12) & 0xf != 0 {
                return err("reserved multiply fields must be zero");
            }
            Ok(ArmInstr::Mul {
                rd: reg(16),
                rn: reg(0),
                rm: reg(8),
                set_flags: (word >> 20) & 1 != 0,
                cond,
            })
        }
    }
}

/// Encode a sequence of instructions into little-endian bytes.
///
/// # Errors
///
/// Propagates the first [`EncodeArmError`].
pub fn assemble(instrs: &[ArmInstr]) -> Result<Vec<u8>, EncodeArmError> {
    let mut out = Vec::with_capacity(instrs.len() * 4);
    for i in instrs {
        out.extend_from_slice(&encode(i)?.to_le_bytes());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::ArmInstr as I;

    fn roundtrip(i: I) {
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_dp_forms() {
        roundtrip(I::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0)));
        roundtrip(I::dps(DpOp::Sub, ArmReg::R0, ArmReg::R2, Operand2::Imm(4095)));
        roundtrip(I::mov(ArmReg::R12, Operand2::RegShift(ArmReg::R3, Shift::Ror(31))));
        roundtrip(I::cmp(ArmReg::Sp, Operand2::Imm(0)));
        for op in DpOp::ALL {
            roundtrip(I::dp(op, ArmReg::R4, ArmReg::R5, Operand2::Reg(ArmReg::R6)));
            roundtrip(I::dps(op, ArmReg::R4, ArmReg::R5, Operand2::Imm(7)));
            roundtrip(I::dp(
                op,
                ArmReg::R4,
                ArmReg::R5,
                Operand2::RegShift(ArmReg::R7, Shift::Asr(9)),
            ));
        }
    }

    #[test]
    fn roundtrip_mem_forms() {
        roundtrip(I::ldr(ArmReg::R0, AddrMode::Imm(ArmReg::R0, -4)));
        roundtrip(I::ldr(ArmReg::R0, AddrMode::Imm(ArmReg::Sp, 2047)));
        roundtrip(I::str(ArmReg::R1, AddrMode::Imm(ArmReg::R6, -2048)));
        roundtrip(I::str(ArmReg::R1, AddrMode::Reg(ArmReg::R6, ArmReg::R2)));
        roundtrip(I::Ldr {
            rt: ArmReg::R9,
            addr: AddrMode::RegShift(ArmReg::R1, ArmReg::R0, 2),
            width: Width::W8,
            signed: true,
            cond: Cond::Al,
        });
        roundtrip(I::Str {
            rt: ArmReg::R9,
            addr: AddrMode::Imm(ArmReg::R1, 0),
            width: Width::W16,
            cond: Cond::Al,
        });
    }

    #[test]
    fn roundtrip_branch_family() {
        roundtrip(I::B { offset: -3, cond: Cond::Ne });
        roundtrip(I::B { offset: (1 << 23) - 1, cond: Cond::Al });
        roundtrip(I::Bl { offset: -(1 << 23), cond: Cond::Al });
        roundtrip(I::Bx { rm: ArmReg::Lr, cond: Cond::Al });
        roundtrip(I::Svc { imm: 0, cond: Cond::Al });
        roundtrip(I::Svc { imm: 0xff_ffff, cond: Cond::Al });
    }

    #[test]
    fn roundtrip_mul_and_conditions() {
        roundtrip(I::Mul {
            rd: ArmReg::R3,
            rn: ArmReg::R1,
            rm: ArmReg::R2,
            set_flags: true,
            cond: Cond::Al,
        });
        for cond in Cond::ALL {
            roundtrip(I::Dp {
                op: DpOp::Add,
                rd: ArmReg::R0,
                rn: ArmReg::R0,
                op2: Operand2::Imm(1),
                set_flags: false,
                cond,
            });
        }
    }

    #[test]
    fn encode_range_errors() {
        assert_eq!(
            encode(&I::mov(ArmReg::R0, Operand2::Imm(4096))),
            Err(EncodeArmError::ImmediateRange(4096))
        );
        assert_eq!(
            encode(&I::ldr(ArmReg::R0, AddrMode::Imm(ArmReg::R0, 2048))),
            Err(EncodeArmError::OffsetRange(2048))
        );
        assert_eq!(
            encode(&I::mov(ArmReg::R0, Operand2::RegShift(ArmReg::R1, Shift::Lsl(0)))),
            Err(EncodeArmError::ShiftAmount(0))
        );
        assert_eq!(
            encode(&I::B { offset: 1 << 23, cond: Cond::Al }),
            Err(EncodeArmError::BranchRange(1 << 23))
        );
        assert_eq!(
            encode(&I::Svc { imm: 1 << 24, cond: Cond::Al }),
            Err(EncodeArmError::SvcRange(1 << 24))
        );
    }

    #[test]
    fn decode_rejects_reserved() {
        assert!(decode(0xf000_0000).is_err()); // cond 1111
                                               // DP opcode 15.
        assert!(decode(15 << 21).is_err());
        // Register op2 with bit 4 set.
        assert!(decode((DpOp::Add as u32) << 21 | 1 << 4).is_err());
        // lsr #0 (type 1, amount 0).
        assert!(decode((DpOp::Add as u32) << 21 | 1 << 5).is_err());
        // Load/store width 3.
        assert!(decode(0b01 << 26 | 0b11 << 23).is_err());
        // Signed store.
        assert!(decode(0b01 << 26 | 0b10 << 23 | 1 << 22).is_err());
    }

    #[test]
    fn assemble_emits_le_words() {
        let bytes =
            assemble(&[I::mov(ArmReg::R0, Operand2::Imm(1)), I::Svc { imm: 0, cond: Cond::Al }])
                .unwrap();
        assert_eq!(bytes.len(), 8);
        let w0 = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        assert_eq!(decode(w0).unwrap(), I::mov(ArmReg::R0, Operand2::Imm(1)));
    }

    #[test]
    fn garbage_words_decode_without_panicking() {
        // Every 32-bit word must either decode or return an error —
        // never panic: the DBT feeds raw guest memory straight in here.
        let mut err = 0u32;
        for base in 0..0x2_0000u32 {
            let word = base.wrapping_mul(0x6c07_8965).wrapping_add(0x1234_5677) ^ (base << 13);
            if decode(word).is_err() {
                err += 1;
            }
        }
        assert!(err > 0, "some garbage must be rejected");
        // A known-hostile shape: all bits set (undefined condition field).
        assert!(decode(0xffff_ffff).is_err());
    }

    #[test]
    fn exhaustive_decode_encode_fixpoint() {
        // Any word that decodes must re-encode to itself (sampled).
        let mut checked = 0u32;
        for base in (0..0x1_0000u32).step_by(7) {
            let word = base.wrapping_mul(0x9e37_79b9) ^ base;
            if let Ok(i) = decode(word) {
                let again = encode(&i).expect("decoded instruction must encode");
                assert_eq!(again, word, "{i}");
                checked += 1;
            }
        }
        assert!(checked > 100, "too few decodable samples: {checked}");
    }
}
