//! ARM general-purpose registers.

use std::fmt;

/// One of the 16 ARM general registers.
///
/// `r13`/`r14`/`r15` carry their conventional roles (`sp`, `lr`, `pc`).
/// The modeled subset never uses `pc` as a data operand; the decoder
/// accepts it but the DBT front end rejects such instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum ArmReg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    Sp,
    Lr,
    Pc,
}

impl ArmReg {
    /// All 16 registers in index order.
    pub const ALL: [ArmReg; 16] = [
        ArmReg::R0,
        ArmReg::R1,
        ArmReg::R2,
        ArmReg::R3,
        ArmReg::R4,
        ArmReg::R5,
        ArmReg::R6,
        ArmReg::R7,
        ArmReg::R8,
        ArmReg::R9,
        ArmReg::R10,
        ArmReg::R11,
        ArmReg::R12,
        ArmReg::Sp,
        ArmReg::Lr,
        ArmReg::Pc,
    ];

    /// The register's architectural index (0–15).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The register with the given architectural index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub fn from_index(index: usize) -> ArmReg {
        Self::ALL[index]
    }
}

impl fmt::Display for ArmReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmReg::Sp => write!(f, "sp"),
            ArmReg::Lr => write!(f, "lr"),
            ArmReg::Pc => write!(f, "pc"),
            r => write!(f, "r{}", r.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, r) in ArmReg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(ArmReg::from_index(i), *r);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ArmReg::R0.to_string(), "r0");
        assert_eq!(ArmReg::R12.to_string(), "r12");
        assert_eq!(ArmReg::Sp.to_string(), "sp");
        assert_eq!(ArmReg::Lr.to_string(), "lr");
        assert_eq!(ArmReg::Pc.to_string(), "pc");
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        let _ = ArmReg::from_index(16);
    }
}
