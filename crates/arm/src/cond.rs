//! ARM condition codes and their evaluation over NZCV flags.

use crate::flags::Flags;
use std::fmt;

/// An ARM condition code.
///
/// Every instruction carries one; `Al` (always) is the unconditional
/// default. Any other value on a non-branch instruction makes it
/// *predicated*, which the rule learner excludes in the preparation step
/// (Table 1, column "PI").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Cs,
    Cc,
    Mi,
    Pl,
    Vs,
    Vc,
    Hi,
    Ls,
    Ge,
    Lt,
    Gt,
    Le,
    Al,
}

impl Cond {
    /// All condition codes in encoding order.
    pub const ALL: [Cond; 15] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
    ];

    /// The 4-bit encoding of the condition.
    pub fn encoding(self) -> u32 {
        self as u32
    }

    /// The condition with the given 4-bit encoding.
    pub fn from_encoding(bits: u32) -> Option<Cond> {
        Self::ALL.get(bits as usize).copied()
    }

    /// Evaluate the condition against a flag state.
    ///
    /// ```
    /// use ldbt_arm::{Cond, Flags};
    /// let f = Flags { z: true, ..Flags::new() };
    /// assert!(Cond::Eq.eval(f));
    /// assert!(!Cond::Ne.eval(f));
    /// assert!(Cond::Al.eval(f));
    /// ```
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Cs => f.c,
            Cond::Cc => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Vs => f.v,
            Cond::Vc => !f.v,
            Cond::Hi => f.c && !f.z,
            Cond::Ls => !f.c || f.z,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
            Cond::Al => true,
        }
    }

    /// The logical negation (`Al` has none).
    pub fn invert(self) -> Option<Cond> {
        Some(match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Cs => Cond::Cc,
            Cond::Cc => Cond::Cs,
            Cond::Mi => Cond::Pl,
            Cond::Pl => Cond::Mi,
            Cond::Vs => Cond::Vc,
            Cond::Vc => Cond::Vs,
            Cond::Hi => Cond::Ls,
            Cond::Ls => Cond::Hi,
            Cond::Ge => Cond::Lt,
            Cond::Lt => Cond::Ge,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
            Cond::Al => return None,
        })
    }

    /// Which flags the condition reads, as an NZCV nibble mask.
    pub fn flags_read(self) -> u8 {
        match self {
            Cond::Eq | Cond::Ne => 0b0100,
            Cond::Cs | Cond::Cc => 0b0010,
            Cond::Mi | Cond::Pl => 0b1000,
            Cond::Vs | Cond::Vc => 0b0001,
            Cond::Hi | Cond::Ls => 0b0110,
            Cond::Ge | Cond::Lt => 0b1001,
            Cond::Gt | Cond::Le => 0b1101,
            Cond::Al => 0,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_flag_states() -> impl Iterator<Item = Flags> {
        (0..16u8).map(Flags::from_nzcv)
    }

    #[test]
    fn encoding_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_encoding(c.encoding()), Some(c));
        }
        assert_eq!(Cond::from_encoding(15), None);
    }

    #[test]
    fn invert_is_involutive_and_complementary() {
        for c in Cond::ALL {
            let Some(inv) = c.invert() else {
                assert_eq!(c, Cond::Al);
                continue;
            };
            assert_eq!(inv.invert(), Some(c));
            for f in all_flag_states() {
                assert_eq!(c.eval(f), !inv.eval(f), "{c:?} vs {inv:?} at {f}");
            }
        }
    }

    #[test]
    fn signed_comparisons() {
        // After `cmp a, b`: GE iff a >= b (signed).
        for (a, b) in [(5i32, 3i32), (3, 5), (-1, 1), (1, -1), (i32::MIN, 1), (0, 0)] {
            let (au, bu) = (a as u32, b as u32);
            let r = au.wrapping_sub(bu);
            let f = Flags {
                n: (r >> 31) != 0,
                z: r == 0,
                c: ldbt_isa::bits::sub_carry32_arm(au, bu, true),
                v: ldbt_isa::bits::sub_overflow32(au, bu),
            };
            assert_eq!(Cond::Ge.eval(f), a >= b, "ge {a} {b}");
            assert_eq!(Cond::Lt.eval(f), a < b, "lt {a} {b}");
            assert_eq!(Cond::Gt.eval(f), a > b, "gt {a} {b}");
            assert_eq!(Cond::Le.eval(f), a <= b, "le {a} {b}");
        }
    }

    #[test]
    fn unsigned_comparisons() {
        // After `cmp a, b`: HI iff a > b (unsigned), CS iff a >= b.
        for (a, b) in [(5u32, 3u32), (3, 5), (u32::MAX, 0), (0, u32::MAX), (7, 7)] {
            let r = a.wrapping_sub(b);
            let f = Flags {
                n: (r >> 31) != 0,
                z: r == 0,
                c: ldbt_isa::bits::sub_carry32_arm(a, b, true),
                v: ldbt_isa::bits::sub_overflow32(a, b),
            };
            assert_eq!(Cond::Hi.eval(f), a > b);
            assert_eq!(Cond::Ls.eval(f), a <= b);
            assert_eq!(Cond::Cs.eval(f), a >= b);
            assert_eq!(Cond::Cc.eval(f), a < b);
        }
    }

    #[test]
    fn flags_read_covers_eval_dependence() {
        // If a flag bit is not in flags_read(), toggling it never changes eval.
        for c in Cond::ALL {
            let mask = c.flags_read();
            for f in all_flag_states() {
                for bit in 0..4u8 {
                    if mask & (1 << bit) == 0 {
                        let toggled = Flags::from_nzcv(f.to_nzcv() ^ (1 << bit));
                        assert_eq!(c.eval(f), c.eval(toggled), "{c:?} bit {bit}");
                    }
                }
            }
        }
    }
}
