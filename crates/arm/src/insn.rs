//! ARM instruction types, operands, and static metadata.

use crate::cond::Cond;
use crate::reg::ArmReg;
use ldbt_isa::{NormAddr, Scale, Width};
use std::fmt;

/// A constant shift applied to a register operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shift {
    /// Logical shift left by 1–31.
    Lsl(u8),
    /// Logical shift right by 1–31.
    Lsr(u8),
    /// Arithmetic shift right by 1–31.
    Asr(u8),
    /// Rotate right by 1–31.
    Ror(u8),
}

impl Shift {
    /// The shift amount.
    pub fn amount(self) -> u8 {
        match self {
            Shift::Lsl(a) | Shift::Lsr(a) | Shift::Asr(a) | Shift::Ror(a) => a,
        }
    }
}

impl fmt::Display for Shift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shift::Lsl(a) => write!(f, "lsl #{a}"),
            Shift::Lsr(a) => write!(f, "lsr #{a}"),
            Shift::Asr(a) => write!(f, "asr #{a}"),
            Shift::Ror(a) => write!(f, "ror #{a}"),
        }
    }
}

/// The flexible second operand of data-processing instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand2 {
    /// An immediate. The encoder accepts 0–4095 (12 bits, zero-extended);
    /// larger constants must be materialized with `mov`+`orr`.
    Imm(u32),
    /// A plain register.
    Reg(ArmReg),
    /// A register with a constant shift, e.g. `r0, lsl #2`.
    RegShift(ArmReg, Shift),
}

impl fmt::Display for Operand2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand2::Imm(v) => write!(f, "#{v}"),
            Operand2::Reg(r) => write!(f, "{r}"),
            Operand2::RegShift(r, s) => write!(f, "{r}, {s}"),
        }
    }
}

/// A data-processing opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DpOp {
    And,
    Eor,
    Sub,
    Rsb,
    Add,
    Adc,
    Sbc,
    Orr,
    Mov,
    Mvn,
    Bic,
    Cmp,
    Cmn,
    Tst,
    Teq,
}

impl DpOp {
    /// All data-processing opcodes in encoding order.
    pub const ALL: [DpOp; 15] = [
        DpOp::And,
        DpOp::Eor,
        DpOp::Sub,
        DpOp::Rsb,
        DpOp::Add,
        DpOp::Adc,
        DpOp::Sbc,
        DpOp::Orr,
        DpOp::Mov,
        DpOp::Mvn,
        DpOp::Bic,
        DpOp::Cmp,
        DpOp::Cmn,
        DpOp::Tst,
        DpOp::Teq,
    ];

    /// Whether the opcode only sets flags and writes no register
    /// (`cmp`, `cmn`, `tst`, `teq`).
    pub fn is_compare(self) -> bool {
        matches!(self, DpOp::Cmp | DpOp::Cmn | DpOp::Tst | DpOp::Teq)
    }

    /// Whether the opcode ignores the first source register
    /// (`mov`, `mvn`).
    pub fn is_move(self) -> bool {
        matches!(self, DpOp::Mov | DpOp::Mvn)
    }

    /// Whether the opcode is arithmetic (sets C/V from the adder) rather
    /// than logical (leaves C/V to the shifter).
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            DpOp::Add | DpOp::Adc | DpOp::Sub | DpOp::Sbc | DpOp::Rsb | DpOp::Cmp | DpOp::Cmn
        )
    }

    /// Whether the opcode reads the incoming carry flag (`adc`, `sbc`).
    pub fn reads_carry(self) -> bool {
        matches!(self, DpOp::Adc | DpOp::Sbc)
    }

    /// The mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            DpOp::And => "and",
            DpOp::Eor => "eor",
            DpOp::Sub => "sub",
            DpOp::Rsb => "rsb",
            DpOp::Add => "add",
            DpOp::Adc => "adc",
            DpOp::Sbc => "sbc",
            DpOp::Orr => "orr",
            DpOp::Mov => "mov",
            DpOp::Mvn => "mvn",
            DpOp::Bic => "bic",
            DpOp::Cmp => "cmp",
            DpOp::Cmn => "cmn",
            DpOp::Tst => "tst",
            DpOp::Teq => "teq",
        }
    }
}

/// A load/store addressing mode (offset addressing only; no writeback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// `[rn, #imm]` with a signed 12-bit offset.
    Imm(ArmReg, i32),
    /// `[rn, rm]`.
    Reg(ArmReg, ArmReg),
    /// `[rn, rm, lsl #s]`.
    RegShift(ArmReg, ArmReg, u8),
}

impl AddrMode {
    /// The base register.
    pub fn base(self) -> ArmReg {
        match self {
            AddrMode::Imm(rn, _) | AddrMode::Reg(rn, _) | AddrMode::RegShift(rn, _, _) => rn,
        }
    }

    /// Registers the address reads.
    pub fn regs(self) -> Vec<ArmReg> {
        match self {
            AddrMode::Imm(rn, _) => vec![rn],
            AddrMode::Reg(rn, rm) | AddrMode::RegShift(rn, rm, _) => vec![rn, rm],
        }
    }

    /// Normalize to `base + index×scale + offset` (paper §3.2).
    pub fn normalize(self) -> NormAddr<ArmReg> {
        match self {
            AddrMode::Imm(rn, off) => NormAddr { base: Some(rn), index: None, offset: off as i64 },
            AddrMode::Reg(rn, rm) => {
                NormAddr { base: Some(rn), index: Some((rm, Scale::Shl(0))), offset: 0 }
            }
            AddrMode::RegShift(rn, rm, s) => {
                NormAddr { base: Some(rn), index: Some((rm, Scale::Shl(s as u32))), offset: 0 }
            }
        }
    }
}

impl fmt::Display for AddrMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrMode::Imm(rn, 0) => write!(f, "[{rn}]"),
            AddrMode::Imm(rn, off) => write!(f, "[{rn}, #{off}]"),
            AddrMode::Reg(rn, rm) => write!(f, "[{rn}, {rm}]"),
            AddrMode::RegShift(rn, rm, s) => write!(f, "[{rn}, {rm}, lsl #{s}]"),
        }
    }
}

/// An ARM instruction (the modeled subset).
///
/// Branch targets are *instruction-relative word offsets* from the
/// instruction after the branch (so `0` falls through), matching the
/// pipeline-adjusted semantics of real ARM relative branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArmInstr {
    /// A data-processing instruction: `op{s}{cond} rd, rn, op2`.
    Dp {
        /// Opcode.
        op: DpOp,
        /// Destination (ignored for compares).
        rd: ArmReg,
        /// First source (ignored for moves).
        rn: ArmReg,
        /// Flexible second operand.
        op2: Operand2,
        /// Whether NZCV is updated (`s` suffix). Always true for compares.
        set_flags: bool,
        /// Predication condition.
        cond: Cond,
    },
    /// 32-bit multiply: `mul{s} rd, rn, rm` (sets only N and Z when `s`).
    Mul {
        /// Destination.
        rd: ArmReg,
        /// First factor.
        rn: ArmReg,
        /// Second factor.
        rm: ArmReg,
        /// Whether N/Z are updated.
        set_flags: bool,
        /// Predication condition.
        cond: Cond,
    },
    /// Load: `ldr{b,h}{s} rt, addr`.
    Ldr {
        /// Destination register.
        rt: ArmReg,
        /// Address.
        addr: AddrMode,
        /// Access width.
        width: Width,
        /// Sign-extend (vs zero-extend) sub-word loads.
        signed: bool,
        /// Predication condition.
        cond: Cond,
    },
    /// Store: `str{b,h} rt, addr`.
    Str {
        /// Source register.
        rt: ArmReg,
        /// Address.
        addr: AddrMode,
        /// Access width.
        width: Width,
        /// Predication condition.
        cond: Cond,
    },
    /// Relative branch: `b{cond} target`.
    B {
        /// Word offset relative to the next instruction.
        offset: i32,
        /// Branch condition.
        cond: Cond,
    },
    /// Branch with link (call): `bl target`.
    Bl {
        /// Word offset relative to the next instruction.
        offset: i32,
        /// Predication condition.
        cond: Cond,
    },
    /// Indirect branch: `bx rm` (returns when `rm == lr`).
    Bx {
        /// Target-address register.
        rm: ArmReg,
        /// Predication condition.
        cond: Cond,
    },
    /// Supervisor call. `svc #0` halts the machine (program exit).
    Svc {
        /// Immediate payload (24 bits).
        imm: u32,
        /// Predication condition.
        cond: Cond,
    },
}

impl ArmInstr {
    /// Unconditional, non-flag-setting data-processing instruction.
    pub fn dp(op: DpOp, rd: ArmReg, rn: ArmReg, op2: Operand2) -> ArmInstr {
        ArmInstr::Dp { op, rd, rn, op2, set_flags: op.is_compare(), cond: Cond::Al }
    }

    /// Flag-setting variant (`adds`, `subs`, …).
    pub fn dps(op: DpOp, rd: ArmReg, rn: ArmReg, op2: Operand2) -> ArmInstr {
        ArmInstr::Dp { op, rd, rn, op2, set_flags: true, cond: Cond::Al }
    }

    /// `mov rd, op2`.
    pub fn mov(rd: ArmReg, op2: Operand2) -> ArmInstr {
        Self::dp(DpOp::Mov, rd, ArmReg::R0, op2)
    }

    /// `cmp rn, op2`.
    pub fn cmp(rn: ArmReg, op2: Operand2) -> ArmInstr {
        Self::dp(DpOp::Cmp, ArmReg::R0, rn, op2)
    }

    /// Word-sized `ldr rt, addr`.
    pub fn ldr(rt: ArmReg, addr: AddrMode) -> ArmInstr {
        ArmInstr::Ldr { rt, addr, width: Width::W32, signed: false, cond: Cond::Al }
    }

    /// Word-sized `str rt, addr`.
    pub fn str(rt: ArmReg, addr: AddrMode) -> ArmInstr {
        ArmInstr::Str { rt, addr, width: Width::W32, cond: Cond::Al }
    }

    /// The instruction's predication condition field.
    pub fn cond(&self) -> Cond {
        match *self {
            ArmInstr::Dp { cond, .. }
            | ArmInstr::Mul { cond, .. }
            | ArmInstr::Ldr { cond, .. }
            | ArmInstr::Str { cond, .. }
            | ArmInstr::B { cond, .. }
            | ArmInstr::Bl { cond, .. }
            | ArmInstr::Bx { cond, .. }
            | ArmInstr::Svc { cond, .. } => cond,
        }
    }

    /// Whether this is a *predicated* non-branch instruction — a
    /// conditionally executed `Dp`/`Mul`/`Ldr`/`Str` (preparation filter
    /// "PI" in Table 1). Conditional branches are not predicated.
    pub fn is_predicated(&self) -> bool {
        !matches!(self, ArmInstr::B { .. }) && self.cond() != Cond::Al
    }

    /// Whether this is a call (`bl`).
    pub fn is_call(&self) -> bool {
        matches!(self, ArmInstr::Bl { .. })
    }

    /// Whether this is an indirect branch (`bx`).
    pub fn is_indirect_branch(&self) -> bool {
        matches!(self, ArmInstr::Bx { .. })
    }

    /// Whether this instruction ends a basic block.
    pub fn is_block_end(&self) -> bool {
        matches!(
            self,
            ArmInstr::B { .. } | ArmInstr::Bl { .. } | ArmInstr::Bx { .. } | ArmInstr::Svc { .. }
        )
    }

    /// Whether the instruction writes the NZCV flags (any of them).
    pub fn sets_flags(&self) -> bool {
        match *self {
            ArmInstr::Dp { set_flags, .. } | ArmInstr::Mul { set_flags, .. } => set_flags,
            _ => false,
        }
    }

    /// Which NZCV flags the instruction *writes*, as a nibble mask
    /// (N=8, Z=4, C=2, V=1).
    pub fn flags_written(&self) -> u8 {
        match *self {
            ArmInstr::Dp { op, set_flags, op2, .. } if set_flags => {
                if op.is_arithmetic() {
                    0b1111
                } else {
                    // Logical ops: N, Z always; C only via the shifter.
                    let c = matches!(op2, Operand2::RegShift(_, _));
                    0b1100 | ((c as u8) << 1)
                }
            }
            ArmInstr::Mul { set_flags: true, .. } => 0b1100,
            _ => 0,
        }
    }

    /// Which NZCV flags the instruction *reads*, as a nibble mask.
    pub fn flags_read(&self) -> u8 {
        let mut mask = self.cond().flags_read();
        if let ArmInstr::Dp { op, .. } = self {
            if op.reads_carry() {
                mask |= 0b0010;
            }
        }
        mask
    }

    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<ArmReg> {
        match *self {
            ArmInstr::Dp { op, rd, .. } => (!op.is_compare()).then_some(rd),
            ArmInstr::Mul { rd, .. } => Some(rd),
            ArmInstr::Ldr { rt, .. } => Some(rt),
            ArmInstr::Bl { .. } => Some(ArmReg::Lr),
            _ => None,
        }
    }

    /// The registers this instruction reads, in operand order, with
    /// duplicates preserved.
    pub fn uses(&self) -> Vec<ArmReg> {
        match *self {
            ArmInstr::Dp { op, rn, op2, .. } => {
                let mut v = Vec::new();
                if !op.is_move() {
                    v.push(rn);
                }
                match op2 {
                    Operand2::Reg(r) | Operand2::RegShift(r, _) => v.push(r),
                    Operand2::Imm(_) => {}
                }
                v
            }
            ArmInstr::Mul { rn, rm, .. } => vec![rn, rm],
            ArmInstr::Ldr { addr, .. } => addr.regs(),
            ArmInstr::Str { rt, addr, .. } => {
                let mut v = vec![rt];
                v.extend(addr.regs());
                v
            }
            ArmInstr::Bx { rm, .. } => vec![rm],
            ArmInstr::B { .. } | ArmInstr::Bl { .. } | ArmInstr::Svc { .. } => vec![],
        }
    }

    /// The memory operand, if any: (normalized address, width, is_store).
    pub fn mem_operand(&self) -> Option<(NormAddr<ArmReg>, Width, bool)> {
        match *self {
            ArmInstr::Ldr { addr, width, .. } => Some((addr.normalize(), width, false)),
            ArmInstr::Str { addr, width, .. } => Some((addr.normalize(), width, true)),
            _ => None,
        }
    }

    /// The immediate operands appearing in the instruction (data
    /// immediates, not address offsets/scales).
    pub fn immediates(&self) -> Vec<i64> {
        match *self {
            ArmInstr::Dp { op2: Operand2::Imm(v), .. } => vec![v as i64],
            _ => vec![],
        }
    }

    /// A small stable numeric id of the opcode *kind*, used by the rule
    /// hash (the paper keys rules on the arithmetic mean of guest
    /// opcodes).
    pub fn opcode_id(&self) -> u32 {
        match *self {
            ArmInstr::Dp { op, .. } => 1 + op as u32,
            ArmInstr::Mul { .. } => 20,
            ArmInstr::Ldr { width, signed, .. } => {
                21 + match (width, signed) {
                    (Width::W32, _) => 0,
                    (Width::W16, false) => 1,
                    (Width::W16, true) => 2,
                    (Width::W8, false) => 3,
                    (Width::W8, true) => 4,
                }
            }
            ArmInstr::Str { width, .. } => {
                26 + match width {
                    Width::W32 => 0,
                    Width::W16 => 1,
                    Width::W8 => 2,
                }
            }
            ArmInstr::B { .. } => 29,
            ArmInstr::Bl { .. } => 30,
            ArmInstr::Bx { .. } => 31,
            ArmInstr::Svc { .. } => 32,
        }
    }
}

impl fmt::Display for ArmInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.cond();
        match *self {
            ArmInstr::Dp { op, rd, rn, op2, set_flags, .. } => {
                let s = if set_flags && !op.is_compare() { "s" } else { "" };
                if op.is_compare() {
                    write!(f, "{}{c} {rn}, {op2}", op.mnemonic())
                } else if op.is_move() {
                    write!(f, "{}{s}{c} {rd}, {op2}", op.mnemonic())
                } else {
                    write!(f, "{}{s}{c} {rd}, {rn}, {op2}", op.mnemonic())
                }
            }
            ArmInstr::Mul { rd, rn, rm, set_flags, .. } => {
                let s = if set_flags { "s" } else { "" };
                write!(f, "mul{s}{c} {rd}, {rn}, {rm}")
            }
            ArmInstr::Ldr { rt, addr, width, signed, .. } => {
                let suffix = match (width, signed) {
                    (Width::W32, _) => "",
                    (Width::W16, false) => "h",
                    (Width::W16, true) => "sh",
                    (Width::W8, false) => "b",
                    (Width::W8, true) => "sb",
                };
                write!(f, "ldr{suffix}{c} {rt}, {addr}")
            }
            ArmInstr::Str { rt, addr, width, .. } => {
                let suffix = match width {
                    Width::W32 => "",
                    Width::W16 => "h",
                    Width::W8 => "b",
                };
                write!(f, "str{suffix}{c} {rt}, {addr}")
            }
            ArmInstr::B { offset, .. } => write!(f, "b{c} #{offset}"),
            ArmInstr::Bl { offset, .. } => write!(f, "bl{c} #{offset}"),
            ArmInstr::Bx { rm, .. } => write!(f, "bx{c} {rm}"),
            ArmInstr::Svc { imm, .. } => write!(f, "svc{c} #{imm}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let i = ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R1, Operand2::Reg(ArmReg::R0));
        assert_eq!(i.to_string(), "add r1, r1, r0");
        let i = ArmInstr::dps(DpOp::Sub, ArmReg::R0, ArmReg::R2, Operand2::Imm(1));
        assert_eq!(i.to_string(), "subs r0, r2, #1");
        let i = ArmInstr::cmp(ArmReg::R2, Operand2::Reg(ArmReg::R3));
        assert_eq!(i.to_string(), "cmp r2, r3");
        let i = ArmInstr::mov(ArmReg::R5, Operand2::RegShift(ArmReg::R1, Shift::Lsl(2)));
        assert_eq!(i.to_string(), "mov r5, r1, lsl #2");
        let i = ArmInstr::ldr(ArmReg::R0, AddrMode::Imm(ArmReg::R0, -4));
        assert_eq!(i.to_string(), "ldr r0, [r0, #-4]");
        let i = ArmInstr::Ldr {
            rt: ArmReg::R1,
            addr: AddrMode::RegShift(ArmReg::R2, ArmReg::R3, 2),
            width: Width::W8,
            signed: true,
            cond: Cond::Al,
        };
        assert_eq!(i.to_string(), "ldrsb r1, [r2, r3, lsl #2]");
        let i = ArmInstr::B { offset: -3, cond: Cond::Ne };
        assert_eq!(i.to_string(), "bne #-3");
    }

    #[test]
    fn predication_detection() {
        let mut i = ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Imm(1));
        assert!(!i.is_predicated());
        if let ArmInstr::Dp { ref mut cond, .. } = i {
            *cond = Cond::Eq;
        }
        assert!(i.is_predicated());
        // Conditional branches are not "predicated".
        let b = ArmInstr::B { offset: 0, cond: Cond::Eq };
        assert!(!b.is_predicated());
        let bx = ArmInstr::Bx { rm: ArmReg::Lr, cond: Cond::Eq };
        assert!(bx.is_predicated());
    }

    #[test]
    fn defs_and_uses() {
        let i = ArmInstr::dp(DpOp::Add, ArmReg::R1, ArmReg::R2, Operand2::Reg(ArmReg::R3));
        assert_eq!(i.def(), Some(ArmReg::R1));
        assert_eq!(i.uses(), vec![ArmReg::R2, ArmReg::R3]);

        let i = ArmInstr::cmp(ArmReg::R2, Operand2::Imm(5));
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), vec![ArmReg::R2]);

        let i = ArmInstr::mov(ArmReg::R1, Operand2::Reg(ArmReg::R9));
        assert_eq!(i.uses(), vec![ArmReg::R9]);

        let i = ArmInstr::str(ArmReg::R1, AddrMode::Reg(ArmReg::R6, ArmReg::R7));
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), vec![ArmReg::R1, ArmReg::R6, ArmReg::R7]);

        let i = ArmInstr::Bl { offset: 4, cond: Cond::Al };
        assert_eq!(i.def(), Some(ArmReg::Lr));
        assert!(i.is_call());
    }

    #[test]
    fn flags_written_masks() {
        let adds = ArmInstr::dps(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Imm(1));
        assert_eq!(adds.flags_written(), 0b1111);
        let ands = ArmInstr::dps(DpOp::And, ArmReg::R0, ArmReg::R0, Operand2::Imm(1));
        assert_eq!(ands.flags_written(), 0b1100);
        let ands_shift = ArmInstr::dps(
            DpOp::And,
            ArmReg::R0,
            ArmReg::R0,
            Operand2::RegShift(ArmReg::R1, Shift::Lsr(3)),
        );
        assert_eq!(ands_shift.flags_written(), 0b1110);
        let add = ArmInstr::dp(DpOp::Add, ArmReg::R0, ArmReg::R0, Operand2::Imm(1));
        assert_eq!(add.flags_written(), 0);
    }

    #[test]
    fn flags_read_includes_carry_in() {
        let adc = ArmInstr::dp(DpOp::Adc, ArmReg::R0, ArmReg::R1, Operand2::Reg(ArmReg::R2));
        assert_eq!(adc.flags_read(), 0b0010);
        let beq = ArmInstr::B { offset: 0, cond: Cond::Eq };
        assert_eq!(beq.flags_read(), 0b0100);
    }

    #[test]
    fn normalize_addressing_modes() {
        let a = AddrMode::RegShift(ArmReg::R1, ArmReg::R0, 2).normalize();
        assert_eq!(a.base, Some(ArmReg::R1));
        assert_eq!(a.index, Some((ArmReg::R0, Scale::Shl(2))));
        assert_eq!(a.offset, 0);
        let a = AddrMode::Imm(ArmReg::R0, -4).normalize();
        assert_eq!(a.offset, -4);
        assert_eq!(a.reg_count(), 1);
    }

    #[test]
    fn opcode_ids_are_distinct_per_kind() {
        use std::collections::HashSet;
        let mut ids = HashSet::new();
        for op in DpOp::ALL {
            assert!(
                ids.insert(ArmInstr::dp(op, ArmReg::R0, ArmReg::R1, Operand2::Imm(0)).opcode_id())
            );
        }
        assert!(ids.insert(
            ArmInstr::Mul {
                rd: ArmReg::R0,
                rn: ArmReg::R1,
                rm: ArmReg::R2,
                set_flags: false,
                cond: Cond::Al
            }
            .opcode_id()
        ));
        assert!(ids.insert(ArmInstr::ldr(ArmReg::R0, AddrMode::Imm(ArmReg::R1, 0)).opcode_id()));
        assert!(ids.insert(ArmInstr::str(ArmReg::R0, AddrMode::Imm(ArmReg::R1, 0)).opcode_id()));
        assert!(ids.insert(ArmInstr::B { offset: 0, cond: Cond::Al }.opcode_id()));
        assert!(ids.insert(ArmInstr::Bl { offset: 0, cond: Cond::Al }.opcode_id()));
        assert!(ids.insert(ArmInstr::Bx { rm: ArmReg::Lr, cond: Cond::Al }.opcode_id()));
        assert!(ids.insert(ArmInstr::Svc { imm: 0, cond: Cond::Al }.opcode_id()));
    }

    #[test]
    fn block_end_classification() {
        assert!(ArmInstr::B { offset: 0, cond: Cond::Al }.is_block_end());
        assert!(ArmInstr::Svc { imm: 0, cond: Cond::Al }.is_block_end());
        assert!(!ArmInstr::mov(ArmReg::R0, Operand2::Imm(1)).is_block_end());
        assert!(ArmInstr::Bx { rm: ArmReg::Lr, cond: Cond::Al }.is_indirect_branch());
    }
}
