//! Pure, reusable definitions of ARM data-processing semantics.
//!
//! These helpers are the single source of truth for how each instruction
//! transforms values and flags. The concrete interpreter calls them with
//! `u32` values; the symbolic executor mirrors them structurally over
//! bit-vector terms, and the cross-checking property tests in
//! `ldbt-symexec` verify that both agree on random inputs.

use crate::flags::Flags;
use crate::insn::{DpOp, Shift};
use ldbt_isa::bits;

/// Result of evaluating the shifter: the shifted value and the carry-out.
///
/// With no shift, carry-out is the incoming carry (i.e. preserved).
pub fn eval_shift(value: u32, shift: Option<Shift>, carry_in: bool) -> (u32, bool) {
    match shift {
        None => (value, carry_in),
        Some(Shift::Lsl(a)) => {
            let a = a as u32 & 31;
            if a == 0 {
                (value, carry_in)
            } else {
                ((value << a), (value >> (32 - a)) & 1 != 0)
            }
        }
        Some(Shift::Lsr(a)) => {
            let a = a as u32 & 31;
            if a == 0 {
                (value, carry_in)
            } else {
                ((value >> a), (value >> (a - 1)) & 1 != 0)
            }
        }
        Some(Shift::Asr(a)) => {
            let a = a as u32 & 31;
            if a == 0 {
                (value, carry_in)
            } else {
                ((((value as i32) >> a) as u32), ((value as i32) >> (a - 1)) & 1 != 0)
            }
        }
        Some(Shift::Ror(a)) => {
            let a = a as u32 & 31;
            if a == 0 {
                (value, carry_in)
            } else {
                let r = value.rotate_right(a);
                (r, (r >> 31) != 0)
            }
        }
    }
}

/// The result of a data-processing ALU evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluResult {
    /// The computed 32-bit value (for compares: the discarded result).
    pub value: u32,
    /// The flags *if* the instruction sets them.
    pub flags: Flags,
}

/// Evaluate a data-processing operation.
///
/// `a` is the (first) source register value, `b` the evaluated second
/// operand, `shifter_carry` the carry-out of the shifter, and `flags_in`
/// the incoming flag state (consumed by `adc`/`sbc` and used for
/// preserved bits).
///
/// The returned [`Flags`] follow ARM rules:
/// * arithmetic ops set NZCV from the adder,
/// * logical ops set NZ from the result and C from the shifter, keeping V,
/// * `mov`/`mvn` behave as logical ops.
pub fn eval_dp(op: DpOp, a: u32, b: u32, shifter_carry: bool, flags_in: Flags) -> AluResult {
    let c_in = flags_in.c;
    let (value, c, v) = match op {
        DpOp::And | DpOp::Tst => (a & b, shifter_carry, flags_in.v),
        DpOp::Eor | DpOp::Teq => (a ^ b, shifter_carry, flags_in.v),
        DpOp::Orr => (a | b, shifter_carry, flags_in.v),
        DpOp::Bic => (a & !b, shifter_carry, flags_in.v),
        DpOp::Mov => (b, shifter_carry, flags_in.v),
        DpOp::Mvn => (!b, shifter_carry, flags_in.v),
        DpOp::Add => {
            (a.wrapping_add(b), bits::add_carry32(a, b, false), bits::add_overflow32(a, b, false))
        }
        DpOp::Adc => (
            a.wrapping_add(b).wrapping_add(c_in as u32),
            bits::add_carry32(a, b, c_in),
            bits::add_overflow32(a, b, c_in),
        ),
        DpOp::Sub | DpOp::Cmp => {
            (a.wrapping_sub(b), bits::sub_carry32_arm(a, b, true), bits::sub_overflow32(a, b))
        }
        DpOp::Sbc => {
            let r = a.wrapping_sub(b).wrapping_sub(!c_in as u32);
            (
                r,
                bits::sub_carry32_arm(a, b, c_in),
                // V for sbc: overflow of a - b - borrow.
                {
                    let full = (a as i32 as i64) - (b as i32 as i64) - (!c_in as i64);
                    full < i32::MIN as i64 || full > i32::MAX as i64
                },
            )
        }
        DpOp::Rsb => {
            (b.wrapping_sub(a), bits::sub_carry32_arm(b, a, true), bits::sub_overflow32(b, a))
        }
        DpOp::Cmn => {
            (a.wrapping_add(b), bits::add_carry32(a, b, false), bits::add_overflow32(a, b, false))
        }
    };
    let mut flags = Flags { c, v, ..flags_in };
    flags.set_nz(value);
    AluResult { value, flags }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifter_lsl() {
        assert_eq!(eval_shift(1, Some(Shift::Lsl(4)), false), (16, false));
        assert_eq!(eval_shift(0x8000_0001, Some(Shift::Lsl(1)), false), (2, true));
        // No shift preserves carry.
        assert_eq!(eval_shift(7, None, true), (7, true));
    }

    #[test]
    fn shifter_lsr_asr_ror() {
        assert_eq!(eval_shift(0b110, Some(Shift::Lsr(1)), false), (0b11, false));
        assert_eq!(eval_shift(0b111, Some(Shift::Lsr(1)), false), (0b11, true));
        assert_eq!(eval_shift(0x8000_0000, Some(Shift::Asr(4)), false), (0xf800_0000, false));
        assert_eq!(eval_shift(0x8000_0008, Some(Shift::Asr(4)), false), (0xf800_0000, true));
        let (r, c) = eval_shift(0x0000_0001, Some(Shift::Ror(1)), false);
        assert_eq!(r, 0x8000_0000);
        assert!(c);
    }

    #[test]
    fn dp_add_sub_values() {
        let f = Flags::new();
        assert_eq!(eval_dp(DpOp::Add, 2, 3, false, f).value, 5);
        assert_eq!(eval_dp(DpOp::Sub, 2, 3, false, f).value, u32::MAX);
        assert_eq!(eval_dp(DpOp::Rsb, 2, 3, false, f).value, 1);
        assert_eq!(eval_dp(DpOp::Mvn, 0, 0, false, f).value, u32::MAX);
    }

    #[test]
    fn dp_carry_chain() {
        // adc with carry set adds one extra.
        let f = Flags { c: true, ..Flags::new() };
        assert_eq!(eval_dp(DpOp::Adc, 1, 1, false, f).value, 3);
        // sbc with carry set == plain sub.
        assert_eq!(eval_dp(DpOp::Sbc, 5, 3, false, f).value, 2);
        // sbc with carry clear subtracts an extra one.
        let f0 = Flags::new();
        assert_eq!(eval_dp(DpOp::Sbc, 5, 3, false, f0).value, 1);
    }

    #[test]
    fn dp_cmp_flags_match_sub() {
        let f = Flags::new();
        let cmp = eval_dp(DpOp::Cmp, 3, 5, false, f);
        let sub = eval_dp(DpOp::Sub, 3, 5, false, f);
        assert_eq!(cmp.flags, sub.flags);
        assert!(cmp.flags.n);
        assert!(!cmp.flags.c); // borrow occurred
    }

    #[test]
    fn logical_ops_preserve_v_and_use_shifter_carry() {
        let f = Flags { v: true, c: false, ..Flags::new() };
        let r = eval_dp(DpOp::And, 0xff, 0x0f, true, f);
        assert_eq!(r.value, 0x0f);
        assert!(r.flags.v, "V preserved");
        assert!(r.flags.c, "C from shifter");
        assert!(!r.flags.n);
        assert!(!r.flags.z);
    }

    #[test]
    fn sbc_overflow() {
        // i32::MIN - 1 (carry set → plain subtract) overflows.
        let f = Flags { c: true, ..Flags::new() };
        let r = eval_dp(DpOp::Sbc, i32::MIN as u32, 1, false, f);
        assert!(r.flags.v);
        assert_eq!(r.value, i32::MAX as u32);
    }

    #[test]
    fn exhaustive_small_sub_carry_polarity() {
        // ARM carry after cmp a,b is a >= b (unsigned).
        for a in 0..64u32 {
            for b in 0..64u32 {
                let r = eval_dp(DpOp::Cmp, a, b, false, Flags::new());
                assert_eq!(r.flags.c, a >= b, "a={a} b={b}");
                assert_eq!(r.flags.z, a == b);
            }
        }
    }
}
