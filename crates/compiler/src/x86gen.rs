//! The x86 (host) backend.
//!
//! cdecl-flavored convention: arguments on the stack, result in `%eax`,
//! `%esp`-relative frame. `%ebx` and `%edi` are reserved as scratch for
//! spill traffic (`%ebx` doubles as the byte-addressable `setcc` target);
//! the allocatable pool is `%eax`/`%ecx`/`%edx`/`%ebp`/`%esi` — noticeably
//! smaller than the ARM pool, which is one honest source of the
//! guest/host register-count mismatches the paper reports.

use crate::ast::{CompileError, Options, Style};
use crate::ir::{
    BlockId, CompiledFunction, CompiledInstr, CompiledProgram, IrAddr, IrBase, IrBinOp, IrCmp,
    IrFunction, IrInst, IrValue, VReg,
};
use crate::lower::lower;
use crate::opt::optimize;
use crate::parser::parse;
use crate::regalloc::{allocate, Allocation, Loc};
use ldbt_isa::SourceLoc;
use ldbt_x86::{AluOp, Cc, Gpr, Operand, ShiftOp, UnOp, X86Instr, X86Mem};

const SCRATCH0: Gpr = Gpr::Ebx; // byte-addressable
const SCRATCH1: Gpr = Gpr::Edi;

fn pool(style: Style) -> Vec<usize> {
    match style {
        Style::Llvm => vec![0, 1, 2, 6, 5], // eax, ecx, edx, esi, ebp
        Style::Gcc => vec![2, 0, 1, 5, 6],  // edx, eax, ecx, ebp, esi
    }
}

fn cc_of(cmp: IrCmp) -> Cc {
    match cmp {
        IrCmp::Eq => Cc::E,
        IrCmp::Ne => Cc::Ne,
        IrCmp::Lt => Cc::L,
        IrCmp::Le => Cc::Le,
        IrCmp::Gt => Cc::G,
        IrCmp::Ge => Cc::Ge,
    }
}

struct Emitter {
    alloc: Allocation,
    style: Style,
    fuse_flags: bool,
    code: Vec<CompiledInstr<X86Instr>>,
    fixups: Vec<(usize, BlockId)>,
    block_start: Vec<usize>,
    frame_total: u32,
    loc: SourceLoc,
}

impl Emitter {
    fn emit(&mut self, i: X86Instr) {
        self.code.push(CompiledInstr { instr: i, loc: self.loc, mem_var: None });
    }

    fn emit_mem(&mut self, i: X86Instr, var: &str) {
        self.code.push(CompiledInstr { instr: i, loc: self.loc, mem_var: Some(var.to_string()) });
    }

    fn spill_mem(&self, off: i32) -> X86Mem {
        X86Mem::base_disp(Gpr::Esp, off)
    }

    fn read_vreg(&mut self, r: VReg, scratch: Gpr) -> Gpr {
        match self.alloc.loc(r) {
            Loc::Reg(p) => Gpr::from_index(p),
            Loc::Spill(off) => {
                let m = self.spill_mem(off);
                self.emit(X86Instr::Mov { dst: Operand::Reg(scratch), src: Operand::Mem(m) });
                scratch
            }
        }
    }

    fn read_value(&mut self, v: IrValue, scratch: Gpr) -> Gpr {
        match v {
            IrValue::Reg(r) => self.read_vreg(r, scratch),
            IrValue::Const(c) => {
                self.emit(X86Instr::mov_imm(scratch, c));
                scratch
            }
        }
    }

    fn def_reg(&mut self, r: VReg) -> (Gpr, Option<i32>) {
        match self.alloc.loc(r) {
            Loc::Reg(p) => (Gpr::from_index(p), None),
            Loc::Spill(off) => (SCRATCH0, Some(off)),
        }
    }

    fn finish_def(&mut self, spill: Option<i32>) {
        if let Some(off) = spill {
            let m = self.spill_mem(off);
            self.emit(X86Instr::Mov { dst: Operand::Mem(m), src: Operand::Reg(SCRATCH0) });
        }
    }

    /// An ALU source operand for an IR value (immediate stays immediate).
    fn src_operand(&mut self, v: IrValue, scratch: Gpr) -> Operand {
        match v {
            IrValue::Const(c) => Operand::Imm(c),
            IrValue::Reg(r) => Operand::Reg(self.read_vreg(r, scratch)),
        }
    }

    /// Resolve an [`IrAddr`]; the result never references `SCRATCH0`.
    fn mem_operand(&mut self, a: &IrAddr) -> X86Mem {
        let index = a.index;
        match (a.base, index) {
            (IrBase::Frame(off), None) => self.spill_mem(off + a.offset),
            (IrBase::Frame(_), Some(_)) => unreachable!("no indexed frame addressing"),
            (IrBase::Reg(r), idx) => {
                let base = self.read_vreg(r, SCRATCH1);
                match idx {
                    None => X86Mem::base_disp(base, a.offset),
                    Some((ir, shift)) => {
                        let idx_reg = self.read_vreg(ir, SCRATCH0);
                        self.index_mem(Some(base), idx_reg, shift, a.offset)
                    }
                }
            }
            (IrBase::Global(g), None) => X86Mem::absolute(g.wrapping_add(a.offset as u32) as i32),
            (IrBase::Global(g), Some((ir, shift))) => {
                let idx_reg = self.read_vreg(ir, SCRATCH0);
                let disp = g.wrapping_add(a.offset as u32) as i32;
                if shift <= 3 && idx_reg != SCRATCH0 {
                    X86Mem { base: None, index: Some((idx_reg, 1 << shift)), disp }
                } else {
                    // Collapse into SCRATCH1: lea/compute the scaled index.
                    self.collapse_index(None, idx_reg, shift, disp)
                }
            }
        }
    }

    fn index_mem(&mut self, base: Option<Gpr>, idx: Gpr, shift: u32, disp: i32) -> X86Mem {
        if shift <= 3 && idx != SCRATCH0 {
            X86Mem { base, index: Some((idx, 1 << shift)), disp }
        } else {
            self.collapse_index(base, idx, shift, disp)
        }
    }

    /// Compute `base + (idx << shift) + disp` into `SCRATCH1`.
    fn collapse_index(&mut self, base: Option<Gpr>, idx: Gpr, shift: u32, disp: i32) -> X86Mem {
        if idx != SCRATCH1 {
            self.emit(X86Instr::mov_rr(SCRATCH1, idx));
        }
        if shift > 0 {
            self.emit(X86Instr::Shift {
                op: ShiftOp::Shl,
                dst: Operand::Reg(SCRATCH1),
                count: shift as u8,
            });
        }
        if let Some(b) = base {
            self.emit(X86Instr::alu_rr(AluOp::Add, SCRATCH1, b));
        }
        X86Mem::base_disp(SCRATCH1, disp)
    }

    fn emit_bin(
        &mut self,
        op: IrBinOp,
        dst: VReg,
        a: IrValue,
        b: IrValue,
    ) -> Result<(), CompileError> {
        let (rd, spill) = self.def_reg(dst);
        match op {
            IrBinOp::Shl | IrBinOp::Sar => {
                let IrValue::Const(c) = b else {
                    return Err(CompileError::new(
                        self.loc.line,
                        "variable shift amounts are not supported by the target subset",
                    ));
                };
                let c = (c as u32 & 31) as u8;
                let ra = self.read_value(a, rd);
                if ra != rd {
                    self.emit(X86Instr::mov_rr(rd, ra));
                }
                if c != 0 {
                    let sop = if op == IrBinOp::Shl { ShiftOp::Shl } else { ShiftOp::Sar };
                    self.emit(X86Instr::Shift { op: sop, dst: Operand::Reg(rd), count: c });
                }
            }
            IrBinOp::Mul => {
                // Resolve operand registers *before* clobbering rd.
                let ra = self.read_value(a, SCRATCH0);
                let rb = self.read_value(b, SCRATCH1);
                if rb == rd && ra != rd {
                    // rd aliases the second factor: compute in scratch.
                    self.emit(X86Instr::mov_rr(SCRATCH1, ra));
                    self.emit(X86Instr::Imul { dst: SCRATCH1, src: Operand::Reg(rd) });
                    self.emit(X86Instr::mov_rr(rd, SCRATCH1));
                } else {
                    if ra != rd {
                        self.emit(X86Instr::mov_rr(rd, ra));
                    }
                    let src =
                        if rb == rd && ra == rd { Operand::Reg(rd) } else { Operand::Reg(rb) };
                    self.emit(X86Instr::Imul { dst: rd, src });
                }
            }
            IrBinOp::Add | IrBinOp::Sub | IrBinOp::And | IrBinOp::Or | IrBinOp::Xor => {
                let alu = match op {
                    IrBinOp::Add => AluOp::Add,
                    IrBinOp::Sub => AluOp::Sub,
                    IrBinOp::And => AluOp::And,
                    IrBinOp::Or => AluOp::Or,
                    IrBinOp::Xor => AluOp::Xor,
                    _ => unreachable!(),
                };
                // Style-specific idioms.
                if self.style == Style::Llvm {
                    // LLVM-flavored: lea for 3-operand adds.
                    if op == IrBinOp::Add {
                        if let (IrValue::Reg(x), IrValue::Reg(y)) = (a, b) {
                            let rx = self.read_vreg(x, SCRATCH1);
                            let ry = self.read_vreg(y, SCRATCH0);
                            if rx != rd && ry != rd {
                                self.emit(X86Instr::Lea {
                                    dst: rd,
                                    addr: X86Mem { base: Some(rx), index: Some((ry, 1)), disp: 0 },
                                });
                                self.finish_def(spill);
                                return Ok(());
                            }
                            // Fall through to the two-address pattern with
                            // the registers already resolved.
                            return self.two_address(
                                alu,
                                rd,
                                spill,
                                Operand::Reg(rx),
                                Operand::Reg(ry),
                            );
                        }
                    }
                    // and $255 stays `andl` under GCC but becomes movzbl
                    // under LLVM.
                    if op == IrBinOp::And {
                        if let IrValue::Const(255) = b {
                            let ra = self.read_value(a, SCRATCH1);
                            self.emit(X86Instr::Movx {
                                sign: false,
                                width: ldbt_isa::Width::W8,
                                dst: rd,
                                src: Operand::Reg(ra),
                            });
                            self.finish_def(spill);
                            return Ok(());
                        }
                    }
                } else {
                    // GCC-flavored: incl/decl for ±1.
                    if let IrValue::Const(c @ (1 | -1)) = b {
                        if matches!(op, IrBinOp::Add | IrBinOp::Sub) {
                            let ra = self.read_value(a, rd);
                            if ra != rd {
                                self.emit(X86Instr::mov_rr(rd, ra));
                            }
                            let inc = (op == IrBinOp::Add) == (c == 1);
                            let un = if inc { UnOp::Inc } else { UnOp::Dec };
                            self.emit(X86Instr::Un { op: un, dst: Operand::Reg(rd) });
                            self.finish_def(spill);
                            return Ok(());
                        }
                    }
                }
                let sa = self.src_operand(a, SCRATCH1);
                let sb = self.src_operand(b, SCRATCH0);
                return self.two_address(alu, rd, spill, sa, sb);
            }
        }
        self.finish_def(spill);
        Ok(())
    }

    /// Emit `rd = a op b` in two-address form, handling aliasing.
    fn two_address(
        &mut self,
        op: AluOp,
        rd: Gpr,
        spill: Option<i32>,
        a: Operand,
        b: Operand,
    ) -> Result<(), CompileError> {
        let commutative = matches!(op, AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor);
        if b == Operand::Reg(rd) {
            if commutative {
                self.emit(X86Instr::Alu { op, dst: Operand::Reg(rd), src: a });
                self.finish_def(spill);
                return Ok(());
            }
            // rd aliases b: route through SCRATCH1.
            if a != Operand::Reg(SCRATCH1) {
                match a {
                    Operand::Imm(c) => self.emit(X86Instr::mov_imm(SCRATCH1, c)),
                    Operand::Reg(r) => self.emit(X86Instr::mov_rr(SCRATCH1, r)),
                    Operand::Mem(_) => unreachable!(),
                }
            }
            self.emit(X86Instr::Alu { op, dst: Operand::Reg(SCRATCH1), src: b });
            self.emit(X86Instr::mov_rr(rd, SCRATCH1));
            self.finish_def(spill);
            return Ok(());
        }
        match a {
            Operand::Reg(r) if r == rd => {}
            Operand::Reg(r) => self.emit(X86Instr::mov_rr(rd, r)),
            Operand::Imm(c) => self.emit(X86Instr::mov_imm(rd, c)),
            Operand::Mem(_) => unreachable!(),
        }
        self.emit(X86Instr::Alu { op, dst: Operand::Reg(rd), src: b });
        self.finish_def(spill);
        Ok(())
    }

    /// Try the CISC folding patterns at `b.insts[ii..]`:
    ///
    /// * read-modify-write: `load t, M; t2 = t op x; store t2, M` →
    ///   `op x, M` (with `incl M`/`decl M` in GCC style for ±1),
    /// * load-op: `load t, M; d = a op t` → `mov d, a; op M, d`.
    ///
    /// Returns the number of IR instructions consumed, or `None`.
    fn try_fold(
        &mut self,
        b: &crate::ir::IrBlock,
        ii: usize,
        use_counts: &std::collections::HashMap<VReg, usize>,
    ) -> Result<Option<usize>, CompileError> {
        let IrInst::Load { dst: lr, addr } = &b.insts[ii].inst else { return Ok(None) };
        if use_counts.get(lr).copied().unwrap_or(0) != 1 {
            return Ok(None);
        }
        let Some(IrInst::Bin { op, dst, a, b: bv }) = b.insts.get(ii + 1).map(|t| &t.inst) else {
            return Ok(None);
        };
        let alu = match op {
            IrBinOp::Add => AluOp::Add,
            IrBinOp::Sub => AluOp::Sub,
            IrBinOp::And => AluOp::And,
            IrBinOp::Or => AluOp::Or,
            IrBinOp::Xor => AluOp::Xor,
            _ => return Ok(None),
        };
        // RMW: the loaded value is the left operand and the result goes
        // straight back to the same location.
        if *a == IrValue::Reg(*lr) {
            if let Some(IrInst::Store { src, addr: st_addr }) = b.insts.get(ii + 2).map(|t| &t.inst)
            {
                if *src == IrValue::Reg(*dst)
                    && st_addr == addr
                    && use_counts.get(dst).copied().unwrap_or(0) == 1
                {
                    let m = self.mem_operand(addr);
                    // GCC style: incl/decl directly on memory.
                    if self.style == Style::Gcc
                        && matches!(op, IrBinOp::Add | IrBinOp::Sub)
                        && matches!(bv, IrValue::Const(1 | -1))
                    {
                        let IrValue::Const(c) = bv else { unreachable!() };
                        let inc = (*op == IrBinOp::Add) == (*c == 1);
                        let un = if inc { UnOp::Inc } else { UnOp::Dec };
                        self.emit_mem_annotated(
                            X86Instr::Un { op: un, dst: Operand::Mem(m) },
                            &addr.var,
                        );
                    } else {
                        let src = self.src_operand(*bv, SCRATCH0);
                        self.emit_mem_annotated(
                            X86Instr::Alu { op: alu, dst: Operand::Mem(m), src },
                            &addr.var,
                        );
                    }
                    return Ok(Some(3));
                }
            }
        }
        // Load-op: memory as the ALU source operand.
        let other = if *bv == IrValue::Reg(*lr) {
            Some(*a)
        } else if *a == IrValue::Reg(*lr) && op.commutative() {
            Some(*bv)
        } else {
            None
        };
        if let Some(other) = other {
            if other == IrValue::Reg(*lr) {
                return Ok(None); // both operands are the load
            }
            let m = self.mem_operand(addr);
            let (rd, spill) = self.def_reg(*dst);
            match other {
                IrValue::Const(c) => self.emit(X86Instr::mov_imm(rd, c)),
                IrValue::Reg(r) => {
                    let rs = self.read_vreg(r, SCRATCH0);
                    if rs != rd {
                        self.emit(X86Instr::mov_rr(rd, rs));
                    }
                }
            }
            self.emit_mem_annotated(
                X86Instr::Alu { op: alu, dst: Operand::Reg(rd), src: Operand::Mem(m) },
                &addr.var,
            );
            self.finish_def(spill);
            return Ok(Some(2));
        }
        Ok(None)
    }

    fn emit_mem_annotated(&mut self, i: X86Instr, var: &str) {
        self.emit_mem(i, var);
    }

    fn emit_cmp(&mut self, a: IrValue, b: IrValue) {
        let ra = self.read_value(a, SCRATCH1);
        let sb = self.src_operand(b, SCRATCH0);
        self.emit(X86Instr::Alu { op: AluOp::Cmp, dst: Operand::Reg(ra), src: sb });
    }
}

fn fusable_cmp_zero_cc(cmp: IrCmp) -> Option<Cc> {
    Some(match cmp {
        IrCmp::Eq => Cc::E,
        IrCmp::Ne => Cc::Ne,
        IrCmp::Lt => Cc::S,
        IrCmp::Ge => Cc::Ns,
        _ => return None,
    })
}

fn gen_function(
    f: &IrFunction,
    options: &Options,
) -> Result<CompiledFunction<X86Instr>, CompileError> {
    let alloc = allocate(f, &pool(options.style));
    let frame_total = alloc.frame_size;
    let mut e = Emitter {
        alloc,
        style: options.style,
        fuse_flags: options.level >= crate::ast::OptLevel::O2,
        code: Vec::new(),
        fixups: Vec::new(),
        block_start: Vec::new(),
        frame_total,
        loc: SourceLoc::NONE,
    };
    if frame_total > 0 {
        e.emit(X86Instr::alu_ri(AluOp::Sub, Gpr::Esp, frame_total as i32));
    }
    // Incoming stack arguments → allocated homes.
    for i in 0..f.param_count {
        let src = X86Mem::base_disp(Gpr::Esp, frame_total as i32 + 4 + 4 * i as i32);
        match e.alloc.loc(VReg(i as u32)) {
            Loc::Reg(p) => e.emit(X86Instr::Mov {
                dst: Operand::Reg(Gpr::from_index(p)),
                src: Operand::Mem(src),
            }),
            Loc::Spill(off) => {
                e.emit(X86Instr::Mov { dst: Operand::Reg(SCRATCH0), src: Operand::Mem(src) });
                let m = e.spill_mem(off);
                e.emit(X86Instr::Mov { dst: Operand::Mem(m), src: Operand::Reg(SCRATCH0) });
            }
        }
    }

    // Function-wide vreg use counts, for load-op / RMW folding.
    let mut use_counts: std::collections::HashMap<VReg, usize> = std::collections::HashMap::new();
    for t in f.insts() {
        for u in t.inst.uses() {
            *use_counts.entry(u).or_insert(0) += 1;
        }
    }
    let mut pos = 0u32;
    for (bi, b) in f.blocks.iter().enumerate() {
        e.block_start.push(e.code.len());
        let mut skip_next_branch_cmp: Option<Cc> = None;
        let mut ii = 0usize;
        while ii < b.insts.len() {
            let t = &b.insts[ii];
            e.loc = t.loc;
            // --- CISC folding: classic x86 instruction selection. ---
            if let Some(consumed) = e.try_fold(b, ii, &use_counts)? {
                ii += consumed;
                pos += consumed as u32;
                continue;
            }
            pos += 1;
            match &t.inst {
                IrInst::Copy { dst, src } => {
                    let (rd, spill) = e.def_reg(*dst);
                    match src {
                        IrValue::Const(c) => e.emit(X86Instr::mov_imm(rd, *c)),
                        IrValue::Reg(r) => {
                            let rs = e.read_vreg(*r, SCRATCH1);
                            if rs != rd {
                                e.emit(X86Instr::mov_rr(rd, rs));
                            }
                        }
                    }
                    e.finish_def(spill);
                }
                IrInst::Bin { op, dst, a, b: bv } => {
                    let mut fused = None;
                    if e.fuse_flags
                        && matches!(op, IrBinOp::Add | IrBinOp::Sub)
                        && matches!(e.alloc.loc(*dst), Loc::Reg(_))
                    {
                        if let Some(IrInst::Branch { cmp, a: ba, b: bb, .. }) =
                            b.insts.get(ii + 1).map(|t| &t.inst)
                        {
                            if *ba == IrValue::Reg(*dst) && *bb == IrValue::Const(0) {
                                fused = fusable_cmp_zero_cc(*cmp);
                            }
                        }
                    }
                    // All x86 ALU ops set flags anyway; fusion just skips
                    // the following cmp.
                    skip_next_branch_cmp = fused;
                    e.emit_bin(*op, *dst, *a, *bv)?;
                }
                IrInst::SetCmp { cmp, dst, a, b: bv } => {
                    e.emit_cmp(*a, *bv);
                    let (rd, spill) = e.def_reg(*dst);
                    e.emit(X86Instr::Setcc { cc: cc_of(*cmp), dst: SCRATCH0 });
                    e.emit(X86Instr::Movx {
                        sign: false,
                        width: ldbt_isa::Width::W8,
                        dst: rd,
                        src: Operand::Reg(SCRATCH0),
                    });
                    e.finish_def(spill);
                }
                IrInst::Load { dst, addr } => {
                    let m = e.mem_operand(addr);
                    let (rd, spill) = e.def_reg(*dst);
                    e.emit_mem(
                        X86Instr::Mov { dst: Operand::Reg(rd), src: Operand::Mem(m) },
                        &addr.var,
                    );
                    e.finish_def(spill);
                }
                IrInst::Store { src, addr } => {
                    let m = e.mem_operand(addr);
                    match src {
                        IrValue::Const(c) => e.emit_mem(
                            X86Instr::Mov { dst: Operand::Mem(m), src: Operand::Imm(*c) },
                            &addr.var,
                        ),
                        IrValue::Reg(r) => {
                            let rs = e.read_vreg(*r, SCRATCH0);
                            e.emit_mem(
                                X86Instr::Mov { dst: Operand::Mem(m), src: Operand::Reg(rs) },
                                &addr.var,
                            );
                        }
                    }
                }
                IrInst::Jump { target } => {
                    if target.0 as usize != bi + 1 {
                        e.fixups.push((e.code.len(), *target));
                        e.emit(X86Instr::Jmp { target: 0 });
                    }
                }
                IrInst::Branch { cmp, a, b: bv, then_bb, else_bb } => {
                    let cc = match skip_next_branch_cmp.take() {
                        Some(cc) => cc,
                        None => {
                            e.emit_cmp(*a, *bv);
                            cc_of(*cmp)
                        }
                    };
                    e.fixups.push((e.code.len(), *then_bb));
                    e.emit(X86Instr::Jcc { cc, target: 0 });
                    if else_bb.0 as usize != bi + 1 {
                        e.fixups.push((e.code.len(), *else_bb));
                        e.emit(X86Instr::Jmp { target: 0 });
                    }
                }
                IrInst::Call { func, args, dst } => {
                    // Caller-save registers live across the call.
                    let mut save: Vec<Gpr> = Vec::new();
                    for (vi, loc) in e.alloc.locs.clone().iter().enumerate() {
                        if let Loc::Reg(p) = loc {
                            if e.alloc.live_across(VReg(vi as u32), pos) {
                                save.push(Gpr::from_index(*p));
                            }
                        }
                    }
                    save.sort();
                    save.dedup();
                    for r in &save {
                        e.emit(X86Instr::Push { src: Operand::Reg(*r) });
                    }
                    for a in args.iter().rev() {
                        let s = e.src_operand(*a, SCRATCH0);
                        e.emit(X86Instr::Push { src: s });
                    }
                    // Calls are resolved symbolically by name at link time;
                    // the x86 program is never linked for execution, so the
                    // target index stays 0 and the callee name is kept in
                    // the (unused) fixup list.
                    let _ = func;
                    e.emit(X86Instr::Call { target: 0 });
                    if !args.is_empty() {
                        e.emit(X86Instr::alu_ri(AluOp::Add, Gpr::Esp, 4 * args.len() as i32));
                    }
                    if let Some(d) = dst {
                        match e.alloc.loc(*d) {
                            Loc::Reg(p) => {
                                let rd = Gpr::from_index(p);
                                if rd != Gpr::Eax {
                                    e.emit(X86Instr::mov_rr(rd, Gpr::Eax));
                                }
                            }
                            Loc::Spill(off) => {
                                let m = e.spill_mem(off);
                                e.emit(X86Instr::Mov {
                                    dst: Operand::Mem(m),
                                    src: Operand::Reg(Gpr::Eax),
                                });
                            }
                        }
                    }
                    for r in save.iter().rev() {
                        e.emit(X86Instr::Pop { dst: Operand::Reg(*r) });
                    }
                }
                IrInst::Ret { value } => {
                    if let Some(v) = value {
                        match v {
                            IrValue::Const(c) => e.emit(X86Instr::mov_imm(Gpr::Eax, *c)),
                            IrValue::Reg(r) => {
                                let rs = e.read_vreg(*r, SCRATCH0);
                                if rs != Gpr::Eax {
                                    e.emit(X86Instr::mov_rr(Gpr::Eax, rs));
                                }
                            }
                        }
                    }
                    if e.frame_total > 0 {
                        e.emit(X86Instr::alu_ri(AluOp::Add, Gpr::Esp, e.frame_total as i32));
                    }
                    e.emit(X86Instr::Ret);
                }
            }
            ii += 1;
        }
    }
    e.block_start.push(e.code.len());
    for (idx, target) in e.fixups.clone() {
        let dest = e.block_start[target.0 as usize] as i32;
        let off = dest - (idx as i32 + 1);
        match &mut e.code[idx].instr {
            X86Instr::Jmp { target } | X86Instr::Jcc { target, .. } => *target = off,
            other => unreachable!("fixup on {other}"),
        }
    }
    Ok(CompiledFunction { name: f.name.clone(), code: e.code })
}

/// Compile source text for the x86 host.
///
/// # Errors
///
/// Returns the first [`CompileError`] from any stage.
pub fn compile_x86(
    source: &str,
    options: &Options,
) -> Result<CompiledProgram<X86Instr>, CompileError> {
    let ast = parse(source)?;
    let mut module = lower(&ast, options.level)?;
    optimize(&mut module, options.level);
    let mut funcs = Vec::new();
    for f in &module.funcs {
        funcs.push(gen_function(f, options)?);
    }
    Ok(CompiledProgram { funcs, globals: module.globals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::OptLevel;

    fn compile(src: &str) -> CompiledProgram<X86Instr> {
        compile_x86(src, &Options::o2()).unwrap()
    }

    fn asm(f: &CompiledFunction<X86Instr>) -> Vec<String> {
        f.code.iter().map(|c| c.instr.to_string()).collect()
    }

    #[test]
    fn leaf_function_ends_with_ret() {
        let p = compile("int f(int a, int b) { return a + b; }");
        let code = asm(&p.funcs[0]);
        assert_eq!(code.last().unwrap(), "ret");
        assert!(code.iter().any(|s| s.starts_with("addl") || s.starts_with("leal")), "{code:?}");
    }

    #[test]
    fn all_encodable() {
        let src = "
int g;
int big[600];
int f(int a, int b) {
  int s = 0;
  for (int i = 0; i < a; i += 1) {
    s += big[i] * 3 - b;
    if (s > 100000) { s -= g; }
  }
  g = s;
  return s;
}
int main() { return f(10, 2); }";
        for style in [Style::Llvm, Style::Gcc] {
            for level in OptLevel::ALL {
                let p = compile_x86(src, &Options { level, style }).unwrap();
                for f in &p.funcs {
                    for c in &f.code {
                        // Branch targets are instruction-relative here;
                        // encode with a placeholder displacement.
                        ldbt_x86::encode::encode(&c.instr)
                            .unwrap_or_else(|e| panic!("{}: {e}", c.instr));
                    }
                }
            }
        }
    }

    #[test]
    fn llvm_style_uses_lea_and_movzbl() {
        let p = compile("int f(int a, int b) { int c = a + b; return c & 255; }");
        let code = asm(&p.funcs[0]);
        let text = code.join("; ");
        assert!(text.contains("leal") || text.contains("addl"), "{code:?}");
        assert!(text.contains("movzbl"), "{code:?}");
    }

    #[test]
    fn gcc_style_uses_incl_and_andl() {
        let src = "int f(int a) { int b = a + 1; return b & 255; }";
        let p = compile_x86(src, &Options::gcc()).unwrap();
        let text = asm(&p.funcs[0]).join("; ");
        assert!(text.contains("incl"), "{text}");
        assert!(text.contains("andl $255"), "{text}");
        let p2 = compile_x86(src, &Options::o2()).unwrap();
        let t2 = asm(&p2.funcs[0]).join("; ");
        assert!(!t2.contains("incl"), "{t2}");
    }

    #[test]
    fn scaled_addressing_at_o2() {
        let p = compile("int a[16]; int f(int i) { return a[i]; }");
        let text = asm(&p.funcs[0]).join("; ");
        assert!(text.contains(",4)"), "expected SIB scale 4: {text}");
    }

    #[test]
    fn flag_fusion_skips_cmp() {
        let src = "int f(int s, int x) { s -= x; if (s != 0) { return 1; } return 0; }";
        let with = asm(&compile(src).funcs[0]).join("; ");
        let without =
            asm(&compile_x86(src, &Options::level(OptLevel::O1)).unwrap().funcs[0]).join("; ");
        let cmps_with = with.matches("cmpl").count();
        let cmps_without = without.matches("cmpl").count();
        assert!(cmps_with < cmps_without, "fusion removes a cmp: {with} /// {without}");
    }

    #[test]
    fn setcmp_uses_setcc() {
        let p = compile("int f(int a, int b) { return a < b; }");
        let text = asm(&p.funcs[0]).join("; ");
        assert!(text.contains("setl"), "{text}");
        assert!(text.contains("movzbl"), "{text}");
    }

    #[test]
    fn mem_vars_annotated() {
        let p = compile("int total; int f(int x) { total += x; return total; }");
        let vars: Vec<_> = p.funcs[0].code.iter().filter_map(|c| c.mem_var.clone()).collect();
        assert!(!vars.is_empty());
        assert!(vars.iter().all(|v| v == "total"));
    }

    #[test]
    fn globals_are_absolute() {
        let p = compile("int g; int f() { return g; }");
        let text = asm(&p.funcs[0]).join("; ");
        assert!(text.contains("1048576"), "global at 0x100000: {text}");
    }

    #[test]
    fn variable_shift_rejected() {
        let err =
            compile_x86("int f(int a, int b) { return a << b; }", &Options::o2()).unwrap_err();
        assert!(err.message.contains("shift"));
    }
}
