//! Linking ARM programs into runnable guest images.
//!
//! The image contains a `_start` stub (stack setup, `bl main`, `svc #0`),
//! all functions laid out contiguously, resolved `bl` displacements, the
//! global-data initializers, and the per-instruction debug metadata
//! (source line + memory-operand variable) that the rule learner and the
//! DBT statistics consume.

use crate::ast::CompileError;
use crate::ir::CompiledProgram;
use ldbt_arm::{encode, ArmInstr, ArmReg, Cond, Operand2, Shift};
use ldbt_isa::{Memory, SourceLoc, Width};

/// Base address where code is loaded.
pub const CODE_BASE: u32 = 0x0001_0000;
/// Initial stack pointer (grows down).
pub const STACK_TOP: u32 = 0x0080_0000;

/// A linked, runnable ARM guest program.
#[derive(Debug, Clone)]
pub struct ArmImage {
    /// Raw little-endian code bytes.
    pub bytes: Vec<u8>,
    /// Load address of `bytes`.
    pub base: u32,
    /// Entry point (the `_start` stub).
    pub entry: u32,
    /// (function name, address) pairs.
    pub func_addrs: Vec<(String, u32)>,
    /// Per-instruction metadata, indexed by `(addr - base) / 4`.
    pub meta: Vec<(SourceLoc, Option<String>)>,
    /// Global layout: (name, address, element count, initial value).
    pub globals: Vec<(String, u32, u32, i32)>,
}

impl ArmImage {
    /// Copy code and global initializers into a guest memory.
    pub fn load_into(&self, mem: &mut Memory) {
        mem.write_bytes(self.base, &self.bytes);
        for (_, addr, _, init) in &self.globals {
            if *init != 0 {
                mem.write(*addr, *init as u32, Width::W32);
            }
        }
    }

    /// The metadata for the instruction at `addr`, if it is in the image.
    pub fn meta_at(&self, addr: u32) -> Option<&(SourceLoc, Option<String>)> {
        if addr < self.base {
            return None;
        }
        self.meta.get(((addr - self.base) / 4) as usize)
    }

    /// Number of instructions in the image.
    pub fn instr_count(&self) -> usize {
        self.bytes.len() / 4
    }
}

/// Link a compiled ARM program (with its per-function call fixups).
///
/// # Errors
///
/// Returns a [`CompileError`] if `main` is missing, a callee is
/// undefined, or an instruction fails to encode.
pub fn link_arm(
    prog: &CompiledProgram<ArmInstr>,
    calls: &[Vec<(usize, String)>],
) -> Result<ArmImage, CompileError> {
    // _start stub: sp = STACK_TOP; bl main; svc #0.
    let stub = vec![
        ArmInstr::mov(ArmReg::Sp, Operand2::Imm(STACK_TOP >> 12)),
        ArmInstr::mov(ArmReg::Sp, Operand2::RegShift(ArmReg::Sp, Shift::Lsl(12))),
        ArmInstr::Bl { offset: 0, cond: Cond::Al }, // patched below
        ArmInstr::Svc { imm: 0, cond: Cond::Al },
    ];
    let mut instrs: Vec<ArmInstr> = stub;
    let mut meta: Vec<(SourceLoc, Option<String>)> = vec![(SourceLoc::NONE, None); instrs.len()];
    let mut func_starts: Vec<(String, usize)> = Vec::new();
    for f in &prog.funcs {
        func_starts.push((f.name.clone(), instrs.len()));
        for c in &f.code {
            instrs.push(c.instr);
            meta.push((c.loc, c.mem_var.clone()));
        }
    }
    let start_of = |name: &str| -> Option<usize> {
        func_starts.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    };
    // Patch the stub's `bl main`.
    let main_start =
        start_of("main").ok_or_else(|| CompileError::new(0, "missing `main` function"))?;
    if let ArmInstr::Bl { offset, .. } = &mut instrs[2] {
        *offset = main_start as i32 - 3;
    }
    // Patch calls.
    for (fi, f) in prog.funcs.iter().enumerate() {
        let fstart = func_starts[fi].1;
        for (idx, callee) in &calls[fi] {
            let target = start_of(callee)
                .ok_or_else(|| CompileError::new(0, format!("undefined function `{callee}`")))?;
            let site = fstart + idx;
            let ArmInstr::Bl { offset, .. } = &mut instrs[site] else {
                return Err(CompileError::new(0, "call fixup does not point at bl"));
            };
            *offset = target as i32 - (site as i32 + 1);
        }
        let _ = f;
    }
    let bytes = encode::assemble(&instrs)
        .map_err(|e| CompileError::new(0, format!("encoding failed: {e}")))?;
    Ok(ArmImage {
        bytes,
        base: CODE_BASE,
        entry: CODE_BASE,
        func_addrs: func_starts.into_iter().map(|(n, s)| (n, CODE_BASE + 4 * s as u32)).collect(),
        meta,
        globals: prog.globals.clone(),
    })
}

/// Convenience: compile and link in one step.
///
/// # Errors
///
/// Propagates [`CompileError`] from any stage.
pub fn build_arm_image(
    source: &str,
    options: &crate::ast::Options,
) -> Result<ArmImage, CompileError> {
    let (prog, calls) = crate::armgen::compile_arm_with_calls(source, options)?;
    link_arm(&prog, &calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{OptLevel, Options, Style};
    use ldbt_arm::{ArmMachine, ArmStop};

    fn run(src: &str, options: &Options) -> (ArmMachine, u32) {
        let image = build_arm_image(src, options).unwrap();
        let mut m = ArmMachine::new();
        image.load_into(&mut m.state.mem);
        m.state.regs[15] = image.entry;
        let stop = m.run(10_000_000);
        assert_eq!(stop, ArmStop::Halt, "program must halt cleanly");
        let r0 = m.state.reg(ldbt_arm::ArmReg::R0);
        (m, r0)
    }

    fn result(src: &str) -> u32 {
        run(src, &Options::o2()).1
    }

    fn result_all_configs(src: &str) -> u32 {
        let mut results = Vec::new();
        for style in [Style::Llvm, Style::Gcc] {
            for level in OptLevel::ALL {
                results.push(run(src, &Options { level, style }).1);
            }
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "all configurations must agree");
        }
        results[0]
    }

    #[test]
    fn return_constant() {
        assert_eq!(result("int main() { return 42; }"), 42);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(result_all_configs("int main() { return (3 + 4) * 5 - (10 >> 1); }"), 30);
    }

    #[test]
    fn locals_and_loops() {
        let src = "
int main() {
  int s = 0;
  for (int i = 1; i <= 10; i += 1) { s += i; }
  return s;
}";
        assert_eq!(result_all_configs(src), 55);
    }

    #[test]
    fn globals_and_arrays() {
        let src = "
int g = 7;
int a[10];
int main() {
  for (int i = 0; i < 10; i += 1) { a[i] = i * i; }
  int s = g;
  for (int i = 0; i < 10; i += 1) { s += a[i]; }
  return s;
}";
        assert_eq!(result_all_configs(src), 7 + 285);
    }

    #[test]
    fn function_calls() {
        let src = "
int square(int x) { return x * x; }
int add3(int a, int b, int c) { return a + b + c; }
int main() { return add3(square(2), square(3), square(4)); }";
        assert_eq!(result_all_configs(src), 29);
    }

    #[test]
    fn recursion() {
        let src = "
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }";
        assert_eq!(result_all_configs(src), 144);
    }

    #[test]
    fn conditionals_and_logic() {
        let src = "
int classify(int x) {
  if (x < 0) { return 0 - 1; }
  else if (x == 0) { return 0; }
  else if (x < 10 && x > 5) { return 7; }
  return 1;
}
int main() {
  return classify(0-5) + 10 * classify(0) + 100 * classify(8) + 1000 * classify(50);
}";
        // -1 + 0 + 700 + 1000
        assert_eq!(result_all_configs(src) as i32, 1699);
    }

    #[test]
    fn bitwise_kernel() {
        let src = "
int main() {
  int h = 2166136261;
  for (int i = 0; i < 8; i += 1) {
    h = (h ^ i) * 16777619;
    h = h & 0xffffff;
  }
  return h & 0xffff;
}";
        // Cross-check against the same computation in Rust.
        let mut h: i32 = 2166136261u32 as i32;
        for i in 0..8 {
            h = (h ^ i).wrapping_mul(16777619);
            h &= 0xffffff;
        }
        assert_eq!(result_all_configs(src), (h & 0xffff) as u32);
    }

    #[test]
    fn register_pressure_spills_execute_correctly() {
        let src = "
int main() {
  int v0 = 1; int v1 = 2; int v2 = 3; int v3 = 4; int v4 = 5;
  int v5 = 6; int v6 = 7; int v7 = 8; int v8 = 9; int v9 = 10;
  int v10 = 11; int v11 = 12; int v12 = 13; int v13 = 14;
  return v0 + v1 * 2 + v2 * 3 + v3 + v4 + v5 + v6 + v7 + v8 + v9
       + v10 + v11 + v12 + v13;
}";
        // 1 + 4 + 9 + 4..14 = 14 + sum(4..=14)
        let want: u32 = 1 + 4 + 9 + (4..=14).sum::<u32>();
        assert_eq!(result_all_configs(src), want);
    }

    #[test]
    fn comparison_values() {
        let src = "
int main() {
  int a = 5; int b = 9;
  return (a < b) + 2 * (a == 5) + 4 * (b <= 8) + 8 * !(a > 100);
}";
        assert_eq!(result_all_configs(src), 1 + 2 + 8);
    }

    #[test]
    fn meta_lines_cover_function_bodies() {
        let image =
            build_arm_image("int main() {\n  int x = 3;\n  return x + 1;\n}", &Options::o2())
                .unwrap();
        let lines: Vec<u32> = image.meta.iter().map(|(l, _)| l.line).collect();
        assert!(lines.contains(&2) || lines.contains(&3));
        assert_eq!(image.meta.len(), image.instr_count());
    }

    #[test]
    fn missing_main_is_an_error() {
        let err = build_arm_image("int f() { return 1; }", &Options::o2()).unwrap_err();
        assert!(err.message.contains("main"));
    }

    #[test]
    fn negative_numbers_and_unary() {
        let src = "int main() { int x = 0 - 7; return -x + ~0 + 10; }";
        // 7 + (-1) + 10
        assert_eq!(result_all_configs(src) as i32, 16);
    }
}
