//! Compiler options, AST types, and errors.

use std::fmt;

/// Optimization level, mirroring `-O0`…`-O3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// No optimization; named locals live in memory.
    O0,
    /// Constant folding, copy propagation, DCE; locals in registers.
    O1,
    /// O1 plus local CSE, strength reduction, addressing-mode fusion.
    O2,
    /// O2 with an extra rewrite iteration.
    O3,
}

impl OptLevel {
    /// All levels in ascending order.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        };
        write!(f, "{s}")
    }
}

/// Code-generation style: which "compiler" produced the binary.
///
/// The styles differ in instruction selection and register preference,
/// emulating the LLVM-vs-GCC axis of the paper's Figure 9 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Style {
    /// LLVM-flavored selection (e.g. `addl $1`, `movzbl`, `lea` fusion).
    Llvm,
    /// GCC-flavored selection (e.g. `incl`/`decl`, `andl $255`, different
    /// register preference order).
    Gcc,
}

impl fmt::Display for Style {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Style::Llvm => write!(f, "llvm"),
            Style::Gcc => write!(f, "gcc"),
        }
    }
}

/// Compiler options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Optimization level.
    pub level: OptLevel,
    /// Code-generation style.
    pub style: Style,
}

impl Options {
    /// `-O2`, LLVM style — the paper's default configuration.
    pub fn o2() -> Options {
        Options { level: OptLevel::O2, style: Style::Llvm }
    }

    /// A specific level, LLVM style.
    pub fn level(level: OptLevel) -> Options {
        Options { level, style: Style::Llvm }
    }

    /// GCC style at `-O2`.
    pub fn gcc() -> Options {
        Options { level: OptLevel::O2, style: Style::Gcc }
    }
}

impl Default for Options {
    fn default() -> Self {
        Options::o2()
    }
}

/// A compilation error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Message.
    pub message: String,
}

impl CompileError {
    /// Construct an error.
    pub fn new(line: u32, message: impl Into<String>) -> CompileError {
        CompileError { line, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Binary operators of the source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    LogAnd,
    LogOr,
}

impl BinOp {
    /// Whether this is a comparison producing 0/1.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::EqEq | BinOp::Ne)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    BitNot,
    LogNot,
}

/// An expression, tagged with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i32),
    /// Variable reference.
    Var(String),
    /// Array element `name[index]`.
    Index(String, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array element.
    Index(String, Box<Expr>),
}

/// A statement, tagged with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration `int x = e;`.
    Decl {
        /// Variable name.
        name: String,
        /// Initializer (defaults to 0).
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// Assignment `lv op= e;` (`op` is `None` for plain `=`).
    Assign {
        /// Target.
        lv: LValue,
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Right-hand side.
        rhs: Expr,
        /// Source line.
        line: u32,
    },
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
        /// Source line of the `if` header.
        line: u32,
    },
    /// `while (cond) { .. }`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source line of the header.
        line: u32,
    },
    /// `for (init; cond; step) { .. }` (desugared components).
    For {
        /// Initializer statement.
        init: Option<Box<Stmt>>,
        /// Condition (defaults to nonzero).
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
        /// Source line of the header.
        line: u32,
    },
    /// `return e;`.
    Return {
        /// Value (defaults to 0).
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// Expression statement (usually a call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
}

/// A global scalar or array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Element count (1 for scalars).
    pub elems: u32,
    /// Initial value of element 0 (scalars only).
    pub init: i32,
    /// Source line.
    pub line: u32,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Parameter names (all `int`).
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line of the signature.
    pub line: u32,
}

/// A parsed program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Globals in declaration order.
    pub globals: Vec<Global>,
    /// Functions in declaration order.
    pub funcs: Vec<Function>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_level_ordering() {
        assert!(OptLevel::O0 < OptLevel::O2);
        assert_eq!(OptLevel::ALL.len(), 4);
        assert_eq!(OptLevel::O2.to_string(), "-O2");
    }

    #[test]
    fn options_constructors() {
        assert_eq!(Options::default(), Options::o2());
        assert_eq!(Options::gcc().style, Style::Gcc);
        assert_eq!(Options::level(OptLevel::O0).level, OptLevel::O0);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn error_display() {
        let e = CompileError::new(3, "unexpected token");
        assert_eq!(e.to_string(), "line 3: unexpected token");
    }
}
