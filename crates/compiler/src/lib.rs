#![forbid(unsafe_code)]
//! A mini-C compiler with ARM and x86 backends (the LLVM/GCC stand-in).
//!
//! The paper learns translation rules from guest and host binaries
//! compiled *from the same source* with debug info. This crate provides
//! that pipeline end to end:
//!
//! * a C-subset front end ([`lexer`], [`parser`]): `int` scalars, global
//!   arrays, functions, `if`/`while`/`for`, the usual arithmetic/logical
//!   /comparison operators (no division — like early ARM cores, the
//!   guest ISA has no divide instruction),
//! * a three-address IR ([`ir`], [`lower`]) whose memory operands carry
//!   *variable names*, the analogue of LLVM IR value names that the
//!   learner's memory-operand mapping keys on,
//! * optimization levels O0–O3 ([`opt`]): constant folding, copy
//!   propagation, local CSE, dead-code elimination, strength reduction;
//!   O0 additionally keeps every named local in memory (so the learning
//!   sensitivity experiment of Figure 6/7 reproduces),
//! * two backends ([`armgen`], [`x86gen`]) with live-interval register
//!   allocation, per-instruction source-line debug tags, and two
//!   *compiler styles* ([`Style::Llvm`] and [`Style::Gcc`]) that differ
//!   in instruction selection (e.g. `incl` vs `addl $1`, `movzbl` vs
//!   `andl $255`) and register preference order — used by the Figure 9
//!   cross-compiler experiment,
//! * an ARM image linker ([`link`]) producing runnable guest binaries
//!   for the DBT.
//!
//! # Example
//!
//! ```
//! use ldbt_compiler::{compile_arm, compile_x86, Options};
//!
//! let src = "int f(int a, int b) { return a + b - 1; }";
//! let guest = compile_arm(src, &Options::o2()).unwrap();
//! let host = compile_x86(src, &Options::o2()).unwrap();
//! assert_eq!(guest.funcs[0].name, "f");
//! assert_eq!(host.funcs[0].name, "f");
//! ```

pub mod armgen;
pub mod ast;
pub mod ir;
pub mod lexer;
pub mod link;
pub mod lower;
pub mod opt;
pub mod parser;
pub mod regalloc;
pub mod x86gen;

pub use armgen::compile_arm;
pub use ast::{CompileError, OptLevel, Options, Style};
pub use ir::{CompiledInstr, CompiledProgram};
pub use link::{link_arm, ArmImage};
pub use x86gen::compile_x86;
