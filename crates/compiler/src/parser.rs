//! Recursive-descent parser for the mini-C subset.

use crate::ast::{BinOp, CompileError, Expr, Function, Global, LValue, Program, Stmt, UnOp};
use crate::lexer::{lex, Tok, Token};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|t| t.line).unwrap_or(1)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), CompileError> {
        match self.peek() {
            Some(Tok::Punct(q)) if *q == p => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected `{p}`, found `{}`", fmt_tok(other)))),
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                Err(self.err(format!("expected identifier, found `{}`", fmt_tok(other.as_ref()))))
            }
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        while self.peek().is_some() {
            let line = self.line();
            match self.bump() {
                Some(Tok::KwInt) => {}
                other => {
                    return Err(CompileError::new(
                        line,
                        format!("expected `int` declaration, found `{}`", fmt_tok(other.as_ref())),
                    ))
                }
            }
            let name = self.expect_ident()?;
            if self.eat_punct("(") {
                prog.funcs.push(self.function(name, line)?);
            } else {
                prog.globals.push(self.global(name, line)?);
            }
        }
        Ok(prog)
    }

    fn global(&mut self, name: String, line: u32) -> Result<Global, CompileError> {
        let mut elems = 1u32;
        if self.eat_punct("[") {
            match self.bump() {
                Some(Tok::Num(n)) if n > 0 => elems = n as u32,
                _ => return Err(self.err("expected positive array size")),
            }
            self.expect_punct("]")?;
        }
        let mut init = 0i32;
        if self.eat_punct("=") {
            init = self.const_expr()?;
        }
        self.expect_punct(";")?;
        Ok(Global { name, elems, init, line })
    }

    fn const_expr(&mut self) -> Result<i32, CompileError> {
        let neg = self.eat_punct("-");
        match self.bump() {
            Some(Tok::Num(n)) => Ok(if neg { n.wrapping_neg() } else { n }),
            other => {
                Err(self.err(format!("expected constant, found `{}`", fmt_tok(other.as_ref()))))
            }
        }
    }

    fn function(&mut self, name: String, line: u32) -> Result<Function, CompileError> {
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                match self.bump() {
                    Some(Tok::KwInt) => {}
                    other => {
                        return Err(self.err(format!(
                            "expected `int` parameter, found `{}`",
                            fmt_tok(other.as_ref())
                        )))
                    }
                }
                params.push(self.expect_ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let body = self.block()?;
        Ok(Function { name, params, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input in block"));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::KwInt) => {
                self.bump();
                let name = self.expect_ident()?;
                let init = if self.eat_punct("=") { Some(self.expr()?) } else { None };
                self.expect_punct(";")?;
                Ok(Stmt::Decl { name, init, line })
            }
            Some(Tok::KwReturn) => {
                self.bump();
                let value = if self.eat_punct(";") {
                    None
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Some(e)
                };
                Ok(Stmt::Return { value, line })
            }
            Some(Tok::KwIf) => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then_body = self.block()?;
                let else_body = if matches!(self.peek(), Some(Tok::KwElse)) {
                    self.bump();
                    if matches!(self.peek(), Some(Tok::KwIf)) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_body, else_body, line })
            }
            Some(Tok::KwWhile) => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, line })
            }
            Some(Tok::KwFor) => {
                self.bump();
                self.expect_punct("(")?;
                let init = if self.eat_punct(";") {
                    None
                } else {
                    let s = self.simple_stmt()?;
                    self.expect_punct(";")?;
                    Some(Box::new(s))
                };
                let cond = if self.eat_punct(";") {
                    None
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Some(e)
                };
                let step = if self.eat_punct(")") {
                    None
                } else {
                    let s = self.simple_stmt()?;
                    self.expect_punct(")")?;
                    Some(Box::new(s))
                };
                let body = self.block()?;
                Ok(Stmt::For { init, cond, step, body, line })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect_punct(";")?;
                Ok(s)
            }
        }
    }

    /// Assignment, compound assignment, declaration-free initializer, or
    /// expression — without the trailing `;` (shared by `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if matches!(self.peek(), Some(Tok::KwInt)) {
            self.bump();
            let name = self.expect_ident()?;
            let init = if self.eat_punct("=") { Some(self.expr()?) } else { None };
            return Ok(Stmt::Decl { name, init, line });
        }
        // Lookahead: identifier followed by an assignment operator?
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            let save = self.pos;
            self.bump();
            let lv = if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                LValue::Index(name.clone(), Box::new(idx))
            } else {
                LValue::Var(name.clone())
            };
            let op = match self.peek() {
                Some(Tok::Punct("=")) => Some(None),
                Some(Tok::Punct("+=")) => Some(Some(BinOp::Add)),
                Some(Tok::Punct("-=")) => Some(Some(BinOp::Sub)),
                Some(Tok::Punct("*=")) => Some(Some(BinOp::Mul)),
                Some(Tok::Punct("&=")) => Some(Some(BinOp::And)),
                Some(Tok::Punct("|=")) => Some(Some(BinOp::Or)),
                Some(Tok::Punct("^=")) => Some(Some(BinOp::Xor)),
                Some(Tok::Punct("<<=")) => Some(Some(BinOp::Shl)),
                Some(Tok::Punct(">>=")) => Some(Some(BinOp::Shr)),
                _ => None,
            };
            if let Some(op) = op {
                self.bump();
                let rhs = self.expr()?;
                return Ok(Stmt::Assign { lv, op, rhs, line });
            }
            self.pos = save;
        }
        let expr = self.expr()?;
        Ok(Stmt::ExprStmt { expr, line })
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        while let Some(Tok::Punct(p)) = self.peek() {
            let Some((op, prec)) = binop_of(p) else { break };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.eat_punct("-") {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::Un(UnOp::BitNot, Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Un(UnOp::LogNot, Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Ident(name)) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    Ok(Expr::Call(name, args))
                } else if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::Punct("(")) => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(CompileError::new(
                line,
                format!("expected expression, found `{}`", fmt_tok(other.as_ref())),
            )),
        }
    }
}

fn binop_of(p: &str) -> Option<(BinOp, u8)> {
    Some(match p {
        "||" => (BinOp::LogOr, 1),
        "&&" => (BinOp::LogAnd, 2),
        "|" => (BinOp::Or, 3),
        "^" => (BinOp::Xor, 4),
        "&" => (BinOp::And, 5),
        "==" => (BinOp::EqEq, 6),
        "!=" => (BinOp::Ne, 6),
        "<" => (BinOp::Lt, 7),
        "<=" => (BinOp::Le, 7),
        ">" => (BinOp::Gt, 7),
        ">=" => (BinOp::Ge, 7),
        "<<" => (BinOp::Shl, 8),
        ">>" => (BinOp::Shr, 8),
        "+" => (BinOp::Add, 9),
        "-" => (BinOp::Sub, 9),
        "*" => (BinOp::Mul, 10),
        _ => return None,
    })
}

fn fmt_tok(t: Option<&Tok>) -> String {
    t.map(|t| t.to_string()).unwrap_or_else(|| "<eof>".to_string())
}

/// Parse a source string into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic [`CompileError`].
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_and_functions() {
        let p = parse("int g = 5; int a[10]; int main() { return g; }").unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].init, 5);
        assert_eq!(p.globals[1].elems, 10);
        assert_eq!(p.funcs[0].name, "main");
    }

    #[test]
    fn precedence() {
        let p = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &p.funcs[0].body[0] else { panic!() };
        // 1 + (2 * 3)
        assert_eq!(
            *e,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Num(1)),
                Box::new(Expr::Bin(BinOp::Mul, Box::new(Expr::Num(2)), Box::new(Expr::Num(3))))
            )
        );
    }

    #[test]
    fn compound_assignment_and_index() {
        let p = parse("int a[4]; int f(int i) { a[i] += 2; return a[i]; }").unwrap();
        let Stmt::Assign { lv: LValue::Index(name, _), op: Some(BinOp::Add), .. } =
            &p.funcs[0].body[0]
        else {
            panic!("{:?}", p.funcs[0].body[0]);
        };
        assert_eq!(name, "a");
    }

    #[test]
    fn control_flow() {
        let src = "
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i += 1) {
    if (i & 1) { s += i; } else { s -= i; }
  }
  while (s > 100) { s >>= 1; }
  return s;
}";
        let p = parse(src).unwrap();
        assert_eq!(p.funcs[0].params, vec!["n"]);
        assert_eq!(p.funcs[0].body.len(), 4);
        let Stmt::For { init: Some(_), cond: Some(_), step: Some(_), .. } = &p.funcs[0].body[1]
        else {
            panic!()
        };
    }

    #[test]
    fn else_if_chain() {
        let src = "int f(int x) { if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; } }";
        let p = parse(src).unwrap();
        let Stmt::If { else_body, .. } = &p.funcs[0].body[0] else { panic!() };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn calls_with_args() {
        let p = parse("int g(int a, int b) { return a; } int f() { return g(1, 2 + 3); }").unwrap();
        let Stmt::Return { value: Some(Expr::Call(name, args)), .. } = &p.funcs[1].body[0] else {
            panic!()
        };
        assert_eq!(name, "g");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn lines_recorded() {
        let src = "int f() {\n  int x = 1;\n  x += 2;\n  return x;\n}";
        let p = parse(src).unwrap();
        let lines: Vec<u32> = p.funcs[0]
            .body
            .iter()
            .map(|s| match s {
                Stmt::Decl { line, .. } | Stmt::Assign { line, .. } | Stmt::Return { line, .. } => {
                    *line
                }
                _ => 0,
            })
            .collect();
        assert_eq!(lines, vec![2, 3, 4]);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = parse("int f() {\n  return ;;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("int f() { return 1 }").is_err());
        assert!(parse("float f() {}").is_err());
        assert!(parse("int a[0];").is_err());
    }

    #[test]
    fn negative_global_init() {
        let p = parse("int g = -7;").unwrap();
        assert_eq!(p.globals[0].init, -7);
    }
}
