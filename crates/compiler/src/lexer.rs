//! The tokenizer.

use crate::ast::CompileError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Num(i32),
    /// Identifier or keyword.
    Ident(String),
    /// `int`.
    KwInt,
    /// `if`.
    KwIf,
    /// `else`.
    KwElse,
    /// `while`.
    KwWhile,
    /// `for`.
    KwFor,
    /// `return`.
    KwReturn,
    /// A punctuation or operator token, by its spelling.
    Punct(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::KwInt => write!(f, "int"),
            Tok::KwIf => write!(f, "if"),
            Tok::KwElse => write!(f, "else"),
            Tok::KwWhile => write!(f, "while"),
            Tok::KwFor => write!(f, "for"),
            Tok::KwReturn => write!(f, "return"),
            Tok::Punct(p) => write!(f, "{p}"),
        }
    }
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "&&", "||", "<<", ">>", "<=", ">=", "==", "!=", "+=", "-=", "*=", "&=", "|=",
    "^=", "(", ")", "{", "}", "[", "]", ";", ",", "+", "-", "*", "&", "|", "^", "<", ">", "=", "!",
    "~",
];

/// Tokenize a source string.
///
/// Supports `//` line comments and decimal / `0x` hexadecimal literals.
///
/// # Errors
///
/// Returns a [`CompileError`] on unknown characters or malformed numbers.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let (radix, digits_start) =
                if c == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    (16, i)
                } else {
                    (10, i)
                };
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            let text = &source[digits_start..i];
            let value = i64::from_str_radix(text, radix).map_err(|_| {
                CompileError::new(line, format!("bad number `{}`", &source[start..i]))
            })?;
            if value > u32::MAX as i64 {
                return Err(CompileError::new(line, format!("number `{value}` out of range")));
            }
            out.push(Token { tok: Tok::Num(value as u32 as i32), line });
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &source[start..i];
            let tok = match word {
                "int" => Tok::KwInt,
                "if" => Tok::KwIf,
                "else" => Tok::KwElse,
                "while" => Tok::KwWhile,
                "for" => Tok::KwFor,
                "return" => Tok::KwReturn,
                _ => Tok::Ident(word.to_string()),
            };
            out.push(Token { tok, line });
            continue;
        }
        for p in PUNCTS {
            if source[i..].starts_with(p) {
                out.push(Token { tok: Tok::Punct(p), line });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(CompileError::new(line, format!("unexpected character `{}`", c as char)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int foo while whilex"),
            vec![Tok::KwInt, Tok::Ident("foo".into()), Tok::KwWhile, Tok::Ident("whilex".into())]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("0 42 0x10"), vec![Tok::Num(0), Tok::Num(42), Tok::Num(16)]);
        assert_eq!(toks("0xffffffff"), vec![Tok::Num(-1)]);
        assert!(lex("0xZZ").is_err());
        assert!(lex("99999999999").is_err());
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(
            toks("a <<= b << c <= d < e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Ident("c".into()),
                Tok::Punct("<="),
                Tok::Ident("d".into()),
                Tok::Punct("<"),
                Tok::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // comment\nb").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn unknown_character() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.message.contains('$'));
    }
}
