//! Lowering from the AST to the three-address IR.
//!
//! The optimization level influences lowering itself in two ways that
//! mirror real compilers (and drive the paper's Figure 6/7 experiment):
//!
//! * at `-O0` every named local lives in a frame slot and is reloaded at
//!   each use (so guest/host live-in register counts often disagree and
//!   parameterization fails more),
//! * scaled addressing (`base + index<<2`) is only *fused* into memory
//!   operands at `-O2` and above; below that, address arithmetic is
//!   materialized as explicit shift/add instructions.

use crate::ast::{BinOp, CompileError, Expr, Function, LValue, OptLevel, Program, Stmt, UnOp};
use crate::ir::{
    BlockId, IrAddr, IrBase, IrBinOp, IrBlock, IrCmp, IrFunction, IrInst, IrModule, IrTagged,
    IrValue, VReg,
};
use ldbt_isa::SourceLoc;
use std::collections::HashMap;

/// Base address of the global data region.
pub const GLOBAL_BASE: u32 = 0x0010_0000;

#[derive(Debug, Clone, Copy)]
enum VarSlot {
    Reg(VReg),
    Frame(i32),
}

#[derive(Debug, Clone)]
enum VarInfo {
    Local(VarSlot),
    GlobalScalar { addr: u32 },
    GlobalArray { addr: u32, elems: u32 },
}

struct FnLowerer<'a> {
    level: OptLevel,
    globals: &'a HashMap<String, VarInfo>,
    func_names: &'a HashMap<String, usize>,
    scopes: Vec<HashMap<String, VarSlot>>,
    blocks: Vec<IrBlock>,
    cur: usize,
    vregs: u32,
    frame: u32,
    loops: Vec<(BlockId, BlockId)>,
}

impl<'a> FnLowerer<'a> {
    fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.vregs);
        self.vregs += 1;
        r
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(IrBlock::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b.0 as usize;
    }

    fn emit(&mut self, inst: IrInst, line: u32) {
        self.blocks[self.cur].insts.push(IrTagged { inst, loc: SourceLoc::line(line) });
    }

    fn terminated(&self) -> bool {
        self.blocks[self.cur].insts.last().map(|t| t.inst.is_terminator()).unwrap_or(false)
    }

    fn new_frame_slot(&mut self) -> i32 {
        let off = self.frame as i32;
        self.frame += 4;
        off
    }

    fn lookup(&self, name: &str) -> Option<VarInfo> {
        for scope in self.scopes.iter().rev() {
            if let Some(slot) = scope.get(name) {
                return Some(VarInfo::Local(*slot));
            }
        }
        self.globals.get(name).cloned()
    }

    fn declare_local(&mut self, name: &str, line: u32) -> Result<VarSlot, CompileError> {
        let slot = if self.level == OptLevel::O0 {
            VarSlot::Frame(self.new_frame_slot())
        } else {
            VarSlot::Reg(self.new_vreg())
        };
        self.scopes.last_mut().expect("scope stack non-empty").insert(name.to_string(), slot);
        let _ = line;
        Ok(slot)
    }

    fn frame_addr(&self, off: i32, var: &str) -> IrAddr {
        IrAddr { base: IrBase::Frame(off), index: None, offset: 0, var: var.to_string() }
    }

    /// Read a variable into an [`IrValue`].
    fn read_var(&mut self, name: &str, line: u32) -> Result<IrValue, CompileError> {
        match self.lookup(name) {
            Some(VarInfo::Local(VarSlot::Reg(r))) => Ok(IrValue::Reg(r)),
            Some(VarInfo::Local(VarSlot::Frame(off))) => {
                let dst = self.new_vreg();
                let addr = self.frame_addr(off, name);
                self.emit(IrInst::Load { dst, addr }, line);
                Ok(IrValue::Reg(dst))
            }
            Some(VarInfo::GlobalScalar { addr }) => {
                let dst = self.new_vreg();
                self.emit(
                    IrInst::Load {
                        dst,
                        addr: IrAddr {
                            base: IrBase::Global(addr),
                            index: None,
                            offset: 0,
                            var: name.to_string(),
                        },
                    },
                    line,
                );
                Ok(IrValue::Reg(dst))
            }
            Some(VarInfo::GlobalArray { .. }) => {
                Err(CompileError::new(line, format!("array `{name}` used as scalar")))
            }
            None => Err(CompileError::new(line, format!("undefined variable `{name}`"))),
        }
    }

    /// The address of `name[index]`.
    fn element_addr(
        &mut self,
        name: &str,
        index: &Expr,
        line: u32,
    ) -> Result<IrAddr, CompileError> {
        let Some(VarInfo::GlobalArray { addr, elems }) = self.lookup(name) else {
            return Err(CompileError::new(line, format!("`{name}` is not an array")));
        };
        let idx = self.lower_expr(index, line)?;
        match idx {
            IrValue::Const(c) if c < 0 || c as u32 >= elems => Err(CompileError::new(
                line,
                format!("index {c} out of bounds for `{name}[{elems}]`"),
            )),
            IrValue::Const(c) => Ok(IrAddr {
                base: IrBase::Global(addr),
                index: None,
                offset: c.wrapping_mul(4),
                var: name.to_string(),
            }),
            IrValue::Reg(r) => {
                if self.level >= OptLevel::O2 {
                    Ok(IrAddr {
                        base: IrBase::Global(addr),
                        index: Some((r, 2)),
                        offset: 0,
                        var: name.to_string(),
                    })
                } else {
                    // Explicit address arithmetic below -O2.
                    let scaled = self.new_vreg();
                    self.emit(
                        IrInst::Bin {
                            op: IrBinOp::Shl,
                            dst: scaled,
                            a: IrValue::Reg(r),
                            b: IrValue::Const(2),
                        },
                        line,
                    );
                    Ok(IrAddr {
                        base: IrBase::Global(addr),
                        index: Some((scaled, 0)),
                        offset: 0,
                        var: name.to_string(),
                    })
                }
            }
        }
    }

    fn lower_expr(&mut self, e: &Expr, line: u32) -> Result<IrValue, CompileError> {
        match e {
            Expr::Num(n) => Ok(IrValue::Const(*n)),
            Expr::Var(name) => self.read_var(name, line),
            Expr::Index(name, idx) => {
                let addr = self.element_addr(name, idx, line)?;
                let dst = self.new_vreg();
                self.emit(IrInst::Load { dst, addr }, line);
                Ok(IrValue::Reg(dst))
            }
            Expr::Un(op, inner) => {
                let v = self.lower_expr(inner, line)?;
                match op {
                    UnOp::Neg => self.bin_value(IrBinOp::Sub, IrValue::Const(0), v, line),
                    UnOp::BitNot => self.bin_value(IrBinOp::Xor, v, IrValue::Const(-1), line),
                    UnOp::LogNot => {
                        let dst = self.new_vreg();
                        self.emit(
                            IrInst::SetCmp { cmp: IrCmp::Eq, dst, a: v, b: IrValue::Const(0) },
                            line,
                        );
                        Ok(IrValue::Reg(dst))
                    }
                }
            }
            Expr::Bin(op, a, b) => {
                if let Some(cmp) = cmp_of(*op) {
                    let va = self.lower_expr(a, line)?;
                    let vb = self.lower_expr(b, line)?;
                    let dst = self.new_vreg();
                    self.emit(IrInst::SetCmp { cmp, dst, a: va, b: vb }, line);
                    return Ok(IrValue::Reg(dst));
                }
                if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
                    // Value form of && / || via control flow.
                    let dst = self.new_vreg();
                    let true_bb = self.new_block();
                    let false_bb = self.new_block();
                    let merge = self.new_block();
                    self.lower_cond(e, true_bb, false_bb, line)?;
                    self.switch_to(true_bb);
                    self.emit(IrInst::Copy { dst, src: IrValue::Const(1) }, line);
                    self.emit(IrInst::Jump { target: merge }, line);
                    self.switch_to(false_bb);
                    self.emit(IrInst::Copy { dst, src: IrValue::Const(0) }, line);
                    self.emit(IrInst::Jump { target: merge }, line);
                    self.switch_to(merge);
                    return Ok(IrValue::Reg(dst));
                }
                let ir_op = match op {
                    BinOp::Add => IrBinOp::Add,
                    BinOp::Sub => IrBinOp::Sub,
                    BinOp::Mul => IrBinOp::Mul,
                    BinOp::And => IrBinOp::And,
                    BinOp::Or => IrBinOp::Or,
                    BinOp::Xor => IrBinOp::Xor,
                    BinOp::Shl => IrBinOp::Shl,
                    BinOp::Shr => IrBinOp::Sar,
                    _ => unreachable!("handled above"),
                };
                let va = self.lower_expr(a, line)?;
                let vb = self.lower_expr(b, line)?;
                self.bin_value(ir_op, va, vb, line)
            }
            Expr::Call(name, args) => {
                if !self.func_names.contains_key(name.as_str()) {
                    return Err(CompileError::new(line, format!("undefined function `{name}`")));
                }
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.lower_expr(a, line)?);
                }
                let dst = self.new_vreg();
                self.emit(IrInst::Call { func: name.clone(), args: vals, dst: Some(dst) }, line);
                Ok(IrValue::Reg(dst))
            }
        }
    }

    fn bin_value(
        &mut self,
        op: IrBinOp,
        a: IrValue,
        b: IrValue,
        line: u32,
    ) -> Result<IrValue, CompileError> {
        let dst = self.new_vreg();
        self.emit(IrInst::Bin { op, dst, a, b }, line);
        Ok(IrValue::Reg(dst))
    }

    /// Lower `e` directly into `dst`, avoiding a temporary + copy for the
    /// common `x = a op b` shape (this is also what lets the backends fuse
    /// flag-setting arithmetic with a following branch).
    fn lower_expr_to(&mut self, dst: VReg, e: &Expr, line: u32) -> Result<(), CompileError> {
        match e {
            Expr::Bin(op, a, b) if !matches!(op, BinOp::LogAnd | BinOp::LogOr) => {
                if let Some(cmp) = cmp_of(*op) {
                    let va = self.lower_expr(a, line)?;
                    let vb = self.lower_expr(b, line)?;
                    self.emit(IrInst::SetCmp { cmp, dst, a: va, b: vb }, line);
                } else {
                    let ir_op = plain_op(*op, line)?;
                    let va = self.lower_expr(a, line)?;
                    let vb = self.lower_expr(b, line)?;
                    self.emit(IrInst::Bin { op: ir_op, dst, a: va, b: vb }, line);
                }
                Ok(())
            }
            _ => {
                let v = self.lower_expr(e, line)?;
                if v != IrValue::Reg(dst) {
                    self.emit(IrInst::Copy { dst, src: v }, line);
                }
                Ok(())
            }
        }
    }

    /// Lower a boolean condition with short-circuiting.
    fn lower_cond(
        &mut self,
        e: &Expr,
        then_bb: BlockId,
        else_bb: BlockId,
        line: u32,
    ) -> Result<(), CompileError> {
        match e {
            Expr::Bin(op, a, b) if cmp_of(*op).is_some() => {
                let cmp = cmp_of(*op).expect("checked");
                let va = self.lower_expr(a, line)?;
                let vb = self.lower_expr(b, line)?;
                self.emit(IrInst::Branch { cmp, a: va, b: vb, then_bb, else_bb }, line);
                Ok(())
            }
            Expr::Bin(BinOp::LogAnd, a, b) => {
                let mid = self.new_block();
                self.lower_cond(a, mid, else_bb, line)?;
                self.switch_to(mid);
                self.lower_cond(b, then_bb, else_bb, line)
            }
            Expr::Bin(BinOp::LogOr, a, b) => {
                let mid = self.new_block();
                self.lower_cond(a, then_bb, mid, line)?;
                self.switch_to(mid);
                self.lower_cond(b, then_bb, else_bb, line)
            }
            Expr::Un(UnOp::LogNot, inner) => self.lower_cond(inner, else_bb, then_bb, line),
            _ => {
                let v = self.lower_expr(e, line)?;
                self.emit(
                    IrInst::Branch { cmp: IrCmp::Ne, a: v, b: IrValue::Const(0), then_bb, else_bb },
                    line,
                );
                Ok(())
            }
        }
    }

    fn write_var(&mut self, name: &str, value: IrValue, line: u32) -> Result<(), CompileError> {
        match self.lookup(name) {
            Some(VarInfo::Local(VarSlot::Reg(r))) => {
                self.emit(IrInst::Copy { dst: r, src: value }, line);
                Ok(())
            }
            Some(VarInfo::Local(VarSlot::Frame(off))) => {
                let addr = self.frame_addr(off, name);
                self.emit(IrInst::Store { src: value, addr }, line);
                Ok(())
            }
            Some(VarInfo::GlobalScalar { addr }) => {
                self.emit(
                    IrInst::Store {
                        src: value,
                        addr: IrAddr {
                            base: IrBase::Global(addr),
                            index: None,
                            offset: 0,
                            var: name.to_string(),
                        },
                    },
                    line,
                );
                Ok(())
            }
            Some(VarInfo::GlobalArray { .. }) => {
                Err(CompileError::new(line, format!("cannot assign to array `{name}`")))
            }
            None => Err(CompileError::new(line, format!("undefined variable `{name}`"))),
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Decl { name, init, line } => {
                // Evaluate the initializer in the enclosing scope, then
                // declare.
                match init {
                    Some(e) => {
                        if self.level != OptLevel::O0 {
                            // The fresh vreg is not visible by name until
                            // after the initializer is lowered, so it can
                            // be the direct destination.
                            let dst = self.new_vreg();
                            self.lower_expr_to(dst, e, *line)?;
                            self.scopes
                                .last_mut()
                                .expect("scope stack non-empty")
                                .insert(name.clone(), VarSlot::Reg(dst));
                            Ok(())
                        } else {
                            let value = self.lower_expr(e, *line)?;
                            self.declare_local(name, *line)?;
                            self.write_var(name, value, *line)
                        }
                    }
                    None => {
                        self.declare_local(name, *line)?;
                        self.write_var(name, IrValue::Const(0), *line)
                    }
                }
            }
            Stmt::Assign { lv, op, rhs, line } => match lv {
                LValue::Var(name) => match (op, self.lookup(name)) {
                    (None, Some(VarInfo::Local(VarSlot::Reg(dst)))) => {
                        self.lower_expr_to(dst, rhs, *line)
                    }
                    (Some(bop), Some(VarInfo::Local(VarSlot::Reg(dst)))) => {
                        let r = self.lower_expr(rhs, *line)?;
                        let ir_op = plain_op(*bop, *line)?;
                        self.emit(
                            IrInst::Bin { op: ir_op, dst, a: IrValue::Reg(dst), b: r },
                            *line,
                        );
                        Ok(())
                    }
                    (None, _) => {
                        let value = self.lower_expr(rhs, *line)?;
                        self.write_var(name, value, *line)
                    }
                    (Some(bop), _) => {
                        let cur = self.read_var(name, *line)?;
                        let r = self.lower_expr(rhs, *line)?;
                        let ir_op = plain_op(*bop, *line)?;
                        let value = self.bin_value(ir_op, cur, r, *line)?;
                        self.write_var(name, value, *line)
                    }
                },
                LValue::Index(name, idx) => match op {
                    None => {
                        let v = self.lower_expr(rhs, *line)?;
                        let addr = self.element_addr(name, idx, *line)?;
                        self.emit(IrInst::Store { src: v, addr }, *line);
                        Ok(())
                    }
                    Some(bop) => {
                        let addr = self.element_addr(name, idx, *line)?;
                        let cur = self.new_vreg();
                        self.emit(IrInst::Load { dst: cur, addr: addr.clone() }, *line);
                        let r = self.lower_expr(rhs, *line)?;
                        let ir_op = plain_op(*bop, *line)?;
                        let v = self.bin_value(ir_op, IrValue::Reg(cur), r, *line)?;
                        self.emit(IrInst::Store { src: v, addr }, *line);
                        Ok(())
                    }
                },
            },
            Stmt::If { cond, then_body, else_body, line } => {
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let merge = if else_body.is_empty() { else_bb } else { self.new_block() };
                self.lower_cond(cond, then_bb, else_bb, *line)?;
                self.switch_to(then_bb);
                self.scopes.push(HashMap::new());
                for s in then_body {
                    self.lower_stmt(s)?;
                }
                self.scopes.pop();
                if !self.terminated() {
                    self.emit(IrInst::Jump { target: merge }, *line);
                }
                if !else_body.is_empty() {
                    self.switch_to(else_bb);
                    self.scopes.push(HashMap::new());
                    for s in else_body {
                        self.lower_stmt(s)?;
                    }
                    self.scopes.pop();
                    if !self.terminated() {
                        self.emit(IrInst::Jump { target: merge }, *line);
                    }
                }
                self.switch_to(merge);
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.emit(IrInst::Jump { target: header }, *line);
                self.switch_to(header);
                self.lower_cond(cond, body_bb, exit, *line)?;
                self.switch_to(body_bb);
                self.scopes.push(HashMap::new());
                for s in body {
                    self.lower_stmt(s)?;
                }
                self.scopes.pop();
                if !self.terminated() {
                    self.emit(IrInst::Jump { target: header }, *line);
                }
                let last = BlockId(self.blocks.len() as u32 - 1);
                self.loops.push((header, last));
                self.switch_to(exit);
                Ok(())
            }
            Stmt::For { init, cond, step, body, line } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.lower_stmt(i)?;
                }
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.emit(IrInst::Jump { target: header }, *line);
                self.switch_to(header);
                match cond {
                    Some(c) => self.lower_cond(c, body_bb, exit, *line)?,
                    None => self.emit(IrInst::Jump { target: body_bb }, *line),
                }
                self.switch_to(body_bb);
                self.scopes.push(HashMap::new());
                for s in body {
                    self.lower_stmt(s)?;
                }
                self.scopes.pop();
                if !self.terminated() {
                    if let Some(st) = step {
                        self.lower_stmt(st)?;
                    }
                    self.emit(IrInst::Jump { target: header }, *line);
                }
                self.scopes.pop();
                let last = BlockId(self.blocks.len() as u32 - 1);
                self.loops.push((header, last));
                self.switch_to(exit);
                Ok(())
            }
            Stmt::Return { value, line } => {
                let v = match value {
                    Some(e) => Some(self.lower_expr(e, *line)?),
                    None => None,
                };
                self.emit(IrInst::Ret { value: v }, *line);
                // Code after a return goes to a fresh unreachable block.
                let cont = self.new_block();
                self.switch_to(cont);
                Ok(())
            }
            Stmt::ExprStmt { expr, line } => {
                if let Expr::Call(name, args) = expr {
                    if !self.func_names.contains_key(name.as_str()) {
                        return Err(CompileError::new(
                            *line,
                            format!("undefined function `{name}`"),
                        ));
                    }
                    let mut vals = Vec::new();
                    for a in args {
                        vals.push(self.lower_expr(a, *line)?);
                    }
                    self.emit(IrInst::Call { func: name.clone(), args: vals, dst: None }, *line);
                    Ok(())
                } else {
                    let _ = self.lower_expr(expr, *line)?;
                    Ok(())
                }
            }
        }
    }
}

fn cmp_of(op: BinOp) -> Option<IrCmp> {
    Some(match op {
        BinOp::Lt => IrCmp::Lt,
        BinOp::Le => IrCmp::Le,
        BinOp::Gt => IrCmp::Gt,
        BinOp::Ge => IrCmp::Ge,
        BinOp::EqEq => IrCmp::Eq,
        BinOp::Ne => IrCmp::Ne,
        _ => return None,
    })
}

fn plain_op(op: BinOp, line: u32) -> Result<IrBinOp, CompileError> {
    Ok(match op {
        BinOp::Add => IrBinOp::Add,
        BinOp::Sub => IrBinOp::Sub,
        BinOp::Mul => IrBinOp::Mul,
        BinOp::And => IrBinOp::And,
        BinOp::Or => IrBinOp::Or,
        BinOp::Xor => IrBinOp::Xor,
        BinOp::Shl => IrBinOp::Shl,
        BinOp::Shr => IrBinOp::Sar,
        _ => return Err(CompileError::new(line, "compound comparison assignment")),
    })
}

fn lower_function(
    f: &Function,
    level: OptLevel,
    globals: &HashMap<String, VarInfo>,
    func_names: &HashMap<String, usize>,
) -> Result<IrFunction, CompileError> {
    let mut l = FnLowerer {
        level,
        globals,
        func_names,
        scopes: vec![HashMap::new()],
        blocks: vec![IrBlock::default()],
        cur: 0,
        vregs: f.params.len() as u32,
        frame: 0,
        loops: Vec::new(),
    };
    // Bind parameters: vregs 0..n are the incoming arguments.
    for (i, p) in f.params.iter().enumerate() {
        if l.level == OptLevel::O0 {
            let off = l.new_frame_slot();
            l.scopes[0].insert(p.clone(), VarSlot::Frame(off));
            let addr = l.frame_addr(off, p);
            l.emit(IrInst::Store { src: IrValue::Reg(VReg(i as u32)), addr }, f.line);
        } else {
            l.scopes[0].insert(p.clone(), VarSlot::Reg(VReg(i as u32)));
        }
    }
    for s in &f.body {
        l.lower_stmt(s)?;
    }
    // Add an implicit `ret` unless the current block is an unreachable
    // empty continuation (created after a `return`, never jumped to).
    if !l.terminated() {
        let cur = l.cur;
        let reachable = cur == 0
            || !l.blocks[cur].insts.is_empty()
            || l.blocks.iter().flat_map(|b| b.insts.iter()).any(|t| match t.inst {
                IrInst::Jump { target } => target.0 as usize == cur,
                IrInst::Branch { then_bb, else_bb, .. } => {
                    then_bb.0 as usize == cur || else_bb.0 as usize == cur
                }
                _ => false,
            });
        if reachable {
            l.emit(IrInst::Ret { value: None }, f.line);
        }
    }
    Ok(IrFunction {
        name: f.name.clone(),
        param_count: f.params.len(),
        vreg_count: l.vregs,
        blocks: l.blocks,
        frame_size: l.frame,
        loops: l.loops,
    })
}

/// Lower a parsed program to an IR module.
///
/// # Errors
///
/// Returns the first semantic [`CompileError`] (undefined names, arity
/// misuse of arrays, …).
pub fn lower(prog: &Program, level: OptLevel) -> Result<IrModule, CompileError> {
    let mut globals = HashMap::new();
    let mut layout = Vec::new();
    let mut addr = GLOBAL_BASE;
    for g in &prog.globals {
        if globals.contains_key(&g.name) {
            return Err(CompileError::new(g.line, format!("duplicate global `{}`", g.name)));
        }
        let info = if g.elems == 1 {
            VarInfo::GlobalScalar { addr }
        } else {
            VarInfo::GlobalArray { addr, elems: g.elems }
        };
        globals.insert(g.name.clone(), info);
        layout.push((g.name.clone(), addr, g.elems, g.init));
        addr += g.elems * 4;
    }
    let mut func_names = HashMap::new();
    for (i, f) in prog.funcs.iter().enumerate() {
        if func_names.insert(f.name.clone(), i).is_some() {
            return Err(CompileError::new(f.line, format!("duplicate function `{}`", f.name)));
        }
    }
    let mut funcs = Vec::new();
    for f in &prog.funcs {
        funcs.push(lower_function(f, level, &globals, &func_names)?);
    }
    Ok(IrModule { funcs, globals: layout })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str, level: OptLevel) -> IrModule {
        lower(&parse(src).unwrap(), level).unwrap()
    }

    #[test]
    fn simple_function_shape() {
        let m = lower_src("int f(int a, int b) { return a + b; }", OptLevel::O2);
        let f = &m.funcs[0];
        assert_eq!(f.param_count, 2);
        let insts: Vec<String> = f.insts().map(|t| t.inst.to_string()).collect();
        assert_eq!(insts, vec!["%2 = add %0, %1", "ret %2"]);
    }

    #[test]
    fn o0_homes_locals_in_frame() {
        let m = lower_src("int f(int a) { int x = a; return x; }", OptLevel::O0);
        let f = &m.funcs[0];
        assert!(f.frame_size >= 8, "param + local slots");
        let has_store = f.insts().any(|t| matches!(t.inst, IrInst::Store { .. }));
        let has_load = f.insts().any(|t| matches!(t.inst, IrInst::Load { .. }));
        assert!(has_store && has_load);
    }

    #[test]
    fn o2_keeps_locals_in_vregs() {
        let m = lower_src("int f(int a) { int x = a; return x; }", OptLevel::O2);
        let f = &m.funcs[0];
        assert_eq!(f.frame_size, 0);
        assert!(!f.insts().any(|t| matches!(t.inst, IrInst::Load { .. })));
    }

    #[test]
    fn array_fusion_by_level() {
        let src = "int a[8]; int f(int i) { return a[i]; }";
        let m2 = lower_src(src, OptLevel::O2);
        let fused = m2.funcs[0].insts().any(
            |t| matches!(&t.inst, IrInst::Load { addr, .. } if matches!(addr.index, Some((_, 2)))),
        );
        assert!(fused, "O2 fuses the scale into the address");
        let m1 = lower_src(src, OptLevel::O1);
        let explicit_shift =
            m1.funcs[0].insts().any(|t| matches!(&t.inst, IrInst::Bin { op: IrBinOp::Shl, .. }));
        assert!(explicit_shift, "O1 materializes the shift");
    }

    #[test]
    fn while_records_loop_span() {
        let m = lower_src(
            "int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }",
            OptLevel::O2,
        );
        let f = &m.funcs[0];
        assert_eq!(f.loops.len(), 1);
        let (h, l) = f.loops[0];
        assert!(h < l);
        // The header ends with a conditional branch.
        let hdr = &f.blocks[h.0 as usize];
        assert!(matches!(hdr.insts.last().unwrap().inst, IrInst::Branch { .. }));
    }

    #[test]
    fn short_circuit_condition() {
        let m = lower_src(
            "int f(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }",
            OptLevel::O2,
        );
        let branches =
            m.funcs[0].insts().filter(|t| matches!(t.inst, IrInst::Branch { .. })).count();
        assert_eq!(branches, 2, "two tests for &&");
    }

    #[test]
    fn logical_value_materializes_zero_one() {
        let m = lower_src("int f(int a, int b) { return a > 0 || b > 0; }", OptLevel::O2);
        let copies: Vec<i32> = m.funcs[0]
            .insts()
            .filter_map(|t| match t.inst {
                IrInst::Copy { src: IrValue::Const(c), .. } => Some(c),
                _ => None,
            })
            .collect();
        assert!(copies.contains(&0) && copies.contains(&1));
    }

    #[test]
    fn global_layout() {
        let m = lower_src("int g; int a[4]; int h = 3; int f() { return g; }", OptLevel::O2);
        assert_eq!(m.globals[0], ("g".to_string(), GLOBAL_BASE, 1, 0));
        assert_eq!(m.globals[1], ("a".to_string(), GLOBAL_BASE + 4, 4, 0));
        assert_eq!(m.globals[2], ("h".to_string(), GLOBAL_BASE + 20, 1, 3));
    }

    #[test]
    fn mem_var_names_flow_through() {
        let m = lower_src("int total; int f(int x) { total += x; return total; }", OptLevel::O2);
        let vars: Vec<&str> = m.funcs[0]
            .insts()
            .filter_map(|t| match &t.inst {
                IrInst::Load { addr, .. } | IrInst::Store { addr, .. } => Some(addr.var.as_str()),
                _ => None,
            })
            .collect();
        assert!(vars.iter().all(|v| *v == "total"));
        assert!(vars.len() >= 2);
    }

    #[test]
    fn constant_index_bounds_checked() {
        assert!(lower(&parse("int a[4]; int f() { return a[3]; }").unwrap(), OptLevel::O2).is_ok());
        let e =
            lower(&parse("int a[4]; int f() { return a[4]; }").unwrap(), OptLevel::O2).unwrap_err();
        assert!(e.message.contains("out of bounds"), "{e}");
        // Non-constant indices are not statically checkable.
        assert!(lower(
            &parse("int a[4]; int f(int i) { a[i] = 0; return 0; }").unwrap(),
            OptLevel::O2
        )
        .is_ok());
    }

    #[test]
    fn semantic_errors() {
        assert!(lower(&parse("int f() { return x; }").unwrap(), OptLevel::O2).is_err());
        assert!(lower(&parse("int f() { return g(); }").unwrap(), OptLevel::O2).is_err());
        assert!(lower(&parse("int a[2]; int f() { return a; }").unwrap(), OptLevel::O2).is_err());
        assert!(lower(&parse("int g; int g; ").unwrap(), OptLevel::O2).is_err());
        assert!(lower(
            &parse("int f() { return 1; } int f() { return 2; }").unwrap(),
            OptLevel::O2
        )
        .is_err());
    }

    #[test]
    fn every_block_is_terminated() {
        let src = "
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i += 1) {
    if (i & 1) { s += i; } else { s -= i; }
  }
  if (s > 10) { return s; }
  return 0 - s;
}";
        let m = lower_src(src, OptLevel::O2);
        for (i, b) in m.funcs[0].blocks.iter().enumerate() {
            // Unreachable continuation blocks may be empty; all non-empty
            // blocks must end in a terminator.
            if let Some(last) = b.insts.last() {
                assert!(last.inst.is_terminator(), "bb{i} not terminated");
            }
        }
    }

    #[test]
    fn lines_tag_instructions() {
        let src = "int f(int a) {\n  int x = a + 1;\n  x = x * 2;\n  return x;\n}";
        let m = lower_src(src, OptLevel::O2);
        let lines: Vec<u32> = m.funcs[0].insts().map(|t| t.loc.line).collect();
        assert!(lines.contains(&2) && lines.contains(&3) && lines.contains(&4));
    }
}
