//! The three-address intermediate representation.
//!
//! Non-SSA: virtual registers are mutable. Functions are lists of basic
//! blocks laid out in final order; branches name block ids. Memory
//! operands carry the source *variable name* — the analogue of LLVM IR
//! value names that the rule learner's memory-operand mapping relies on
//! (paper §3.2: "guest and host memory operands are mapped according to
//! the names of the corresponding variables in LLVM IRs").

use ldbt_isa::SourceLoc;
use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic-block id (index into [`IrFunction::blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An IR operand: a virtual register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrValue {
    /// Virtual register.
    Reg(VReg),
    /// Constant.
    Const(i32),
}

impl fmt::Display for IrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrValue::Reg(r) => write!(f, "{r}"),
            IrValue::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Arithmetic/logical IR opcodes (all 32-bit, wrapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IrBinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic (signed) right shift — `>>` on `int`.
    Sar,
}

impl IrBinOp {
    /// Evaluate on constants.
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            IrBinOp::Add => a.wrapping_add(b),
            IrBinOp::Sub => a.wrapping_sub(b),
            IrBinOp::Mul => a.wrapping_mul(b),
            IrBinOp::And => a & b,
            IrBinOp::Or => a | b,
            IrBinOp::Xor => a ^ b,
            IrBinOp::Shl => ((a as u32).wrapping_shl(b as u32 & 31)) as i32,
            IrBinOp::Sar => a.wrapping_shr(b as u32 & 31),
        }
    }

    /// Whether operands commute.
    pub fn commutative(self) -> bool {
        matches!(self, IrBinOp::Add | IrBinOp::Mul | IrBinOp::And | IrBinOp::Or | IrBinOp::Xor)
    }
}

impl fmt::Display for IrBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IrBinOp::Add => "add",
            IrBinOp::Sub => "sub",
            IrBinOp::Mul => "mul",
            IrBinOp::And => "and",
            IrBinOp::Or => "or",
            IrBinOp::Xor => "xor",
            IrBinOp::Shl => "shl",
            IrBinOp::Sar => "sar",
        };
        write!(f, "{s}")
    }
}

/// Signed comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IrCmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl IrCmp {
    /// Evaluate on constants (signed).
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            IrCmp::Eq => a == b,
            IrCmp::Ne => a != b,
            IrCmp::Lt => a < b,
            IrCmp::Le => a <= b,
            IrCmp::Gt => a > b,
            IrCmp::Ge => a >= b,
        }
    }

    /// The negated predicate.
    pub fn invert(self) -> IrCmp {
        match self {
            IrCmp::Eq => IrCmp::Ne,
            IrCmp::Ne => IrCmp::Eq,
            IrCmp::Lt => IrCmp::Ge,
            IrCmp::Le => IrCmp::Gt,
            IrCmp::Gt => IrCmp::Le,
            IrCmp::Ge => IrCmp::Lt,
        }
    }

    /// The predicate with swapped operands.
    pub fn swap(self) -> IrCmp {
        match self {
            IrCmp::Eq => IrCmp::Eq,
            IrCmp::Ne => IrCmp::Ne,
            IrCmp::Lt => IrCmp::Gt,
            IrCmp::Le => IrCmp::Ge,
            IrCmp::Gt => IrCmp::Lt,
            IrCmp::Ge => IrCmp::Le,
        }
    }
}

impl fmt::Display for IrCmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IrCmp::Eq => "eq",
            IrCmp::Ne => "ne",
            IrCmp::Lt => "lt",
            IrCmp::Le => "le",
            IrCmp::Gt => "gt",
            IrCmp::Ge => "ge",
        };
        write!(f, "{s}")
    }
}

/// A memory address in the IR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IrAddr {
    /// Base: either a global's absolute address or a register.
    pub base: IrBase,
    /// Optional scaled index: `(reg, left-shift amount)`.
    pub index: Option<(VReg, u32)>,
    /// Constant byte offset.
    pub offset: i32,
    /// The source variable name this address refers to (the LLVM-IR-name
    /// analogue the learner keys memory mappings on).
    pub var: String,
}

/// Base of an [`IrAddr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrBase {
    /// Absolute address of a global.
    Global(u32),
    /// A register holding an address.
    Reg(VReg),
    /// A slot in the current frame (byte offset from the frame base).
    Frame(i32),
}

impl fmt::Display for IrAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        match self.base {
            IrBase::Global(a) => write!(f, "@{:#x}", a)?,
            IrBase::Reg(r) => write!(f, "{r}")?,
            IrBase::Frame(off) => write!(f, "frame{off:+}")?,
        }
        if let Some((r, s)) = self.index {
            write!(f, " + {r} << {s}")?;
        }
        if self.offset != 0 {
            write!(f, " + {}", self.offset)?;
        }
        write!(f, " !{}]", self.var)
    }
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrInst {
    /// `dst = src`.
    Copy {
        /// Destination.
        dst: VReg,
        /// Source.
        src: IrValue,
    },
    /// `dst = a op b`.
    Bin {
        /// Opcode.
        op: IrBinOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: IrValue,
        /// Right operand.
        b: IrValue,
    },
    /// `dst = (a cmp b) ? 1 : 0`.
    SetCmp {
        /// Predicate.
        cmp: IrCmp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: IrValue,
        /// Right operand.
        b: IrValue,
    },
    /// `dst = load addr`.
    Load {
        /// Destination.
        dst: VReg,
        /// Address.
        addr: IrAddr,
    },
    /// `store src, addr`.
    Store {
        /// Value.
        src: IrValue,
        /// Address.
        addr: IrAddr,
    },
    /// Unconditional jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch on `a cmp b`.
    Branch {
        /// Predicate.
        cmp: IrCmp,
        /// Left operand.
        a: IrValue,
        /// Right operand.
        b: IrValue,
        /// Target when the predicate holds.
        then_bb: BlockId,
        /// Target otherwise.
        else_bb: BlockId,
    },
    /// Call `func(args)`, optionally binding the result.
    Call {
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<IrValue>,
        /// Result register.
        dst: Option<VReg>,
    },
    /// Return.
    Ret {
        /// Return value (0 if absent).
        value: Option<IrValue>,
    },
}

impl IrInst {
    /// The register defined, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            IrInst::Copy { dst, .. }
            | IrInst::Bin { dst, .. }
            | IrInst::SetCmp { dst, .. }
            | IrInst::Load { dst, .. } => Some(*dst),
            IrInst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// The registers read.
    pub fn uses(&self) -> Vec<VReg> {
        fn val(v: &IrValue, out: &mut Vec<VReg>) {
            if let IrValue::Reg(r) = v {
                out.push(*r);
            }
        }
        fn addr(a: &IrAddr, out: &mut Vec<VReg>) {
            if let IrBase::Reg(r) = a.base {
                out.push(r);
            }
            if let Some((r, _)) = a.index {
                out.push(r);
            }
        }
        let mut out = Vec::new();
        match self {
            IrInst::Copy { src, .. } => val(src, &mut out),
            IrInst::Bin { a, b, .. }
            | IrInst::SetCmp { a, b, .. }
            | IrInst::Branch { a, b, .. } => {
                val(a, &mut out);
                val(b, &mut out);
            }
            IrInst::Load { addr: a, .. } => addr(a, &mut out),
            IrInst::Store { src, addr: a } => {
                val(src, &mut out);
                addr(a, &mut out);
            }
            IrInst::Call { args, .. } => {
                for a in args {
                    val(a, &mut out);
                }
            }
            IrInst::Ret { value } => {
                if let Some(v) = value {
                    val(v, &mut out);
                }
            }
            IrInst::Jump { .. } => {}
        }
        out
    }

    /// Whether the instruction has side effects beyond its def.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            IrInst::Store { .. }
                | IrInst::Call { .. }
                | IrInst::Ret { .. }
                | IrInst::Jump { .. }
                | IrInst::Branch { .. }
        )
    }

    /// Whether the instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, IrInst::Jump { .. } | IrInst::Branch { .. } | IrInst::Ret { .. })
    }
}

impl fmt::Display for IrInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrInst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            IrInst::Bin { op, dst, a, b } => write!(f, "{dst} = {op} {a}, {b}"),
            IrInst::SetCmp { cmp, dst, a, b } => write!(f, "{dst} = set{cmp} {a}, {b}"),
            IrInst::Load { dst, addr } => write!(f, "{dst} = load {addr}"),
            IrInst::Store { src, addr } => write!(f, "store {src}, {addr}"),
            IrInst::Jump { target } => write!(f, "jump {target}"),
            IrInst::Branch { cmp, a, b, then_bb, else_bb } => {
                write!(f, "br {cmp} {a}, {b} ? {then_bb} : {else_bb}")
            }
            IrInst::Call { func, args, dst } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call {func}(")?;
                } else {
                    write!(f, "call {func}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            IrInst::Ret { value } => match value {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
        }
    }
}

/// An instruction with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrTagged {
    /// The instruction.
    pub inst: IrInst,
    /// Source location.
    pub loc: SourceLoc,
}

/// A basic block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IrBlock {
    /// Instructions; the last one is the terminator.
    pub insts: Vec<IrTagged>,
}

/// A function in IR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrFunction {
    /// Name.
    pub name: String,
    /// Number of parameters (bound to the first `param_count` vregs).
    pub param_count: usize,
    /// Next unused vreg number.
    pub vreg_count: u32,
    /// Blocks in layout order; entry is block 0.
    pub blocks: Vec<IrBlock>,
    /// Frame bytes used by memory-homed locals / arrays.
    pub frame_size: u32,
    /// Loop extents as (first block, last block) inclusive, innermost
    /// last — used by the register allocator to extend live ranges over
    /// back edges.
    pub loops: Vec<(BlockId, BlockId)>,
}

impl IrFunction {
    /// Iterate over all instructions in layout order.
    pub fn insts(&self) -> impl Iterator<Item = &IrTagged> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

impl fmt::Display for IrFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {}({} params) {{", self.name, self.param_count)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{i}:")?;
            for t in &b.insts {
                writeln!(f, "  {}    ; line {}", t.inst, t.loc.line)?;
            }
        }
        write!(f, "}}")
    }
}

/// A whole module in IR form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IrModule {
    /// Functions in source order.
    pub funcs: Vec<IrFunction>,
    /// Global layout: (name, address, element count, initial value).
    pub globals: Vec<(String, u32, u32, i32)>,
}

/// A machine instruction with learning metadata, as emitted by a backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledInstr<I> {
    /// The machine instruction.
    pub instr: I,
    /// Source location (line 0 = compiler-generated glue).
    pub loc: SourceLoc,
    /// Variable name of the instruction's memory operand, if any.
    pub mem_var: Option<String>,
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledFunction<I> {
    /// Name.
    pub name: String,
    /// Code in layout order.
    pub code: Vec<CompiledInstr<I>>,
}

/// A compiled program (one ISA).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProgram<I> {
    /// Functions, in source order, `_start` glue excluded.
    pub funcs: Vec<CompiledFunction<I>>,
    /// Global layout: (name, address, element count, initial value).
    pub globals: Vec<(String, u32, u32, i32)>,
}

impl<I> CompiledProgram<I> {
    /// Total instruction count across functions.
    pub fn instr_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }

    /// Find a function by name.
    pub fn func(&self, name: &str) -> Option<&CompiledFunction<I>> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval() {
        assert_eq!(IrBinOp::Add.eval(i32::MAX, 1), i32::MIN);
        assert_eq!(IrBinOp::Sar.eval(-8, 1), -4);
        assert_eq!(IrBinOp::Shl.eval(1, 33), 2, "shift counts mask to 5 bits");
        assert_eq!(IrBinOp::Mul.eval(-3, 7), -21);
    }

    #[test]
    fn cmp_eval_invert_swap() {
        for cmp in [IrCmp::Eq, IrCmp::Ne, IrCmp::Lt, IrCmp::Le, IrCmp::Gt, IrCmp::Ge] {
            for (a, b) in [(1, 2), (2, 1), (3, 3), (-1, 1)] {
                assert_eq!(cmp.eval(a, b), !cmp.invert().eval(a, b));
                assert_eq!(cmp.eval(a, b), cmp.swap().eval(b, a));
            }
        }
    }

    #[test]
    fn defs_and_uses() {
        let i = IrInst::Bin {
            op: IrBinOp::Add,
            dst: VReg(3),
            a: IrValue::Reg(VReg(1)),
            b: IrValue::Const(5),
        };
        assert_eq!(i.def(), Some(VReg(3)));
        assert_eq!(i.uses(), vec![VReg(1)]);

        let st = IrInst::Store {
            src: IrValue::Reg(VReg(2)),
            addr: IrAddr {
                base: IrBase::Reg(VReg(4)),
                index: Some((VReg(5), 2)),
                offset: -4,
                var: "x".into(),
            },
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![VReg(2), VReg(4), VReg(5)]);
        assert!(st.has_side_effects());
    }

    #[test]
    fn display_forms() {
        let i = IrInst::Bin {
            op: IrBinOp::Add,
            dst: VReg(0),
            a: IrValue::Reg(VReg(1)),
            b: IrValue::Const(2),
        };
        assert_eq!(i.to_string(), "%0 = add %1, 2");
        let l = IrInst::Load {
            dst: VReg(0),
            addr: IrAddr {
                base: IrBase::Global(0x100000),
                index: None,
                offset: 8,
                var: "g".into(),
            },
        };
        assert_eq!(l.to_string(), "%0 = load [@0x100000 + 8 !g]");
    }
}
