//! IR optimization passes.
//!
//! The IR is non-SSA (virtual registers are mutable), so the value-based
//! passes are block-local with conservative invalidation; dead-code
//! elimination is function-global on the "never used anywhere" criterion,
//! which is sound for mutable vregs.

use crate::ast::OptLevel;
use crate::ir::{IrAddr, IrBinOp, IrFunction, IrInst, IrModule, IrValue, VReg};
use std::collections::{HashMap, HashSet};

/// Run the pass pipeline for `level` on a module, in place.
pub fn optimize(module: &mut IrModule, level: OptLevel) {
    let iterations = match level {
        OptLevel::O0 => 0,
        OptLevel::O1 => 1,
        OptLevel::O2 => 2,
        OptLevel::O3 => 3,
    };
    for f in &mut module.funcs {
        for _ in 0..iterations {
            const_fold(f);
            copy_prop(f);
            strength_reduce(f);
            if level >= OptLevel::O2 {
                cse(f);
            }
            dce(f);
        }
    }
}

/// Fold constant operands.
fn const_fold(f: &mut IrFunction) {
    for b in &mut f.blocks {
        for t in &mut b.insts {
            let new = match &t.inst {
                IrInst::Bin { op, dst, a: IrValue::Const(x), b: IrValue::Const(y) } => {
                    Some(IrInst::Copy { dst: *dst, src: IrValue::Const(op.eval(*x, *y)) })
                }
                IrInst::SetCmp { cmp, dst, a: IrValue::Const(x), b: IrValue::Const(y) } => {
                    Some(IrInst::Copy { dst: *dst, src: IrValue::Const(cmp.eval(*x, *y) as i32) })
                }
                IrInst::Branch {
                    cmp,
                    a: IrValue::Const(x),
                    b: IrValue::Const(y),
                    then_bb,
                    else_bb,
                } => {
                    let target = if cmp.eval(*x, *y) { *then_bb } else { *else_bb };
                    Some(IrInst::Jump { target })
                }
                // Algebraic identities with one constant.
                IrInst::Bin { op, dst, a, b: IrValue::Const(c) } => match (op, c) {
                    (IrBinOp::Add, 0)
                    | (IrBinOp::Sub, 0)
                    | (IrBinOp::Or, 0)
                    | (IrBinOp::Xor, 0)
                    | (IrBinOp::Shl, 0)
                    | (IrBinOp::Sar, 0) => Some(IrInst::Copy { dst: *dst, src: *a }),
                    (IrBinOp::Mul, 1) => Some(IrInst::Copy { dst: *dst, src: *a }),
                    (IrBinOp::Mul, 0) | (IrBinOp::And, 0) => {
                        Some(IrInst::Copy { dst: *dst, src: IrValue::Const(0) })
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some(inst) = new {
                t.inst = inst;
            }
        }
    }
}

fn subst_value(v: &mut IrValue, env: &HashMap<VReg, IrValue>) {
    if let IrValue::Reg(r) = v {
        if let Some(repl) = env.get(r) {
            *v = *repl;
        }
    }
}

fn subst_addr(a: &mut IrAddr, env: &HashMap<VReg, IrValue>) {
    if let crate::ir::IrBase::Reg(r) = a.base {
        if let Some(IrValue::Reg(n)) = env.get(&r) {
            a.base = crate::ir::IrBase::Reg(*n);
        }
    }
    if let Some((r, shift)) = a.index {
        match env.get(&r) {
            Some(IrValue::Reg(n)) => a.index = Some((*n, shift)),
            Some(IrValue::Const(c)) => {
                // Fold a constant index into the displacement.
                a.offset = a.offset.wrapping_add(c.wrapping_shl(shift));
                a.index = None;
            }
            None => {}
        }
    }
}

/// Block-local copy propagation (registers and constants).
fn copy_prop(f: &mut IrFunction) {
    for b in &mut f.blocks {
        let mut env: HashMap<VReg, IrValue> = HashMap::new();
        for t in &mut b.insts {
            // Substitute uses.
            match &mut t.inst {
                IrInst::Copy { src, .. } => subst_value(src, &env),
                IrInst::Bin { a, b, .. }
                | IrInst::SetCmp { a, b, .. }
                | IrInst::Branch { a, b, .. } => {
                    subst_value(a, &env);
                    subst_value(b, &env);
                }
                IrInst::Load { addr, .. } => subst_addr(addr, &env),
                IrInst::Store { src, addr } => {
                    subst_value(src, &env);
                    subst_addr(addr, &env);
                }
                IrInst::Call { args, .. } => {
                    for a in args {
                        subst_value(a, &env);
                    }
                }
                IrInst::Ret { value: Some(v) } => subst_value(v, &env),
                _ => {}
            }
            // Invalidate and record.
            if let Some(d) = t.inst.def() {
                env.retain(|k, v| *k != d && *v != IrValue::Reg(d));
                if let IrInst::Copy { dst, src } = &t.inst {
                    if *src != IrValue::Reg(*dst) {
                        env.insert(*dst, *src);
                    }
                }
            }
        }
    }
}

/// Multiply-by-power-of-two → shift.
fn strength_reduce(f: &mut IrFunction) {
    for b in &mut f.blocks {
        for t in &mut b.insts {
            if let IrInst::Bin { op: op @ IrBinOp::Mul, a, b: bv, dst } = &mut t.inst {
                let (reg, c) = match (&a, &bv) {
                    (IrValue::Reg(_), IrValue::Const(c)) => (*a, *c),
                    (IrValue::Const(c), IrValue::Reg(_)) => (*bv, *c),
                    _ => continue,
                };
                if c > 0 && (c as u32).is_power_of_two() {
                    *op = IrBinOp::Shl;
                    *a = reg;
                    *bv = IrValue::Const(c.trailing_zeros() as i32);
                    let _ = dst;
                }
            }
        }
    }
}

/// Block-local common-subexpression elimination (pure ops and loads).
fn cse(f: &mut IrFunction) {
    #[derive(PartialEq, Eq, Hash)]
    enum Key {
        Bin(IrBinOp, IrValue, IrValue),
        Load(IrAddrKey),
    }
    #[derive(PartialEq, Eq, Hash, Clone)]
    struct IrAddrKey(String);

    fn addr_key(a: &IrAddr) -> IrAddrKey {
        IrAddrKey(format!("{a}"))
    }

    for b in &mut f.blocks {
        let mut avail: HashMap<Key, VReg> = HashMap::new();
        for t in &mut b.insts {
            // Stores and calls kill loads.
            if matches!(t.inst, IrInst::Store { .. } | IrInst::Call { .. }) {
                avail.retain(|k, _| !matches!(k, Key::Load(_)));
            }
            // 1. Lookup (operands are read before the def takes effect).
            let key_of = |v: &IrValue| match v {
                IrValue::Reg(r) => (0u8, r.0 as i64),
                IrValue::Const(c) => (1u8, *c as i64),
            };
            let (replacement, record) = match &t.inst {
                IrInst::Bin { op, dst, a, b } => {
                    let (ka, kb) =
                        if op.commutative() && key_of(b) < key_of(a) { (*b, *a) } else { (*a, *b) };
                    let key = Key::Bin(*op, ka, kb);
                    match avail.get(&key) {
                        Some(prev) => {
                            (Some(IrInst::Copy { dst: *dst, src: IrValue::Reg(*prev) }), None)
                        }
                        None => {
                            // Only record if the expression does not read
                            // the register it defines.
                            let self_ref = *a == IrValue::Reg(*dst) || *b == IrValue::Reg(*dst);
                            (None, (!self_ref).then_some((key, *dst)))
                        }
                    }
                }
                IrInst::Load { dst, addr } => {
                    let key = Key::Load(addr_key(addr));
                    let self_ref = addr.index.map(|(r, _)| r) == Some(*dst)
                        || matches!(addr.base, crate::ir::IrBase::Reg(r) if r == *dst);
                    match avail.get(&key) {
                        Some(prev) => {
                            (Some(IrInst::Copy { dst: *dst, src: IrValue::Reg(*prev) }), None)
                        }
                        None => (None, (!self_ref).then_some((key, *dst))),
                    }
                }
                _ => (None, None),
            };
            if let Some(inst) = replacement {
                t.inst = inst;
            }
            // 2. The def invalidates expressions mentioning the register.
            if let Some(d) = t.inst.def() {
                avail.retain(|k, v| {
                    if *v == d {
                        return false;
                    }
                    match k {
                        Key::Bin(_, a, b) => *a != IrValue::Reg(d) && *b != IrValue::Reg(d),
                        Key::Load(IrAddrKey(s)) => !s.contains(&format!("%{} ", d.0)),
                    }
                });
            }
            // 3. Record the new available expression.
            if let Some((key, dst)) = record {
                avail.insert(key, dst);
            }
        }
    }
}

/// Remove defs of vregs never used anywhere in the function.
fn dce(f: &mut IrFunction) {
    loop {
        let mut used: HashSet<VReg> = HashSet::new();
        for t in f.insts() {
            used.extend(t.inst.uses());
        }
        let mut removed = false;
        for b in &mut f.blocks {
            b.insts.retain(|t| {
                let dead = match t.inst.def() {
                    Some(d) => {
                        !used.contains(&d)
                            && !t.inst.has_side_effects()
                            && !matches!(t.inst, IrInst::Call { .. })
                    }
                    None => false,
                };
                if dead {
                    removed = true;
                }
                !dead
            });
        }
        if !removed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::OptLevel;
    use crate::lower::lower;
    use crate::parser::parse;

    fn optimized(src: &str, level: OptLevel) -> IrModule {
        let mut m = lower(&parse(src).unwrap(), level).unwrap();
        optimize(&mut m, level);
        m
    }

    #[test]
    fn constants_fold() {
        let m = optimized("int f() { return 2 + 3 * 4; }", OptLevel::O2);
        let insts: Vec<String> = m.funcs[0].insts().map(|t| t.inst.to_string()).collect();
        assert!(insts.iter().any(|s| s.contains("ret 14")), "{insts:?}");
    }

    #[test]
    fn copies_propagate_into_ret() {
        let m = optimized("int f(int a) { int x = a; int y = x; return y; }", OptLevel::O2);
        let f = &m.funcs[0];
        // After copy-prop and DCE only the ret should remain.
        let insts: Vec<String> = f.insts().map(|t| t.inst.to_string()).collect();
        assert_eq!(insts, vec!["ret %0"], "{insts:?}");
    }

    #[test]
    fn mul_by_eight_becomes_shift() {
        let m = optimized("int f(int a) { return a * 8; }", OptLevel::O1);
        let has_shl = m.funcs[0]
            .insts()
            .any(|t| matches!(t.inst, IrInst::Bin { op: IrBinOp::Shl, b: IrValue::Const(3), .. }));
        assert!(has_shl);
    }

    #[test]
    fn cse_merges_repeated_loads() {
        let src = "int g; int f(int a) { return g + a * g; }";
        // Count loads of g at O2 (CSE on) vs O1 (off).
        let loads = |level| {
            optimized(src, level).funcs[0]
                .insts()
                .filter(|t| matches!(t.inst, IrInst::Load { .. }))
                .count()
        };
        assert_eq!(loads(OptLevel::O2), 1);
        assert_eq!(loads(OptLevel::O1), 2);
    }

    #[test]
    fn cse_does_not_cross_stores() {
        let src = "int g; int f(int a) { int x = g; g = a; return x + g; }";
        let m = optimized(src, OptLevel::O2);
        let loads = m.funcs[0].insts().filter(|t| matches!(t.inst, IrInst::Load { .. })).count();
        assert_eq!(loads, 2, "store to g must kill the cached load");
    }

    #[test]
    fn dce_removes_dead_work() {
        let m = optimized("int f(int a) { int dead = a * 37; return a; }", OptLevel::O1);
        let insts: Vec<String> = m.funcs[0].insts().map(|t| t.inst.to_string()).collect();
        assert_eq!(insts, vec!["ret %0"], "{insts:?}");
    }

    #[test]
    fn calls_survive_dce() {
        let m = optimized(
            "int g; int side() { g += 1; return g; } int f() { int x = side(); return 0; }",
            OptLevel::O2,
        );
        let f = m.funcs.iter().find(|f| f.name == "f").unwrap();
        assert!(f.insts().any(|t| matches!(t.inst, IrInst::Call { .. })));
    }

    #[test]
    fn constant_branch_folds_to_jump() {
        let m = optimized("int f() { if (1 < 2) { return 1; } return 2; }", OptLevel::O1);
        assert!(!m.funcs[0].insts().any(|t| matches!(t.inst, IrInst::Branch { .. })));
    }

    #[test]
    fn constant_index_folds_into_offset() {
        let m = optimized("int a[8]; int f() { return a[3]; }", OptLevel::O2);
        let ok = m.funcs[0].insts().any(|t| {
            matches!(&t.inst, IrInst::Load { addr, .. } if addr.offset == 12 && addr.index.is_none())
        });
        assert!(ok);
    }

    #[test]
    fn loop_counter_not_dced() {
        let src =
            "int f(int n) { int s = 0; for (int i = 0; i < n; i += 1) { s += i; } return s; }";
        let m = optimized(src, OptLevel::O2);
        // The increment of i must survive (it is used by the loop test).
        let adds = m.funcs[0]
            .insts()
            .filter(|t| matches!(t.inst, IrInst::Bin { op: IrBinOp::Add, .. }))
            .count();
        assert!(adds >= 2, "s += i and i += 1 both present");
    }
}
