//! Live-interval register allocation (linear scan), shared by both
//! backends.
//!
//! Intervals are computed over the linearized instruction order and
//! conservatively extended across loop bodies (recorded by the lowerer)
//! so loop-carried values stay pinned for the whole loop. Vregs that do
//! not fit in the register pool are spilled to frame slots; backends
//! access spilled vregs through reserved scratch registers.
//!
//! The pool *order* is a style knob: the LLVM- and GCC-flavored backends
//! pass different preference orders, so the same IR allocates differently
//! — one source of the guest/host register-mapping mismatches the paper
//! observes (Table 1, column "Rg").

use crate::ir::{IrFunction, VReg};
use std::collections::HashMap;

/// Where a vreg lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Physical register, as an index into the backend's pool.
    Reg(usize),
    /// Spilled to the frame at this byte offset.
    Spill(i32),
}

/// A live interval over linear instruction positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First position (inclusive).
    pub start: u32,
    /// Last position (inclusive).
    pub end: u32,
}

/// The result of allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Location per vreg (indexed by vreg number).
    pub locs: Vec<Loc>,
    /// Live interval per vreg (degenerate `1..0` if never seen).
    pub intervals: Vec<Interval>,
    /// Total frame bytes including the lowerer's slots and spills.
    pub frame_size: u32,
}

impl Allocation {
    /// The location of a vreg.
    pub fn loc(&self, r: VReg) -> Loc {
        self.locs[r.0 as usize]
    }

    /// Whether `r` is live across position `pos` (strictly spanning it).
    pub fn live_across(&self, r: VReg, pos: u32) -> bool {
        let iv = self.intervals[r.0 as usize];
        iv.start < pos && pos < iv.end
    }
}

/// Allocate registers for a function.
///
/// `pool` is the preference-ordered list of physical register indices the
/// backend exposes. Positions are assigned in block-layout order, one per
/// IR instruction.
pub fn allocate(f: &IrFunction, pool: &[usize]) -> Allocation {
    let n = f.vreg_count as usize;
    let mut intervals = vec![Interval { start: 1, end: 0 }; n];
    let touch = |r: VReg, pos: u32, intervals: &mut Vec<Interval>| {
        let iv = &mut intervals[r.0 as usize];
        if iv.start > iv.end {
            *iv = Interval { start: pos, end: pos };
        } else {
            iv.start = iv.start.min(pos);
            iv.end = iv.end.max(pos);
        }
    };
    // Parameters are live-in from position 0.
    for p in 0..f.param_count.min(n) {
        touch(VReg(p as u32), 0, &mut intervals);
    }
    // Walk instructions; record block position spans for loop extension.
    let mut pos = 0u32;
    let mut block_span = Vec::with_capacity(f.blocks.len());
    for b in &f.blocks {
        let start = pos;
        for t in &b.insts {
            pos += 1;
            if let Some(d) = t.inst.def() {
                touch(d, pos, &mut intervals);
            }
            for u in t.inst.uses() {
                touch(u, pos, &mut intervals);
            }
        }
        block_span.push((start + 1, pos.max(start + 1)));
    }
    // Extend intervals across loops until fixpoint.
    let loop_spans: Vec<(u32, u32)> = f
        .loops
        .iter()
        .map(|(h, l)| {
            let ls = block_span.get(h.0 as usize).map(|s| s.0).unwrap_or(1);
            let le = block_span.get(l.0 as usize).map(|s| s.1).unwrap_or(ls);
            (ls, le)
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for iv in intervals.iter_mut() {
            if iv.start > iv.end {
                continue;
            }
            for &(ls, le) in &loop_spans {
                // Live into the loop: pin to the loop end.
                if iv.start < ls && iv.end >= ls && iv.end < le {
                    iv.end = le;
                    changed = true;
                }
                // Defined in the loop, live out of it: pin from the start.
                if iv.start >= ls && iv.start <= le && iv.end > le && iv.start > ls {
                    iv.start = ls;
                    changed = true;
                }
            }
        }
    }
    // Linear scan.
    let mut order: Vec<usize> =
        (0..n).filter(|i| intervals[*i].start <= intervals[*i].end).collect();
    order.sort_by_key(|i| (intervals[*i].start, intervals[*i].end));
    let mut locs = vec![Loc::Spill(-1); n];
    let mut active: Vec<(usize, usize)> = Vec::new(); // (vreg index, pool slot)
    let mut free: Vec<usize> = pool.to_vec();
    let mut next_spill = f.frame_size as i32;
    let mut reg_of_pool: HashMap<usize, usize> = HashMap::new(); // pool reg -> vreg
    for &vi in &order {
        let iv = intervals[vi];
        // Expire finished intervals.
        active.retain(|&(avi, slot)| {
            if intervals[avi].end < iv.start {
                free.push(slot);
                reg_of_pool.remove(&slot);
                false
            } else {
                true
            }
        });
        // Prefer pool order among free registers.
        let chosen = pool.iter().find(|r| free.contains(r)).copied();
        match chosen {
            Some(slot) => {
                free.retain(|&s| s != slot);
                active.push((vi, slot));
                reg_of_pool.insert(slot, vi);
                locs[vi] = Loc::Reg(slot);
            }
            None => {
                // Spill the active interval ending last (or this one).
                let victim = active
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (avi, _))| intervals[*avi].end)
                    .map(|(i, _)| i);
                match victim {
                    Some(ai) if intervals[active[ai].0].end > iv.end => {
                        let (victim_vi, slot) = active[ai];
                        locs[victim_vi] = Loc::Spill(next_spill);
                        next_spill += 4;
                        active[ai] = (vi, slot);
                        reg_of_pool.insert(slot, vi);
                        locs[vi] = Loc::Reg(slot);
                    }
                    _ => {
                        locs[vi] = Loc::Spill(next_spill);
                        next_spill += 4;
                    }
                }
            }
        }
    }
    Allocation { locs, intervals, frame_size: next_spill as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::OptLevel;
    use crate::lower::lower;
    use crate::opt::optimize;
    use crate::parser::parse;

    fn alloc(src: &str, pool: &[usize]) -> (IrFunction, Allocation) {
        let mut m = lower(&parse(src).unwrap(), OptLevel::O2).unwrap();
        optimize(&mut m, OptLevel::O2);
        let f = m.funcs.remove(0);
        let a = allocate(&f, pool);
        (f, a)
    }

    #[test]
    fn small_function_all_in_registers() {
        let (_, a) = alloc("int f(int x, int y) { return x + y * 2; }", &[0, 1, 2, 3]);
        for (i, loc) in a.locs.iter().enumerate() {
            if a.intervals[i].start <= a.intervals[i].end {
                assert!(matches!(loc, Loc::Reg(_)), "vreg {i} spilled unnecessarily");
            }
        }
    }

    #[test]
    fn no_two_live_vregs_share_a_register() {
        let src = "
int f(int a, int b, int c, int d) {
  int e = a + b;
  int g = c + d;
  int h = e * g;
  return h + a + b + c + d;
}";
        let (_, a) = alloc(src, &[0, 1, 2, 3, 4, 5]);
        for i in 0..a.locs.len() {
            for j in (i + 1)..a.locs.len() {
                let (li, lj) = (a.locs[i], a.locs[j]);
                if let (Loc::Reg(ri), Loc::Reg(rj)) = (li, lj) {
                    if ri == rj {
                        let (a1, a2) = (a.intervals[i], a.intervals[j]);
                        let overlap = a1.start.max(a2.start) <= a1.end.min(a2.end);
                        assert!(!overlap, "vregs {i} and {j} overlap in reg {ri}");
                    }
                }
            }
        }
    }

    #[test]
    fn pressure_forces_spills() {
        // Ten simultaneously live values with a 3-register pool.
        let src = "
int f(int a, int b) {
  int v0 = a + 1; int v1 = a + 2; int v2 = a + 3; int v3 = a + 4;
  int v4 = a + 5; int v5 = a + 6; int v6 = a + 7; int v7 = a + 8;
  return v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7 + b;
}";
        let (_, a) = alloc(src, &[0, 1, 2]);
        let spills = a
            .locs
            .iter()
            .enumerate()
            .filter(|(i, l)| {
                a.intervals[*i].start <= a.intervals[*i].end && matches!(l, Loc::Spill(_))
            })
            .count();
        assert!(spills > 0, "must spill under pressure");
        assert!(a.frame_size >= 4 * spills as u32);
    }

    #[test]
    fn loop_carried_values_pinned_across_loop() {
        let src = "
int f(int n) {
  int s = 0;
  int i = 0;
  while (i < n) { s += i; i += 1; }
  return s;
}";
        let (f, a) = alloc(src, &[0, 1, 2, 3]);
        // Every vreg used inside the loop must have an interval covering
        // the entire loop span.
        let (h, l) = f.loops[0];
        let mut pos = 0u32;
        let mut spans = Vec::new();
        for b in &f.blocks {
            let s = pos;
            pos += b.insts.len() as u32;
            spans.push((s + 1, pos.max(s + 1)));
        }
        let (ls, le) = (spans[h.0 as usize].0, spans[l.0 as usize].1);
        for b in &f.blocks[h.0 as usize..=l.0 as usize] {
            for t in &b.insts {
                for u in t.inst.uses() {
                    let iv = a.intervals[u.0 as usize];
                    if iv.start < ls {
                        assert!(iv.end >= le, "vreg {u} not pinned across loop");
                    }
                }
            }
        }
    }

    #[test]
    fn preference_order_respected() {
        let (_, a) = alloc("int f(int x) { return x + 1; }", &[5, 2, 0]);
        // The single long-lived vreg (the parameter) gets the most
        // preferred register, index 5.
        assert_eq!(a.locs[0], Loc::Reg(5));
    }

    #[test]
    fn live_across_queries() {
        let a = Allocation {
            locs: vec![Loc::Reg(0)],
            intervals: vec![Interval { start: 2, end: 9 }],
            frame_size: 0,
        };
        assert!(a.live_across(VReg(0), 5));
        assert!(!a.live_across(VReg(0), 2));
        assert!(!a.live_across(VReg(0), 9));
        assert!(!a.live_across(VReg(0), 12));
    }
}
