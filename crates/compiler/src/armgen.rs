//! The ARM (guest) backend.
//!
//! Calling convention (AAPCS-flavored): arguments in `r0`–`r3`, result in
//! `r0`, `lr` holds the return address (`bl`/`bx lr`), all allocatable
//! registers caller-saved (live registers are saved around calls).
//! `r11`/`r12` are reserved as scratch for spill traffic and large
//! constants; `sp` addresses the frame.

use crate::ast::{CompileError, Options, Style};
use crate::ir::{
    BlockId, CompiledFunction, CompiledInstr, CompiledProgram, IrAddr, IrBase, IrBinOp, IrCmp,
    IrFunction, IrInst, IrValue, VReg,
};
use crate::lower::lower;
use crate::opt::optimize;
use crate::parser::parse;
use crate::regalloc::{allocate, Allocation, Loc};
use ldbt_arm::{AddrMode, ArmInstr, ArmReg, Cond, DpOp, Operand2, Shift};
use ldbt_isa::SourceLoc;

const SCRATCH0: ArmReg = ArmReg::R11;
const SCRATCH1: ArmReg = ArmReg::R12;

/// Pool of allocatable registers (indices are `ArmReg` indices).
fn pool(style: Style) -> Vec<usize> {
    match style {
        // LLVM-flavored: prefer callee-ish registers first so short-lived
        // temporaries cluster in r4..; GCC-flavored prefers low registers.
        Style::Llvm => vec![4, 5, 6, 7, 8, 9, 10, 0, 1, 2, 3],
        Style::Gcc => vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
    }
}

fn cond_of(cmp: IrCmp) -> Cond {
    match cmp {
        IrCmp::Eq => Cond::Eq,
        IrCmp::Ne => Cond::Ne,
        IrCmp::Lt => Cond::Lt,
        IrCmp::Le => Cond::Le,
        IrCmp::Gt => Cond::Gt,
        IrCmp::Ge => Cond::Ge,
    }
}

struct Emitter<'a> {
    f: &'a IrFunction,
    alloc: Allocation,
    style: Style,
    fuse_flags: bool,
    code: Vec<CompiledInstr<ArmInstr>>,
    /// (code index, target block) fixups for `b`/`bcc`.
    fixups: Vec<(usize, BlockId)>,
    /// (code index, callee name) fixups for `bl`.
    call_fixups: Vec<(usize, String)>,
    block_start: Vec<usize>,
    frame_total: u32,
    has_calls: bool,
    loc: SourceLoc,
}

impl<'a> Emitter<'a> {
    fn emit(&mut self, i: ArmInstr) {
        self.code.push(CompiledInstr { instr: i, loc: self.loc, mem_var: None });
    }

    fn emit_mem(&mut self, i: ArmInstr, var: &str) {
        self.code.push(CompiledInstr { instr: i, loc: self.loc, mem_var: Some(var.to_string()) });
    }

    /// Materialize a 32-bit constant into `rd`.
    fn mov_const(&mut self, rd: ArmReg, v: u32) {
        if v <= 0xfff {
            self.emit(ArmInstr::mov(rd, Operand2::Imm(v)));
            return;
        }
        if !v <= 0xfff {
            self.emit(ArmInstr::dp(DpOp::Mvn, rd, ArmReg::R0, Operand2::Imm(!v)));
            return;
        }
        // Piecewise: 12 high bits, then 12, then 8.
        self.emit(ArmInstr::mov(rd, Operand2::Imm(v >> 20)));
        if (v >> 8) & 0xfff != 0 {
            self.emit(ArmInstr::mov(rd, Operand2::RegShift(rd, Shift::Lsl(12))));
            self.emit(ArmInstr::dp(DpOp::Orr, rd, rd, Operand2::Imm((v >> 8) & 0xfff)));
            self.emit(ArmInstr::mov(rd, Operand2::RegShift(rd, Shift::Lsl(8))));
        } else {
            self.emit(ArmInstr::mov(rd, Operand2::RegShift(rd, Shift::Lsl(20))));
        }
        if v & 0xff != 0 {
            self.emit(ArmInstr::dp(DpOp::Orr, rd, rd, Operand2::Imm(v & 0xff)));
        }
    }

    /// Read a vreg into a register (its own, or `scratch` after a reload).
    fn read_vreg(&mut self, r: VReg, scratch: ArmReg, sp_bias: i32) -> ArmReg {
        match self.alloc.loc(r) {
            Loc::Reg(p) => ArmReg::from_index(p),
            Loc::Spill(off) => {
                let i = ArmInstr::ldr(scratch, AddrMode::Imm(ArmReg::Sp, off + sp_bias));
                self.emit(i);
                scratch
            }
        }
    }

    /// Read an [`IrValue`] into a register.
    fn read_value(&mut self, v: IrValue, scratch: ArmReg, sp_bias: i32) -> ArmReg {
        match v {
            IrValue::Reg(r) => self.read_vreg(r, scratch, sp_bias),
            IrValue::Const(c) => {
                self.mov_const(scratch, c as u32);
                scratch
            }
        }
    }

    /// The register a def should be computed into, plus whether a
    /// spill-store must follow.
    fn def_reg(&mut self, r: VReg) -> (ArmReg, Option<i32>) {
        match self.alloc.loc(r) {
            Loc::Reg(p) => (ArmReg::from_index(p), None),
            Loc::Spill(off) => (SCRATCH0, Some(off)),
        }
    }

    fn finish_def(&mut self, spill: Option<i32>) {
        if let Some(off) = spill {
            self.emit(ArmInstr::str(SCRATCH0, AddrMode::Imm(ArmReg::Sp, off)));
        }
    }

    /// An [`Operand2`] for an IR value: immediate when encodable.
    fn operand2(&mut self, v: IrValue, scratch: ArmReg, sp_bias: i32) -> Operand2 {
        match v {
            IrValue::Const(c) if (0..=0xfff).contains(&c) => Operand2::Imm(c as u32),
            _ => Operand2::Reg(self.read_value(v, scratch, sp_bias)),
        }
    }

    /// Resolve an [`IrAddr`] to a machine addressing mode. Invariant: the
    /// returned mode never references `SCRATCH0` (it is used transiently
    /// and collapsed into `SCRATCH1`), so callers may use `SCRATCH0` for
    /// the loaded/stored value afterwards.
    fn addr_mode(&mut self, a: &IrAddr, sp_bias: i32) -> AddrMode {
        let collapse = |e: &mut Self, base: ArmReg, index: ArmReg, shift: u32| -> AddrMode {
            // add SCRATCH1, base, index [lsl #s]  →  [SCRATCH1]
            let op2 = if shift == 0 {
                Operand2::Reg(index)
            } else {
                Operand2::RegShift(index, Shift::Lsl(shift as u8))
            };
            e.emit(ArmInstr::dp(DpOp::Add, SCRATCH1, base, op2));
            AddrMode::Imm(SCRATCH1, 0)
        };
        match (a.base, a.index) {
            (IrBase::Frame(off), None) => AddrMode::Imm(ArmReg::Sp, off + a.offset + sp_bias),
            (IrBase::Frame(_), Some(_)) => unreachable!("no indexed frame addressing"),
            (IrBase::Reg(r), None) => {
                let base = self.read_vreg(r, SCRATCH1, sp_bias);
                if (-2048..=2047).contains(&a.offset) {
                    AddrMode::Imm(base, a.offset)
                } else {
                    self.mov_const(SCRATCH0, a.offset as u32);
                    collapse(self, base, SCRATCH0, 0)
                }
            }
            (IrBase::Reg(r), Some((idx, shift))) => {
                debug_assert_eq!(a.offset, 0, "fused index with offset unsupported");
                let base = self.read_vreg(r, SCRATCH1, sp_bias);
                let index = self.read_vreg(idx, SCRATCH0, sp_bias);
                if index == SCRATCH0 {
                    collapse(self, base, index, shift)
                } else if shift == 0 {
                    AddrMode::Reg(base, index)
                } else {
                    AddrMode::RegShift(base, index, shift as u8)
                }
            }
            (IrBase::Global(g), None) => {
                let addr = g.wrapping_add(a.offset as u32);
                // Split into a large materialized base plus a small
                // encodable offset, so repeated fields share the base.
                let off = (addr & 0x7ff) as i32;
                self.mov_const(SCRATCH1, addr - off as u32);
                AddrMode::Imm(SCRATCH1, off)
            }
            (IrBase::Global(g), Some((idx, shift))) => {
                let addr = g.wrapping_add(a.offset as u32);
                self.mov_const(SCRATCH1, addr);
                let index = self.read_vreg(idx, SCRATCH0, sp_bias);
                if index == SCRATCH0 {
                    collapse(self, SCRATCH1, index, shift)
                } else if shift == 0 {
                    AddrMode::Reg(SCRATCH1, index)
                } else {
                    AddrMode::RegShift(SCRATCH1, index, shift as u8)
                }
            }
        }
    }

    fn dp_op(&self, op: IrBinOp) -> DpOp {
        match op {
            IrBinOp::Add => DpOp::Add,
            IrBinOp::Sub => DpOp::Sub,
            IrBinOp::And => DpOp::And,
            IrBinOp::Or => DpOp::Orr,
            IrBinOp::Xor => DpOp::Eor,
            IrBinOp::Mul | IrBinOp::Shl | IrBinOp::Sar => unreachable!("handled separately"),
        }
    }

    fn emit_bin(
        &mut self,
        op: IrBinOp,
        dst: VReg,
        a: IrValue,
        b: IrValue,
        set_flags: bool,
    ) -> Result<(), CompileError> {
        let (rd, spill) = self.def_reg(dst);
        match op {
            IrBinOp::Shl | IrBinOp::Sar => {
                let IrValue::Const(c) = b else {
                    return Err(CompileError::new(
                        self.loc.line,
                        "variable shift amounts are not supported by the target subset",
                    ));
                };
                let c = (c as u32 & 31) as u8;
                let ra = self.read_value(a, SCRATCH0, 0);
                let shift = if op == IrBinOp::Shl { Shift::Lsl(c) } else { Shift::Asr(c) };
                let op2 = if c == 0 { Operand2::Reg(ra) } else { Operand2::RegShift(ra, shift) };
                if set_flags {
                    self.emit(ArmInstr::dps(DpOp::Mov, rd, ArmReg::R0, op2));
                } else {
                    self.emit(ArmInstr::mov(rd, op2));
                }
            }
            IrBinOp::Mul => {
                let ra = self.read_value(a, SCRATCH0, 0);
                let rb = self.read_value(b, SCRATCH1, 0);
                self.emit(ArmInstr::Mul { rd, rn: ra, rm: rb, set_flags, cond: Cond::Al });
            }
            IrBinOp::Add | IrBinOp::Sub if matches!(b, IrValue::Const(c) if (-0xfff..0).contains(&c)) =>
            {
                // add x, -c  →  sub x, #c (and vice versa).
                let IrValue::Const(c) = b else { unreachable!() };
                let flipped = if op == IrBinOp::Add { DpOp::Sub } else { DpOp::Add };
                let ra = self.read_value(a, SCRATCH0, 0);
                let i = ArmInstr::Dp {
                    op: flipped,
                    rd,
                    rn: ra,
                    op2: Operand2::Imm((-c) as u32),
                    set_flags,
                    cond: Cond::Al,
                };
                self.emit(i);
            }
            _ => {
                // GCC style prefers `add rd, rn, rn` for doubling where the
                // LLVM style uses a shift (both appear in real codegen).
                if self.style == Style::Gcc && op == IrBinOp::Add && a == b {
                    let ra = self.read_value(a, SCRATCH0, 0);
                    self.emit(ArmInstr::Dp {
                        op: DpOp::Add,
                        rd,
                        rn: ra,
                        op2: Operand2::Reg(ra),
                        set_flags,
                        cond: Cond::Al,
                    });
                } else {
                    let ra = self.read_value(a, SCRATCH0, 0);
                    let op2 = self.operand2(b, SCRATCH1, 0);
                    self.emit(ArmInstr::Dp {
                        op: self.dp_op(op),
                        rd,
                        rn: ra,
                        op2,
                        set_flags,
                        cond: Cond::Al,
                    });
                }
            }
        }
        self.finish_def(spill);
        Ok(())
    }

    fn emit_epilogue(&mut self) {
        if self.frame_total > 0 {
            self.emit(ArmInstr::dp(
                DpOp::Add,
                ArmReg::Sp,
                ArmReg::Sp,
                Operand2::Imm(self.frame_total),
            ));
        }
        self.emit(ArmInstr::Bx { rm: ArmReg::Lr, cond: Cond::Al });
    }

    /// Sequentialize parallel register moves, breaking cycles via scratch.
    fn parallel_moves(&mut self, mut moves: Vec<(ArmReg, ArmReg)>) {
        moves.retain(|(s, d)| s != d);
        while !moves.is_empty() {
            let ready = moves.iter().position(|&(_, d)| !moves.iter().any(|&(s, _)| s == d));
            match ready {
                Some(i) => {
                    let (s, d) = moves.remove(i);
                    self.emit(ArmInstr::mov(d, Operand2::Reg(s)));
                }
                None => {
                    // Cycle: park one source in scratch; the rewritten
                    // move becomes ready once the cycle unwinds.
                    let (s, d) = moves[0];
                    self.emit(ArmInstr::mov(SCRATCH0, Operand2::Reg(s)));
                    moves[0] = (SCRATCH0, d);
                }
            }
        }
    }

    fn emit_call(
        &mut self,
        func: &str,
        args: &[IrValue],
        dst: Option<VReg>,
        pos: u32,
    ) -> Result<(), CompileError> {
        if args.len() > 4 {
            return Err(CompileError::new(self.loc.line, "more than 4 call arguments"));
        }
        // Registers to save: allocated regs of vregs live across this call.
        let mut save: Vec<ArmReg> = Vec::new();
        for (vi, loc) in self.alloc.locs.clone().iter().enumerate() {
            if let Loc::Reg(p) = loc {
                if self.alloc.live_across(VReg(vi as u32), pos) {
                    save.push(ArmReg::from_index(*p));
                }
            }
        }
        save.sort();
        save.dedup();
        let save_bytes = (save.len() as u32) * 4;
        if save_bytes > 0 {
            self.emit(ArmInstr::dp(DpOp::Sub, ArmReg::Sp, ArmReg::Sp, Operand2::Imm(save_bytes)));
            for (i, r) in save.clone().iter().enumerate() {
                self.emit(ArmInstr::str(*r, AddrMode::Imm(ArmReg::Sp, i as i32 * 4)));
            }
        }
        // Argument setup: register-to-register moves in parallel, constants
        // and reloads after.
        let mut reg_moves = Vec::new();
        let mut later: Vec<(usize, IrValue)> = Vec::new();
        for (i, a) in args.iter().enumerate() {
            let target = ArmReg::from_index(i);
            match a {
                IrValue::Reg(r) => match self.alloc.loc(*r) {
                    Loc::Reg(p) => reg_moves.push((ArmReg::from_index(p), target)),
                    Loc::Spill(_) => later.push((i, *a)),
                },
                IrValue::Const(_) => later.push((i, *a)),
            }
        }
        self.parallel_moves(reg_moves);
        for (i, a) in later {
            let target = ArmReg::from_index(i);
            match a {
                IrValue::Const(c) => self.mov_const(target, c as u32),
                IrValue::Reg(r) => {
                    let Loc::Spill(off) = self.alloc.loc(r) else { unreachable!() };
                    self.emit(ArmInstr::ldr(
                        target,
                        AddrMode::Imm(ArmReg::Sp, off + save_bytes as i32),
                    ));
                }
            }
        }
        self.call_fixups.push((self.code.len(), func.to_string()));
        self.emit(ArmInstr::Bl { offset: 0, cond: Cond::Al });
        // Result.
        if let Some(d) = dst {
            match self.alloc.loc(d) {
                Loc::Reg(p) => {
                    let rd = ArmReg::from_index(p);
                    if rd != ArmReg::R0 {
                        self.emit(ArmInstr::mov(rd, Operand2::Reg(ArmReg::R0)));
                    }
                }
                Loc::Spill(off) => {
                    self.emit(ArmInstr::str(
                        ArmReg::R0,
                        AddrMode::Imm(ArmReg::Sp, off + save_bytes as i32),
                    ));
                }
            }
        }
        // Restore.
        if save_bytes > 0 {
            for (i, r) in save.iter().enumerate() {
                self.emit(ArmInstr::ldr(*r, AddrMode::Imm(ArmReg::Sp, i as i32 * 4)));
            }
            self.emit(ArmInstr::dp(DpOp::Add, ArmReg::Sp, ArmReg::Sp, Operand2::Imm(save_bytes)));
        }
        Ok(())
    }
}

/// Try to fuse `bin; branch dst cmp 0` into a flag-setting instruction
/// followed by a condition on N/Z. Returns the condition to branch on.
fn fusable_cmp_zero(cmp: IrCmp) -> Option<fn(IrCmp) -> Cond> {
    fn map(cmp: IrCmp) -> Cond {
        match cmp {
            IrCmp::Eq => Cond::Eq,
            IrCmp::Ne => Cond::Ne,
            IrCmp::Lt => Cond::Mi,
            IrCmp::Ge => Cond::Pl,
            _ => unreachable!(),
        }
    }
    matches!(cmp, IrCmp::Eq | IrCmp::Ne | IrCmp::Lt | IrCmp::Ge).then_some(map)
}

fn gen_function(
    f: &IrFunction,
    options: &Options,
) -> Result<CompiledFunction<ArmInstr>, CompileError> {
    let alloc = allocate(f, &pool(options.style));
    let has_calls = f.insts().any(|t| matches!(t.inst, IrInst::Call { .. }));
    let frame_total = alloc.frame_size + if has_calls { 4 } else { 0 };
    let mut e = Emitter {
        f,
        alloc,
        style: options.style,
        fuse_flags: options.level >= crate::ast::OptLevel::O2,
        code: Vec::new(),
        fixups: Vec::new(),
        call_fixups: Vec::new(),
        block_start: Vec::new(),
        frame_total,
        has_calls,
        loc: SourceLoc::NONE,
    };
    // Prologue.
    if frame_total > 0 {
        e.emit(ArmInstr::dp(DpOp::Sub, ArmReg::Sp, ArmReg::Sp, Operand2::Imm(frame_total)));
    }
    if has_calls {
        e.emit(ArmInstr::str(ArmReg::Lr, AddrMode::Imm(ArmReg::Sp, (frame_total - 4) as i32)));
    }
    // Move incoming arguments (r0..r3) to their allocated homes.
    let mut arg_moves = Vec::new();
    for i in 0..f.param_count.min(4) {
        match e.alloc.loc(VReg(i as u32)) {
            Loc::Reg(p) => arg_moves.push((ArmReg::from_index(i), ArmReg::from_index(p))),
            Loc::Spill(off) => {
                e.emit(ArmInstr::str(ArmReg::from_index(i), AddrMode::Imm(ArmReg::Sp, off)));
            }
        }
    }
    e.parallel_moves(arg_moves);
    if f.param_count > 4 {
        return Err(CompileError::new(0, "more than 4 parameters"));
    }

    // Body.
    let mut pos = 0u32;
    for (bi, b) in f.blocks.iter().enumerate() {
        e.block_start.push(e.code.len());
        let mut skip_next_branch_cmp: Option<Cond> = None;
        for (ii, t) in b.insts.iter().enumerate() {
            pos += 1;
            e.loc = t.loc;
            match &t.inst {
                IrInst::Copy { dst, src } => {
                    let (rd, spill) = e.def_reg(*dst);
                    match src {
                        IrValue::Const(c) => e.mov_const(rd, *c as u32),
                        IrValue::Reg(r) => {
                            let rs = e.read_vreg(*r, SCRATCH1, 0);
                            if rs != rd {
                                e.emit(ArmInstr::mov(rd, Operand2::Reg(rs)));
                            }
                        }
                    }
                    e.finish_def(spill);
                }
                IrInst::Bin { op, dst, a, b: bv } => {
                    // Flag fusion: `dst = a op b; br (dst cmp 0)` at O2.
                    let mut set_flags = false;
                    if e.fuse_flags && matches!(op, IrBinOp::Add | IrBinOp::Sub) {
                        if let Some(IrInst::Branch { cmp, a: ba, b: bb, .. }) =
                            b.insts.get(ii + 1).map(|t| &t.inst)
                        {
                            if *ba == IrValue::Reg(*dst)
                                && *bb == IrValue::Const(0)
                                && matches!(e.alloc.loc(*dst), Loc::Reg(_))
                            {
                                if let Some(map) = fusable_cmp_zero(*cmp) {
                                    set_flags = true;
                                    skip_next_branch_cmp = Some(map(*cmp));
                                }
                            }
                        }
                    }
                    e.emit_bin(*op, *dst, *a, *bv, set_flags)?;
                }
                IrInst::SetCmp { cmp, dst, a, b: bv } => {
                    let ra = e.read_value(*a, SCRATCH0, 0);
                    let op2 = e.operand2(*bv, SCRATCH1, 0);
                    e.emit(ArmInstr::cmp(ra, op2));
                    let (rd, spill) = e.def_reg(*dst);
                    e.emit(ArmInstr::mov(rd, Operand2::Imm(0)));
                    e.emit(ArmInstr::Dp {
                        op: DpOp::Mov,
                        rd,
                        rn: ArmReg::R0,
                        op2: Operand2::Imm(1),
                        set_flags: false,
                        cond: cond_of(*cmp),
                    });
                    e.finish_def(spill);
                }
                IrInst::Load { dst, addr } => {
                    let mode = e.addr_mode(addr, 0);
                    let (rd, spill) = e.def_reg(*dst);
                    e.emit_mem(ArmInstr::ldr(rd, mode), &addr.var);
                    e.finish_def(spill);
                }
                IrInst::Store { src, addr } => {
                    // Address first: addr_mode leaves SCRATCH0 free for the
                    // stored value.
                    let mode = e.addr_mode(addr, 0);
                    let rs = e.read_value(*src, SCRATCH0, 0);
                    e.emit_mem(ArmInstr::str(rs, mode), &addr.var);
                }
                IrInst::Jump { target } => {
                    if target.0 as usize != bi + 1 {
                        e.fixups.push((e.code.len(), *target));
                        e.emit(ArmInstr::B { offset: 0, cond: Cond::Al });
                    }
                }
                IrInst::Branch { cmp, a, b: bv, then_bb, else_bb } => {
                    let cond = match skip_next_branch_cmp.take() {
                        Some(c) => c,
                        None => {
                            let ra = e.read_value(*a, SCRATCH0, 0);
                            let op2 = e.operand2(*bv, SCRATCH1, 0);
                            e.emit(ArmInstr::cmp(ra, op2));
                            cond_of(*cmp)
                        }
                    };
                    e.fixups.push((e.code.len(), *then_bb));
                    e.emit(ArmInstr::B { offset: 0, cond });
                    if else_bb.0 as usize != bi + 1 {
                        e.fixups.push((e.code.len(), *else_bb));
                        e.emit(ArmInstr::B { offset: 0, cond: Cond::Al });
                    }
                }
                IrInst::Call { func, args, dst } => {
                    e.emit_call(func, args, *dst, pos)?;
                }
                IrInst::Ret { value } => {
                    if let Some(v) = value {
                        let r = e.read_value(*v, SCRATCH0, 0);
                        if r != ArmReg::R0 {
                            e.emit(ArmInstr::mov(ArmReg::R0, Operand2::Reg(r)));
                        }
                    }
                    if e.has_calls {
                        e.emit(ArmInstr::ldr(
                            ArmReg::Lr,
                            AddrMode::Imm(ArmReg::Sp, (e.frame_total - 4) as i32),
                        ));
                    }
                    e.emit_epilogue();
                }
            }
        }
    }
    e.block_start.push(e.code.len());
    // Resolve intra-function branches.
    for (idx, target) in e.fixups.clone() {
        let dest = e.block_start[target.0 as usize] as i32;
        let off = dest - (idx as i32 + 1);
        match &mut e.code[idx].instr {
            ArmInstr::B { offset, .. } => *offset = off,
            other => unreachable!("fixup on {other}"),
        }
    }
    let _ = e.f;
    Ok(CompiledFunction { name: f.name.clone(), code: e.code })
}

/// Per-function call fixups are resolved at link time; encode the callee
/// name in a side table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmFunction {
    /// The compiled function.
    pub func: CompiledFunction<ArmInstr>,
    /// (code index, callee) pairs for `bl` patching.
    pub calls: Vec<(usize, String)>,
}

fn gen_function_with_calls(f: &IrFunction, options: &Options) -> Result<ArmFunction, CompileError> {
    // gen_function resolves everything except calls; re-run capturing them.
    // (Single pass: we thread the fixups out through a thread-local-free
    // API by regenerating — cheap for these sizes.)
    let alloc_calls = {
        let mut cf = gen_emitter_calls(f, options)?;
        cf.calls.sort_by_key(|c| c.0);
        cf
    };
    Ok(alloc_calls)
}

fn gen_emitter_calls(f: &IrFunction, options: &Options) -> Result<ArmFunction, CompileError> {
    // Duplicate of gen_function that also returns call fixups.
    let func = gen_function(f, options)?;
    // Recover call sites: `bl` with offset 0 emitted only for calls.
    let mut calls = Vec::new();
    let mut call_iter = f
        .insts()
        .filter_map(|t| match &t.inst {
            IrInst::Call { func, .. } => Some(func.clone()),
            _ => None,
        })
        .collect::<Vec<_>>()
        .into_iter();
    for (i, ci) in func.code.iter().enumerate() {
        if matches!(ci.instr, ArmInstr::Bl { .. }) {
            let name = call_iter.next().expect("bl count matches call count");
            calls.push((i, name));
        }
    }
    Ok(ArmFunction { func, calls })
}

/// Compile source text for the ARM guest.
///
/// # Errors
///
/// Returns the first [`CompileError`] from any stage.
pub fn compile_arm(
    source: &str,
    options: &Options,
) -> Result<CompiledProgram<ArmInstr>, CompileError> {
    Ok(compile_arm_with_calls(source, options)?.0)
}

/// Per-function call fixups: for each function, `(instruction index,
/// callee name)` pairs the linker must patch.
pub type CallFixups = Vec<Vec<(usize, String)>>;

/// Compile for ARM, also returning per-function call fixups (used by the
/// linker).
pub fn compile_arm_with_calls(
    source: &str,
    options: &Options,
) -> Result<(CompiledProgram<ArmInstr>, CallFixups), CompileError> {
    let ast = parse(source)?;
    let mut module = lower(&ast, options.level)?;
    optimize(&mut module, options.level);
    let mut funcs = Vec::new();
    let mut calls = Vec::new();
    for f in &module.funcs {
        let g = gen_function_with_calls(f, options)?;
        funcs.push(g.func);
        calls.push(g.calls);
    }
    Ok((CompiledProgram { funcs, globals: module.globals }, calls))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> CompiledProgram<ArmInstr> {
        compile_arm(src, &Options::o2()).unwrap()
    }

    fn asm(f: &CompiledFunction<ArmInstr>) -> Vec<String> {
        f.code.iter().map(|c| c.instr.to_string()).collect()
    }

    #[test]
    fn leaf_add_function() {
        let p = compile("int f(int a, int b) { return a + b; }");
        let code = asm(&p.funcs[0]);
        // add ..., then result to r0, then bx lr.
        assert!(code.iter().any(|s| s.starts_with("add ")), "{code:?}");
        assert_eq!(code.last().unwrap(), "bx lr");
    }

    #[test]
    fn all_encodable() {
        let src = "
int g;
int big[600];
int f(int a, int b) {
  int s = 0;
  for (int i = 0; i < a; i += 1) {
    s += big[i] * 3 - b;
    if (s > 100000) { s -= g; }
  }
  g = s;
  return s;
}
int main() { return f(10, 2); }";
        for style in [Style::Llvm, Style::Gcc] {
            for level in crate::ast::OptLevel::ALL {
                let p = compile_arm(src, &Options { level, style }).unwrap();
                for f in &p.funcs {
                    for c in &f.code {
                        ldbt_arm::encode::encode(&c.instr)
                            .unwrap_or_else(|e| panic!("{}: {e}", c.instr));
                    }
                }
            }
        }
    }

    #[test]
    fn flag_fusion_at_o2() {
        let src = "int f(int s, int x) { s -= x; if (s != 0) { return 1; } return 0; }";
        let p = compile(src);
        let code = asm(&p.funcs[0]);
        assert!(code.iter().any(|s| s.starts_with("subs ")), "expected fused subs: {code:?}");
        let p0 = compile_arm(src, &Options::level(crate::ast::OptLevel::O1)).unwrap();
        let code0 = asm(&p0.funcs[0]);
        assert!(!code0.iter().any(|s| s.starts_with("subs ")), "no fusion below O2: {code0:?}");
    }

    #[test]
    fn scaled_addressing_at_o2() {
        let p = compile("int a[16]; int f(int i) { return a[i]; }");
        let code = asm(&p.funcs[0]);
        assert!(code.iter().any(|s| s.contains("lsl #2]")), "expected scaled load: {code:?}");
    }

    #[test]
    fn mem_vars_annotated() {
        let p = compile("int total; int f(int x) { total += x; return total; }");
        let vars: Vec<_> = p.funcs[0].code.iter().filter_map(|c| c.mem_var.clone()).collect();
        assert!(vars.iter().all(|v| v == "total"));
        assert!(!vars.is_empty());
    }

    #[test]
    fn call_emits_bl_and_saves_lr() {
        let p = compile("int g(int x) { return x + 1; } int f(int a) { return g(a) + a; }");
        let f = p.func("f").unwrap();
        let code = asm(f);
        assert!(code.iter().any(|s| s.starts_with("bl ")), "{code:?}");
        assert!(code.iter().any(|s| s.contains("str lr")), "{code:?}");
    }

    #[test]
    fn style_changes_code() {
        let src = "int f(int a) { return a + a; }";
        let llvm = compile_arm(src, &Options::o2()).unwrap();
        let gcc = compile_arm(src, &Options::gcc()).unwrap();
        assert_ne!(asm(&llvm.funcs[0]), asm(&gcc.funcs[0]));
    }

    #[test]
    fn lines_preserved() {
        let src = "int f(int a) {\n  int x = a + 1;\n  return x * 2;\n}";
        let p = compile(src);
        let lines: Vec<u32> = p.funcs[0].code.iter().map(|c| c.loc.line).collect();
        assert!(lines.contains(&2) && lines.contains(&3));
    }

    #[test]
    fn variable_shift_rejected() {
        let err =
            compile_arm("int f(int a, int b) { return a << b; }", &Options::o2()).unwrap_err();
        assert!(err.message.contains("shift"));
    }
}
