//! A CDCL SAT solver.
//!
//! Standard architecture: two-watched-literal unit propagation, first-UIP
//! conflict analysis with clause learning, VSIDS-style exponential
//! activity decay, phase saving, and Luby-sequence restarts. Sized for
//! the bit-blasted equivalence queries this workspace generates
//! (thousands of variables, tens of thousands of clauses).

/// A propositional variable (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// A literal with explicit polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complement literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// The result of a solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; the model assigns every variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted.
    Unknown,
}

impl SatResult {
    /// Whether this is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

type ClauseRef = usize;

/// The solver.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit] = clauses currently watching `lit`.
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<i8>, // 0 unassigned, 1 true, -1 false
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    unsat: bool,
    /// Statistics: total conflicts seen.
    pub conflicts: u64,
    /// Statistics: total decisions made.
    pub decisions: u64,
    /// Statistics: total propagations.
    pub propagations: u64,
}

impl Solver {
    /// A solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver { act_inc: 1.0, ..Solver::default() }
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(0);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    fn value(&self, lit: Lit) -> i8 {
        let v = self.assign[lit.var().0 as usize];
        if lit.is_pos() {
            v
        } else {
            -v
        }
    }

    /// Add a clause (disjunction of literals).
    ///
    /// Duplicates are removed; tautologies are ignored. Adding the empty
    /// clause marks the instance unsatisfiable.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        if self.unsat {
            return;
        }
        debug_assert!(self.trail_lim.is_empty(), "add_clause at decision level 0 only");
        lits.sort();
        lits.dedup();
        // Tautology check and removal of root-level falsified literals.
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return; // x ∨ ¬x
            }
            i += 1;
        }
        lits.retain(|l| self.value(*l) != -1);
        if lits.iter().any(|l| self.value(*l) == 1) {
            return;
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(lits[0], None) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let cref = self.clauses.len();
                self.watches[lits[0].negate().index()].push(cref);
                self.watches[lits[1].negate().index()].push(cref);
                self.clauses.push(Clause { lits });
            }
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) -> bool {
        match self.value(lit) {
            1 => true,
            -1 => false,
            _ => {
                let v = lit.var().0 as usize;
                self.assign[v] = if lit.is_pos() { 1 } else { -1 };
                self.phase[v] = lit.is_pos();
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Propagate until fixpoint; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            self.propagations += 1;
            // Clauses watching ¬lit must be visited: lit became true, so
            // watchers of the complement may now be unit/conflicting.
            let mut ws = std::mem::take(&mut self.watches[lit.index()]);
            let mut keep = Vec::with_capacity(ws.len());
            let mut conflict = None;
            while let Some(cref) = ws.pop() {
                if conflict.is_some() {
                    keep.push(cref);
                    continue;
                }
                let falsified = lit.negate();
                // Ensure the falsified literal is at position 1.
                let c = &mut self.clauses[cref];
                if c.lits[0] == falsified {
                    c.lits.swap(0, 1);
                }
                debug_assert_eq!(c.lits[1], falsified);
                let first = c.lits[0];
                if self.value(first) == 1 {
                    keep.push(cref);
                    continue;
                }
                // Look for a new watch.
                let mut moved = false;
                for k in 2..self.clauses[cref].lits.len() {
                    let cand = self.clauses[cref].lits[k];
                    if self.value(cand) != -1 {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[cand.negate().index()].push(cref);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict.
                keep.push(cref);
                if !self.enqueue(first, Some(cref)) {
                    conflict = Some(cref);
                }
            }
            self.watches[lit.index()] = keep;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.act_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns (learned clause, backtrack level).
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut cref = conflict;
        let mut trail_pos = self.trail.len();
        let mut uip = None;
        loop {
            for &l in &self.clauses[cref].lits.clone() {
                let v = l.var();
                if seen[v.0 as usize] || self.level[v.0 as usize] == 0 {
                    continue;
                }
                if Some(l) == uip.map(|u: Lit| u) {
                    continue;
                }
                seen[v.0 as usize] = true;
                self.bump(v);
                if self.level[v.0 as usize] == cur_level {
                    counter += 1;
                } else {
                    learned.push(l);
                }
            }
            // Walk the trail backwards to the next seen literal.
            loop {
                trail_pos -= 1;
                let l = self.trail[trail_pos];
                if seen[l.var().0 as usize] {
                    uip = Some(l);
                    seen[l.var().0 as usize] = false;
                    counter -= 1;
                    break;
                }
            }
            if counter == 0 {
                break;
            }
            cref = self.reason[uip.unwrap().var().0 as usize].expect("non-decision has reason");
        }
        let uip = uip.unwrap();
        learned.push(uip.negate());
        let n = learned.len();
        learned.swap(0, n - 1); // asserting literal first
                                // Backtrack level = second-highest level in the clause.
        let bt = learned[1..].iter().map(|l| self.level[l.var().0 as usize]).max().unwrap_or(0);
        (learned, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                self.assign[l.var().0 as usize] = 0;
                self.reason[l.var().0 as usize] = None;
            }
        }
        self.prop_head = self.trail.len().min(self.prop_head);
        self.prop_head = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == 0 {
                let a = self.activity[v];
                if best.is_none_or(|(ba, _)| a > ba) {
                    best = Some((a, v));
                }
            }
        }
        best.map(|(_, v)| Lit::new(Var(v as u32), self.phase[v]))
    }

    /// Solve with a conflict budget.
    ///
    /// Returns [`SatResult::Unknown`] only if `max_conflicts` is hit.
    pub fn solve(&mut self, max_conflicts: u64) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let mut restart_count = 0u32;
        let mut conflicts_until_restart = luby(restart_count) * 64;
        let start_conflicts = self.conflicts;
        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                if self.conflicts - start_conflicts > max_conflicts {
                    return SatResult::Unknown;
                }
                let (learned, bt) = self.analyze(conflict);
                self.backtrack(bt);
                self.act_inc *= 1.0 / 0.95;
                if learned.len() == 1 {
                    let ok = self.enqueue(learned[0], None);
                    debug_assert!(ok);
                } else {
                    let cref = self.clauses.len();
                    self.watches[learned[0].negate().index()].push(cref);
                    self.watches[learned[1].negate().index()].push(cref);
                    let assert_lit = learned[0];
                    self.clauses.push(Clause { lits: learned });
                    let ok = self.enqueue(assert_lit, Some(cref));
                    debug_assert!(ok);
                }
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if conflicts_until_restart == 0 {
                    restart_count += 1;
                    conflicts_until_restart = luby(restart_count) * 64;
                    self.backtrack(0);
                }
            } else {
                match self.decide() {
                    None => {
                        let model = self.assign.iter().map(|&a| a == 1).collect();
                        return SatResult::Sat(model);
                    }
                    Some(lit) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(lit, None);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).
fn luby(i: u32) -> u64 {
    let mut k = 1u32;
    while (1u64 << k) < (i as u64 + 2) {
        k += 1;
    }
    if (1u64 << k) == i as u64 + 2 {
        return 1u64 << (k - 1);
    }
    luby(i + 1 - (1 << (k - 1)) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn lit_encoding() {
        let v = Var(3);
        assert_eq!(Lit::pos(v).var(), v);
        assert!(Lit::pos(v).is_pos());
        assert!(!Lit::neg(v).is_pos());
        assert_eq!(Lit::pos(v).negate(), Lit::neg(v));
        assert_eq!(Lit::new(v, false), Lit::neg(v));
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(vec![Lit::pos(v[0])]);
        s.add_clause(vec![Lit::neg(v[1])]);
        match s.solve(1000) {
            SatResult::Sat(m) => {
                assert!(m[0]);
                assert!(!m[1]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(vec![Lit::pos(v[0])]);
        s.add_clause(vec![Lit::neg(v[0])]);
        assert_eq!(s.solve(1000), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        s.add_clause(vec![]);
        assert_eq!(s.solve(10), SatResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(vec![Lit::pos(v[0]), Lit::neg(v[0])]);
        assert!(s.solve(10).is_sat());
    }

    #[test]
    fn implication_chain() {
        // x0 ∧ (x0→x1) ∧ (x1→x2) ∧ … forces all true.
        let mut s = Solver::new();
        let v = lits(&mut s, 20);
        s.add_clause(vec![Lit::pos(v[0])]);
        for i in 0..19 {
            s.add_clause(vec![Lit::neg(v[i]), Lit::pos(v[i + 1])]);
        }
        match s.solve(1000) {
            SatResult::Sat(m) => assert!(m.iter().all(|&b| b)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j] = pigeon i in hole j; 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(vec![Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        // Column-wise walk of the hole matrix; an iterator would hide it.
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(vec![Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(100_000), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_4_sat() {
        let mut s = Solver::new();
        let n = 4;
        let mut p = vec![vec![Var(0); n]; n];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|v| Lit::pos(*v)).collect());
        }
        // Column-wise walk of the hole matrix; an iterator would hide it.
        #[allow(clippy::needless_range_loop)]
        for j in 0..n {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(vec![Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve(100_000).is_sat());
    }

    #[test]
    fn xor_chain_parity_unsat() {
        // Tseitin-encode x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 ⊕ x2 = 1: odd cycle, UNSAT.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let pairs = [(0, 1), (1, 2), (0, 2)];
        for (a, b) in pairs {
            // a ⊕ b: (a ∨ b) ∧ (¬a ∨ ¬b)
            s.add_clause(vec![Lit::pos(v[a]), Lit::pos(v[b])]);
            s.add_clause(vec![Lit::neg(v[a]), Lit::neg(v[b])]);
        }
        assert_eq!(s.solve(100_000), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_solutions_verified() {
        // Deterministic pseudo-random 3-SAT instances; whenever the solver
        // says SAT, the model must satisfy every clause.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let nvars = 12;
            let nclauses = 40;
            let mut s = Solver::new();
            let v = lits(&mut s, nvars);
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let var = v[(next() % nvars as u64) as usize];
                    let pol = next() % 2 == 0;
                    c.push(Lit::new(var, pol));
                }
                clauses.push(c.clone());
                s.add_clause(c);
            }
            if let SatResult::Sat(m) = s.solve(100_000) {
                for c in &clauses {
                    assert!(
                        c.iter().any(|l| m[l.var().0 as usize] == l.is_pos()),
                        "model does not satisfy clause"
                    );
                }
            }
        }
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32), e, "luby({i})");
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown_or_answers() {
        // A small hard-ish instance with a tiny budget must not panic.
        let mut s = Solver::new();
        let mut p = vec![vec![Var(0); 4]; 5];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|v| Lit::pos(*v)).collect());
        }
        // Column-wise walk of the hole matrix; an iterator would hide it.
        #[allow(clippy::needless_range_loop)]
        for j in 0..4 {
            for i1 in 0..5 {
                for i2 in (i1 + 1)..5 {
                    s.add_clause(vec![Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        let r = s.solve(10);
        assert!(matches!(r, SatResult::Unknown | SatResult::Unsat));
    }
}
