//! Hash-consed bit-vector terms with local simplification.
//!
//! Terms live in a [`TermPool`]; structurally identical terms always get
//! the same [`TermId`], so syntactic equality is an `==` on ids. Every
//! constructor applies local rewrites (constant folding, identities,
//! canonical operand order, constant gathering), which resolves the large
//! majority of the verifier's equivalence queries without touching the
//! SAT solver.
//!
//! Booleans are width-1 bit-vectors. All widths are 1–64; constants are
//! stored masked to their width.

use std::collections::HashMap;
use std::fmt;

/// An interned term handle. Equal ids ⇔ structurally equal terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

/// Unary bit-vector operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Binary bit-vector operators. `Eq`/`Ult`/`Slt` produce width-1 terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    And,
    Or,
    Xor,
    Add,
    Sub,
    Mul,
    Shl,
    Lshr,
    Ashr,
    Eq,
    Ult,
    Slt,
}

impl BinOp {
    /// Whether operands can be reordered freely.
    pub fn commutative(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Add | BinOp::Mul | BinOp::Eq)
    }
}

/// A bit-vector term node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant (value masked to `width`).
    Const {
        /// The value.
        value: u64,
        /// Bit width (1–64).
        width: u32,
    },
    /// A free variable.
    Var {
        /// Interned symbol id (see [`TermPool::sym_name`]).
        sym: u32,
        /// Bit width.
        width: u32,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        a: TermId,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: TermId,
        /// Right operand.
        b: TermId,
    },
    /// Zero-extension to a wider width.
    ZExt {
        /// Operand.
        a: TermId,
        /// Target width.
        width: u32,
    },
    /// Sign-extension to a wider width.
    SExt {
        /// Operand.
        a: TermId,
        /// Target width.
        width: u32,
    },
    /// Bit slice `a[hi:lo]`, inclusive.
    Extract {
        /// Operand.
        a: TermId,
        /// High bit index.
        hi: u32,
        /// Low bit index.
        lo: u32,
    },
    /// If-then-else on a width-1 condition.
    Ite {
        /// Condition (width 1).
        c: TermId,
        /// Then branch.
        t: TermId,
        /// Else branch.
        e: TermId,
    },
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn sext64(value: u64, width: u32) -> i64 {
    let shift = 64 - width;
    ((value << shift) as i64) >> shift
}

/// The arena interning [`Term`]s.
#[derive(Debug, Clone)]
pub struct TermPool {
    terms: Vec<Term>,
    index: HashMap<Term, TermId>,
    sym_names: Vec<String>,
    sym_index: HashMap<String, u32>,
    soft_cap: usize,
}

impl Default for TermPool {
    fn default() -> Self {
        TermPool {
            terms: Vec::new(),
            index: HashMap::new(),
            sym_names: Vec::new(),
            sym_index: HashMap::new(),
            soft_cap: usize::MAX,
        }
    }
}

impl TermPool {
    /// An empty pool.
    pub fn new() -> Self {
        TermPool::default()
    }

    /// Clear the pool for reuse, keeping its allocations.
    ///
    /// Every outstanding [`TermId`] is invalidated. Long-running callers
    /// (the rule learner issues thousands of independent verification
    /// queries) reset one pool per query instead of allocating a fresh
    /// pool, which keeps the hash-cons tables' capacity warm.
    pub fn reset(&mut self) {
        self.terms.clear();
        self.index.clear();
        self.sym_names.clear();
        self.sym_index.clear();
    }

    /// Set a soft cap on the number of live terms. The pool never refuses
    /// an allocation (term construction stays infallible); instead callers
    /// poll [`TermPool::over_cap`] at natural checkpoints and abandon the
    /// query when the cap is exceeded. [`TermPool::reset`] keeps the cap.
    pub fn set_soft_cap(&mut self, cap: usize) {
        self.soft_cap = cap;
    }

    /// Whether the pool has grown past its soft cap.
    pub fn over_cap(&self) -> bool {
        self.terms.len() > self.soft_cap
    }

    /// The term behind an id.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The bit width of a term.
    pub fn width(&self, id: TermId) -> u32 {
        match *self.term(id) {
            Term::Const { width, .. } | Term::Var { width, .. } => width,
            Term::Unary { a, .. } => self.width(a),
            Term::Binary { op, a, .. } => match op {
                BinOp::Eq | BinOp::Ult | BinOp::Slt => 1,
                _ => self.width(a),
            },
            Term::ZExt { width, .. } | Term::SExt { width, .. } => width,
            Term::Extract { hi, lo, .. } => hi - lo + 1,
            Term::Ite { t, .. } => self.width(t),
        }
    }

    /// The symbol name of interned symbol `sym`.
    pub fn sym_name(&self, sym: u32) -> &str {
        &self.sym_names[sym as usize]
    }

    fn intern(&mut self, t: Term) -> TermId {
        if let Some(id) = self.index.get(&t) {
            return *id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.index.insert(t, id);
        id
    }

    /// A constant of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn constant(&mut self, value: u64, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "width {width} out of range");
        self.intern(Term::Const { value: value & mask(width), width })
    }

    /// The width-1 constant 1.
    pub fn tru(&mut self) -> TermId {
        self.constant(1, 1)
    }

    /// The width-1 constant 0.
    pub fn fls(&mut self) -> TermId {
        self.constant(0, 1)
    }

    /// A fresh-or-existing variable named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the name was previously used with a different width.
    pub fn var(&mut self, name: &str, width: u32) -> TermId {
        let sym = match self.sym_index.get(name) {
            Some(s) => *s,
            None => {
                let s = self.sym_names.len() as u32;
                self.sym_names.push(name.to_string());
                self.sym_index.insert(name.to_string(), s);
                s
            }
        };
        let id = self.intern(Term::Var { sym, width });
        assert_eq!(self.width(id), width, "variable {name} reused at different width");
        id
    }

    fn as_const(&self, id: TermId) -> Option<u64> {
        match *self.term(id) {
            Term::Const { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Bitwise NOT.
    pub fn not_(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(v) = self.as_const(a) {
            return self.constant(!v, w);
        }
        if let Term::Unary { op: UnaryOp::Not, a: inner } = *self.term(a) {
            return inner;
        }
        self.intern(Term::Unary { op: UnaryOp::Not, a })
    }

    /// Two's-complement negation, canonicalized as `~a + 1` so that
    /// negations participate in sum normalization (a guest `sub` and a
    /// host `lea` with a negative displacement parameter then meet
    /// syntactically).
    pub fn neg(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(v) = self.as_const(a) {
            return self.constant(v.wrapping_neg(), w);
        }
        let n = self.not_(a);
        let one = self.constant(1, w);
        self.add(n, one)
    }

    fn binary(&mut self, op: BinOp, mut a: TermId, mut b: TermId) -> TermId {
        debug_assert_eq!(self.width(a), self.width(b), "width mismatch in {op:?}");
        let w = self.width(a);
        // Constant folding.
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let m = mask(w);
            let v = match op {
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Shl => {
                    if y >= w as u64 {
                        0
                    } else {
                        x << y
                    }
                }
                BinOp::Lshr => {
                    if y >= w as u64 {
                        0
                    } else {
                        x >> y
                    }
                }
                BinOp::Ashr => {
                    let sx = sext64(x, w);
                    let sh = y.min(w as u64 - 1);
                    (sx >> sh) as u64
                }
                BinOp::Eq => return self.constant((x == y) as u64, 1),
                BinOp::Ult => return self.constant((x < y) as u64, 1),
                BinOp::Slt => return self.constant((sext64(x, w) < sext64(y, w)) as u64, 1),
            };
            return self.constant(v & m, w);
        }
        // Canonical order for commutative ops: constants last, ids sorted.
        if op.commutative() {
            let a_const = self.as_const(a).is_some();
            let b_const = self.as_const(b).is_some();
            if !b_const && (a_const || b < a) {
                std::mem::swap(&mut a, &mut b);
            }
        }
        // Subtraction canonicalizes to `a + ~b + 1`, so `sub r0, r0, imm`
        // and `lea -imm(r0, r1)` (and any other mixed add/sub chains)
        // normalize into one flattened sum.
        if op == BinOp::Sub {
            if a == b {
                return self.constant(0, w);
            }
            let nb = self.not_(b);
            let one = self.constant(1, w);
            let s = self.add(a, nb);
            return self.add(s, one);
        }
        // Identities.
        let m = mask(w);
        match op {
            BinOp::And => {
                if a == b {
                    return a;
                }
                if let Some(y) = self.as_const(b) {
                    if y == 0 {
                        return b;
                    }
                    if y == m {
                        return a;
                    }
                }
            }
            BinOp::Or => {
                if a == b {
                    return a;
                }
                if let Some(y) = self.as_const(b) {
                    if y == 0 {
                        return a;
                    }
                    if y == m {
                        return b;
                    }
                }
            }
            BinOp::Xor => {
                if a == b {
                    return self.constant(0, w);
                }
                if let Some(y) = self.as_const(b) {
                    if y == 0 {
                        return a;
                    }
                    if y == m {
                        return self.not_(a);
                    }
                }
            }
            BinOp::Add => return self.normalize_add(a, b, w),
            BinOp::Sub => unreachable!("sub canonicalized above"),
            BinOp::Mul => {
                if let Some(y) = self.as_const(b) {
                    if y == 0 {
                        return b;
                    }
                    if y == 1 {
                        return a;
                    }
                    // Multiply by a power of two canonicalizes to a left
                    // shift, so ARM's `lsl #2` index scaling and x86's SIB
                    // scale 4 meet syntactically.
                    if y.is_power_of_two() {
                        let sh = self.constant(y.trailing_zeros() as u64, w);
                        return self.shl(a, sh);
                    }
                }
            }
            BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                if let Some(y) = self.as_const(b) {
                    if y == 0 {
                        return a;
                    }
                }
            }
            BinOp::Eq => {
                if a == b {
                    return self.constant(1, 1);
                }
                // For width-1: eq(x, 1) = x, eq(x, 0) = not x.
                if w == 1 {
                    if let Some(y) = self.as_const(b) {
                        return if y == 1 { a } else { self.not_(a) };
                    }
                }
            }
            BinOp::Ult | BinOp::Slt => {
                if a == b {
                    return self.constant(0, 1);
                }
            }
        }
        self.intern(Term::Binary { op, a, b })
    }

    /// Flatten nested additions, fold all constants into one, and rebuild
    /// the sum left-associated with operands in canonical (id) order and
    /// the constant last. This is what lets `(r0 + r1) - 5`, `r0 + (r1 -
    /// 5)` and `lea -5(r0, r1)` hash-cons to the same term.
    fn normalize_add(&mut self, a: TermId, b: TermId, w: u32) -> TermId {
        let mut ops: Vec<TermId> = Vec::new();
        let mut acc_const: u64 = 0;
        let mut stack = vec![a, b];
        while let Some(t) = stack.pop() {
            match *self.term(t) {
                Term::Const { value, .. } => acc_const = acc_const.wrapping_add(value),
                Term::Binary { op: BinOp::Add, a, b } => {
                    stack.push(a);
                    stack.push(b);
                }
                _ => ops.push(t),
            }
        }
        // Cancel complement pairs: x + ~x ≡ -1 (mod 2^w).
        ops.sort();
        let m = mask(w);
        let mut i = 0;
        while i < ops.len() {
            let t = ops[i];
            let partner = match *self.term(t) {
                Term::Unary { op: UnaryOp::Not, a } => Some(a),
                _ => None,
            };
            let hit = match partner {
                Some(inner) => ops.iter().position(|&o| o == inner),
                None => {
                    let nt = self.not_(t);
                    ops.iter().position(|&o| o == nt)
                }
            };
            match hit {
                Some(j) if j != i => {
                    let (lo, hi) = (i.min(j), i.max(j));
                    ops.remove(hi);
                    ops.remove(lo);
                    acc_const = acc_const.wrapping_add(m); // + (2^w - 1)
                    i = 0; // restart; indices shifted
                }
                _ => i += 1,
            }
        }
        acc_const &= m;
        let Some(&first) = ops.first() else {
            return self.constant(acc_const, w);
        };
        let mut acc = first;
        for &t in &ops[1..] {
            acc = self.intern(Term::Binary { op: BinOp::Add, a: acc, b: t });
        }
        if acc_const != 0 {
            let c = self.constant(acc_const, w);
            acc = self.intern(Term::Binary { op: BinOp::Add, a: acc, b: c });
        }
        acc
    }

    /// Bitwise AND.
    pub fn and_(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::And, a, b)
    }

    /// Bitwise OR.
    pub fn or_(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor_(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Xor, a, b)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Sub, a, b)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Mul, a, b)
    }

    /// Left shift (`b` interpreted as unsigned; over-shift yields 0).
    pub fn shl(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Shl, a, b)
    }

    /// Logical right shift.
    pub fn lshr(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Lshr, a, b)
    }

    /// Arithmetic right shift.
    pub fn ashr(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Ashr, a, b)
    }

    /// Equality (width-1 result).
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Eq, a, b)
    }

    /// Disequality (width-1 result).
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not_(e)
    }

    /// Unsigned less-than (width-1 result).
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Ult, a, b)
    }

    /// Signed less-than (width-1 result).
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary(BinOp::Slt, a, b)
    }

    /// Unsigned less-or-equal.
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        let gt = self.ult(b, a);
        self.not_(gt)
    }

    /// Signed less-or-equal.
    pub fn sle(&mut self, a: TermId, b: TermId) -> TermId {
        let gt = self.slt(b, a);
        self.not_(gt)
    }

    /// Zero-extend to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand's width.
    pub fn zext(&mut self, a: TermId, width: u32) -> TermId {
        let w = self.width(a);
        assert!(width >= w, "zext narrows");
        if width == w {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(v, width);
        }
        self.intern(Term::ZExt { a, width })
    }

    /// Sign-extend to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand's width.
    pub fn sext(&mut self, a: TermId, width: u32) -> TermId {
        let w = self.width(a);
        assert!(width >= w, "sext narrows");
        if width == w {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(sext64(v, w) as u64, width);
        }
        self.intern(Term::SExt { a, width })
    }

    /// Extract bits `hi..=lo`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is out of range.
    pub fn extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.width(a);
        assert!(hi >= lo && hi < w, "bad extract [{hi}:{lo}] of width {w}");
        if lo == 0 && hi == w - 1 {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(v >> lo, hi - lo + 1);
        }
        // extract of zext: entirely within the original → extract there;
        // entirely within the zero padding → 0.
        if let Term::ZExt { a: inner, .. } = *self.term(a) {
            let iw = self.width(inner);
            if hi < iw {
                return self.extract(inner, hi, lo);
            }
            if lo >= iw {
                return self.constant(0, hi - lo + 1);
            }
        }
        self.intern(Term::Extract { a, hi, lo })
    }

    /// If-then-else on a width-1 condition.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not width 1 or the branches' widths differ.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        assert_eq!(self.width(c), 1, "ite condition must be width 1");
        assert_eq!(self.width(t), self.width(e), "ite branch width mismatch");
        if let Some(v) = self.as_const(c) {
            return if v == 1 { t } else { e };
        }
        if t == e {
            return t;
        }
        // ite(c, 1, 0) = c and ite(c, 0, 1) = !c at width 1.
        if self.width(t) == 1 {
            if let (Some(tv), Some(ev)) = (self.as_const(t), self.as_const(e)) {
                if tv == 1 && ev == 0 {
                    return c;
                }
                if tv == 0 && ev == 1 {
                    return self.not_(c);
                }
            }
        }
        self.intern(Term::Ite { c, t, e })
    }

    /// Boolean AND over width-1 terms (alias of [`TermPool::and_`]).
    pub fn band(&mut self, a: TermId, b: TermId) -> TermId {
        self.and_(a, b)
    }

    /// Evaluate a term under a variable assignment (symbol id → value).
    ///
    /// Unassigned variables evaluate to 0.
    pub fn eval(&self, id: TermId, env: &HashMap<u32, u64>) -> u64 {
        let w = self.width(id);
        let v = match *self.term(id) {
            Term::Const { value, .. } => value,
            Term::Var { sym, .. } => env.get(&sym).copied().unwrap_or(0),
            Term::Unary { op, a } => {
                let x = self.eval(a, env);
                match op {
                    UnaryOp::Not => !x,
                    UnaryOp::Neg => x.wrapping_neg(),
                }
            }
            Term::Binary { op, a, b } => {
                let wa = self.width(a);
                let x = self.eval(a, env);
                let y = self.eval(b, env);
                match op {
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Shl => {
                        if y >= wa as u64 {
                            0
                        } else {
                            x << y
                        }
                    }
                    BinOp::Lshr => {
                        if y >= wa as u64 {
                            0
                        } else {
                            x >> y
                        }
                    }
                    BinOp::Ashr => {
                        let sh = y.min(wa as u64 - 1);
                        (sext64(x, wa) >> sh) as u64
                    }
                    BinOp::Eq => (x == y) as u64,
                    BinOp::Ult => (x < y) as u64,
                    BinOp::Slt => (sext64(x, wa) < sext64(y, wa)) as u64,
                }
            }
            Term::ZExt { a, .. } => self.eval(a, env),
            Term::SExt { a, .. } => sext64(self.eval(a, env), self.width(a)) as u64,
            Term::Extract { a, lo, .. } => self.eval(a, env) >> lo,
            Term::Ite { c, t, e } => {
                if self.eval(c, env) == 1 {
                    self.eval(t, env)
                } else {
                    self.eval(e, env)
                }
            }
        };
        v & mask(w)
    }

    /// The free variables (symbol ids) of a term.
    pub fn vars(&self, id: TermId) -> Vec<u32> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![id];
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            match *self.term(t) {
                Term::Var { sym, .. } => {
                    if !out.contains(&sym) {
                        out.push(sym);
                    }
                }
                Term::Const { .. } => {}
                Term::Unary { a, .. }
                | Term::ZExt { a, .. }
                | Term::SExt { a, .. }
                | Term::Extract { a, .. } => stack.push(a),
                Term::Binary { a, b, .. } => {
                    stack.push(a);
                    stack.push(b);
                }
                Term::Ite { c, t, e } => {
                    stack.push(c);
                    stack.push(t);
                    stack.push(e);
                }
            }
        }
        out
    }

    /// Render a term as an S-expression (for diagnostics).
    pub fn display(&self, id: TermId) -> String {
        match *self.term(id) {
            Term::Const { value, width } => format!("{value}#{width}"),
            Term::Var { sym, .. } => self.sym_name(sym).to_string(),
            Term::Unary { op, a } => {
                let o = match op {
                    UnaryOp::Not => "not",
                    UnaryOp::Neg => "neg",
                };
                format!("({o} {})", self.display(a))
            }
            Term::Binary { op, a, b } => {
                let o = match op {
                    BinOp::And => "and",
                    BinOp::Or => "or",
                    BinOp::Xor => "xor",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Shl => "<<",
                    BinOp::Lshr => ">>u",
                    BinOp::Ashr => ">>s",
                    BinOp::Eq => "=",
                    BinOp::Ult => "<u",
                    BinOp::Slt => "<s",
                };
                format!("({o} {} {})", self.display(a), self.display(b))
            }
            Term::ZExt { a, width } => format!("(zext{width} {})", self.display(a)),
            Term::SExt { a, width } => format!("(sext{width} {})", self.display(a)),
            Term::Extract { a, hi, lo } => format!("({}[{hi}:{lo}])", self.display(a)),
            Term::Ite { c, t, e } => {
                format!("(ite {} {} {})", self.display(c), self.display(t), self.display(e))
            }
        }
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let a = p.add(x, y);
        let b = p.add(x, y);
        assert_eq!(a, b);
        let c = p.add(y, x); // commutative canonicalization
        assert_eq!(a, c);
    }

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let a = p.constant(7, 32);
        let b = p.constant(5, 32);
        let s = p.add(a, b);
        assert_eq!(p.as_const(s), Some(12));
        let d = p.sub(b, a);
        assert_eq!(p.as_const(d), Some((-2i64 as u64) & 0xffff_ffff));
        let sl = p.slt(d, a);
        assert_eq!(p.as_const(sl), Some(1), "-2 <s 7");
        let ul = p.ult(d, a);
        assert_eq!(p.as_const(ul), Some(0), "0xfffffffe >=u 7");
    }

    #[test]
    fn identities() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let zero = p.constant(0, 32);
        let ones = p.constant(u64::MAX, 32);
        assert_eq!(p.add(x, zero), x);
        assert_eq!(p.and_(x, ones), x);
        assert_eq!(p.and_(x, zero), zero);
        assert_eq!(p.or_(x, zero), x);
        assert_eq!(p.xor_(x, x), zero);
        assert_eq!(p.sub(x, x), zero);
        let one = p.constant(1, 32);
        assert_eq!(p.mul(x, one), x);
        assert_eq!(p.mul(x, zero), zero);
        let nn = p.not_(x);
        assert_eq!(p.not_(nn), x);
    }

    #[test]
    fn sub_const_becomes_add() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let five = p.constant(5, 32);
        let minus5 = p.constant((-5i64) as u64, 32);
        let a = p.sub(x, five);
        let b = p.add(x, minus5);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_gathering() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let c3 = p.constant(3, 32);
        let c4 = p.constant(4, 32);
        let c7 = p.constant(7, 32);
        let t = p.add(x, c3);
        let t = p.add(t, c4);
        let want = p.add(x, c7);
        assert_eq!(t, want);
    }

    #[test]
    fn lea_matches_add_then_sub() {
        // The paper's flagship rule: (x + y) - 5 == x + y + (-5).
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let five = p.constant(5, 32);
        let sum = p.add(x, y);
        let guest = p.sub(sum, five);
        let m5 = p.constant((-5i64) as u64, 32);
        let sum2 = p.add(y, x);
        let host = p.add(sum2, m5);
        assert_eq!(guest, host, "syntactic equality after simplification");
    }

    #[test]
    fn extract_and_extensions() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        assert_eq!(p.zext(x, 32), x);
        let b = p.extract(x, 31, 0);
        assert_eq!(b, x);
        let c = p.constant(0xabcd, 32);
        let lo = p.extract(c, 7, 0);
        assert_eq!(p.as_const(lo), Some(0xcd));
        let z = p.zext(lo, 32);
        assert_eq!(p.as_const(z), Some(0xcd));
        let byte = p.constant(0x80, 8);
        let s = p.sext(byte, 32);
        assert_eq!(p.as_const(s), Some(0xffff_ff80));
        // Extract inside zext padding.
        let v8 = p.var("v", 8);
        let zx = p.zext(v8, 32);
        let hi = p.extract(zx, 31, 8);
        assert_eq!(p.as_const(hi), Some(0));
        let within = p.extract(zx, 7, 0);
        assert_eq!(within, v8);
    }

    #[test]
    fn ite_simplifications() {
        let mut p = TermPool::new();
        let c = p.var("c", 1);
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let t = p.tru();
        let f = p.fls();
        assert_eq!(p.ite(t, x, y), x);
        assert_eq!(p.ite(f, x, y), y);
        assert_eq!(p.ite(c, x, x), x);
        let one = p.tru();
        let zero = p.fls();
        assert_eq!(p.ite(c, one, zero), c);
        let ncc = p.ite(c, zero, one);
        let nc = p.not_(c);
        assert_eq!(ncc, nc);
    }

    #[test]
    fn eval_matches_concrete_ops() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let mut env = HashMap::new();
        let xs = match *p.term(x) {
            Term::Var { sym, .. } => sym,
            _ => unreachable!(),
        };
        let ys = match *p.term(y) {
            Term::Var { sym, .. } => sym,
            _ => unreachable!(),
        };
        env.insert(xs, 0x8000_0000u64);
        env.insert(ys, 3u64);
        let t = p.ashr(x, y);
        assert_eq!(p.eval(t, &env), 0xf000_0000);
        let t = p.lshr(x, y);
        assert_eq!(p.eval(t, &env), 0x1000_0000);
        let t = p.slt(x, y);
        assert_eq!(p.eval(t, &env), 1);
        let t = p.ult(x, y);
        assert_eq!(p.eval(t, &env), 0);
        let t = p.mul(x, y);
        assert_eq!(p.eval(t, &env), 0x8000_0000u64.wrapping_mul(3) & 0xffff_ffff);
    }

    #[test]
    fn vars_collects_free_variables() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let s = p.add(x, y);
        let t = p.mul(s, x);
        let vars = p.vars(t);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn width_of_predicates_is_one() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let e = p.eq(x, y);
        assert_eq!(p.width(e), 1);
        let u = p.ult(x, y);
        assert_eq!(p.width(u), 1);
    }

    #[test]
    fn display_is_readable() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let c = p.constant(4, 32);
        let t = p.add(x, c);
        assert_eq!(p.display(t), "(+ x 4#32)");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics_in_debug() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 8);
        let _ = p.add(x, y);
    }
}
