//! Equivalence queries over bit-vector terms.
//!
//! This is the interface the rule verifier uses: *is term `a` equal to
//! term `b` for every assignment of the shared symbolic inputs?* — the
//! same question the paper answers with STP. The pipeline is:
//!
//! 1. syntactic check (hash-consing already canonicalizes most cases),
//! 2. quick randomized refutation (cheap counterexamples),
//! 3. bit-blast `a ≠ b` and run the CDCL solver; UNSAT proves
//!    equivalence, SAT yields a concrete counterexample model.

use crate::blast::Blaster;
use crate::sat::SatResult;
use crate::term::{TermId, TermPool};
use std::collections::HashMap;

/// Outcome of an equivalence query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// The terms are equal for all inputs.
    Proved,
    /// A counterexample assignment (symbol id → value) distinguishes them.
    Refuted(HashMap<u32, u64>),
    /// The solver budget was exhausted.
    Unknown,
}

impl EquivResult {
    /// Whether the query was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, EquivResult::Proved)
    }
}

/// Default conflict budget for [`check_equiv`].
pub const DEFAULT_BUDGET: u64 = 2_000_000;

/// Check whether two terms are equivalent for all variable assignments.
///
/// # Panics
///
/// Panics if the terms have different widths.
pub fn check_equiv(pool: &mut TermPool, a: TermId, b: TermId) -> EquivResult {
    check_equiv_budget(pool, a, b, DEFAULT_BUDGET)
}

/// [`check_equiv`] with an explicit SAT conflict budget.
pub fn check_equiv_budget(pool: &mut TermPool, a: TermId, b: TermId, budget: u64) -> EquivResult {
    assert_eq!(pool.width(a), pool.width(b), "equivalence of unequal widths");
    // 1. Syntactic equality via hash-consing.
    if a == b {
        return EquivResult::Proved;
    }
    // 2. Randomized refutation: evaluate on a deterministic set of
    //    assignments; many false candidates die here without SAT cost.
    let mut vars = pool.vars(a);
    for v in pool.vars(b) {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    let mut seed = 0x5851_f42d_4c95_7f2du64;
    for round in 0..32u64 {
        let mut env = HashMap::new();
        for (i, &sym) in vars.iter().enumerate() {
            let v = match round {
                0 => 0u64,
                1 => u64::MAX,
                2 => 1,
                3 => 0x8000_0000,
                _ => {
                    seed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407 ^ (i as u64) << 32);
                    seed
                }
            };
            env.insert(sym, v);
        }
        if pool.eval(a, &env) != pool.eval(b, &env) {
            return EquivResult::Refuted(env);
        }
    }
    // 3. Decide by SAT on the miter a ≠ b.
    let ne = pool.ne(a, b);
    let mut blaster = Blaster::new();
    blaster.assert_true(pool, ne);
    match blaster.solver.solve(budget) {
        SatResult::Unsat => EquivResult::Proved,
        SatResult::Sat(model) => {
            let mut env = HashMap::new();
            for sym in vars {
                if let Some(v) = blaster.model_value(&model, sym) {
                    env.insert(sym, v);
                }
            }
            debug_assert_ne!(
                pool.eval(a, &env),
                pool.eval(b, &env),
                "SAT model must be a real counterexample"
            );
            EquivResult::Refuted(env)
        }
        SatResult::Unknown => EquivResult::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syntactic_fast_path() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let a = p.add(x, y);
        let b = p.add(y, x);
        assert_eq!(check_equiv(&mut p, a, b), EquivResult::Proved);
    }

    #[test]
    fn lea_rule_equivalence() {
        // Paper Figure 1: add r0,r0,r1; sub r0,r0,#imm  ≡  lea -imm(r0,r1).
        let mut p = TermPool::new();
        let r0 = p.var("r0", 32);
        let r1 = p.var("r1", 32);
        let imm = p.var("imm0", 32);
        let t = p.add(r0, r1);
        let guest = p.sub(t, imm);
        let nimm = p.neg(imm);
        let sum = p.add(r0, r1);
        let host = p.add(sum, nimm);
        assert!(check_equiv(&mut p, guest, host).is_proved());
    }

    #[test]
    fn movzbl_equals_and_255() {
        // Paper Figure 3(b): and r0, r0, #255 ≡ movzbl %al, %eax.
        let mut p = TermPool::new();
        let r0 = p.var("r0", 32);
        let c255 = p.constant(255, 32);
        let guest = p.and_(r0, c255);
        let low = p.extract(r0, 7, 0);
        let host = p.zext(low, 32);
        assert!(check_equiv(&mut p, guest, host).is_proved());
    }

    #[test]
    fn random_refutation_finds_counterexample() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let one = p.constant(1, 32);
        let plus = p.add(x, one);
        match check_equiv(&mut p, plus, x) {
            EquivResult::Refuted(env) => {
                assert!(!env.is_empty() || p.eval(plus, &env) != p.eval(x, &env));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sat_needed_for_subtle_equivalence() {
        // x*3 == (x << 1) + x — canonical forms differ, SAT must prove it.
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let three = p.constant(3, 16);
        let lhs = p.mul(x, three);
        let one = p.constant(1, 16);
        let sh = p.shl(x, one);
        let rhs = p.add(sh, x);
        assert!(check_equiv(&mut p, lhs, rhs).is_proved());
    }

    #[test]
    fn subtle_inequivalence_caught() {
        // (x >> 1) << 1 != x (drops bit 0). Randomized phase catches it.
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let one = p.constant(1, 32);
        let down = p.lshr(x, one);
        let back = p.shl(down, one);
        match check_equiv(&mut p, back, x) {
            EquivResult::Refuted(env) => {
                assert_ne!(p.eval(back, &env), p.eval(x, &env));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arm_vs_x86_carry_polarity_inequivalence() {
        // ARM carry-after-cmp (a >= b) vs x86 CF (a < b) are complements,
        // never equal.
        let mut p = TermPool::new();
        let a = p.var("a", 32);
        let b = p.var("b", 32);
        let x86_cf = p.ult(a, b);
        let arm_c = p.not_(x86_cf);
        assert!(!check_equiv(&mut p, arm_c, x86_cf).is_proved());
    }

    #[test]
    fn tight_budget_reports_unknown_or_decides() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let lhs = p.mul(x, y);
        let rhs = p.mul(y, x);
        // Commutative canonicalization makes this syntactic — still Proved
        // even with budget 0.
        assert!(check_equiv_budget(&mut p, lhs, rhs, 0).is_proved());
    }

    #[test]
    #[should_panic(expected = "unequal widths")]
    fn width_mismatch_panics() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 8);
        let _ = check_equiv(&mut p, x, y);
    }
}
