//! Tseitin bit-blasting from bit-vector terms to CNF.

use crate::sat::{Lit, Solver};
use crate::term::{BinOp, Term, TermId, TermPool, UnaryOp};
use std::collections::HashMap;

/// A bit-blasting context wrapping a SAT solver.
///
/// Terms map to little-endian literal vectors; variables get fresh SAT
/// variables per bit, recorded so that satisfying assignments can be
/// mapped back to bit-vector models.
#[derive(Debug)]
pub struct Blaster {
    /// The underlying SAT solver.
    pub solver: Solver,
    memo: HashMap<TermId, Vec<Lit>>,
    var_bits: HashMap<u32, Vec<Lit>>,
    lit_true: Lit,
}

impl Default for Blaster {
    fn default() -> Self {
        Self::new()
    }
}

impl Blaster {
    /// A fresh context.
    pub fn new() -> Blaster {
        let mut solver = Solver::new();
        let t = solver.new_var();
        solver.add_clause(vec![Lit::pos(t)]);
        Blaster { solver, memo: HashMap::new(), var_bits: HashMap::new(), lit_true: Lit::pos(t) }
    }

    fn tru(&self) -> Lit {
        self.lit_true
    }

    fn fls(&self) -> Lit {
        self.lit_true.negate()
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.fls() || b == self.fls() {
            return self.fls();
        }
        if a == self.tru() {
            return b;
        }
        if b == self.tru() {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.negate() {
            return self.fls();
        }
        let o = self.fresh();
        self.solver.add_clause(vec![a.negate(), b.negate(), o]);
        self.solver.add_clause(vec![a, o.negate()]);
        self.solver.add_clause(vec![b, o.negate()]);
        o
    }

    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        self.and_gate(a.negate(), b.negate()).negate()
    }

    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.fls() {
            return b;
        }
        if b == self.fls() {
            return a;
        }
        if a == self.tru() {
            return b.negate();
        }
        if b == self.tru() {
            return a.negate();
        }
        if a == b {
            return self.fls();
        }
        if a == b.negate() {
            return self.tru();
        }
        let o = self.fresh();
        self.solver.add_clause(vec![a.negate(), b.negate(), o.negate()]);
        self.solver.add_clause(vec![a, b, o.negate()]);
        self.solver.add_clause(vec![a, b.negate(), o]);
        self.solver.add_clause(vec![a.negate(), b, o]);
        o
    }

    fn mux_gate(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        if c == self.tru() {
            return t;
        }
        if c == self.fls() {
            return e;
        }
        let a = self.and_gate(c, t);
        let b = self.and_gate(c.negate(), e);
        self.or_gate(a, b)
    }

    /// Ripple-carry adder; returns (sum bits, carry out).
    fn add_bits(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor_gate(x, y);
            sum.push(self.xor_gate(xy, carry));
            let and1 = self.and_gate(x, y);
            let and2 = self.and_gate(xy, carry);
            carry = self.or_gate(and1, and2);
        }
        (sum, carry)
    }

    fn const_bits(&self, value: u64, width: u32) -> Vec<Lit> {
        (0..width).map(|i| if (value >> i) & 1 == 1 { self.tru() } else { self.fls() }).collect()
    }

    /// Blast a term to its little-endian bit literals.
    pub fn blast(&mut self, pool: &TermPool, id: TermId) -> Vec<Lit> {
        if let Some(bits) = self.memo.get(&id) {
            return bits.clone();
        }
        let width = pool.width(id);
        let bits: Vec<Lit> = match *pool.term(id) {
            Term::Const { value, width } => self.const_bits(value, width),
            Term::Var { sym, width } => {
                if let Some(bits) = self.var_bits.get(&sym) {
                    bits.clone()
                } else {
                    let bits: Vec<Lit> = (0..width).map(|_| self.fresh()).collect();
                    self.var_bits.insert(sym, bits.clone());
                    bits
                }
            }
            Term::Unary { op, a } => {
                let ab = self.blast(pool, a);
                match op {
                    UnaryOp::Not => ab.iter().map(|l| l.negate()).collect(),
                    UnaryOp::Neg => {
                        let inv: Vec<Lit> = ab.iter().map(|l| l.negate()).collect();
                        let zero = self.const_bits(0, width);
                        let (sum, _) = self.add_bits(&inv, &zero, self.tru());
                        sum
                    }
                }
            }
            Term::Binary { op, a, b } => {
                let ab = self.blast(pool, a);
                let bb = self.blast(pool, b);
                match op {
                    BinOp::And => ab.iter().zip(&bb).map(|(&x, &y)| self.and_gate(x, y)).collect(),
                    BinOp::Or => ab.iter().zip(&bb).map(|(&x, &y)| self.or_gate(x, y)).collect(),
                    BinOp::Xor => ab.iter().zip(&bb).map(|(&x, &y)| self.xor_gate(x, y)).collect(),
                    BinOp::Add => self.add_bits(&ab, &bb, self.fls()).0,
                    BinOp::Sub => {
                        let inv: Vec<Lit> = bb.iter().map(|l| l.negate()).collect();
                        self.add_bits(&ab, &inv, self.tru()).0
                    }
                    BinOp::Mul => {
                        let mut acc = self.const_bits(0, width);
                        for i in 0..width as usize {
                            // Partial product: (a << i) masked by b[i].
                            let mut pp = vec![self.fls(); width as usize];
                            for j in 0..(width as usize - i) {
                                pp[i + j] = self.and_gate(ab[j], bb[i]);
                            }
                            acc = self.add_bits(&acc, &pp, self.fls()).0;
                        }
                        acc
                    }
                    BinOp::Shl | BinOp::Lshr | BinOp::Ashr => self.shift_bits(op, &ab, &bb, width),
                    BinOp::Eq => {
                        let mut acc = self.tru();
                        for (&x, &y) in ab.iter().zip(&bb) {
                            let ne = self.xor_gate(x, y);
                            acc = self.and_gate(acc, ne.negate());
                        }
                        vec![acc]
                    }
                    BinOp::Ult => {
                        // a < b  ⟺  borrow in a - b  ⟺  ¬carry_out.
                        let inv: Vec<Lit> = bb.iter().map(|l| l.negate()).collect();
                        let (_, carry) = self.add_bits(&ab, &inv, self.tru());
                        vec![carry.negate()]
                    }
                    BinOp::Slt => {
                        let wa = ab.len();
                        let sa = ab[wa - 1];
                        let sb = bb[wa - 1];
                        let inv: Vec<Lit> = bb.iter().map(|l| l.negate()).collect();
                        let (_, carry) = self.add_bits(&ab, &inv, self.tru());
                        let ult = carry.negate();
                        // slt = (sa ∧ ¬sb) ∨ ((sa == sb) ∧ ult)
                        let neg_pos = self.and_gate(sa, sb.negate());
                        let same_sign = self.xor_gate(sa, sb).negate();
                        let same_and_ult = self.and_gate(same_sign, ult);
                        vec![self.or_gate(neg_pos, same_and_ult)]
                    }
                }
            }
            Term::ZExt { a, width } => {
                let mut bits = self.blast(pool, a);
                bits.resize(width as usize, self.fls());
                bits
            }
            Term::SExt { a, width } => {
                let mut bits = self.blast(pool, a);
                let msb = *bits.last().expect("non-empty");
                bits.resize(width as usize, msb);
                bits
            }
            Term::Extract { a, hi, lo } => {
                let bits = self.blast(pool, a);
                bits[lo as usize..=hi as usize].to_vec()
            }
            Term::Ite { c, t, e } => {
                let cb = self.blast(pool, c)[0];
                let tb = self.blast(pool, t);
                let eb = self.blast(pool, e);
                tb.iter().zip(&eb).map(|(&x, &y)| self.mux_gate(cb, x, y)).collect()
            }
        };
        debug_assert_eq!(bits.len() as u32, width);
        self.memo.insert(id, bits.clone());
        bits
    }

    /// Barrel shifter over a variable amount.
    fn shift_bits(&mut self, op: BinOp, a: &[Lit], b: &[Lit], width: u32) -> Vec<Lit> {
        let fill_sign = op == BinOp::Ashr;
        let w = width as usize;
        let stages = usize::BITS - (w - 1).leading_zeros(); // ceil(log2(w))
        let mut cur: Vec<Lit> = a.to_vec();
        let sign = a[w - 1];
        for k in 0..stages as usize {
            if k >= b.len() {
                break;
            }
            let amt = 1usize << k;
            let sel = b[k];
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = match op {
                    BinOp::Shl => {
                        if i >= amt {
                            cur[i - amt]
                        } else {
                            self.fls()
                        }
                    }
                    BinOp::Lshr => {
                        if i + amt < w {
                            cur[i + amt]
                        } else {
                            self.fls()
                        }
                    }
                    _ => {
                        if i + amt < w {
                            cur[i + amt]
                        } else {
                            sign
                        }
                    }
                };
                next.push(self.mux_gate(sel, shifted, cur[i]));
            }
            cur = next;
        }
        // Overshoot: any shift-amount bit ≥ stages set → all zero (or sign).
        let mut over = self.fls();
        for (k, &bit) in b.iter().enumerate() {
            if k >= stages as usize {
                over = self.or_gate(over, bit);
            }
        }
        // For widths that are not powers of two the in-range stages can
        // still overshoot; widths here are powers of two (8/16/32/64), and
        // amounts up to w-1 are representable in `stages` bits, so only
        // bits ≥ stages matter. A set bit at exactly log2(w) (e.g. shift
        // by 32 on w=32) is covered because stages == log2(w).
        let fill = if fill_sign { sign } else { self.fls() };
        cur.iter().map(|&l| self.mux_gate(over, fill, l)).collect()
    }

    /// Assert that a width-1 term is true.
    pub fn assert_true(&mut self, pool: &TermPool, id: TermId) {
        assert_eq!(pool.width(id), 1, "assertion must be width 1");
        let bits = self.blast(pool, id);
        self.solver.add_clause(vec![bits[0]]);
    }

    /// Extract the value of term-pool symbol `sym` from a SAT model.
    pub fn model_value(&self, model: &[bool], sym: u32) -> Option<u64> {
        let bits = self.var_bits.get(&sym)?;
        let mut v = 0u64;
        for (i, lit) in bits.iter().enumerate() {
            let b = model[lit.var().0 as usize] == lit.is_pos();
            if b {
                v |= 1 << i;
            }
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;

    /// Check validity of a width-1 term by asserting its negation.
    fn prove(pool: &mut TermPool, prop: TermId) -> bool {
        let mut b = Blaster::new();
        let neg = pool.not_(prop);
        b.assert_true(pool, neg);
        matches!(b.solver.solve(200_000), SatResult::Unsat)
    }

    #[test]
    fn add_commutes_at_8_bits() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        // Defeat the pool's canonicalization by routing through extract.
        let xy = p.add(x, y);
        let yx = p.add(y, x);
        let prop = p.eq(xy, yx);
        assert!(prove(&mut p, prop));
    }

    #[test]
    fn sub_is_add_of_negation() {
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let y = p.var("y", 16);
        let d = p.sub(x, y);
        let ny = p.neg(y);
        let d2 = p.add(x, ny);
        let prop = p.eq(d, d2);
        assert!(prove(&mut p, prop));
    }

    #[test]
    fn mul_by_four_is_shl_two() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let four = p.constant(4, 8);
        let two = p.constant(2, 8);
        let m = p.mul(x, four);
        let s = p.shl(x, two);
        let prop = p.eq(m, s);
        assert!(prove(&mut p, prop));
    }

    #[test]
    fn xor_identity_refutable() {
        // x ^ y == x is NOT valid; the model must pin y ≠ 0.
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let xy = p.xor_(x, y);
        let prop = p.eq(xy, x);
        let mut b = Blaster::new();
        let neg = p.not_(prop);
        b.assert_true(&p, neg);
        match b.solver.solve(100_000) {
            SatResult::Sat(m) => {
                let xv = b.model_value(&m, 0).unwrap();
                let yv = b.model_value(&m, 1).unwrap();
                assert_ne!(xv ^ yv, xv, "counterexample must break the identity");
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn ult_slt_agree_with_semantics() {
        let mut p = TermPool::new();
        let x = p.var("x", 4);
        let y = p.var("y", 4);
        // Validity: (x <u y) == ¬(y <u x) ∧ ¬(x == y) ... check the simpler
        // trichotomy: exactly one of x<y, y<x, x==y. Encode as: (x<u y) ⊕
        // (y <u x) ⊕ (x == y) == 1 with no two simultaneously true.
        let lt = p.ult(x, y);
        let gt = p.ult(y, x);
        let eq = p.eq(x, y);
        let x1 = p.xor_(lt, gt);
        let x2 = p.xor_(x1, eq);
        assert!(prove(&mut p, x2), "trichotomy");
        // slt differs from ult exactly when signs differ.
        let slt = p.slt(x, y);
        let ult = p.ult(x, y);
        let sx = p.extract(x, 3, 3);
        let sy = p.extract(y, 3, 3);
        let signs_differ = p.xor_(sx, sy);
        let differs = p.xor_(slt, ult);
        let prop = p.eq(differs, signs_differ);
        assert!(prove(&mut p, prop));
    }

    #[test]
    fn variable_shifts_match_constant_shifts() {
        let mut p = TermPool::new();
        // For each constant amount, shifting by a pinned variable equals
        // the constant shift (validity proved by SAT on 8-bit vectors).
        for amt in [0u64, 1, 3, 7] {
            let x = p.var("x", 8);
            let n = p.var(&format!("n{amt}"), 8);
            let c = p.constant(amt, 8);
            let pinned = p.eq(n, c);
            let var_shift = p.shl(x, n);
            let const_shift = p.shl(x, c);
            let eq = p.eq(var_shift, const_shift);
            let np = p.not_(eq);
            // pinned ∧ ¬eq must be UNSAT.
            let both = p.band(pinned, np);
            let mut b = Blaster::new();
            b.assert_true(&p, both);
            assert!(matches!(b.solver.solve(200_000), SatResult::Unsat), "shl by {amt}");
        }
    }

    #[test]
    fn overshoot_shifts_to_zero() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let big = p.constant(9, 8);
        let n = p.var("n", 8);
        let pinned = p.eq(n, big);
        let shifted = p.lshr(x, n);
        let zero = p.constant(0, 8);
        let eqz = p.eq(shifted, zero);
        let neq = p.not_(eqz);
        let both = p.band(pinned, neq);
        let mut b = Blaster::new();
        b.assert_true(&p, both);
        assert!(matches!(b.solver.solve(200_000), SatResult::Unsat));
    }

    #[test]
    fn ashr_overshoot_fills_sign() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let big = p.constant(200, 8);
        let n = p.var("n", 8);
        let pinned = p.eq(n, big);
        let shifted = p.ashr(x, n);
        // Result must equal 0 - (x >> 7) sign-extended: i.e. all bits = sign.
        let seven = p.constant(7, 8);
        let sign_spread = p.ashr(x, seven);
        let eqs = p.eq(shifted, sign_spread);
        let neq = p.not_(eqs);
        let both = p.band(pinned, neq);
        let mut b = Blaster::new();
        b.assert_true(&p, both);
        assert!(matches!(b.solver.solve(200_000), SatResult::Unsat));
    }

    #[test]
    fn sext_matches_shift_pair() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let wide = p.sext(x, 16);
        let zx = p.zext(x, 16);
        let eight = p.constant(8, 16);
        let shifted = p.shl(zx, eight);
        let back = p.ashr(shifted, eight);
        let prop = p.eq(wide, back);
        assert!(prove(&mut p, prop));
    }

    #[test]
    fn random_32bit_expression_cross_check() {
        // Build a moderately sized 32-bit expression and check the SAT
        // model agrees with the term evaluator.
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let c = p.constant(0x9e37_79b9, 32);
        let t1 = p.mul(x, c);
        let five = p.constant(5, 32);
        let t2 = p.lshr(y, five);
        let t3 = p.xor_(t1, t2);
        let t4 = p.add(t3, x);
        let magic = p.constant(0x1234_5678, 32);
        let prop = p.eq(t4, magic);
        let mut b = Blaster::new();
        b.assert_true(&p, prop);
        match b.solver.solve(500_000) {
            SatResult::Sat(m) => {
                let mut env = std::collections::HashMap::new();
                env.insert(0u32, b.model_value(&m, 0).unwrap());
                env.insert(1u32, b.model_value(&m, 1).unwrap());
                assert_eq!(p.eval(t4, &env), 0x1234_5678);
            }
            SatResult::Unsat => panic!("equation should be solvable"),
            SatResult::Unknown => panic!("budget too small"),
        }
    }
}
