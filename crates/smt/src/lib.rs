#![forbid(unsafe_code)]
//! A small QF_BV decision procedure (the paper's STP stand-in).
//!
//! The rule learner verifies that a guest and a host instruction sequence
//! compute identical results by comparing symbolic bit-vector
//! expressions. The paper uses the STP SMT solver; this crate provides
//! the equivalent capability from scratch:
//!
//! * [`term`] — hash-consed bit-vector terms with aggressive local
//!   simplification (constant folding, algebraic identities, canonical
//!   operand ordering),
//! * [`sat`] — a CDCL SAT solver (two-watched-literal propagation,
//!   1-UIP conflict learning, VSIDS-style activities, Luby restarts),
//! * [`blast`] — a Tseitin bit-blaster from terms to CNF,
//! * [`equiv`] — the equivalence query used by the verifier: `a ≡ b` is
//!   proved by showing `a ≠ b` unsatisfiable, and refutations come back
//!   as concrete counterexample models.
//!
//! # Example
//!
//! ```
//! use ldbt_smt::{equiv::check_equiv, term::TermPool};
//!
//! let mut p = TermPool::new();
//! let x = p.var("x", 32);
//! let y = p.var("y", 32);
//! // (x + y) - y == x, for all x and y.
//! let sum = p.add(x, y);
//! let lhs = p.sub(sum, y);
//! assert!(check_equiv(&mut p, lhs, x).is_proved());
//! ```

pub mod blast;
pub mod equiv;
pub mod sat;
pub mod term;

pub use equiv::{check_equiv, check_equiv_budget, EquivResult};
pub use term::{Term, TermId, TermPool};
