//! x86 instruction types, operands, and static metadata.

use crate::cc::Cc;
use crate::reg::Gpr;
use ldbt_isa::{InstrKind, NormAddr, Scale, Width};
use std::fmt;

/// An x86 memory operand: `disp(base, index, scale)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct X86Mem {
    /// Base register.
    pub base: Option<Gpr>,
    /// Index register and scale. IA-32 allows scales 1, 2, 4, 8 only and
    /// `%esp` can never be an index; [`crate::encode::encode`] enforces
    /// both.
    pub index: Option<(Gpr, u8)>,
    /// Signed 32-bit displacement.
    pub disp: i32,
}

impl X86Mem {
    /// `(%reg)` — a bare base register.
    pub fn base(reg: Gpr) -> X86Mem {
        X86Mem { base: Some(reg), index: None, disp: 0 }
    }

    /// `disp(%reg)`.
    pub fn base_disp(reg: Gpr, disp: i32) -> X86Mem {
        X86Mem { base: Some(reg), index: None, disp }
    }

    /// An absolute address.
    pub fn absolute(disp: i32) -> X86Mem {
        X86Mem { base: None, index: None, disp }
    }

    /// Registers the operand reads.
    pub fn regs(&self) -> Vec<Gpr> {
        let mut v = Vec::new();
        if let Some(b) = self.base {
            v.push(b);
        }
        if let Some((i, _)) = self.index {
            v.push(i);
        }
        v
    }

    /// Normalize to the learner's `base + index×scale + offset` form.
    pub fn normalize(&self) -> NormAddr<Gpr> {
        NormAddr {
            base: self.base,
            index: self.index.map(|(r, s)| (r, Scale::Value(s as u32))),
            offset: self.disp as i64,
        }
    }
}

impl fmt::Display for X86Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disp != 0 || (self.base.is_none() && self.index.is_none()) {
            write!(f, "{}", self.disp)?;
        }
        if self.base.is_some() || self.index.is_some() {
            write!(f, "(")?;
            if let Some(b) = self.base {
                write!(f, "{b}")?;
            }
            if let Some((i, s)) = self.index {
                write!(f, ",{i},{s}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A general operand: register, immediate, or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A 32-bit register.
    Reg(Gpr),
    /// A sign-extended immediate.
    Imm(i32),
    /// A memory operand.
    Mem(X86Mem),
}

impl Operand {
    /// The memory operand, if this is one.
    pub fn mem(&self) -> Option<&X86Mem> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is a memory operand.
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }

    /// Registers read when this operand is used as a *source*.
    pub fn src_regs(&self) -> Vec<Gpr> {
        match self {
            Operand::Reg(r) => vec![*r],
            Operand::Imm(_) => vec![],
            Operand::Mem(m) => m.regs(),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "${v}"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// Two-operand ALU opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Adc,
    Sub,
    Sbb,
    And,
    Or,
    Xor,
    Cmp,
    Test,
}

impl AluOp {
    /// All ALU opcodes.
    pub const ALL: [AluOp; 9] = [
        AluOp::Add,
        AluOp::Adc,
        AluOp::Sub,
        AluOp::Sbb,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Cmp,
        AluOp::Test,
    ];

    /// Whether the opcode discards its result (`cmp`, `test`).
    pub fn is_compare(self) -> bool {
        matches!(self, AluOp::Cmp | AluOp::Test)
    }

    /// Whether the opcode reads the incoming carry (`adc`, `sbb`).
    pub fn reads_carry(self) -> bool {
        matches!(self, AluOp::Adc | AluOp::Sbb)
    }

    /// The AT&T mnemonic (with the `l` suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "addl",
            AluOp::Adc => "adcl",
            AluOp::Sub => "subl",
            AluOp::Sbb => "sbbl",
            AluOp::And => "andl",
            AluOp::Or => "orl",
            AluOp::Xor => "xorl",
            AluOp::Cmp => "cmpl",
            AluOp::Test => "testl",
        }
    }
}

/// Shift opcodes (immediate count only in the modeled subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ShiftOp {
    Shl,
    Shr,
    Sar,
}

impl ShiftOp {
    /// The AT&T mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shll",
            ShiftOp::Shr => "shrl",
            ShiftOp::Sar => "sarl",
        }
    }
}

/// One-operand opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    Inc,
    Dec,
}

impl UnOp {
    /// The AT&T mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "negl",
            UnOp::Not => "notl",
            UnOp::Inc => "incl",
            UnOp::Dec => "decl",
        }
    }
}

/// An x86 instruction (the modeled subset, 32-bit operand size).
///
/// Control-flow targets (`Jcc`, `Jmp`, `Call`) are *instruction-relative
/// offsets in instructions* from the following instruction, exactly like
/// the ARM side; the binary encoder converts them to byte displacements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum X86Instr {
    /// `movl src, dst` (no memory-to-memory form).
    Mov {
        /// Destination (register or memory).
        dst: Operand,
        /// Source (register, immediate, or memory).
        src: Operand,
    },
    /// Two-operand ALU: `op src, dst`.
    Alu {
        /// Opcode.
        op: AluOp,
        /// Destination and first source.
        dst: Operand,
        /// Second source.
        src: Operand,
    },
    /// `leal addr, dst` — address arithmetic without memory access.
    Lea {
        /// Destination register.
        dst: Gpr,
        /// The address expression.
        addr: X86Mem,
    },
    /// Two-operand signed multiply: `imull src, dst`.
    Imul {
        /// Destination and first factor.
        dst: Gpr,
        /// Second factor (register or memory).
        src: Operand,
    },
    /// Shift by an immediate count: `op $count, dst`.
    Shift {
        /// Opcode.
        op: ShiftOp,
        /// Destination.
        dst: Operand,
        /// Count, 1–31.
        count: u8,
    },
    /// One-operand ALU: `negl`/`notl`/`incl`/`decl dst`.
    Un {
        /// Opcode.
        op: UnOp,
        /// Destination.
        dst: Operand,
    },
    /// Zero/sign-extending sub-word move (`movzbl`, `movswl`, …).
    Movx {
        /// Sign-extend (`movs*`) vs zero-extend (`movz*`).
        sign: bool,
        /// Source width (`W8` or `W16`).
        width: Width,
        /// Destination register.
        dst: Gpr,
        /// Source: the low bits of a register or a memory operand.
        src: Operand,
    },
    /// Sub-word store: `movb`/`movw` of a register's low bits to memory.
    MovStore {
        /// Store width (`W8` or `W16`).
        width: Width,
        /// Source register (low bits stored). For `W8` the encoder
        /// requires a byte-addressable register (`eax`–`ebx`).
        src: Gpr,
        /// Destination memory operand.
        dst: X86Mem,
    },
    /// `setcc dst` — write 0/1 to the low byte of `dst` (upper bits kept).
    Setcc {
        /// Predicate.
        cc: Cc,
        /// Destination register (must be byte-addressable).
        dst: Gpr,
    },
    /// Conditional jump.
    Jcc {
        /// Predicate.
        cc: Cc,
        /// Instruction-relative target.
        target: i32,
    },
    /// Unconditional jump.
    Jmp {
        /// Instruction-relative target.
        target: i32,
    },
    /// Indirect jump: `jmp *src`.
    JmpInd {
        /// Target address (register or memory).
        src: Operand,
    },
    /// Direct call.
    Call {
        /// Instruction-relative target.
        target: i32,
    },
    /// Near return.
    Ret,
    /// `pushl src`.
    Push {
        /// Pushed value.
        src: Operand,
    },
    /// `popl dst`.
    Pop {
        /// Destination.
        dst: Operand,
    },
    /// `pushfd` — push EFLAGS.
    Pushfd,
    /// `popfd` — pop EFLAGS.
    Popfd,
    /// `hlt` — stop the interpreter (dispatcher sentinel).
    Halt,
    /// Direct jump to another translated block (block chaining).
    ///
    /// Never emitted by a translator directly: the engine patches the
    /// `ret` of a `movl $pc, %eax; ret` exit stub into `ChainJmp` once
    /// the branch target is translated, so execution flows block-to-block
    /// without returning to the dispatcher. `block` is the engine's code
    /// cache id of the successor. Costed like `ret` ([`InstrKind::CallRet`])
    /// so chained and unchained runs are cycle-identical.
    ChainJmp {
        /// Code cache id of the chained successor block.
        block: u32,
    },
    /// Guest trap sentinel: the guest executed a trapping instruction
    /// (`svc #n`, n ≠ 0, or an undecodable word). By the dispatcher
    /// convention `%eax` carries the trapping guest PC; translators emit
    /// `movl $pc, %eax; trap` after a full register writeback so the
    /// exit is precise. Costed like `hlt` ([`InstrKind::Branch`]).
    Trap,
}

impl X86Instr {
    /// `movl $imm, reg`.
    pub fn mov_imm(dst: Gpr, imm: i32) -> X86Instr {
        X86Instr::Mov { dst: Operand::Reg(dst), src: Operand::Imm(imm) }
    }

    /// `movl src, dst` between registers.
    pub fn mov_rr(dst: Gpr, src: Gpr) -> X86Instr {
        X86Instr::Mov { dst: Operand::Reg(dst), src: Operand::Reg(src) }
    }

    /// Register-register ALU op.
    pub fn alu_rr(op: AluOp, dst: Gpr, src: Gpr) -> X86Instr {
        X86Instr::Alu { op, dst: Operand::Reg(dst), src: Operand::Reg(src) }
    }

    /// Register-immediate ALU op.
    pub fn alu_ri(op: AluOp, dst: Gpr, imm: i32) -> X86Instr {
        X86Instr::Alu { op, dst: Operand::Reg(dst), src: Operand::Imm(imm) }
    }

    /// The register this instruction defines, if exactly one GPR.
    ///
    /// `%esp` updates from push/pop and flag-only updates are not
    /// reported.
    pub fn def(&self) -> Option<Gpr> {
        match *self {
            X86Instr::Mov { dst: Operand::Reg(r), .. } => Some(r),
            X86Instr::Alu { op, dst: Operand::Reg(r), .. } if !op.is_compare() => Some(r),
            X86Instr::Lea { dst, .. } => Some(dst),
            X86Instr::Imul { dst, .. } => Some(dst),
            X86Instr::Shift { dst: Operand::Reg(r), .. } => Some(r),
            X86Instr::Un { dst: Operand::Reg(r), .. } => Some(r),
            X86Instr::Movx { dst, .. } => Some(dst),
            X86Instr::Setcc { dst, .. } => Some(dst),
            X86Instr::Pop { dst: Operand::Reg(r) } => Some(r),
            _ => None,
        }
    }

    /// The registers this instruction reads, in operand order.
    pub fn uses(&self) -> Vec<Gpr> {
        match *self {
            X86Instr::Mov { dst, src } => {
                let mut v = src.src_regs();
                if let Operand::Mem(m) = dst {
                    v.extend(m.regs());
                }
                v
            }
            X86Instr::Alu { op, dst, src } => {
                let mut v = Vec::new();
                // dst is read unless this is a plain mov-like op; ALU dst
                // is always read (even cmp/test read it).
                match dst {
                    Operand::Reg(r) => v.push(r),
                    Operand::Mem(m) => v.extend(m.regs()),
                    Operand::Imm(_) => {}
                }
                v.extend(src.src_regs());
                let _ = op;
                v
            }
            X86Instr::Lea { addr, .. } => addr.regs(),
            X86Instr::Imul { dst, src } => {
                let mut v = vec![dst];
                v.extend(src.src_regs());
                v
            }
            X86Instr::Shift { dst, .. } | X86Instr::Un { dst, .. } => match dst {
                Operand::Reg(r) => vec![r],
                Operand::Mem(m) => m.regs(),
                Operand::Imm(_) => vec![],
            },
            X86Instr::Movx { src, .. } => src.src_regs(),
            X86Instr::MovStore { src, dst, .. } => {
                let mut v = vec![src];
                v.extend(dst.regs());
                v
            }
            X86Instr::Setcc { dst, .. } => vec![dst], // merges into low byte
            X86Instr::JmpInd { src } => src.src_regs(),
            X86Instr::Push { src } => {
                let mut v = src.src_regs();
                v.push(Gpr::Esp);
                v
            }
            X86Instr::Pop { dst } => {
                let mut v = vec![Gpr::Esp];
                if let Operand::Mem(m) = dst {
                    v.extend(m.regs());
                }
                v
            }
            X86Instr::Pushfd | X86Instr::Popfd | X86Instr::Ret => vec![Gpr::Esp],
            X86Instr::Jcc { .. }
            | X86Instr::Jmp { .. }
            | X86Instr::Call { .. }
            | X86Instr::Halt
            | X86Instr::ChainJmp { .. }
            | X86Instr::Trap => {
                vec![]
            }
        }
    }

    /// The memory operand, if any: (normalized address, width, is_store).
    ///
    /// `lea` has *no* memory operand — it never accesses memory.
    pub fn mem_operand(&self) -> Option<(NormAddr<Gpr>, Width, bool)> {
        match *self {
            X86Instr::Mov { dst: Operand::Mem(m), .. } => Some((m.normalize(), Width::W32, true)),
            X86Instr::Mov { src: Operand::Mem(m), .. } => Some((m.normalize(), Width::W32, false)),
            X86Instr::Alu { dst: Operand::Mem(m), .. }
            | X86Instr::Shift { dst: Operand::Mem(m), .. }
            | X86Instr::Un { dst: Operand::Mem(m), .. } => Some((m.normalize(), Width::W32, true)),
            X86Instr::Alu { src: Operand::Mem(m), .. }
            | X86Instr::Imul { src: Operand::Mem(m), .. } => {
                Some((m.normalize(), Width::W32, false))
            }
            X86Instr::Movx { src: Operand::Mem(m), width, .. } => {
                Some((m.normalize(), width, false))
            }
            X86Instr::MovStore { dst, width, .. } => Some((dst.normalize(), width, true)),
            _ => None,
        }
    }

    /// All memory accesses the instruction performs, in access order:
    /// `(normalized address, width, is_store)`. A read-modify-write ALU
    /// with a memory destination reports *two* accesses (load then
    /// store) — the learner pairs each against a guest access.
    pub fn mem_operands(&self) -> Vec<(NormAddr<Gpr>, Width, bool)> {
        match *self {
            X86Instr::Alu { op, dst: Operand::Mem(m), .. } if !op.is_compare() => {
                vec![(m.normalize(), Width::W32, false), (m.normalize(), Width::W32, true)]
            }
            X86Instr::Shift { dst: Operand::Mem(m), .. }
            | X86Instr::Un { dst: Operand::Mem(m), .. } => {
                vec![(m.normalize(), Width::W32, false), (m.normalize(), Width::W32, true)]
            }
            _ => self.mem_operand().into_iter().collect(),
        }
    }

    /// Immediate data operands (excluding address displacements).
    pub fn immediates(&self) -> Vec<i64> {
        match *self {
            X86Instr::Mov { src: Operand::Imm(v), .. }
            | X86Instr::Alu { src: Operand::Imm(v), .. }
            | X86Instr::Push { src: Operand::Imm(v) } => vec![v as i64],
            X86Instr::Shift { count, .. } => vec![count as i64],
            _ => vec![],
        }
    }

    /// Which EFLAGS the instruction writes, as a mask (CF=1, ZF=2, SF=4,
    /// OF=8).
    ///
    /// Notable quirks preserved from IA-32: `inc`/`dec` leave `CF`
    /// untouched; logical ops clear `CF`/`OF`; `mov`/`lea`/`movx`/`setcc`
    /// touch nothing.
    pub fn flags_written(&self) -> u8 {
        match *self {
            X86Instr::Alu { .. } | X86Instr::Shift { .. } => 0b1111,
            X86Instr::Un { op: UnOp::Neg, .. } => 0b1111,
            X86Instr::Un { op: UnOp::Inc, .. } | X86Instr::Un { op: UnOp::Dec, .. } => 0b1110,
            X86Instr::Un { op: UnOp::Not, .. } => 0,
            X86Instr::Imul { .. } => 0b1001, // CF and OF; ZF/SF preserved in our model
            X86Instr::Popfd => 0b1111,
            _ => 0,
        }
    }

    /// Which EFLAGS the instruction reads (same mask layout).
    pub fn flags_read(&self) -> u8 {
        match *self {
            X86Instr::Alu { op, .. } if op.reads_carry() => 0b0001,
            X86Instr::Setcc { cc, .. } | X86Instr::Jcc { cc, .. } => cc_mask(cc),
            X86Instr::Pushfd => 0b1111,
            _ => 0,
        }
    }

    /// Whether this instruction ends a straight-line sequence.
    pub fn is_block_end(&self) -> bool {
        matches!(
            self,
            X86Instr::Jmp { .. }
                | X86Instr::JmpInd { .. }
                | X86Instr::Ret
                | X86Instr::Call { .. }
                | X86Instr::Halt
                | X86Instr::ChainJmp { .. }
                | X86Instr::Trap
        )
    }

    /// Cost-model classification.
    pub fn kind(&self) -> InstrKind {
        match *self {
            X86Instr::Imul { src, .. } => {
                if src.is_mem() {
                    InstrKind::Load
                } else {
                    InstrKind::Mul
                }
            }
            X86Instr::Mov { dst, src } => {
                if dst.is_mem() {
                    InstrKind::Store
                } else if src.is_mem() {
                    InstrKind::Load
                } else {
                    InstrKind::Alu
                }
            }
            X86Instr::MovStore { .. } => InstrKind::Store,
            X86Instr::Alu { dst, src, .. } => {
                if dst.is_mem() {
                    InstrKind::Store
                } else if src.is_mem() {
                    InstrKind::Load
                } else {
                    InstrKind::Alu
                }
            }
            X86Instr::Movx { src, .. } => {
                if src.is_mem() {
                    InstrKind::Load
                } else {
                    InstrKind::Alu
                }
            }
            X86Instr::Shift { dst, .. } | X86Instr::Un { dst, .. } => {
                if dst.is_mem() {
                    InstrKind::Store
                } else {
                    InstrKind::Alu
                }
            }
            X86Instr::Lea { .. } | X86Instr::Setcc { .. } => InstrKind::Alu,
            X86Instr::Jcc { .. } | X86Instr::Jmp { .. } => InstrKind::Branch,
            X86Instr::JmpInd { .. } => InstrKind::IndirectBranch,
            X86Instr::Call { .. } | X86Instr::Ret | X86Instr::ChainJmp { .. } => InstrKind::CallRet,
            X86Instr::Push { .. } => InstrKind::Store,
            X86Instr::Pop { .. } => InstrKind::Load,
            X86Instr::Pushfd | X86Instr::Popfd => InstrKind::FlagSync,
            X86Instr::Halt | X86Instr::Trap => InstrKind::Branch,
        }
    }

    /// A small stable id of the opcode kind (rule hashing, host side).
    pub fn opcode_id(&self) -> u32 {
        match *self {
            X86Instr::Mov { .. } => 1,
            X86Instr::Alu { op, .. } => 2 + op as u32,
            X86Instr::Lea { .. } => 12,
            X86Instr::Imul { .. } => 13,
            X86Instr::Shift { op, .. } => 14 + op as u32,
            X86Instr::Un { op, .. } => 17 + op as u32,
            X86Instr::Movx { sign, width, .. } => {
                21 + (sign as u32) * 2 + (width == Width::W16) as u32
            }
            X86Instr::MovStore { width, .. } => 25 + (width == Width::W16) as u32,
            X86Instr::Setcc { .. } => 27,
            X86Instr::Jcc { .. } => 28,
            X86Instr::Jmp { .. } => 29,
            X86Instr::JmpInd { .. } => 30,
            X86Instr::Call { .. } => 31,
            X86Instr::Ret => 32,
            X86Instr::Push { .. } => 33,
            X86Instr::Pop { .. } => 34,
            X86Instr::Pushfd => 35,
            X86Instr::Popfd => 36,
            X86Instr::Halt => 37,
            X86Instr::ChainJmp { .. } => 38,
            X86Instr::Trap => 39,
        }
    }
}

fn cc_mask(cc: Cc) -> u8 {
    match cc {
        Cc::O | Cc::No => 0b1000,
        Cc::B | Cc::Ae => 0b0001,
        Cc::E | Cc::Ne => 0b0010,
        Cc::Be | Cc::A => 0b0011,
        Cc::S | Cc::Ns => 0b0100,
        Cc::L | Cc::Ge => 0b1100,
        Cc::Le | Cc::G => 0b1110,
    }
}

impl fmt::Display for X86Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            X86Instr::Mov { dst, src } => write!(f, "movl {src}, {dst}"),
            X86Instr::Alu { op, dst, src } => write!(f, "{} {src}, {dst}", op.mnemonic()),
            X86Instr::Lea { dst, addr } => write!(f, "leal {addr}, {dst}"),
            X86Instr::Imul { dst, src } => write!(f, "imull {src}, {dst}"),
            X86Instr::Shift { op, dst, count } => write!(f, "{} ${count}, {dst}", op.mnemonic()),
            X86Instr::Un { op, dst } => write!(f, "{} {dst}", op.mnemonic()),
            X86Instr::Movx { sign, width, dst, src } => {
                let m = match (sign, width) {
                    (false, Width::W8) => "movzbl",
                    (false, _) => "movzwl",
                    (true, Width::W8) => "movsbl",
                    (true, _) => "movswl",
                };
                write!(f, "{m} {src}, {dst}")
            }
            X86Instr::MovStore { width, src, dst } => {
                let m = if width == Width::W8 { "movb" } else { "movw" };
                match (width, src.low8_name()) {
                    (Width::W8, Some(name)) => write!(f, "{m} {name}, {dst}"),
                    _ => write!(f, "{m} {src}, {dst}"),
                }
            }
            X86Instr::Setcc { cc, dst } => match dst.low8_name() {
                Some(name) => write!(f, "set{cc} {name}"),
                None => write!(f, "set{cc} {dst}"),
            },
            X86Instr::Jcc { cc, target } => write!(f, "j{cc} #{target}"),
            X86Instr::Jmp { target } => write!(f, "jmp #{target}"),
            X86Instr::JmpInd { src } => write!(f, "jmp *{src}"),
            X86Instr::Call { target } => write!(f, "call #{target}"),
            X86Instr::Ret => write!(f, "ret"),
            X86Instr::Push { src } => write!(f, "pushl {src}"),
            X86Instr::Pop { dst } => write!(f, "popl {dst}"),
            X86Instr::Pushfd => write!(f, "pushfd"),
            X86Instr::Popfd => write!(f, "popfd"),
            X86Instr::Halt => write!(f, "hlt"),
            X86Instr::ChainJmp { block } => write!(f, "chain @{block}"),
            X86Instr::Trap => write!(f, "trap"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_display() {
        assert_eq!(X86Mem::base(Gpr::Edi).to_string(), "(%edi)");
        assert_eq!(X86Mem::base_disp(Gpr::Esi, 0x34).to_string(), "52(%esi)");
        let m = X86Mem { base: Some(Gpr::Ecx), index: Some((Gpr::Eax, 4)), disp: -4 };
        assert_eq!(m.to_string(), "-4(%ecx,%eax,4)");
        assert_eq!(X86Mem::absolute(0x1000).to_string(), "4096");
    }

    #[test]
    fn instr_display() {
        assert_eq!(X86Instr::alu_rr(AluOp::Add, Gpr::Edx, Gpr::Eax).to_string(), "addl %eax, %edx");
        assert_eq!(X86Instr::alu_ri(AluOp::Sub, Gpr::Edx, 1).to_string(), "subl $1, %edx");
        assert_eq!(
            X86Instr::Movx {
                sign: false,
                width: Width::W8,
                dst: Gpr::Eax,
                src: Operand::Reg(Gpr::Eax)
            }
            .to_string(),
            "movzbl %eax, %eax"
        );
        assert_eq!(X86Instr::Setcc { cc: Cc::E, dst: Gpr::Eax }.to_string(), "sete %al");
        assert_eq!(
            X86Instr::Un { op: UnOp::Inc, dst: Operand::Reg(Gpr::Ecx) }.to_string(),
            "incl %ecx"
        );
        assert_eq!(X86Instr::Jcc { cc: Cc::Ne, target: -5 }.to_string(), "jne #-5");
        assert_eq!(X86Instr::JmpInd { src: Operand::Reg(Gpr::Eax) }.to_string(), "jmp *%eax");
        assert_eq!(
            X86Instr::MovStore { width: Width::W8, src: Gpr::Ecx, dst: X86Mem::base(Gpr::Edi) }
                .to_string(),
            "movb %cl, (%edi)"
        );
    }

    #[test]
    fn defs_and_uses() {
        let i = X86Instr::alu_rr(AluOp::Add, Gpr::Edx, Gpr::Eax);
        assert_eq!(i.def(), Some(Gpr::Edx));
        assert_eq!(i.uses(), vec![Gpr::Edx, Gpr::Eax]);

        let cmp = X86Instr::alu_rr(AluOp::Cmp, Gpr::Edx, Gpr::Eax);
        assert_eq!(cmp.def(), None);

        let lea = X86Instr::Lea {
            dst: Gpr::Ecx,
            addr: X86Mem { base: Some(Gpr::Edx), index: Some((Gpr::Eax, 4)), disp: -4 },
        };
        assert_eq!(lea.def(), Some(Gpr::Ecx));
        assert_eq!(lea.uses(), vec![Gpr::Edx, Gpr::Eax]);

        let st = X86Instr::Mov {
            dst: Operand::Mem(X86Mem::base_disp(Gpr::Esi, 8)),
            src: Operand::Reg(Gpr::Eax),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![Gpr::Eax, Gpr::Esi]);

        let setcc = X86Instr::Setcc { cc: Cc::L, dst: Gpr::Ebx };
        assert_eq!(setcc.def(), Some(Gpr::Ebx));
        assert_eq!(setcc.uses(), vec![Gpr::Ebx]); // byte merge reads dst
    }

    #[test]
    fn mem_operand_excludes_lea() {
        let lea = X86Instr::Lea { dst: Gpr::Ecx, addr: X86Mem::base(Gpr::Eax) };
        assert!(lea.mem_operand().is_none());
        let ld = X86Instr::Mov {
            dst: Operand::Reg(Gpr::Eax),
            src: Operand::Mem(X86Mem::base(Gpr::Edi)),
        };
        let (addr, w, store) = ld.mem_operand().unwrap();
        assert_eq!(addr.base, Some(Gpr::Edi));
        assert_eq!(w, Width::W32);
        assert!(!store);
    }

    #[test]
    fn inc_does_not_write_cf() {
        let inc = X86Instr::Un { op: UnOp::Inc, dst: Operand::Reg(Gpr::Eax) };
        assert_eq!(inc.flags_written() & 0b0001, 0, "inc must not touch CF");
        assert_ne!(inc.flags_written() & 0b1000, 0, "inc writes OF");
        let add = X86Instr::alu_ri(AluOp::Add, Gpr::Eax, 1);
        assert_eq!(add.flags_written(), 0b1111);
    }

    #[test]
    fn flags_read_of_jcc() {
        assert_eq!(X86Instr::Jcc { cc: Cc::E, target: 0 }.flags_read(), 0b0010);
        assert_eq!(X86Instr::Jcc { cc: Cc::A, target: 0 }.flags_read(), 0b0011);
        assert_eq!(X86Instr::Jcc { cc: Cc::G, target: 0 }.flags_read(), 0b1110);
        assert_eq!(X86Instr::alu_rr(AluOp::Adc, Gpr::Eax, Gpr::Ecx).flags_read(), 0b0001);
    }

    #[test]
    fn kinds_for_cost_model() {
        assert_eq!(X86Instr::mov_rr(Gpr::Eax, Gpr::Ecx).kind(), InstrKind::Alu);
        assert_eq!(
            X86Instr::Mov {
                dst: Operand::Reg(Gpr::Eax),
                src: Operand::Mem(X86Mem::base(Gpr::Edi))
            }
            .kind(),
            InstrKind::Load
        );
        assert_eq!(X86Instr::Push { src: Operand::Reg(Gpr::Eax) }.kind(), InstrKind::Store);
        assert_eq!(X86Instr::Pushfd.kind(), InstrKind::FlagSync);
        assert_eq!(X86Instr::Ret.kind(), InstrKind::CallRet);
        assert_eq!(
            X86Instr::Imul { dst: Gpr::Eax, src: Operand::Reg(Gpr::Ecx) }.kind(),
            InstrKind::Mul
        );
    }

    #[test]
    fn opcode_ids_distinct() {
        use std::collections::HashSet;
        let samples = vec![
            X86Instr::mov_rr(Gpr::Eax, Gpr::Ecx),
            X86Instr::alu_rr(AluOp::Add, Gpr::Eax, Gpr::Ecx),
            X86Instr::alu_rr(AluOp::Cmp, Gpr::Eax, Gpr::Ecx),
            X86Instr::Lea { dst: Gpr::Eax, addr: X86Mem::base(Gpr::Ecx) },
            X86Instr::Imul { dst: Gpr::Eax, src: Operand::Reg(Gpr::Ecx) },
            X86Instr::Shift { op: ShiftOp::Shl, dst: Operand::Reg(Gpr::Eax), count: 1 },
            X86Instr::Un { op: UnOp::Neg, dst: Operand::Reg(Gpr::Eax) },
            X86Instr::Movx {
                sign: true,
                width: Width::W8,
                dst: Gpr::Eax,
                src: Operand::Reg(Gpr::Eax),
            },
            X86Instr::Setcc { cc: Cc::E, dst: Gpr::Eax },
            X86Instr::Jcc { cc: Cc::E, target: 0 },
            X86Instr::Jmp { target: 0 },
            X86Instr::Ret,
            X86Instr::Pushfd,
            X86Instr::Halt,
        ];
        let ids: HashSet<u32> = samples.iter().map(|i| i.opcode_id()).collect();
        assert_eq!(ids.len(), samples.len());
    }
}
