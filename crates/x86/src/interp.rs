//! Concrete interpreter for the x86 subset.
//!
//! [`X86State`] executes single instructions; [`run_seq`] executes a
//! straight-line-with-branches instruction sequence (a translated block,
//! a learned-rule snippet, or a whole program image assembled as one
//! sequence), with the QEMU-like dispatcher convention: a top-level
//! `ret` ends execution and `%eax` carries the next guest PC.

use crate::flags::EFlags;
use crate::insn::{Operand, X86Instr, X86Mem};
use crate::reg::Gpr;
use crate::semantics::{eval_alu, eval_imul, eval_shift, eval_un};
use ldbt_isa::{bits, CostModel, ExecStats, Memory, Width};

/// The host-visible architectural state.
#[derive(Debug, Clone, Default)]
pub struct X86State {
    /// The 8 general registers, in encoding order.
    pub regs: [u32; 8],
    /// The modeled EFLAGS.
    pub flags: EFlags,
    /// Host memory (shared with the guest image in the DBT).
    pub mem: Memory,
    /// Optional upper bound of the guest-addressable region: a
    /// register-relative memory access at or above it traps with
    /// [`TrapCause::Mem`] *before* any side effect. Absolute operands
    /// (env slots, spill area) and the host stack traffic of
    /// `push`/`pop`/`pushfd`/`popfd`/`call`/`ret` are exempt — in
    /// translated code those are host-private by construction, while
    /// every guest load/store goes through a register-based operand.
    /// `None` (the default) disables the check entirely.
    pub guest_limit: Option<u32>,
}

/// Why a guest trap was raised (see [`X86Event::Trap`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapCause {
    /// A `trap` sentinel instruction executed (guest `svc #n`, n ≠ 0,
    /// or an undecodable guest word); `%eax` carries the guest PC.
    Insn,
    /// A guest memory access at or beyond the configured guest limit;
    /// the payload is the faulting effective address.
    Mem(u32),
}

/// Control-flow outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum X86Event {
    /// Fall through.
    Next,
    /// Relative jump taken (instruction-relative offset).
    Jump(i32),
    /// Relative call taken.
    Call(i32),
    /// Indirect jump to an absolute value.
    JumpInd(u32),
    /// `ret` executed.
    Return,
    /// `hlt` executed.
    Halt,
    /// A chained direct jump to another translated block (the payload is
    /// the engine's code cache id).
    Chain(u32),
    /// The instruction was malformed (e.g. writes an immediate operand);
    /// execution cannot continue. Surfaced instead of panicking so a
    /// corrupted translation faults the engine rather than the process.
    Fault,
    /// A guest trap: the `trap` sentinel executed, or a guest memory
    /// access crossed the configured [`X86State::guest_limit`]. Unlike
    /// [`X86Event::Fault`] (a malformed *translation*), a trap is a
    /// well-defined *guest* outcome the engine surfaces to its caller.
    Trap(TrapCause),
}

impl X86State {
    /// A zeroed state.
    pub fn new() -> Self {
        X86State::default()
    }

    /// Read a register.
    pub fn reg(&self, r: Gpr) -> u32 {
        self.regs[r.index()]
    }

    /// Write a register.
    pub fn set_reg(&mut self, r: Gpr, v: u32) {
        self.regs[r.index()] = v;
    }

    /// The effective address of a memory operand.
    pub fn effective_addr(&self, m: &X86Mem) -> u32 {
        let mut a = m.disp as u32;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.reg(b));
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.reg(i).wrapping_mul(s as u32));
        }
        a
    }

    fn read_operand(&self, op: &Operand) -> u32 {
        match op {
            Operand::Reg(r) => self.reg(*r),
            Operand::Imm(v) => *v as u32,
            Operand::Mem(m) => self.mem.read(self.effective_addr(m), Width::W32),
        }
    }

    /// Write an operand; `false` means the operand is not writable (an
    /// immediate destination in a malformed instruction).
    fn write_operand(&mut self, op: &Operand, v: u32) -> bool {
        match op {
            Operand::Reg(r) => self.set_reg(*r, v),
            Operand::Mem(m) => {
                let a = self.effective_addr(m);
                self.mem.write(a, v, Width::W32);
            }
            Operand::Imm(_) => return false,
        }
        true
    }

    fn push(&mut self, v: u32) {
        let sp = self.reg(Gpr::Esp).wrapping_sub(4);
        self.set_reg(Gpr::Esp, sp);
        self.mem.write(sp, v, Width::W32);
    }

    fn pop(&mut self) -> u32 {
        let sp = self.reg(Gpr::Esp);
        let v = self.mem.read(sp, Width::W32);
        self.set_reg(Gpr::Esp, sp.wrapping_add(4));
        v
    }

    /// The faulting effective address of `instr`, if any of its
    /// register-relative memory operands lands at or beyond the guest
    /// limit. Checked *before* execution so a trapping instruction has
    /// no side effects. Absolute operands (`base`/`index` both absent:
    /// env and spill slots) and the implicit `%esp` traffic of stack
    /// instructions are exempt; see [`X86State::guest_limit`].
    fn guest_mem_violation(&self, instr: &X86Instr) -> Option<u32> {
        let limit = self.guest_limit?;
        let check = |m: &X86Mem| {
            if m.base.is_none() && m.index.is_none() {
                return None;
            }
            let a = self.effective_addr(m);
            (a >= limit).then_some(a)
        };
        match instr {
            X86Instr::Mov { dst, src } | X86Instr::Alu { dst, src, .. } => {
                dst.mem().and_then(check).or_else(|| src.mem().and_then(check))
            }
            X86Instr::Shift { dst, .. } | X86Instr::Un { dst, .. } | X86Instr::Pop { dst } => {
                dst.mem().and_then(check)
            }
            X86Instr::Imul { src, .. }
            | X86Instr::Movx { src, .. }
            | X86Instr::JmpInd { src }
            | X86Instr::Push { src } => src.mem().and_then(check),
            X86Instr::MovStore { dst, .. } => check(dst),
            _ => None,
        }
    }

    /// Execute one instruction.
    pub fn exec(&mut self, instr: &X86Instr) -> X86Event {
        if let Some(addr) = self.guest_mem_violation(instr) {
            return X86Event::Trap(TrapCause::Mem(addr));
        }
        match *instr {
            X86Instr::Mov { dst, src } => {
                let v = self.read_operand(&src);
                if !self.write_operand(&dst, v) {
                    return X86Event::Fault;
                }
            }
            X86Instr::Alu { op, dst, src } => {
                let a = self.read_operand(&dst);
                let b = self.read_operand(&src);
                let r = eval_alu(op, a, b, self.flags);
                self.flags = r.flags;
                if !op.is_compare() && !self.write_operand(&dst, r.value) {
                    return X86Event::Fault;
                }
            }
            X86Instr::Lea { dst, addr } => {
                let a = self.effective_addr(&addr);
                self.set_reg(dst, a);
            }
            X86Instr::Imul { dst, src } => {
                let r = eval_imul(self.reg(dst), self.read_operand(&src), self.flags);
                self.flags = r.flags;
                self.set_reg(dst, r.value);
            }
            X86Instr::Shift { op, dst, count } => {
                let r = eval_shift(op, self.read_operand(&dst), count, self.flags);
                self.flags = r.flags;
                if !self.write_operand(&dst, r.value) {
                    return X86Event::Fault;
                }
            }
            X86Instr::Un { op, dst } => {
                let r = eval_un(op, self.read_operand(&dst), self.flags);
                self.flags = r.flags;
                if !self.write_operand(&dst, r.value) {
                    return X86Event::Fault;
                }
            }
            X86Instr::Movx { sign, width, dst, src } => {
                let raw = match src {
                    Operand::Reg(r) => self.reg(r) & width.mask() as u32,
                    Operand::Mem(m) => self.mem.read(self.effective_addr(&m), width),
                    Operand::Imm(v) => v as u32 & width.mask() as u32,
                };
                let v = if sign { bits::sign_extend(raw as u64, width) as u32 } else { raw };
                self.set_reg(dst, v);
            }
            X86Instr::MovStore { width, src, dst } => {
                let a = self.effective_addr(&dst);
                self.mem.write(a, self.reg(src), width);
            }
            X86Instr::Setcc { cc, dst } => {
                let bit = cc.eval(self.flags) as u32;
                let old = self.reg(dst);
                self.set_reg(dst, (old & !0xff) | bit);
            }
            X86Instr::Jcc { cc, target } => {
                if cc.eval(self.flags) {
                    return X86Event::Jump(target);
                }
            }
            X86Instr::Jmp { target } => return X86Event::Jump(target),
            X86Instr::JmpInd { src } => return X86Event::JumpInd(self.read_operand(&src)),
            X86Instr::Call { target } => return X86Event::Call(target),
            X86Instr::Ret => return X86Event::Return,
            X86Instr::Push { src } => {
                let v = self.read_operand(&src);
                self.push(v);
            }
            X86Instr::Pop { dst } => {
                let v = self.pop();
                if !self.write_operand(&dst, v) {
                    return X86Event::Fault;
                }
            }
            X86Instr::Pushfd => {
                let w = self.flags.to_word();
                self.push(w);
            }
            X86Instr::Popfd => {
                let w = self.pop();
                self.flags = EFlags::from_word(w);
            }
            X86Instr::Halt => return X86Event::Halt,
            X86Instr::ChainJmp { block } => return X86Event::Chain(block),
            X86Instr::Trap => return X86Event::Trap(TrapCause::Insn),
        }
        X86Event::Next
    }
}

/// Why [`run_seq`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqExit {
    /// A top-level `ret` executed; by the dispatcher convention `%eax`
    /// holds the next guest PC.
    Returned,
    /// `hlt` executed.
    Halted,
    /// An indirect jump left the sequence.
    JumpedOut(u32),
    /// A chained direct jump into another translated block: execution
    /// continues at instruction 0 of the code cache entry with this id,
    /// without a dispatcher round trip (block chaining).
    Chained(u32),
    /// The fuel budget was exhausted.
    OutOfFuel,
    /// Control fell off the end or jumped outside the sequence.
    FellThrough,
    /// A malformed instruction faulted (see [`X86Event::Fault`]).
    Faulted,
    /// A guest trap was raised (see [`X86Event::Trap`]).
    Trapped(TrapCause),
}

/// Execute an instruction sequence from index 0.
///
/// Calls within the sequence push their return index on the emulated
/// stack; a `ret` that does not match a prior call ends the run with
/// [`SeqExit::Returned`]. Dynamic instruction counts and cycle costs are
/// accumulated into `stats`.
pub fn run_seq(
    state: &mut X86State,
    instrs: &[X86Instr],
    fuel: u64,
    model: &CostModel,
    stats: &mut ExecStats,
) -> SeqExit {
    let mut ip: i64 = 0;
    let mut depth = 0usize;
    for _ in 0..fuel {
        let Some(instr) = usize::try_from(ip).ok().and_then(|i| instrs.get(i)) else {
            return SeqExit::FellThrough;
        };
        stats.record(instr.kind(), model);
        match state.exec(instr) {
            X86Event::Next => ip += 1,
            X86Event::Jump(off) => ip += 1 + off as i64,
            X86Event::Call(off) => {
                state.push((ip + 1) as u32);
                depth += 1;
                ip += 1 + off as i64;
            }
            X86Event::Return => {
                if depth == 0 {
                    return SeqExit::Returned;
                }
                depth -= 1;
                ip = state.pop() as i64;
            }
            X86Event::JumpInd(addr) => return SeqExit::JumpedOut(addr),
            X86Event::Chain(block) => return SeqExit::Chained(block),
            X86Event::Halt => return SeqExit::Halted,
            X86Event::Fault => return SeqExit::Faulted,
            X86Event::Trap(cause) => return SeqExit::Trapped(cause),
        }
    }
    SeqExit::OutOfFuel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Cc;
    use crate::insn::AluOp;

    fn run(instrs: &[X86Instr], setup: impl FnOnce(&mut X86State)) -> (X86State, SeqExit) {
        let mut st = X86State::new();
        st.set_reg(Gpr::Esp, 0x20_0000);
        setup(&mut st);
        let mut stats = ExecStats::new();
        let exit = run_seq(&mut st, instrs, 10_000, &CostModel::default(), &mut stats);
        (st, exit)
    }

    #[test]
    fn lea_computes_address_without_memory_access() {
        let (st, exit) = run(
            &[
                X86Instr::Lea {
                    dst: Gpr::Edx,
                    addr: X86Mem { base: Some(Gpr::Edx), index: Some((Gpr::Eax, 4)), disp: -4 },
                },
                X86Instr::Ret,
            ],
            |st| {
                st.set_reg(Gpr::Edx, 100);
                st.set_reg(Gpr::Eax, 3);
            },
        );
        assert_eq!(exit, SeqExit::Returned);
        assert_eq!(st.reg(Gpr::Edx), 108);
    }

    #[test]
    fn alu_with_memory_source() {
        let (st, _) = run(
            &[
                X86Instr::Alu {
                    op: AluOp::Add,
                    dst: Operand::Reg(Gpr::Eax),
                    src: Operand::Mem(X86Mem::base_disp(Gpr::Esi, 8)),
                },
                X86Instr::Ret,
            ],
            |st| {
                st.set_reg(Gpr::Esi, 0x1000);
                st.set_reg(Gpr::Eax, 5);
                st.mem.write(0x1008, 37, Width::W32);
            },
        );
        assert_eq!(st.reg(Gpr::Eax), 42);
    }

    #[test]
    fn conditional_branch_loop() {
        // ecx = 5; eax = 0; loop { eax += ecx; ecx -= 1 } until zf
        let prog = [
            X86Instr::alu_rr(AluOp::Add, Gpr::Eax, Gpr::Ecx),
            X86Instr::alu_ri(AluOp::Sub, Gpr::Ecx, 1),
            X86Instr::Jcc { cc: Cc::Ne, target: -3 },
            X86Instr::Ret,
        ];
        let (st, exit) = run(&prog, |st| st.set_reg(Gpr::Ecx, 5));
        assert_eq!(exit, SeqExit::Returned);
        assert_eq!(st.reg(Gpr::Eax), 15);
    }

    #[test]
    fn push_pop_and_stack_direction() {
        let (st, _) = run(
            &[
                X86Instr::Push { src: Operand::Imm(11) },
                X86Instr::Push { src: Operand::Reg(Gpr::Ebx) },
                X86Instr::Pop { dst: Operand::Reg(Gpr::Ecx) },
                X86Instr::Pop { dst: Operand::Reg(Gpr::Edx) },
                X86Instr::Ret,
            ],
            |st| st.set_reg(Gpr::Ebx, 22),
        );
        assert_eq!(st.reg(Gpr::Ecx), 22);
        assert_eq!(st.reg(Gpr::Edx), 11);
        assert_eq!(st.reg(Gpr::Esp), 0x20_0000);
    }

    #[test]
    fn pushfd_popfd_roundtrip() {
        let (st, _) = run(
            &[
                X86Instr::alu_ri(AluOp::Cmp, Gpr::Eax, 1), // sets CF (0 < 1), SF
                X86Instr::Pushfd,
                X86Instr::alu_rr(AluOp::Xor, Gpr::Ebx, Gpr::Ebx), // clobbers flags
                X86Instr::Popfd,
                X86Instr::Setcc { cc: Cc::B, dst: Gpr::Edx },
                X86Instr::Ret,
            ],
            |_| {},
        );
        assert_eq!(st.reg(Gpr::Edx) & 0xff, 1, "CF restored by popfd");
    }

    #[test]
    fn setcc_preserves_upper_bytes() {
        let (st, _) = run(
            &[
                X86Instr::alu_rr(AluOp::Cmp, Gpr::Eax, Gpr::Eax), // ZF
                X86Instr::Setcc { cc: Cc::E, dst: Gpr::Ecx },
                X86Instr::Ret,
            ],
            |st| st.set_reg(Gpr::Ecx, 0xdead_be00),
        );
        assert_eq!(st.reg(Gpr::Ecx), 0xdead_be01);
    }

    #[test]
    fn movx_from_register_low_bits() {
        let (st, _) = run(
            &[
                X86Instr::Movx {
                    sign: true,
                    width: Width::W8,
                    dst: Gpr::Eax,
                    src: Operand::Reg(Gpr::Ebx),
                },
                X86Instr::Movx {
                    sign: false,
                    width: Width::W16,
                    dst: Gpr::Ecx,
                    src: Operand::Reg(Gpr::Ebx),
                },
                X86Instr::Ret,
            ],
            |st| st.set_reg(Gpr::Ebx, 0x1234_8899),
        );
        assert_eq!(st.reg(Gpr::Eax), 0xffff_ff99);
        assert_eq!(st.reg(Gpr::Ecx), 0x8899);
    }

    #[test]
    fn movstore_writes_low_bits() {
        let (st, _) = run(
            &[
                X86Instr::MovStore { width: Width::W8, src: Gpr::Ecx, dst: X86Mem::base(Gpr::Edi) },
                X86Instr::Ret,
            ],
            |st| {
                st.set_reg(Gpr::Edi, 0x3000);
                st.set_reg(Gpr::Ecx, 0xaabb_ccdd);
                st.mem.write(0x3000, 0xffff_ffff, Width::W32);
            },
        );
        assert_eq!(st.mem.read(0x3000, Width::W32), 0xffff_ffdd);
    }

    #[test]
    fn call_and_ret_within_sequence() {
        let prog = [
            X86Instr::Call { target: 1 },    // call the +2 "function"
            X86Instr::Ret,                   // top-level return
            X86Instr::mov_imm(Gpr::Eax, 99), // function body
            X86Instr::Ret,                   // return from call
        ];
        let (st, exit) = run(&prog, |_| {});
        assert_eq!(exit, SeqExit::Returned);
        assert_eq!(st.reg(Gpr::Eax), 99);
    }

    #[test]
    fn stats_and_fuel() {
        let mut st = X86State::new();
        st.set_reg(Gpr::Esp, 0x20_0000);
        let mut stats = ExecStats::new();
        let prog = [X86Instr::Jmp { target: -1 }];
        let exit = run_seq(&mut st, &prog, 7, &CostModel::default(), &mut stats);
        assert_eq!(exit, SeqExit::OutOfFuel);
        assert_eq!(stats.host_instrs, 7);
        assert_eq!(stats.exec_cycles, 7 * CostModel::default().branch);
    }

    #[test]
    fn fell_through_detection() {
        let (_, exit) = run(&[X86Instr::mov_imm(Gpr::Eax, 1)], |_| {});
        assert_eq!(exit, SeqExit::FellThrough);
        let (_, exit) = run(&[X86Instr::Jmp { target: 5 }], |_| {});
        assert_eq!(exit, SeqExit::FellThrough);
    }

    #[test]
    fn malformed_write_to_immediate_faults_instead_of_panicking() {
        let (_, exit) =
            run(&[X86Instr::Mov { dst: Operand::Imm(3), src: Operand::Reg(Gpr::Eax) }], |_| {});
        assert_eq!(exit, SeqExit::Faulted);
        let (_, exit) = run(&[X86Instr::Pop { dst: Operand::Imm(0) }], |_| {});
        assert_eq!(exit, SeqExit::Faulted);
    }

    #[test]
    fn trap_sentinel_exits_with_insn_cause() {
        let (st, exit) = run(&[X86Instr::mov_imm(Gpr::Eax, 0x1_0040), X86Instr::Trap], |_| {});
        assert_eq!(exit, SeqExit::Trapped(TrapCause::Insn));
        assert_eq!(st.reg(Gpr::Eax), 0x1_0040, "eax carries the trapping pc");
    }

    #[test]
    fn guest_limit_traps_before_any_side_effect() {
        let limit = 0x10_0000;
        // A store at the limit: must trap and not write.
        let (st, exit) = run(
            &[
                X86Instr::Mov {
                    dst: Operand::Mem(X86Mem::base(Gpr::Edi)),
                    src: Operand::Imm(0x55),
                },
                X86Instr::Ret,
            ],
            |st| {
                st.guest_limit = Some(limit);
                st.set_reg(Gpr::Edi, limit);
            },
        );
        assert_eq!(exit, SeqExit::Trapped(TrapCause::Mem(limit)));
        assert_eq!(st.mem.read(limit, Width::W32), 0, "no side effect");
        // A load just below the limit is fine.
        let (_, exit) = run(
            &[
                X86Instr::Mov {
                    dst: Operand::Reg(Gpr::Eax),
                    src: Operand::Mem(X86Mem::base(Gpr::Edi)),
                },
                X86Instr::Ret,
            ],
            |st| {
                st.guest_limit = Some(limit);
                st.set_reg(Gpr::Edi, limit - 4);
            },
        );
        assert_eq!(exit, SeqExit::Returned);
        // An indexed sub-word store above the limit traps too.
        let (_, exit) = run(
            &[
                X86Instr::MovStore {
                    width: Width::W8,
                    src: Gpr::Ecx,
                    dst: X86Mem { base: None, index: Some((Gpr::Ebx, 2)), disp: 4 },
                },
                X86Instr::Ret,
            ],
            |st| {
                st.guest_limit = Some(limit);
                st.set_reg(Gpr::Ebx, limit / 2);
            },
        );
        assert_eq!(exit, SeqExit::Trapped(TrapCause::Mem(limit + 4)));
    }

    #[test]
    fn guest_limit_exempts_absolute_and_stack_traffic() {
        let limit = 0x10_0000;
        // Absolute operands (env slots) above the limit are exempt, and
        // so is push/pop/pushfd/popfd %esp traffic.
        let (st, exit) = run(
            &[
                X86Instr::Mov {
                    dst: Operand::Mem(X86Mem::absolute(0x00f0_0000)),
                    src: Operand::Imm(7),
                },
                X86Instr::Push { src: Operand::Imm(3) },
                X86Instr::Pushfd,
                X86Instr::Popfd,
                X86Instr::Pop { dst: Operand::Reg(Gpr::Ecx) },
                X86Instr::Ret,
            ],
            |st| {
                st.guest_limit = Some(limit);
                st.set_reg(Gpr::Esp, 0x20_0000); // host stack above the limit
            },
        );
        assert_eq!(exit, SeqExit::Returned);
        assert_eq!(st.reg(Gpr::Ecx), 3);
        assert_eq!(st.mem.read(0x00f0_0000, Width::W32), 7);
    }

    #[test]
    fn halt_and_indirect_exit() {
        let (_, exit) = run(&[X86Instr::Halt], |_| {});
        assert_eq!(exit, SeqExit::Halted);
        let (_, exit) = run(&[X86Instr::JmpInd { src: Operand::Reg(Gpr::Eax) }], |st| {
            st.set_reg(Gpr::Eax, 0xbeef)
        });
        assert_eq!(exit, SeqExit::JumpedOut(0xbeef));
    }
}
