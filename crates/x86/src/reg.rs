//! x86 general-purpose registers.

use std::fmt;

/// One of the 8 IA-32 general registers, in ModRM encoding order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Gpr {
    Eax,
    Ecx,
    Edx,
    Ebx,
    Esp,
    Ebp,
    Esi,
    Edi,
}

impl Gpr {
    /// All 8 registers in encoding order.
    pub const ALL: [Gpr; 8] =
        [Gpr::Eax, Gpr::Ecx, Gpr::Edx, Gpr::Ebx, Gpr::Esp, Gpr::Ebp, Gpr::Esi, Gpr::Edi];

    /// The 3-bit ModRM encoding of the register.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The register with the given encoding.
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    pub fn from_index(index: usize) -> Gpr {
        Self::ALL[index]
    }

    /// The AT&T name of the low byte (`%al`, `%cl`, …) where it exists.
    ///
    /// Only the first four registers have addressable low bytes in IA-32.
    pub fn low8_name(self) -> Option<&'static str> {
        match self {
            Gpr::Eax => Some("%al"),
            Gpr::Ecx => Some("%cl"),
            Gpr::Edx => Some("%dl"),
            Gpr::Ebx => Some("%bl"),
            _ => None,
        }
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Gpr::Eax => "%eax",
            Gpr::Ecx => "%ecx",
            Gpr::Edx => "%edx",
            Gpr::Ebx => "%ebx",
            Gpr::Esp => "%esp",
            Gpr::Ebp => "%ebp",
            Gpr::Esi => "%esi",
            Gpr::Edi => "%edi",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_order_matches_ia32() {
        assert_eq!(Gpr::Eax.index(), 0);
        assert_eq!(Gpr::Ecx.index(), 1);
        assert_eq!(Gpr::Esp.index(), 4);
        assert_eq!(Gpr::Edi.index(), 7);
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(Gpr::from_index(i), *r);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Gpr::Eax.to_string(), "%eax");
        assert_eq!(Gpr::Ebp.to_string(), "%ebp");
    }

    #[test]
    fn low_bytes() {
        assert_eq!(Gpr::Eax.low8_name(), Some("%al"));
        assert_eq!(Gpr::Esi.low8_name(), None);
    }
}
