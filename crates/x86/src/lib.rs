#![forbid(unsafe_code)]
//! The host instruction set: a 32-bit x86-flavored CISC ISA.
//!
//! This crate models the host side of the paper's ARM→x86 translation
//! pipeline as a faithful subset of IA-32:
//!
//! * 8 general registers with x86 roles (`%esp` is the hardware stack),
//! * EFLAGS (`CF`/`ZF`/`SF`/`OF`) with the real quirks the paper leans on
//!   — `CF` is a *borrow* on subtraction (the inverse of ARM `C`), and
//!   `inc`/`dec` do not touch `CF` (paper §5's `adds`→`incl` example),
//! * rich memory operands `disp(base, index, scale)` usable directly in
//!   ALU instructions, plus `lea` for address arithmetic (the paper's
//!   flagship many-to-one rule target),
//! * scale values restricted to 1/2/4/8 — the "host ISA specific
//!   constraint" of paper §5,
//! * a variable-length binary encoder/decoder with ModRM/SIB bytes.
//!
//! The [`interp`] module executes host instruction sequences and doubles
//! as the DBT's execution substrate (translated code runs on it, and the
//! dispatcher convention is QEMU-like: a block returns the next guest PC
//! in `%eax`).
//!
//! # Example
//!
//! ```
//! use ldbt_x86::{Gpr, X86Instr, X86Mem};
//!
//! // leal -4(%edx,%eax,4), %ecx
//! let i = X86Instr::Lea {
//!     dst: Gpr::Ecx,
//!     addr: X86Mem { base: Some(Gpr::Edx), index: Some((Gpr::Eax, 4)), disp: -4 },
//! };
//! assert_eq!(i.to_string(), "leal -4(%edx,%eax,4), %ecx");
//! let bytes = ldbt_x86::encode::encode(&i).unwrap();
//! let (decoded, len) = ldbt_x86::encode::decode(&bytes).unwrap();
//! assert_eq!(decoded, i);
//! assert_eq!(len, bytes.len());
//! ```

pub mod cc;
pub mod encode;
pub mod flags;
pub mod insn;
pub mod interp;
pub mod reg;
pub mod semantics;

pub use cc::Cc;
pub use flags::EFlags;
pub use insn::{AluOp, Operand, ShiftOp, UnOp, X86Instr, X86Mem};
pub use interp::{TrapCause, X86Event, X86State};
pub use reg::Gpr;
