//! The modeled EFLAGS subset.

use std::fmt;

/// The x86 status flags modeled by this crate: `CF`, `ZF`, `SF`, `OF`.
///
/// Polarity note (central to the paper's condition-code emulation): after
/// a subtraction, x86 `CF` records a *borrow*, while ARM `C` records *no
/// borrow* — so ARM `cs` maps to x86 `ae`, not `b`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct EFlags {
    /// Carry flag (borrow on subtraction).
    pub cf: bool,
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Signed-overflow flag.
    pub of: bool,
}

impl EFlags {
    /// All flags clear.
    pub fn new() -> Self {
        EFlags::default()
    }

    /// Set `zf`/`sf` from a 32-bit result, leaving `cf`/`of` intact.
    pub fn set_zs(&mut self, result: u32) {
        self.zf = result == 0;
        self.sf = (result >> 31) != 0;
    }

    /// Pack into the low bits of a word in EFLAGS bit positions
    /// (CF=bit 0, ZF=bit 6, SF=bit 7, OF=bit 11), as `pushfd` would.
    pub fn to_word(self) -> u32 {
        (self.cf as u32) | (self.zf as u32) << 6 | (self.sf as u32) << 7 | (self.of as u32) << 11
    }

    /// Unpack from EFLAGS bit positions.
    pub fn from_word(word: u32) -> Self {
        EFlags {
            cf: word & 1 != 0,
            zf: word & (1 << 6) != 0,
            sf: word & (1 << 7) != 0,
            of: word & (1 << 11) != 0,
        }
    }
}

impl fmt::Display for EFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.cf { 'C' } else { 'c' },
            if self.zf { 'Z' } else { 'z' },
            if self.sf { 'S' } else { 's' },
            if self.of { 'O' } else { 'o' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        for bits in 0..16u32 {
            let f = EFlags {
                cf: bits & 1 != 0,
                zf: bits & 2 != 0,
                sf: bits & 4 != 0,
                of: bits & 8 != 0,
            };
            assert_eq!(EFlags::from_word(f.to_word()), f);
        }
    }

    #[test]
    fn word_positions_match_eflags() {
        let f = EFlags { cf: true, zf: true, sf: false, of: true };
        assert_eq!(f.to_word(), 1 | (1 << 6) | (1 << 11));
    }

    #[test]
    fn set_zs() {
        let mut f = EFlags { cf: true, of: true, ..EFlags::new() };
        f.set_zs(0);
        assert!(f.zf && !f.sf && f.cf && f.of);
        f.set_zs(0x8000_0000);
        assert!(!f.zf && f.sf);
    }

    #[test]
    fn display() {
        assert_eq!(EFlags::new().to_string(), "czso");
    }
}
