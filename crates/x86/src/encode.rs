//! Variable-length binary encoding/decoding for the x86 subset.
//!
//! Real IA-32 opcodes, ModRM/SIB addressing bytes, and disp8/disp32
//! compression are used. The encoder enforces the architectural
//! constraints paper §5 calls "host ISA specific constraints":
//!
//! * SIB scale must be 1, 2, 4 or 8,
//! * `%esp` can never be an index register,
//! * byte-register forms (`setcc`, `movb`, 8-bit `movzx` from a register)
//!   require a byte-addressable register (`%eax`–`%ebx`).
//!
//! Control-flow note: in [`X86Instr`] branch targets are
//! *instruction-relative*. [`assemble`] lays out a sequence and converts
//! them to byte displacements; [`disassemble`] converts back. The
//! low-level [`encode`]/[`decode`] pair treats the target field as a raw
//! byte displacement and is primarily used by those two.

use crate::cc::Cc;
use crate::insn::{AluOp, Operand, ShiftOp, UnOp, X86Instr, X86Mem};
use crate::reg::Gpr;
use ldbt_isa::Width;
use std::fmt;

/// Error produced when an instruction cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeX86Error {
    /// SIB scale not in {1, 2, 4, 8}.
    BadScale(u8),
    /// `%esp` used as an index register.
    EspIndex,
    /// A byte-register form used a register without a low byte.
    NotByteAddressable(Gpr),
    /// Memory-to-memory operand combination.
    TwoMemoryOperands,
    /// Operand combination not representable (e.g. immediate destination).
    BadOperands(&'static str),
    /// Shift count outside 1–31.
    BadShiftCount(u8),
    /// A branch target that does not fit in rel32 after layout.
    BranchLayout,
}

impl fmt::Display for EncodeX86Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeX86Error::BadScale(s) => write!(f, "scale {s} not in {{1,2,4,8}}"),
            EncodeX86Error::EspIndex => write!(f, "%esp cannot be an index register"),
            EncodeX86Error::NotByteAddressable(r) => {
                write!(f, "{r} has no byte form")
            }
            EncodeX86Error::TwoMemoryOperands => write!(f, "two memory operands"),
            EncodeX86Error::BadOperands(why) => write!(f, "bad operands: {why}"),
            EncodeX86Error::BadShiftCount(c) => write!(f, "shift count {c} outside 1..=31"),
            EncodeX86Error::BranchLayout => write!(f, "branch target out of range"),
        }
    }
}

impl std::error::Error for EncodeX86Error {}

/// Error produced when bytes do not decode to a modeled instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeX86Error {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for DecodeX86Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode at +{}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for DecodeX86Error {}

fn check_mem(m: &X86Mem) -> Result<(), EncodeX86Error> {
    if let Some((idx, scale)) = m.index {
        if !matches!(scale, 1 | 2 | 4 | 8) {
            return Err(EncodeX86Error::BadScale(scale));
        }
        if idx == Gpr::Esp {
            return Err(EncodeX86Error::EspIndex);
        }
    }
    Ok(())
}

fn byte_reg(r: Gpr) -> Result<u8, EncodeX86Error> {
    if r.index() < 4 {
        Ok(r.index() as u8)
    } else {
        Err(EncodeX86Error::NotByteAddressable(r))
    }
}

/// Emit a ModRM (+ optional SIB + displacement) for `reg` field `reg` and
/// an r/m operand that is either a register or memory.
fn modrm(out: &mut Vec<u8>, reg: u8, rm: &RmOperand) -> Result<(), EncodeX86Error> {
    match rm {
        RmOperand::Reg(r) => out.push(0xc0 | reg << 3 | r.index() as u8),
        RmOperand::Mem(m) => {
            check_mem(m)?;
            let scale_bits = |s: u8| match s {
                1 => 0u8,
                2 => 1,
                4 => 2,
                _ => 3,
            };
            let (disp_mode, disp_bytes): (u8, usize) = match (m.base, m.disp) {
                (None, _) => (0, 4),
                (Some(Gpr::Ebp), 0) => (1, 1), // (ebp) needs disp8 0
                (Some(_), 0) => (0, 0),
                (Some(_), d) if (-128..=127).contains(&d) => (1, 1),
                (Some(_), _) => (2, 4),
            };
            match (m.base, m.index) {
                (Some(base), None) if base != Gpr::Esp => {
                    out.push(disp_mode << 6 | reg << 3 | base.index() as u8);
                }
                (None, None) => {
                    // disp32 absolute: mod=00 rm=101.
                    out.push(reg << 3 | 0b101);
                }
                (base, index) => {
                    // SIB form (also required for base == %esp).
                    let mode = if base.is_none() { 0 } else { disp_mode };
                    out.push(mode << 6 | reg << 3 | 0b100);
                    let ss = index.map(|(_, s)| scale_bits(s)).unwrap_or(0);
                    let idx = index.map(|(r, _)| r.index() as u8).unwrap_or(0b100);
                    let b = base.map(|r| r.index() as u8).unwrap_or(0b101);
                    out.push(ss << 6 | idx << 3 | b);
                }
            }
            let n = if m.base.is_none() { 4 } else { disp_bytes };
            match n {
                0 => {}
                1 => out.push(m.disp as i8 as u8),
                _ => out.extend_from_slice(&m.disp.to_le_bytes()),
            }
        }
    }
    Ok(())
}

enum RmOperand {
    Reg(Gpr),
    Mem(X86Mem),
}

impl RmOperand {
    fn from_operand(op: &Operand, why: &'static str) -> Result<RmOperand, EncodeX86Error> {
        match op {
            Operand::Reg(r) => Ok(RmOperand::Reg(*r)),
            Operand::Mem(m) => Ok(RmOperand::Mem(*m)),
            Operand::Imm(_) => Err(EncodeX86Error::BadOperands(why)),
        }
    }
}

fn alu_imm_ext(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Or => 1,
        AluOp::Adc => 2,
        AluOp::Sbb => 3,
        AluOp::And => 4,
        AluOp::Sub => 5,
        AluOp::Xor => 6,
        AluOp::Cmp => 7,
        AluOp::Test => 0, // separate opcode F7 /0
    }
}

fn alu_base(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0x00,
        AluOp::Or => 0x08,
        AluOp::Adc => 0x10,
        AluOp::Sbb => 0x18,
        AluOp::And => 0x20,
        AluOp::Sub => 0x28,
        AluOp::Xor => 0x30,
        AluOp::Cmp => 0x38,
        AluOp::Test => 0x84,
    }
}

/// Encode one instruction to bytes.
///
/// For `Jcc`/`Jmp`/`Call` the `target` field is emitted verbatim as the
/// rel32 byte displacement — use [`assemble`] for instruction-relative
/// sequences.
///
/// # Errors
///
/// Returns an [`EncodeX86Error`] for operand combinations or values that
/// IA-32 cannot represent.
pub fn encode(instr: &X86Instr) -> Result<Vec<u8>, EncodeX86Error> {
    let mut out = Vec::with_capacity(6);
    match *instr {
        // A chained jump is an engine-internal patch of a `ret`, not a
        // real IA-32 instruction; it never reaches the binary encoder.
        X86Instr::ChainJmp { .. } => {
            return Err(EncodeX86Error::BadOperands("chain jump is engine-internal"))
        }
        X86Instr::Mov { dst, src } => match (dst, src) {
            (Operand::Reg(d), Operand::Imm(v)) => {
                out.push(0xb8 + d.index() as u8);
                out.extend_from_slice(&v.to_le_bytes());
            }
            (Operand::Mem(m), Operand::Imm(v)) => {
                out.push(0xc7);
                modrm(&mut out, 0, &RmOperand::Mem(m))?;
                out.extend_from_slice(&v.to_le_bytes());
            }
            (Operand::Reg(d), Operand::Mem(m)) => {
                out.push(0x8b);
                modrm(&mut out, d.index() as u8, &RmOperand::Mem(m))?;
            }
            (rm, Operand::Reg(s)) => {
                out.push(0x89);
                modrm(&mut out, s.index() as u8, &RmOperand::from_operand(&rm, "mov dst")?)?;
            }
            (Operand::Mem(_), Operand::Mem(_)) => return Err(EncodeX86Error::TwoMemoryOperands),
            _ => return Err(EncodeX86Error::BadOperands("mov")),
        },
        X86Instr::Alu { op, dst, src } => match (dst, src) {
            (Operand::Mem(_), Operand::Mem(_)) => return Err(EncodeX86Error::TwoMemoryOperands),
            (Operand::Imm(_), _) => return Err(EncodeX86Error::BadOperands("imm dst")),
            (rm, Operand::Imm(v)) => {
                if op == AluOp::Test {
                    out.push(0xf7);
                    modrm(&mut out, 0, &RmOperand::from_operand(&rm, "test dst")?)?;
                } else {
                    out.push(0x81);
                    modrm(&mut out, alu_imm_ext(op), &RmOperand::from_operand(&rm, "alu dst")?)?;
                }
                out.extend_from_slice(&v.to_le_bytes());
            }
            (rm, Operand::Reg(s)) => {
                // op r/m32, r32 form (base+1, or 0x85 for test).
                let opc = if op == AluOp::Test { 0x85 } else { alu_base(op) + 1 };
                out.push(opc);
                modrm(&mut out, s.index() as u8, &RmOperand::from_operand(&rm, "alu dst")?)?;
            }
            (Operand::Reg(d), Operand::Mem(m)) => {
                if op == AluOp::Test {
                    // test has no r32, r/m32 form; operands commute.
                    out.push(0x85);
                    modrm(&mut out, d.index() as u8, &RmOperand::Mem(m))?;
                } else {
                    out.push(alu_base(op) + 3);
                    modrm(&mut out, d.index() as u8, &RmOperand::Mem(m))?;
                }
            }
        },
        X86Instr::Lea { dst, addr } => {
            out.push(0x8d);
            modrm(&mut out, dst.index() as u8, &RmOperand::Mem(addr))?;
        }
        X86Instr::Imul { dst, src } => {
            out.extend_from_slice(&[0x0f, 0xaf]);
            modrm(&mut out, dst.index() as u8, &RmOperand::from_operand(&src, "imul src")?)?;
        }
        X86Instr::Shift { op, dst, count } => {
            if count == 0 || count > 31 {
                return Err(EncodeX86Error::BadShiftCount(count));
            }
            out.push(0xc1);
            let ext = match op {
                ShiftOp::Shl => 4,
                ShiftOp::Shr => 5,
                ShiftOp::Sar => 7,
            };
            modrm(&mut out, ext, &RmOperand::from_operand(&dst, "shift dst")?)?;
            out.push(count);
        }
        X86Instr::Un { op, dst } => {
            let (opc, ext) = match op {
                UnOp::Not => (0xf7, 2),
                UnOp::Neg => (0xf7, 3),
                UnOp::Inc => (0xff, 0),
                UnOp::Dec => (0xff, 1),
            };
            out.push(opc);
            modrm(&mut out, ext, &RmOperand::from_operand(&dst, "unary dst")?)?;
        }
        X86Instr::Movx { sign, width, dst, src } => {
            let opc = match (sign, width) {
                (false, Width::W8) => 0xb6,
                (false, Width::W16) => 0xb7,
                (true, Width::W8) => 0xbe,
                (true, Width::W16) => 0xbf,
                _ => return Err(EncodeX86Error::BadOperands("movx width")),
            };
            if width == Width::W8 {
                if let Operand::Reg(r) = src {
                    byte_reg(r)?;
                }
            }
            out.extend_from_slice(&[0x0f, opc]);
            modrm(&mut out, dst.index() as u8, &RmOperand::from_operand(&src, "movx src")?)?;
        }
        X86Instr::MovStore { width, src, dst } => match width {
            Width::W8 => {
                let r = byte_reg(src)?;
                out.push(0x88);
                modrm(&mut out, r, &RmOperand::Mem(dst))?;
            }
            Width::W16 => {
                out.extend_from_slice(&[0x66, 0x89]);
                modrm(&mut out, src.index() as u8, &RmOperand::Mem(dst))?;
            }
            Width::W32 => return Err(EncodeX86Error::BadOperands("movstore width")),
        },
        X86Instr::Setcc { cc, dst } => {
            let r = byte_reg(dst)?;
            out.extend_from_slice(&[0x0f, 0x90 + cc.encoding()]);
            out.push(0xc0 | r);
        }
        X86Instr::Jcc { cc, target } => {
            out.extend_from_slice(&[0x0f, 0x80 + cc.encoding()]);
            out.extend_from_slice(&target.to_le_bytes());
        }
        X86Instr::Jmp { target } => {
            out.push(0xe9);
            out.extend_from_slice(&target.to_le_bytes());
        }
        X86Instr::JmpInd { src } => {
            out.push(0xff);
            modrm(&mut out, 4, &RmOperand::from_operand(&src, "jmp*")?)?;
        }
        X86Instr::Call { target } => {
            out.push(0xe8);
            out.extend_from_slice(&target.to_le_bytes());
        }
        X86Instr::Ret => out.push(0xc3),
        X86Instr::Push { src } => match src {
            Operand::Reg(r) => out.push(0x50 + r.index() as u8),
            Operand::Imm(v) => {
                out.push(0x68);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Operand::Mem(m) => {
                out.push(0xff);
                modrm(&mut out, 6, &RmOperand::Mem(m))?;
            }
        },
        X86Instr::Pop { dst } => match dst {
            Operand::Reg(r) => out.push(0x58 + r.index() as u8),
            Operand::Mem(m) => {
                out.push(0x8f);
                modrm(&mut out, 0, &RmOperand::Mem(m))?;
            }
            Operand::Imm(_) => return Err(EncodeX86Error::BadOperands("pop imm")),
        },
        X86Instr::Pushfd => out.push(0x9c),
        X86Instr::Popfd => out.push(0x9d),
        X86Instr::Halt => out.push(0xf4),
        // The guest-trap sentinel encodes as `ud2`.
        X86Instr::Trap => out.extend_from_slice(&[0x0f, 0x0b]),
    }
    Ok(out)
}

/// A byte-stream reader for decoding.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeX86Error> {
        let b = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or(DecodeX86Error { offset: self.pos, reason: "truncated" })?;
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i8, DecodeX86Error> {
        Ok(self.u8()? as i8)
    }

    fn i32(&mut self) -> Result<i32, DecodeX86Error> {
        let mut buf = [0u8; 4];
        for b in &mut buf {
            *b = self.u8()?;
        }
        Ok(i32::from_le_bytes(buf))
    }

    fn err(&self, reason: &'static str) -> DecodeX86Error {
        DecodeX86Error { offset: self.pos, reason }
    }
}

/// Decode a ModRM-addressed operand; returns (reg field, r/m operand).
fn decode_modrm(r: &mut Reader) -> Result<(u8, Operand), DecodeX86Error> {
    let modrm = r.u8()?;
    let mode = modrm >> 6;
    let reg = (modrm >> 3) & 7;
    let rm = modrm & 7;
    if mode == 3 {
        return Ok((reg, Operand::Reg(Gpr::from_index(rm as usize))));
    }
    let mut base = None;
    let mut index = None;
    if rm == 0b100 {
        let sib = r.u8()?;
        let ss = sib >> 6;
        let idx = (sib >> 3) & 7;
        let b = sib & 7;
        if idx != 0b100 {
            index = Some((Gpr::from_index(idx as usize), 1u8 << ss));
        }
        if !(b == 0b101 && mode == 0) {
            base = Some(Gpr::from_index(b as usize));
        }
    } else if !(rm == 0b101 && mode == 0) {
        base = Some(Gpr::from_index(rm as usize));
    }
    let disp = match (mode, base) {
        (0, None) => r.i32()?,
        (0, Some(_)) => 0,
        (1, _) => r.i8()? as i32,
        (2, _) => r.i32()?,
        _ => unreachable!(),
    };
    Ok((reg, Operand::Mem(X86Mem { base, index, disp })))
}

/// Decode one instruction from the front of `bytes`.
///
/// Returns the instruction and the number of bytes consumed. Branch
/// targets come back as raw byte displacements (see [`disassemble`]).
///
/// # Errors
///
/// Returns a [`DecodeX86Error`] for unmodeled or truncated encodings.
pub fn decode(bytes: &[u8]) -> Result<(X86Instr, usize), DecodeX86Error> {
    let mut r = Reader { bytes, pos: 0 };
    let opc = r.u8()?;
    let instr = match opc {
        0x50..=0x57 => X86Instr::Push { src: Operand::Reg(Gpr::from_index((opc - 0x50) as usize)) },
        0x58..=0x5f => X86Instr::Pop { dst: Operand::Reg(Gpr::from_index((opc - 0x58) as usize)) },
        0xb8..=0xbf => X86Instr::Mov {
            dst: Operand::Reg(Gpr::from_index((opc - 0xb8) as usize)),
            src: Operand::Imm(r.i32()?),
        },
        0x89 => {
            let (reg, rm) = decode_modrm(&mut r)?;
            X86Instr::Mov { dst: rm, src: Operand::Reg(Gpr::from_index(reg as usize)) }
        }
        0x8b => {
            let (reg, rm) = decode_modrm(&mut r)?;
            if !rm.is_mem() {
                return Err(r.err("mov 8b expects memory source"));
            }
            X86Instr::Mov { dst: Operand::Reg(Gpr::from_index(reg as usize)), src: rm }
        }
        0xc7 => {
            let (ext, rm) = decode_modrm(&mut r)?;
            if ext != 0 || !rm.is_mem() {
                return Err(r.err("c7 /0 expects memory"));
            }
            X86Instr::Mov { dst: rm, src: Operand::Imm(r.i32()?) }
        }
        0x01 | 0x09 | 0x11 | 0x19 | 0x21 | 0x29 | 0x31 | 0x39 => {
            let op = match opc {
                0x01 => AluOp::Add,
                0x09 => AluOp::Or,
                0x11 => AluOp::Adc,
                0x19 => AluOp::Sbb,
                0x21 => AluOp::And,
                0x29 => AluOp::Sub,
                0x31 => AluOp::Xor,
                _ => AluOp::Cmp,
            };
            let (reg, rm) = decode_modrm(&mut r)?;
            X86Instr::Alu { op, dst: rm, src: Operand::Reg(Gpr::from_index(reg as usize)) }
        }
        0x03 | 0x0b | 0x13 | 0x1b | 0x23 | 0x2b | 0x33 | 0x3b => {
            let op = match opc {
                0x03 => AluOp::Add,
                0x0b => AluOp::Or,
                0x13 => AluOp::Adc,
                0x1b => AluOp::Sbb,
                0x23 => AluOp::And,
                0x2b => AluOp::Sub,
                0x33 => AluOp::Xor,
                _ => AluOp::Cmp,
            };
            let (reg, rm) = decode_modrm(&mut r)?;
            if !rm.is_mem() {
                return Err(r.err("r32, r/m32 form expects memory"));
            }
            X86Instr::Alu { op, dst: Operand::Reg(Gpr::from_index(reg as usize)), src: rm }
        }
        0x85 => {
            let (reg, rm) = decode_modrm(&mut r)?;
            X86Instr::Alu {
                op: AluOp::Test,
                dst: rm,
                src: Operand::Reg(Gpr::from_index(reg as usize)),
            }
        }
        0x81 => {
            let (ext, rm) = decode_modrm(&mut r)?;
            let op = match ext {
                0 => AluOp::Add,
                1 => AluOp::Or,
                2 => AluOp::Adc,
                3 => AluOp::Sbb,
                4 => AluOp::And,
                5 => AluOp::Sub,
                6 => AluOp::Xor,
                _ => AluOp::Cmp,
            };
            X86Instr::Alu { op, dst: rm, src: Operand::Imm(r.i32()?) }
        }
        0x8d => {
            let (reg, rm) = decode_modrm(&mut r)?;
            let Operand::Mem(m) = rm else {
                return Err(r.err("lea expects memory"));
            };
            X86Instr::Lea { dst: Gpr::from_index(reg as usize), addr: m }
        }
        0xc1 => {
            let (ext, rm) = decode_modrm(&mut r)?;
            let op = match ext {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                _ => return Err(r.err("unmodeled shift extension")),
            };
            let count = r.u8()?;
            X86Instr::Shift { op, dst: rm, count }
        }
        0xf7 => {
            let (ext, rm) = decode_modrm(&mut r)?;
            match ext {
                0 => X86Instr::Alu { op: AluOp::Test, dst: rm, src: Operand::Imm(r.i32()?) },
                2 => X86Instr::Un { op: UnOp::Not, dst: rm },
                3 => X86Instr::Un { op: UnOp::Neg, dst: rm },
                _ => return Err(r.err("unmodeled f7 extension")),
            }
        }
        0xff => {
            let (ext, rm) = decode_modrm(&mut r)?;
            match ext {
                0 => X86Instr::Un { op: UnOp::Inc, dst: rm },
                1 => X86Instr::Un { op: UnOp::Dec, dst: rm },
                4 => X86Instr::JmpInd { src: rm },
                6 => {
                    if !rm.is_mem() {
                        return Err(r.err("push ff /6 expects memory"));
                    }
                    X86Instr::Push { src: rm }
                }
                _ => return Err(r.err("unmodeled ff extension")),
            }
        }
        0x8f => {
            let (ext, rm) = decode_modrm(&mut r)?;
            if ext != 0 || !rm.is_mem() {
                return Err(r.err("pop 8f /0 expects memory"));
            }
            X86Instr::Pop { dst: rm }
        }
        0x88 => {
            let (reg, rm) = decode_modrm(&mut r)?;
            let Operand::Mem(m) = rm else {
                return Err(r.err("movb expects memory destination"));
            };
            if reg >= 4 {
                return Err(r.err("movb requires byte register"));
            }
            X86Instr::MovStore { width: Width::W8, src: Gpr::from_index(reg as usize), dst: m }
        }
        0x66 => {
            let next = r.u8()?;
            if next != 0x89 {
                return Err(r.err("unmodeled 66-prefixed opcode"));
            }
            let (reg, rm) = decode_modrm(&mut r)?;
            let Operand::Mem(m) = rm else {
                return Err(r.err("movw expects memory destination"));
            };
            X86Instr::MovStore { width: Width::W16, src: Gpr::from_index(reg as usize), dst: m }
        }
        0xe9 => X86Instr::Jmp { target: r.i32()? },
        0xe8 => X86Instr::Call { target: r.i32()? },
        0xc3 => X86Instr::Ret,
        0x68 => X86Instr::Push { src: Operand::Imm(r.i32()?) },
        0x9c => X86Instr::Pushfd,
        0x9d => X86Instr::Popfd,
        0xf4 => X86Instr::Halt,
        0x0f => {
            let op2 = r.u8()?;
            match op2 {
                0x0b => X86Instr::Trap,
                0xaf => {
                    let (reg, rm) = decode_modrm(&mut r)?;
                    X86Instr::Imul { dst: Gpr::from_index(reg as usize), src: rm }
                }
                0xb6 | 0xb7 | 0xbe | 0xbf => {
                    let (reg, rm) = decode_modrm(&mut r)?;
                    let (sign, width) = match op2 {
                        0xb6 => (false, Width::W8),
                        0xb7 => (false, Width::W16),
                        0xbe => (true, Width::W8),
                        _ => (true, Width::W16),
                    };
                    X86Instr::Movx { sign, width, dst: Gpr::from_index(reg as usize), src: rm }
                }
                0x80..=0x8f => {
                    let Some(cc) = Cc::from_encoding(op2 - 0x80) else {
                        return Err(r.err("parity condition not modeled"));
                    };
                    X86Instr::Jcc { cc, target: r.i32()? }
                }
                0x90..=0x9f => {
                    let Some(cc) = Cc::from_encoding(op2 - 0x90) else {
                        return Err(r.err("parity condition not modeled"));
                    };
                    let modrm = r.u8()?;
                    if modrm >> 6 != 3 {
                        return Err(r.err("setcc to memory not modeled"));
                    }
                    let rm = modrm & 7;
                    if rm >= 4 {
                        return Err(r.err("setcc requires byte register"));
                    }
                    X86Instr::Setcc { cc, dst: Gpr::from_index(rm as usize) }
                }
                _ => return Err(r.err("unmodeled 0f opcode")),
            }
        }
        _ => return Err(r.err("unmodeled opcode")),
    };
    Ok((instr, r.pos))
}

/// Assemble an instruction sequence, converting instruction-relative
/// branch targets to byte displacements.
///
/// # Errors
///
/// Propagates encoding errors; returns [`EncodeX86Error::BranchLayout`]
/// if a target points outside the sequence.
pub fn assemble(instrs: &[X86Instr]) -> Result<Vec<u8>, EncodeX86Error> {
    // First pass: lengths with placeholder displacements.
    let mut offsets = Vec::with_capacity(instrs.len() + 1);
    let mut pos = 0usize;
    for i in instrs {
        offsets.push(pos);
        pos += encode(i)?.len();
    }
    offsets.push(pos);
    // Second pass: emit with real displacements.
    let mut out = Vec::with_capacity(pos);
    for (idx, i) in instrs.iter().enumerate() {
        let patched = match *i {
            X86Instr::Jcc { cc, target } => {
                X86Instr::Jcc { cc, target: byte_disp(&offsets, idx, target)? }
            }
            X86Instr::Jmp { target } => X86Instr::Jmp { target: byte_disp(&offsets, idx, target)? },
            X86Instr::Call { target } => {
                X86Instr::Call { target: byte_disp(&offsets, idx, target)? }
            }
            other => other,
        };
        out.extend_from_slice(&encode(&patched)?);
    }
    Ok(out)
}

fn byte_disp(offsets: &[usize], idx: usize, target: i32) -> Result<i32, EncodeX86Error> {
    let dest = (idx as i64) + 1 + (target as i64);
    if dest < 0 || dest as usize >= offsets.len() {
        return Err(EncodeX86Error::BranchLayout);
    }
    Ok((offsets[dest as usize] as i64 - offsets[idx + 1] as i64) as i32)
}

/// Disassemble a byte stream produced by [`assemble`], converting byte
/// displacements back to instruction-relative targets.
///
/// # Errors
///
/// Returns a [`DecodeX86Error`] on unmodeled bytes or a displacement
/// that does not land on an instruction boundary.
pub fn disassemble(bytes: &[u8]) -> Result<Vec<X86Instr>, DecodeX86Error> {
    let mut instrs = Vec::new();
    let mut starts = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let (i, len) = decode(&bytes[pos..])
            .map_err(|e| DecodeX86Error { offset: pos + e.offset, reason: e.reason })?;
        starts.push(pos);
        instrs.push(i);
        pos += len;
    }
    starts.push(pos);
    // Convert byte displacements to instruction counts.
    let index_of = |byte: i64, pos: usize| -> Result<i32, DecodeX86Error> {
        starts
            .iter()
            .position(|&s| s as i64 == byte)
            .map(|i| i as i32)
            .ok_or(DecodeX86Error { offset: pos, reason: "branch into middle of instruction" })
    };
    for idx in 0..instrs.len() {
        let next_byte = starts[idx + 1] as i64;
        let fix = |target: i32, pos: usize| -> Result<i32, DecodeX86Error> {
            let dest_idx = index_of(next_byte + target as i64, pos)?;
            Ok(dest_idx - (idx as i32 + 1))
        };
        match instrs[idx] {
            X86Instr::Jcc { cc, target } => {
                instrs[idx] = X86Instr::Jcc { cc, target: fix(target, starts[idx])? }
            }
            X86Instr::Jmp { target } => {
                instrs[idx] = X86Instr::Jmp { target: fix(target, starts[idx])? }
            }
            X86Instr::Call { target } => {
                instrs[idx] = X86Instr::Call { target: fix(target, starts[idx])? }
            }
            _ => {}
        }
    }
    Ok(instrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: X86Instr) {
        let bytes = encode(&i).unwrap();
        let (decoded, len) = decode(&bytes).unwrap();
        assert_eq!(decoded, i, "bytes {bytes:02x?}");
        assert_eq!(len, bytes.len());
    }

    #[test]
    fn roundtrip_mov_forms() {
        roundtrip(X86Instr::mov_imm(Gpr::Edi, -1));
        roundtrip(X86Instr::mov_rr(Gpr::Eax, Gpr::Ebp));
        roundtrip(X86Instr::Mov {
            dst: Operand::Reg(Gpr::Eax),
            src: Operand::Mem(X86Mem::base(Gpr::Edi)),
        });
        roundtrip(X86Instr::Mov {
            dst: Operand::Mem(X86Mem::base_disp(Gpr::Esi, 0x34)),
            src: Operand::Reg(Gpr::Eax),
        });
        roundtrip(X86Instr::Mov {
            dst: Operand::Mem(X86Mem {
                base: Some(Gpr::Ecx),
                index: Some((Gpr::Eax, 4)),
                disp: -4,
            }),
            src: Operand::Imm(42),
        });
    }

    #[test]
    fn roundtrip_alu_forms() {
        for op in AluOp::ALL {
            roundtrip(X86Instr::alu_rr(op, Gpr::Edx, Gpr::Eax));
            roundtrip(X86Instr::alu_ri(op, Gpr::Ecx, -100));
            roundtrip(X86Instr::Alu {
                op,
                dst: Operand::Mem(X86Mem::base_disp(Gpr::Ebp, -8)),
                src: Operand::Reg(Gpr::Eax),
            });
            if op != AluOp::Test {
                roundtrip(X86Instr::Alu {
                    op,
                    dst: Operand::Reg(Gpr::Eax),
                    src: Operand::Mem(X86Mem::base_disp(Gpr::Ebp, 300)),
                });
            }
        }
    }

    #[test]
    fn roundtrip_addressing_modes() {
        let mems = [
            X86Mem::base(Gpr::Eax),
            X86Mem::base(Gpr::Esp), // needs SIB
            X86Mem::base(Gpr::Ebp), // needs disp8
            X86Mem::base_disp(Gpr::Ecx, 127),
            X86Mem::base_disp(Gpr::Ecx, -128),
            X86Mem::base_disp(Gpr::Ecx, 128),
            X86Mem::absolute(0x1000),
            X86Mem { base: None, index: Some((Gpr::Eax, 4)), disp: 0x20 },
            X86Mem { base: Some(Gpr::Ebx), index: Some((Gpr::Esi, 8)), disp: -4 },
            X86Mem { base: Some(Gpr::Ebp), index: Some((Gpr::Edi, 1)), disp: 0 },
            X86Mem { base: Some(Gpr::Esp), index: Some((Gpr::Ecx, 2)), disp: 12 },
        ];
        for m in mems {
            roundtrip(X86Instr::Lea { dst: Gpr::Edx, addr: m });
            roundtrip(X86Instr::Mov { dst: Operand::Reg(Gpr::Eax), src: Operand::Mem(m) });
        }
    }

    #[test]
    fn roundtrip_misc() {
        roundtrip(X86Instr::Imul { dst: Gpr::Eax, src: Operand::Reg(Gpr::Ecx) });
        roundtrip(X86Instr::Imul { dst: Gpr::Eax, src: Operand::Mem(X86Mem::base(Gpr::Edi)) });
        roundtrip(X86Instr::Shift { op: ShiftOp::Shl, dst: Operand::Reg(Gpr::Eax), count: 2 });
        roundtrip(X86Instr::Shift { op: ShiftOp::Sar, dst: Operand::Reg(Gpr::Ebx), count: 31 });
        for op in [UnOp::Neg, UnOp::Not, UnOp::Inc, UnOp::Dec] {
            roundtrip(X86Instr::Un { op, dst: Operand::Reg(Gpr::Esi) });
            roundtrip(X86Instr::Un { op, dst: Operand::Mem(X86Mem::base(Gpr::Eax)) });
        }
        roundtrip(X86Instr::Movx {
            sign: false,
            width: Width::W8,
            dst: Gpr::Eax,
            src: Operand::Reg(Gpr::Eax),
        });
        roundtrip(X86Instr::Movx {
            sign: true,
            width: Width::W16,
            dst: Gpr::Edi,
            src: Operand::Mem(X86Mem::base(Gpr::Ecx)),
        });
        roundtrip(X86Instr::MovStore {
            width: Width::W8,
            src: Gpr::Ecx,
            dst: X86Mem::base(Gpr::Edi),
        });
        roundtrip(X86Instr::MovStore {
            width: Width::W16,
            src: Gpr::Esi,
            dst: X86Mem::base(Gpr::Edi),
        });
        for cc in Cc::ALL {
            roundtrip(X86Instr::Setcc { cc, dst: Gpr::Edx });
            roundtrip(X86Instr::Jcc { cc, target: -77 });
        }
        roundtrip(X86Instr::Jmp { target: 1234 });
        roundtrip(X86Instr::JmpInd { src: Operand::Reg(Gpr::Eax) });
        roundtrip(X86Instr::JmpInd { src: Operand::Mem(X86Mem::base_disp(Gpr::Ebx, 4)) });
        roundtrip(X86Instr::Call { target: -1 });
        roundtrip(X86Instr::Ret);
        roundtrip(X86Instr::Push { src: Operand::Reg(Gpr::Ebp) });
        roundtrip(X86Instr::Push { src: Operand::Imm(7) });
        roundtrip(X86Instr::Push { src: Operand::Mem(X86Mem::base(Gpr::Eax)) });
        roundtrip(X86Instr::Pop { dst: Operand::Reg(Gpr::Ebp) });
        roundtrip(X86Instr::Pop { dst: Operand::Mem(X86Mem::base(Gpr::Eax)) });
        roundtrip(X86Instr::Pushfd);
        roundtrip(X86Instr::Popfd);
        roundtrip(X86Instr::Halt);
        roundtrip(X86Instr::Trap);
    }

    #[test]
    fn constraint_errors() {
        let bad_scale = X86Mem { base: Some(Gpr::Eax), index: Some((Gpr::Ecx, 3)), disp: 0 };
        assert_eq!(
            encode(&X86Instr::Lea { dst: Gpr::Eax, addr: bad_scale }),
            Err(EncodeX86Error::BadScale(3))
        );
        let esp_index = X86Mem { base: Some(Gpr::Eax), index: Some((Gpr::Esp, 1)), disp: 0 };
        assert_eq!(
            encode(&X86Instr::Lea { dst: Gpr::Eax, addr: esp_index }),
            Err(EncodeX86Error::EspIndex)
        );
        assert_eq!(
            encode(&X86Instr::Setcc { cc: Cc::E, dst: Gpr::Esi }),
            Err(EncodeX86Error::NotByteAddressable(Gpr::Esi))
        );
        assert_eq!(
            encode(&X86Instr::Mov {
                dst: Operand::Mem(X86Mem::base(Gpr::Eax)),
                src: Operand::Mem(X86Mem::base(Gpr::Ecx)),
            }),
            Err(EncodeX86Error::TwoMemoryOperands)
        );
        assert_eq!(
            encode(&X86Instr::Shift { op: ShiftOp::Shl, dst: Operand::Reg(Gpr::Eax), count: 0 }),
            Err(EncodeX86Error::BadShiftCount(0))
        );
    }

    #[test]
    fn disp8_compression() {
        let small = encode(&X86Instr::Mov {
            dst: Operand::Reg(Gpr::Eax),
            src: Operand::Mem(X86Mem::base_disp(Gpr::Ecx, 8)),
        })
        .unwrap();
        let large = encode(&X86Instr::Mov {
            dst: Operand::Reg(Gpr::Eax),
            src: Operand::Mem(X86Mem::base_disp(Gpr::Ecx, 0x1000)),
        })
        .unwrap();
        assert_eq!(small.len(), 3); // 8b 41 08
        assert_eq!(large.len(), 6); // 8b 81 + disp32
    }

    #[test]
    fn assemble_and_disassemble_branches() {
        use crate::cc::Cc;
        let prog = vec![
            X86Instr::alu_rr(AluOp::Cmp, Gpr::Eax, Gpr::Ecx),
            X86Instr::Jcc { cc: Cc::E, target: 2 }, // to mov_imm(edx, 2)
            X86Instr::mov_imm(Gpr::Edx, 1),
            X86Instr::Jmp { target: 1 }, // to ret
            X86Instr::mov_imm(Gpr::Edx, 2),
            X86Instr::Ret,
        ];
        let bytes = assemble(&prog).unwrap();
        let back = disassemble(&bytes).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn assemble_backward_branch() {
        let prog = vec![
            X86Instr::Un { op: UnOp::Dec, dst: Operand::Reg(Gpr::Ecx) },
            X86Instr::Jcc { cc: Cc::Ne, target: -2 }, // back to dec
            X86Instr::Ret,
        ];
        let bytes = assemble(&prog).unwrap();
        assert_eq!(disassemble(&bytes).unwrap(), prog);
    }

    #[test]
    fn assemble_rejects_out_of_range_target() {
        let prog = vec![X86Instr::Jmp { target: 5 }];
        assert_eq!(assemble(&prog), Err(EncodeX86Error::BranchLayout));
    }

    #[test]
    fn decode_rejects_unmodeled() {
        assert!(decode(&[0x90]).is_err()); // nop not modeled
        assert!(decode(&[0x0f, 0x05]).is_err());
        assert!(decode(&[]).is_err());
        assert!(decode(&[0x81]).is_err()); // truncated
    }

    #[test]
    fn truncated_and_garbage_streams_never_panic() {
        // Truncations of every valid encoding must error, not panic.
        let samples = [
            X86Instr::mov_imm(Gpr::Eax, 0x1234_5678u32 as i32),
            X86Instr::Mov {
                dst: Operand::Mem(X86Mem {
                    base: Some(Gpr::Esp),
                    index: Some((Gpr::Eax, 4)),
                    disp: -8,
                }),
                src: Operand::Reg(Gpr::Ecx),
            },
            X86Instr::alu_ri(AluOp::Add, Gpr::Edx, 1000),
            X86Instr::Jcc { cc: Cc::Ne, target: -3 },
        ];
        for instr in &samples {
            let bytes = encode(instr).unwrap();
            for cut in 0..bytes.len() {
                assert!(decode(&bytes[..cut]).is_err(), "{instr} truncated to {cut} bytes");
            }
        }
        // Pseudo-random garbage streams: decode must always return.
        let mut state = 0x8bad_f00du32;
        for _ in 0..4096 {
            let mut buf = [0u8; 16];
            for b in buf.iter_mut() {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = decode(&buf);
        }
    }

    #[test]
    fn decoded_length_is_consumed_bytes() {
        // Decode must report exact lengths so disassembly can walk a
        // stream; verify by concatenating instructions.
        let a = X86Instr::mov_imm(Gpr::Eax, 7);
        let b = X86Instr::Ret;
        let mut bytes = encode(&a).unwrap();
        bytes.extend(encode(&b).unwrap());
        let (d1, l1) = decode(&bytes).unwrap();
        assert_eq!(d1, a);
        let (d2, _) = decode(&bytes[l1..]).unwrap();
        assert_eq!(d2, b);
    }
}
