//! Pure definitions of x86 ALU semantics, shared with the symbolic
//! executor (mirrored structurally over bit-vector terms there and
//! cross-checked by property tests in `ldbt-symexec`).

use crate::flags::EFlags;
use crate::insn::{AluOp, ShiftOp, UnOp};
use ldbt_isa::bits;

/// Result of an ALU evaluation: the value and the resulting flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluOut {
    /// The computed value (discarded by `cmp`/`test`).
    pub value: u32,
    /// The flag state after the instruction.
    pub flags: EFlags,
}

/// Evaluate a two-operand ALU op `dst = dst op src` with incoming flags.
///
/// IA-32 flag rules for the modeled subset:
/// * add/adc/sub/sbb/cmp: CF (borrow polarity for subtraction!), ZF, SF,
///   OF all set from the operation,
/// * and/or/xor/test: CF = OF = 0, ZF/SF from the result.
pub fn eval_alu(op: AluOp, dst: u32, src: u32, flags_in: EFlags) -> AluOut {
    let c = flags_in.cf;
    let (value, cf, of) = match op {
        AluOp::Add => (
            dst.wrapping_add(src),
            bits::add_carry32(dst, src, false),
            bits::add_overflow32(dst, src, false),
        ),
        AluOp::Adc => (
            dst.wrapping_add(src).wrapping_add(c as u32),
            bits::add_carry32(dst, src, c),
            bits::add_overflow32(dst, src, c),
        ),
        AluOp::Sub | AluOp::Cmp => (
            dst.wrapping_sub(src),
            // x86 CF = borrow = NOT (ARM carry).
            !bits::sub_carry32_arm(dst, src, true),
            bits::sub_overflow32(dst, src),
        ),
        AluOp::Sbb => {
            let r = dst.wrapping_sub(src).wrapping_sub(c as u32);
            let full = (dst as i32 as i64) - (src as i32 as i64) - (c as i64);
            (
                r,
                !bits::sub_carry32_arm(dst, src, !c),
                full < i32::MIN as i64 || full > i32::MAX as i64,
            )
        }
        AluOp::And | AluOp::Test => (dst & src, false, false),
        AluOp::Or => (dst | src, false, false),
        AluOp::Xor => (dst ^ src, false, false),
    };
    let mut flags = EFlags { cf, of, ..flags_in };
    flags.set_zs(value);
    AluOut { value, flags }
}

/// Evaluate a shift by an immediate count (1–31).
///
/// CF is the last bit shifted out; ZF/SF track the result. OF is modeled
/// as cleared for all counts (IA-32 defines it only for count 1); the
/// symbolic executor mirrors this simplification exactly.
pub fn eval_shift(op: ShiftOp, dst: u32, count: u8, flags_in: EFlags) -> AluOut {
    let count = (count & 31) as u32;
    if count == 0 {
        return AluOut { value: dst, flags: flags_in };
    }
    let (value, cf) = match op {
        ShiftOp::Shl => (dst << count, (dst >> (32 - count)) & 1 != 0),
        ShiftOp::Shr => (dst >> count, (dst >> (count - 1)) & 1 != 0),
        ShiftOp::Sar => (((dst as i32) >> count) as u32, ((dst as i32) >> (count - 1)) & 1 != 0),
    };
    let mut flags = EFlags { cf, of: false, ..flags_in };
    flags.set_zs(value);
    AluOut { value, flags }
}

/// Evaluate a one-operand op.
///
/// `neg` sets all four flags (CF = operand ≠ 0); `inc`/`dec` set
/// ZF/SF/OF but *preserve CF* (the quirk paper §5 exploits); `not` sets
/// no flags at all.
pub fn eval_un(op: UnOp, dst: u32, flags_in: EFlags) -> AluOut {
    match op {
        UnOp::Neg => {
            let value = 0u32.wrapping_sub(dst);
            let mut flags = EFlags { cf: dst != 0, of: dst == 0x8000_0000, ..flags_in };
            flags.set_zs(value);
            AluOut { value, flags }
        }
        UnOp::Not => AluOut { value: !dst, flags: flags_in },
        UnOp::Inc => {
            let value = dst.wrapping_add(1);
            let mut flags = EFlags {
                of: dst == 0x7fff_ffff,
                ..flags_in // CF preserved
            };
            flags.set_zs(value);
            AluOut { value, flags }
        }
        UnOp::Dec => {
            let value = dst.wrapping_sub(1);
            let mut flags = EFlags { of: dst == 0x8000_0000, ..flags_in };
            flags.set_zs(value);
            AluOut { value, flags }
        }
    }
}

/// Evaluate a two-operand `imul`.
///
/// CF = OF = set when the full signed product does not fit in 32 bits;
/// ZF/SF are architecturally undefined and modeled as preserved.
pub fn eval_imul(dst: u32, src: u32, flags_in: EFlags) -> AluOut {
    let full = (dst as i32 as i64) * (src as i32 as i64);
    let value = full as u32;
    let overflow = full != value as i32 as i64;
    AluOut { value, flags: EFlags { cf: overflow, of: overflow, ..flags_in } }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_carry_is_borrow() {
        let r = eval_alu(AluOp::Cmp, 3, 5, EFlags::new());
        assert!(r.flags.cf, "3 - 5 borrows");
        let r = eval_alu(AluOp::Cmp, 5, 3, EFlags::new());
        assert!(!r.flags.cf);
        let r = eval_alu(AluOp::Cmp, 5, 5, EFlags::new());
        assert!(!r.flags.cf);
        assert!(r.flags.zf);
    }

    #[test]
    fn logical_clears_cf_of() {
        let f = EFlags { cf: true, of: true, ..EFlags::new() };
        let r = eval_alu(AluOp::And, 0xf0, 0x0f, f);
        assert_eq!(r.value, 0);
        assert!(r.flags.zf && !r.flags.cf && !r.flags.of);
    }

    #[test]
    fn adc_sbb_chain() {
        let f = EFlags { cf: true, ..EFlags::new() };
        assert_eq!(eval_alu(AluOp::Adc, 1, 1, f).value, 3);
        assert_eq!(eval_alu(AluOp::Sbb, 5, 3, f).value, 1);
        assert_eq!(eval_alu(AluOp::Sbb, 5, 3, EFlags::new()).value, 2);
    }

    #[test]
    fn shifts() {
        let r = eval_shift(ShiftOp::Shl, 0x8000_0001, 1, EFlags::new());
        assert_eq!(r.value, 2);
        assert!(r.flags.cf);
        let r = eval_shift(ShiftOp::Sar, 0x8000_0000, 4, EFlags::new());
        assert_eq!(r.value, 0xf800_0000);
        let r = eval_shift(ShiftOp::Shr, 0b101, 1, EFlags::new());
        assert_eq!(r.value, 0b10);
        assert!(r.flags.cf);
    }

    #[test]
    fn inc_preserves_cf() {
        let f = EFlags { cf: true, ..EFlags::new() };
        let r = eval_un(UnOp::Inc, 5, f);
        assert_eq!(r.value, 6);
        assert!(r.flags.cf, "inc preserves CF");
        let r = eval_un(UnOp::Inc, u32::MAX, EFlags::new());
        assert_eq!(r.value, 0);
        assert!(r.flags.zf);
        assert!(!r.flags.cf, "wrap does NOT set CF via inc");
        let r = eval_un(UnOp::Inc, 0x7fff_ffff, EFlags::new());
        assert!(r.flags.of);
    }

    #[test]
    fn dec_and_neg() {
        let r = eval_un(UnOp::Dec, 1, EFlags { cf: true, ..EFlags::new() });
        assert_eq!(r.value, 0);
        assert!(r.flags.zf && r.flags.cf);
        let r = eval_un(UnOp::Neg, 5, EFlags::new());
        assert_eq!(r.value, (-5i32) as u32);
        assert!(r.flags.cf && r.flags.sf);
        let r = eval_un(UnOp::Neg, 0, EFlags::new());
        assert!(!r.flags.cf && r.flags.zf);
    }

    #[test]
    fn not_touches_no_flags() {
        let f = EFlags { cf: true, zf: true, sf: true, of: true };
        let r = eval_un(UnOp::Not, 0, f);
        assert_eq!(r.value, u32::MAX);
        assert_eq!(r.flags, f);
    }

    #[test]
    fn imul_overflow_flag() {
        let r = eval_imul(0x10000, 0x10000, EFlags::new());
        assert_eq!(r.value, 0);
        assert!(r.flags.cf && r.flags.of);
        let r = eval_imul(1000, 1000, EFlags::new());
        assert_eq!(r.value, 1_000_000);
        assert!(!r.flags.cf);
        let r = eval_imul((-3i32) as u32, 7, EFlags::new());
        assert_eq!(r.value, (-21i32) as u32);
        assert!(!r.flags.cf);
    }

    #[test]
    fn x86_vs_arm_carry_polarity() {
        // The paper's cs→ae mapping: after identical compares, ARM C is
        // the negation of x86 CF.
        for (a, b) in [(1u32, 2u32), (2, 1), (7, 7), (0, u32::MAX)] {
            let x86 = eval_alu(AluOp::Cmp, a, b, EFlags::new());
            let arm_c = ldbt_isa::bits::sub_carry32_arm(a, b, true);
            assert_eq!(x86.flags.cf, !arm_c);
        }
    }
}
