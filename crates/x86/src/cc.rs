//! x86 condition codes (`jcc`/`setcc` predicates).

use crate::flags::EFlags;
use std::fmt;

/// An x86 condition code over the modeled EFLAGS subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Cc {
    /// Overflow (`OF`).
    O,
    /// No overflow.
    No,
    /// Below — unsigned `<` (`CF`).
    B,
    /// Above or equal — unsigned `>=`.
    Ae,
    /// Equal (`ZF`).
    E,
    /// Not equal.
    Ne,
    /// Below or equal — unsigned `<=` (`CF || ZF`).
    Be,
    /// Above — unsigned `>`.
    A,
    /// Sign (`SF`).
    S,
    /// No sign.
    Ns,
    /// Less — signed `<` (`SF != OF`).
    L,
    /// Greater or equal — signed `>=`.
    Ge,
    /// Less or equal — signed `<=`.
    Le,
    /// Greater — signed `>`.
    G,
}

impl Cc {
    /// All condition codes in encoding order (low nibble of `0F 8x`).
    pub const ALL: [Cc; 14] = [
        Cc::O,
        Cc::No,
        Cc::B,
        Cc::Ae,
        Cc::E,
        Cc::Ne,
        Cc::Be,
        Cc::A,
        Cc::S,
        Cc::Ns,
        Cc::L,
        Cc::Ge,
        Cc::Le,
        Cc::G,
    ];

    /// The IA-32 condition nibble (as in `jcc rel32` = `0F 80+cc`).
    pub fn encoding(self) -> u8 {
        match self {
            Cc::O => 0x0,
            Cc::No => 0x1,
            Cc::B => 0x2,
            Cc::Ae => 0x3,
            Cc::E => 0x4,
            Cc::Ne => 0x5,
            Cc::Be => 0x6,
            Cc::A => 0x7,
            Cc::S => 0x8,
            Cc::Ns => 0x9,
            Cc::L => 0xc,
            Cc::Ge => 0xd,
            Cc::Le => 0xe,
            Cc::G => 0xf,
        }
    }

    /// The condition with the given nibble (0xa/0xb — `P`/`NP` — are not
    /// modeled).
    pub fn from_encoding(nibble: u8) -> Option<Cc> {
        Cc::ALL.iter().copied().find(|c| c.encoding() == nibble)
    }

    /// Evaluate against a flag state.
    pub fn eval(self, f: EFlags) -> bool {
        match self {
            Cc::O => f.of,
            Cc::No => !f.of,
            Cc::B => f.cf,
            Cc::Ae => !f.cf,
            Cc::E => f.zf,
            Cc::Ne => !f.zf,
            Cc::Be => f.cf || f.zf,
            Cc::A => !f.cf && !f.zf,
            Cc::S => f.sf,
            Cc::Ns => !f.sf,
            Cc::L => f.sf != f.of,
            Cc::Ge => f.sf == f.of,
            Cc::Le => f.zf || f.sf != f.of,
            Cc::G => !f.zf && f.sf == f.of,
        }
    }

    /// The logical negation.
    pub fn invert(self) -> Cc {
        match self {
            Cc::O => Cc::No,
            Cc::No => Cc::O,
            Cc::B => Cc::Ae,
            Cc::Ae => Cc::B,
            Cc::E => Cc::Ne,
            Cc::Ne => Cc::E,
            Cc::Be => Cc::A,
            Cc::A => Cc::Be,
            Cc::S => Cc::Ns,
            Cc::Ns => Cc::S,
            Cc::L => Cc::Ge,
            Cc::Ge => Cc::L,
            Cc::Le => Cc::G,
            Cc::G => Cc::Le,
        }
    }

    /// The mnemonic suffix (`e`, `ne`, `b`, …).
    pub fn suffix(self) -> &'static str {
        match self {
            Cc::O => "o",
            Cc::No => "no",
            Cc::B => "b",
            Cc::Ae => "ae",
            Cc::E => "e",
            Cc::Ne => "ne",
            Cc::Be => "be",
            Cc::A => "a",
            Cc::S => "s",
            Cc::Ns => "ns",
            Cc::L => "l",
            Cc::Ge => "ge",
            Cc::Le => "le",
            Cc::G => "g",
        }
    }
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_flag_states() -> impl Iterator<Item = EFlags> {
        (0..16u32).map(|b| EFlags {
            cf: b & 1 != 0,
            zf: b & 2 != 0,
            sf: b & 4 != 0,
            of: b & 8 != 0,
        })
    }

    #[test]
    fn encoding_roundtrip() {
        for c in Cc::ALL {
            assert_eq!(Cc::from_encoding(c.encoding()), Some(c));
        }
        assert_eq!(Cc::from_encoding(0xa), None); // parity not modeled
    }

    #[test]
    fn invert_complements() {
        for c in Cc::ALL {
            assert_eq!(c.invert().invert(), c);
            for f in all_flag_states() {
                assert_eq!(c.eval(f), !c.invert().eval(f));
            }
        }
    }

    #[test]
    fn comparisons_after_cmp() {
        // Emulate `cmpl b, a` (AT&T: computes a - b) and check predicates.
        for (a, b) in [(5i32, 3i32), (3, 5), (-2, 3), (3, -2), (7, 7), (i32::MIN, 1)] {
            let (au, bu) = (a as u32, b as u32);
            let r = au.wrapping_sub(bu);
            let f = EFlags {
                cf: (au as u64) < (bu as u64),
                zf: r == 0,
                sf: (r >> 31) != 0,
                of: ldbt_isa::bits::sub_overflow32(au, bu),
            };
            assert_eq!(Cc::E.eval(f), a == b);
            assert_eq!(Cc::L.eval(f), a < b);
            assert_eq!(Cc::G.eval(f), a > b);
            assert_eq!(Cc::B.eval(f), au < bu);
            assert_eq!(Cc::A.eval(f), au > bu);
            assert_eq!(Cc::Ae.eval(f), au >= bu);
        }
    }
}
